// graph_pack: one-time conversion of a graph into the memory-mappable
// `.opimg` container (see graph/graph_mmap.h). Pay the parse once;
// every subsequent load is mmap + checksum instead of text parsing.
//
// Usage:
//   graph_pack --in=FILE --out=FILE.opimg [--in-format=edgelist|bin]
//              [--undirected] [--scheme=wc|const|tri|uniform]
//              [--p=0.1] [--seed=1] [--verify]
//
//   --in-format   input container: "edgelist" (SNAP-style text, default)
//                 or "bin" (the OPIMGRB1 edge-dump container)
//   --undirected  edge-list lines add both directions (e.g. Orkut)
//   --scheme      weight scheme for edges without explicit probabilities
//                 (edgelist input only): wc = weighted cascade (default),
//                 const / tri / uniform as in graph_io
//   --p           probability for const/uniform schemes
//   --seed        seed for randomized schemes
//   --verify      reload the written file (mmap path) and check it
//                 matches the source graph array-for-array
//
// Exit codes: 0 = ok, 1 = I/O or validation error, 2 = usage.

#include <cstdio>
#include <cstring>
#include <string>

#include "graph/graph.h"
#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "graph/graph_mmap.h"
#include "support/status.h"

namespace opim {
namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: graph_pack --in=FILE --out=FILE.opimg\n"
      "  [--in-format=edgelist|bin] [--undirected]\n"
      "  [--scheme=wc|const|tri|uniform] [--p=P] [--seed=S] [--verify]\n");
  return 2;
}

template <typename T>
bool SpanEq(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
}

int Run(int argc, char** argv) {
  std::string in, out, in_format = "edgelist", scheme = "wc", v;
  EdgeListOptions opts;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--in=", &in)) {
    } else if (ParseFlag(argv[i], "--out=", &out)) {
    } else if (ParseFlag(argv[i], "--in-format=", &in_format)) {
    } else if (std::strcmp(argv[i], "--undirected") == 0) {
      opts.undirected = true;
    } else if (ParseFlag(argv[i], "--scheme=", &scheme)) {
    } else if (ParseFlag(argv[i], "--p=", &v)) {
      opts.constant_p = std::stod(v);
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      opts.seed = std::stoull(v);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage();
    }
  }
  if (in.empty() || out.empty()) return Usage();

  if (scheme == "wc") {
    opts.scheme = WeightScheme::kWeightedCascade;
  } else if (scheme == "const") {
    opts.scheme = WeightScheme::kConstant;
  } else if (scheme == "tri") {
    opts.scheme = WeightScheme::kTrivalency;
  } else if (scheme == "uniform") {
    opts.scheme = WeightScheme::kUniformRandom;
  } else {
    std::fprintf(stderr, "unknown scheme: %s\n", scheme.c_str());
    return Usage();
  }

  Result<Graph> loaded = [&]() -> Result<Graph> {
    if (in_format == "edgelist") return LoadEdgeList(in, opts);
    if (in_format == "bin") return LoadBinaryGraph(in);
    return Status::InvalidArgument("unknown --in-format: " + in_format);
  }();
  if (!loaded.ok()) {
    std::fprintf(stderr, "graph_pack: %s\n",
                 loaded.status().ToString().c_str());
    return in_format != "edgelist" && in_format != "bin" ? 2 : 1;
  }
  const Graph& g = loaded.ValueOrDie();

  Status saved = SaveOpimg(g, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "graph_pack: %s\n", saved.ToString().c_str());
    return 1;
  }

  if (verify) {
    Result<Graph> reload = LoadOpimg(out);
    if (!reload.ok()) {
      std::fprintf(stderr, "graph_pack: verify failed: %s\n",
                   reload.status().ToString().c_str());
      return 1;
    }
    const Graph& r = reload.ValueOrDie();
    const GraphStorageView a = g.storage_view();
    const GraphStorageView b = r.storage_view();
    if (r.num_nodes() != g.num_nodes() ||
        !SpanEq(a.out_offsets, b.out_offsets) ||
        !SpanEq(a.out_neighbors, b.out_neighbors) ||
        !SpanEq(a.out_probs, b.out_probs) ||
        !SpanEq(a.in_offsets, b.in_offsets) ||
        !SpanEq(a.in_neighbors, b.in_neighbors) ||
        !SpanEq(a.in_probs, b.in_probs) ||
        !SpanEq(a.in_weight_sum, b.in_weight_sum)) {
      std::fprintf(stderr,
                   "graph_pack: verify failed: reloaded graph differs\n");
      return 1;
    }
  }

  std::fprintf(stderr, "graph_pack: wrote %s (n=%u m=%llu)%s\n", out.c_str(),
               g.num_nodes(),
               static_cast<unsigned long long>(g.num_edges()),
               verify ? " verified" : "");
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) { return opim::Run(argc, argv); }
