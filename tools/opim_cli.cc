// opim_cli — command-line front end for the opim library.
//
// Subcommands:
//   gen      --dataset=<name> --scale=<e> --out=<path>         make a
//            synthetic dataset and save it (binary if *.bin, else text)
//   convert  --in=<edgelist> --out=<path> [--undirected] [--wcc]
//            any -> any; --wcc keeps the largest weakly-connected
//            component (the conventional SNAP preprocessing)
//   stats    --graph=<path>                                    Table-2 row
//   run      --graph=<path> --algo=<name> --k=<k> [--eps=0.1]
//            [--model=IC|LT] [--delta=1/n] [--mc=10000]        one IM run
//   evaluate --graph=<path> [--mc=10000] <seed ids...>         MC spread
//            of an explicit seed set, with a 95% CI
//   online   --graph=<path> --k=<k> [--batch=10000]
//            [--rounds=20] [--target=0.9] [--model=IC|LT]      OPIM session
//
// Algorithms for `run`: opim-c+ (default), opim-c0, opim-c', imm, tim,
// ssa-fix, dssa-fix, mc-greedy, degree, degree-discount, pagerank,
// two-hop, irie.

#include <cstdio>
#include <string>

#include "baselines/dssa_fix.h"
#include "baselines/heuristics.h"
#include "baselines/imm.h"
#include "baselines/mc_greedy.h"
#include "baselines/ssa_fix.h"
#include "baselines/tim.h"
#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "graph/transform.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "support/stopwatch.h"

namespace opim::cli {

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Graph> LoadAny(const std::string& path, bool undirected) {
  if (HasSuffix(path, ".bin")) return LoadBinaryGraph(path);
  EdgeListOptions opt;
  opt.undirected = undirected;
  return LoadEdgeList(path, opt);
}

Status SaveAny(const Graph& g, const std::string& path) {
  if (HasSuffix(path, ".bin")) return SaveBinaryGraph(g, path);
  return SaveEdgeList(g, path);
}

DiffusionModel ModelFromFlags(const Flags& flags) {
  return flags.GetString("model", "IC") == "LT"
             ? DiffusionModel::kLinearThreshold
             : DiffusionModel::kIndependentCascade;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int CmdGen(const Flags& flags) {
  const std::string name = flags.GetString("dataset", "pokec-sim");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto g = MakeDataset(name, static_cast<uint32_t>(flags.GetUint("scale", 13)),
                       flags.GetUint("seed", 1));
  if (!g.ok()) return Fail(g.status());
  Status st = SaveAny(g.ValueOrDie(), out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: n=%u m=%llu\n", out.c_str(),
              g.ValueOrDie().num_nodes(),
              static_cast<unsigned long long>(g.ValueOrDie().num_edges()));
  return 0;
}

int CmdConvert(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--in and --out are required"));
  }
  auto g = LoadAny(in, flags.GetBool("undirected", false));
  if (!g.ok()) return Fail(g.status());
  Graph graph = std::move(g).ValueOrDie();
  if (flags.GetBool("wcc", false)) {
    // The conventional preprocessing step for SNAP data: keep only the
    // largest weakly-connected component.
    uint32_t before = graph.num_nodes();
    graph = LargestWeaklyConnectedComponent(graph);
    std::printf("wcc: kept %u of %u nodes\n", graph.num_nodes(), before);
  }
  Status st = SaveAny(graph, out);
  if (!st.ok()) return Fail(st);
  std::printf("converted %s -> %s\n", in.c_str(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto g = LoadAny(flags.GetString("graph", ""),
                   flags.GetBool("undirected", false));
  if (!g.ok()) return Fail(g.status());
  GraphStats s = ComputeStats(g.ValueOrDie());
  std::printf("nodes          %u\n", s.num_nodes);
  std::printf("edges          %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("avg_degree     %.3f\n", s.average_degree);
  std::printf("max_in_degree  %llu\n",
              static_cast<unsigned long long>(s.max_in_degree));
  std::printf("max_out_degree %llu\n",
              static_cast<unsigned long long>(s.max_out_degree));
  std::printf("sources        %u\nsinks          %u\n", s.num_sources,
              s.num_sinks);
  std::printf("max_in_weight  %.6f %s\n", g.ValueOrDie().MaxInWeightSum(),
              g.ValueOrDie().MaxInWeightSum() <= 1.0 + 1e-9
                  ? "(LT-feasible)"
                  : "(NOT LT-feasible)");
  return 0;
}

int CmdRun(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  const DiffusionModel model = ModelFromFlags(flags);
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const double eps = flags.GetDouble("eps", 0.1);
  const double delta = flags.GetDouble("delta", 1.0 / g.num_nodes());
  const uint64_t seed = flags.GetUint("seed", 1);
  const std::string algo = flags.GetString("algo", "opim-c+");

  Stopwatch sw;
  std::vector<NodeId> seeds;
  uint64_t rr_sets = 0;
  if (algo == "opim-c+" || algo == "opim-c0" || algo == "opim-c'") {
    OpimCOptions o;
    o.seed = seed;
    o.bound = algo == "opim-c0"   ? BoundKind::kBasic
              : algo == "opim-c'" ? BoundKind::kLeskovec
                                  : BoundKind::kImproved;
    OpimCResult r = RunOpimC(g, model, k, eps, delta, o);
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
    std::printf("alpha=%.4f iterations=%u\n", r.alpha, r.iterations);
  } else if (algo == "imm") {
    ImResult r = RunImm(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "tim") {
    TimOptions o;
    o.seed = seed;
    ImResult r = RunTim(g, model, k, eps, delta, o);
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "ssa-fix") {
    ImResult r = RunSsaFix(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "dssa-fix") {
    ImResult r = RunDssaFix(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "mc-greedy") {
    seeds = SelectMcGreedy(g, model, k, flags.GetUint("mc-greedy-samples", 1000),
                           seed);
  } else if (algo == "degree") {
    seeds = SelectByDegree(g, k);
  } else if (algo == "degree-discount") {
    seeds = SelectByDegreeDiscount(g, k, flags.GetDouble("dd-p", 0.01));
  } else if (algo == "pagerank") {
    seeds = SelectByPageRank(g, k);
  } else if (algo == "two-hop") {
    seeds = SelectByTwoHop(g, k);
  } else if (algo == "irie") {
    seeds = SelectByIrie(g, k);
  } else {
    return Fail(Status::InvalidArgument("unknown --algo: " + algo));
  }
  const double elapsed = sw.ElapsedSeconds();

  std::printf("algorithm=%s model=%s k=%u eps=%g delta=%g\n", algo.c_str(),
              DiffusionModelName(model), k, eps, delta);
  std::printf("time_seconds=%.3f rr_sets=%llu\n", elapsed,
              static_cast<unsigned long long>(rr_sets));
  std::printf("seeds:");
  for (NodeId v : seeds) std::printf(" %u", v);
  std::printf("\n");

  const uint64_t mc = flags.GetUint("mc", 10000);
  if (mc > 0) {
    SpreadEstimator est(g, model);
    std::printf("expected_spread=%.2f (over %llu Monte-Carlo runs)\n",
                est.Estimate(seeds, mc, seed),
                static_cast<unsigned long long>(mc));
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  const DiffusionModel model = ModelFromFlags(flags);

  // Seeds come as positional node ids.
  std::vector<NodeId> seeds;
  for (const std::string& arg : flags.positional()) {
    char* end = nullptr;
    unsigned long v = std::strtoul(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v >= g.num_nodes()) {
      return Fail(Status::InvalidArgument("bad seed id: " + arg));
    }
    seeds.push_back(static_cast<NodeId>(v));
  }
  if (seeds.empty()) {
    return Fail(Status::InvalidArgument(
        "usage: opim_cli evaluate --graph=<path> <seed ids...>"));
  }

  const uint64_t mc = flags.GetUint("mc", 10000);
  SpreadEstimator est(g, model);
  auto r = est.EstimateWithError(seeds, mc, flags.GetUint("seed", 1));
  std::printf("model=%s seeds=%zu mc=%llu\n", DiffusionModelName(model),
              seeds.size(), static_cast<unsigned long long>(mc));
  std::printf("expected_spread=%.3f ci95=+-%.3f\n", r.mean,
              1.96 * r.stderr_);
  return 0;
}

int CmdOnline(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  const DiffusionModel model = ModelFromFlags(flags);
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const double delta = flags.GetDouble("delta", 1.0 / g.num_nodes());
  const uint64_t batch = flags.GetUint("batch", 10000);
  const uint32_t rounds = static_cast<uint32_t>(flags.GetUint("rounds", 20));
  const double target = flags.GetDouble("target", 0.9);
  const bool sequential = flags.GetBool("sequential", false);

  OnlineMaximizer om(g, model, k, delta, flags.GetUint("seed", 1));
  std::printf("%10s  %8s  %8s  %8s\n", "rr_sets", "OPIM0", "OPIM+", "OPIM'");
  for (uint32_t r = 0; r < rounds; ++r) {
    om.Advance(batch);
    if (sequential) {
      OnlineSnapshot snap = om.QuerySequential(BoundKind::kImproved);
      std::printf("%10llu  %8s  %8.4f  %8s   (sequential, all-rounds "
                  "validity)\n",
                  static_cast<unsigned long long>(om.num_rr_sets()), "-",
                  snap.alpha, "-");
      if (snap.alpha >= target) return 0;
    } else {
      OnlineSnapshotAll snap = om.QueryAll();
      std::printf("%10llu  %8.4f  %8.4f  %8.4f\n",
                  static_cast<unsigned long long>(snap.theta_total),
                  snap.alpha_basic, snap.alpha_improved,
                  snap.alpha_leskovec);
      if (snap.alpha_improved >= target) return 0;
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: opim_cli <gen|convert|stats|run|evaluate|online> [flags]\n"
        "see the header comment of tools/opim_cli.cc for details\n");
    return 2;
  }
  const std::string cmd = argv[1];
  Flags flags(argc - 1, argv + 1);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "online") return CmdOnline(flags);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace opim::cli

int main(int argc, char** argv) { return opim::cli::Main(argc, argv); }
