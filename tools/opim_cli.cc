// opim_cli — command-line front end for the opim library.
//
// Subcommands:
//   gen      --dataset=<name> --scale=<e> --out=<path>         make a
//            synthetic dataset and save it (binary if *.bin, else text)
//   convert  --in=<edgelist> --out=<path> [--undirected] [--wcc]
//            any -> any; --wcc keeps the largest weakly-connected
//            component (the conventional SNAP preprocessing)
//   stats    --graph=<path>                                    Table-2 row
//   run      --graph=<path> --algo=<name> --k=<k> [--eps=0.1]
//            [--model=IC|LT] [--delta=1/n] [--mc=10000]
//            [--threads=1] [--query-ks=5,10,50]
//            [--metrics-json=<path>]
//            [--metrics-csv=<path>]                            one IM run
//   evaluate --graph=<path> [--mc=10000] <seed ids...>         MC spread
//            of an explicit seed set, with a 95% CI
//   online   --graph=<path> --k=<k> [--batch=10000]
//            [--rounds=20] [--target=0.9] [--model=IC|LT]
//            [--threads=0] [--metrics-json=<path>]             OPIM session
//
// Global flags: --log-level=debug|info|warn|error|off (default warn).
//
// Graph paths ending in .bin load/save the binary row format and .opimg
// the memory-mapped binary format (graph/graph_mmap.h; build with
// tools/graph_pack or `convert --out=x.opimg`); anything else is a text
// edge list.
//
// Run guardrails (run with opim-c*, and online; see docs/robustness.md):
//   --deadline-ms=<ms>   wall-clock budget; the run degrades gracefully at
//                        the next safe point and still reports (seeds, α)
//   --max-rr-mb=<mb>     RR-pool memory budget in MiB (fractional ok)
//   --spill-dir=<dir>    (run with opim-c*) out-of-core RR tier: once the
//                        pools cross half the --max-rr-mb budget, cold
//                        compressed chunks spill to an unlinked file in
//                        <dir> and the run continues; seeds and α are
//                        byte-identical to the fully-resident run
//   --view-arena         (run with opim-c*) seal the sampling kernel
//                        state into one madvise-hinted mapping
//   --checkpoint-dir=<d> (run with opim-c*) crash-safe checkpointing:
//                        atomically rewrite <d>/opimc.opimss at the top of
//                        each doubling iteration (write-to-temp + fsync +
//                        rename), and once more when a deadline / memory /
//                        signal guardrail trips
//   --checkpoint-every=N checkpoint every N-th iteration (default 1)
//   --query-ks=<list>    (run with opim-c*) answer additional seed-set
//                        sizes from one run: a comma-separated list of
//                        k' <= k (e.g. --query-ks=5,10,50). Each k' gets
//                        its own (seeds, σ_l, σ_upper, α) — read off the
//                        final iteration's prefix-complete selection
//                        trace, no re-run — printed as `query k=...`
//                        lines and recorded in the report's "queries"
//                        section. Entries must be positive integers
//                        <= --k with no duplicates.
//   --incremental-selection=0
//                        (run with opim-c*) disable the cross-iteration
//                        warm-start (default on); output is bit-identical
//                        either way — the switch exists for A/B timing
//   --resume=<snapshot>  resume an opim-c* run from a .opimss checkpoint;
//                        the snapshot's (k, eps, delta, seed, threads,
//                        bound, model) override the flags, and the graph
//                        must match the snapshot's fingerprint. Resuming a
//                        boundary checkpoint reproduces the uninterrupted
//                        run's seeds and alpha bit-for-bit.
//   SIGINT/SIGTERM       first signal = graceful cancel (same degradation,
//                        plus a final checkpoint when --checkpoint-dir is
//                        set); second signal = immediate _exit(128 + sig)
//
// Exit codes: 0 converged, 1 error, 2 usage, and for guardrail stops
// 3 deadline, 4 memory_budget, 5 cancelled, 6 worker_failure,
// 7 spill_failure. A guardrail exit still prints seeds/alpha and writes
// the full --metrics-json report (stop_reason, deadline_slack_ms,
// peak_rr_bytes, rr_budget_bytes, cancel_latency_ms). A second
// SIGINT/SIGTERM skips all of that and exits 130/143 immediately.
//
// --metrics-json writes a RunReport (schema "opim.run_report.v1"): run
// info, numeric results, per-iteration/round phase timings, and a full
// MetricsSnapshot of the telemetry registry. --metrics-csv writes just the
// iteration rows as CSV. See docs/observability.md.
//
// --trace-json=<path> (run, online) records execution spans for the whole
// command and writes a Chrome-trace/Perfetto file (schema "opim.trace.v1")
// at exit; spans are only captured in OPIM_TELEMETRY builds (other builds
// emit a valid file with zero spans). --progress (run, online) prints a
// once-per-second status line to stderr: elapsed time, iterations, RR
// sets, peak RR footprint, resident-set size, page faults, and deadline
// slack. Both are validated by tools/report_lint. Every report also
// carries the process's peak_rss_bytes and major/minor page-fault
// counters in its results section.
//
// Algorithms for `run`: opim-c+ (default), opim-c0, opim-c', imm, tim,
// ssa-fix, dssa-fix, mc-greedy, degree, degree-discount, pagerank,
// two-hop, irie.

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/dssa_fix.h"
#include "baselines/heuristics.h"
#include "baselines/imm.h"
#include "baselines/mc_greedy.h"
#include "baselines/ssa_fix.h"
#include "baselines/tim.h"
#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "graph/graph_mmap.h"
#include "graph/transform.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rrset/snapshot.h"
#include "support/fault_inject.h"
#include "support/resource_usage.h"
#include "support/run_control.h"
#include "support/signal_guard.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim::cli {

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Graph> LoadAny(const std::string& path, bool undirected) {
  if (HasSuffix(path, ".opimg")) return LoadOpimg(path);
  if (HasSuffix(path, ".bin")) return LoadBinaryGraph(path);
  EdgeListOptions opt;
  opt.undirected = undirected;
  return LoadEdgeList(path, opt);
}

Status SaveAny(const Graph& g, const std::string& path) {
  if (HasSuffix(path, ".opimg")) return SaveOpimg(g, path);
  if (HasSuffix(path, ".bin")) return SaveBinaryGraph(g, path);
  return SaveEdgeList(g, path);
}

DiffusionModel ModelFromFlags(const Flags& flags) {
  return flags.GetString("model", "IC") == "LT"
             ? DiffusionModel::kLinearThreshold
             : DiffusionModel::kIndependentCascade;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Strict --query-ks parse, in graph_io's entry-precise error style:
/// comma-separated seed-set sizes, each all-digits (so "-1", "+2", "3a"
/// and empty all fail), in [1, k], no duplicates. On success `out` holds
/// the sizes sorted ascending.
Status ParseQueryKs(const std::string& spec, uint32_t k,
                    std::vector<uint32_t>* out) {
  out->clear();
  size_t start = 0;
  size_t entry = 0;
  for (;;) {
    const size_t comma = spec.find(',', start);
    const size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string tok = spec.substr(start, end - start);
    ++entry;
    const auto entry_error = [&](const std::string& what) {
      return Status::InvalidArgument("--query-ks: " + what + " at entry " +
                                     std::to_string(entry) + ": '" + tok +
                                     "'");
    };
    if (tok.empty()) return entry_error("empty seed-set size");
    for (char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return entry_error("not an unsigned integer");
      }
    }
    errno = 0;
    char* parse_end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &parse_end, 10);
    if (errno == ERANGE || parse_end != tok.c_str() + tok.size() ||
        v > UINT32_MAX) {
      return entry_error("out of range");
    }
    if (v < 1) return entry_error("seed-set size must be >= 1");
    if (v > k) return entry_error("exceeds --k=" + std::to_string(k));
    if (std::find(out->begin(), out->end(), static_cast<uint32_t>(v)) !=
        out->end()) {
      return entry_error("duplicate seed-set size");
    }
    out->push_back(static_cast<uint32_t>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

/// Arms `control` from the guardrail flags and binds the signal guard's
/// cancel flag, so SIGINT/SIGTERM degrade the run gracefully.
void ArmRunControl(const Flags& flags, const SignalGuard& guard,
                   RunControl* control) {
  if (flags.Has("deadline-ms")) {
    control->SetDeadlineAfterMillis(
        static_cast<int64_t>(flags.GetUint("deadline-ms", 0)));
  }
  const double budget_mb = flags.GetDouble("max-rr-mb", 0.0);
  if (budget_mb > 0.0) {
    control->SetMemoryBudgetBytes(
        static_cast<uint64_t>(budget_mb * 1048576.0));
  }
  control->BindCancelFlag(guard.flag());
}

/// Records the guardrail outcome in the report (AddInfo("stop_reason") +
/// numeric results) and prints the stop reason line scripts grep for.
void ReportGuardrails(const OpimCGuardrails& gr, RunReport* report) {
  std::printf("stop_reason=%s\n", StopReasonName(gr.stop_reason));
  report->AddInfo("stop_reason", StopReasonName(gr.stop_reason));
  report->AddResult("deadline_slack_ms",
                    gr.had_deadline ? gr.deadline_slack_seconds * 1e3 : 0.0);
  report->AddResult("peak_rr_bytes", static_cast<double>(gr.peak_rr_bytes));
  report->AddResult("rr_budget_bytes",
                    static_cast<double>(gr.memory_budget_bytes));
  report->AddResult("cancel_latency_ms", gr.stop_latency_seconds * 1e3);
}

/// Snapshots the telemetry registry into `report` and writes the JSON/CSV
/// outputs requested by --metrics-json / --metrics-csv. Prints the JSON
/// path on success so scripts can pick it up.
Status WriteReportOutputs(RunReport* report, const std::string& json_path,
                          const std::string& csv_path) {
  // Process-level resource accounting rides along in every report: peak
  // resident set plus the page-fault split that distinguishes disk-backed
  // faults (major: cold mmap loads, spill fault-ins) from lazy
  // first-touch mapping faults (minor).
  const ResourceUsage ru = ReadResourceUsage();
  report->AddResult("peak_rss_bytes", static_cast<double>(ru.peak_rss_bytes));
  report->AddResult("major_page_faults",
                    static_cast<double>(ru.major_page_faults));
  report->AddResult("minor_page_faults",
                    static_cast<double>(ru.minor_page_faults));
  report->SetMetrics(MetricsRegistry::Default().Snapshot());
  if (!json_path.empty()) {
    Status st = report->WriteJson(json_path);
    if (!st.ok()) return st;
    std::printf("metrics_json=%s\n", json_path.c_str());
  }
  if (!csv_path.empty()) {
    Status st = report->WriteIterationsCsv(csv_path);
    if (!st.ok()) return st;
    std::printf("metrics_csv=%s\n", csv_path.c_str());
  }
  return Status::OK();
}

/// Scopes one --trace-json recording session: starts it when a path was
/// given, and Finish() stops it and writes the Chrome-trace file (printing
/// the `trace_json=<path>` line scripts grep for).
class TraceSessionScope {
 public:
  explicit TraceSessionScope(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) TraceRecorder::Default().StartSession();
  }
  ~TraceSessionScope() {
    if (!path_.empty()) TraceRecorder::Default().StopSession();
  }

  Status Finish() {
    if (path_.empty()) return Status::OK();
    TraceRecorder& recorder = TraceRecorder::Default();
    recorder.StopSession();
    Status st = recorder.WriteChromeJson(path_);
    if (!st.ok()) return st;
    std::printf("trace_json=%s\n", path_.c_str());
    return Status::OK();
  }

 private:
  const std::string path_;
};

/// Starts the --progress heartbeat when requested; the unique_ptr's
/// destruction (or reset) emits the final line and joins the thread.
std::unique_ptr<ProgressHeartbeat> MaybeStartProgress(const Flags& flags,
                                                      const RunControl* ctl) {
  if (!flags.GetBool("progress", false)) return nullptr;
  return std::make_unique<ProgressHeartbeat>(ctl);
}

int CmdGen(const Flags& flags) {
  const std::string name = flags.GetString("dataset", "pokec-sim");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto g = MakeDataset(name, static_cast<uint32_t>(flags.GetUint("scale", 13)),
                       flags.GetUint("seed", 1));
  if (!g.ok()) return Fail(g.status());
  Status st = SaveAny(g.ValueOrDie(), out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: n=%u m=%llu\n", out.c_str(),
              g.ValueOrDie().num_nodes(),
              static_cast<unsigned long long>(g.ValueOrDie().num_edges()));
  return 0;
}

int CmdConvert(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--in and --out are required"));
  }
  auto g = LoadAny(in, flags.GetBool("undirected", false));
  if (!g.ok()) return Fail(g.status());
  Graph graph = std::move(g).ValueOrDie();
  if (flags.GetBool("wcc", false)) {
    // The conventional preprocessing step for SNAP data: keep only the
    // largest weakly-connected component.
    uint32_t before = graph.num_nodes();
    graph = LargestWeaklyConnectedComponent(graph);
    std::printf("wcc: kept %u of %u nodes\n", graph.num_nodes(), before);
  }
  Status st = SaveAny(graph, out);
  if (!st.ok()) return Fail(st);
  std::printf("converted %s -> %s\n", in.c_str(), out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto g = LoadAny(flags.GetString("graph", ""),
                   flags.GetBool("undirected", false));
  if (!g.ok()) return Fail(g.status());
  GraphStats s = ComputeStats(g.ValueOrDie());
  std::printf("nodes          %u\n", s.num_nodes);
  std::printf("edges          %llu\n",
              static_cast<unsigned long long>(s.num_edges));
  std::printf("avg_degree     %.3f\n", s.average_degree);
  std::printf("max_in_degree  %llu\n",
              static_cast<unsigned long long>(s.max_in_degree));
  std::printf("max_out_degree %llu\n",
              static_cast<unsigned long long>(s.max_out_degree));
  std::printf("sources        %u\nsinks          %u\n", s.num_sources,
              s.num_sinks);
  std::printf("max_in_weight  %.6f %s\n", g.ValueOrDie().MaxInWeightSum(),
              g.ValueOrDie().MaxInWeightSum() <= 1.0 + 1e-9
                  ? "(LT-feasible)"
                  : "(NOT LT-feasible)");
  return 0;
}

int CmdRun(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  DiffusionModel model = ModelFromFlags(flags);
  uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  double eps = flags.GetDouble("eps", 0.1);
  double delta = flags.GetDouble("delta", 1.0 / g.num_nodes());
  uint64_t seed = flags.GetUint("seed", 1);
  std::string algo = flags.GetString("algo", "opim-c+");
  unsigned threads = static_cast<unsigned>(flags.GetUint("threads", 1));

  // --resume: the snapshot's run identity (k, ε, δ, seed, threads,
  // bound, model) is authoritative — the continued run must be the same
  // run, or the certificate it reports would describe a different
  // algorithm. Conflicting flags are overridden; a different graph is a
  // hard error (fingerprint check). The engine re-verifies the same
  // facts with OPIM_CHECKs as a second line of defense.
  std::unique_ptr<RRPoolSnapshot> resume;
  double resume_load_seconds = 0.0;
  const std::string resume_path = flags.GetString("resume", "");
  if (!resume_path.empty()) {
    Stopwatch load_watch;
    Result<RRPoolSnapshot> snap = LoadSnapshot(resume_path);
    if (!snap.ok()) return Fail(snap.status());
    resume = std::make_unique<RRPoolSnapshot>(std::move(snap).ValueOrDie());
    resume_load_seconds = load_watch.ElapsedSeconds();
    const SnapshotRunState& rs = resume->run;
    if (rs.graph_nodes != g.num_nodes() || rs.graph_edges != g.num_edges()) {
      return Fail(Status::InvalidArgument(
          resume_path + ": snapshot graph fingerprint (" +
          std::to_string(rs.graph_nodes) + " nodes, " +
          std::to_string(rs.graph_edges) + " edges) does not match --graph (" +
          std::to_string(g.num_nodes()) + " nodes, " +
          std::to_string(g.num_edges()) + " edges)"));
    }
    if (rs.weights_checksum != 0) {
      return Fail(Status::InvalidArgument(
          resume_path + ": snapshot was written by a weighted run, which "
                        "this command cannot reconstruct"));
    }
    if (rs.model > static_cast<uint32_t>(DiffusionModel::kLinearThreshold) ||
        rs.bound > static_cast<uint32_t>(BoundKind::kLeskovec)) {
      return Fail(Status::InvalidArgument(
          resume_path + ": snapshot declares an unknown model or bound"));
    }
    model = static_cast<DiffusionModel>(rs.model);
    k = rs.k;
    eps = rs.eps;
    delta = rs.delta;
    seed = rs.run_seed;
    threads = rs.num_threads;
    const BoundKind bound = static_cast<BoundKind>(rs.bound);
    algo = bound == BoundKind::kBasic      ? "opim-c0"
           : bound == BoundKind::kLeskovec ? "opim-c'"
                                           : "opim-c+";
  }

  // --query-ks is validated after the resume block so entries are checked
  // against the authoritative k (a snapshot's k overrides the flag).
  const bool is_opimc =
      algo == "opim-c+" || algo == "opim-c0" || algo == "opim-c'";
  std::vector<uint32_t> query_ks;
  if (flags.Has("query-ks")) {
    if (!is_opimc) {
      return Fail(Status::InvalidArgument(
          "--query-ks is only supported with --algo=opim-c+/opim-c0/"
          "opim-c'"));
    }
    Status st = ParseQueryKs(flags.GetString("query-ks", ""), k, &query_ks);
    if (!st.ok()) return Fail(st);
  }

  RunReport report;
  report.AddInfo("command", "run");
  report.AddInfo("algorithm", algo);
  report.AddInfo("model", DiffusionModelName(model));
  report.AddInfo("graph", flags.GetString("graph", ""));
  report.AddResult("nodes", g.num_nodes());
  report.AddResult("edges", static_cast<double>(g.num_edges()));
  report.AddResult("k", k);
  report.AddResult("eps", eps);
  report.AddResult("delta", delta);
  report.AddResult("seed", static_cast<double>(seed));
  report.AddResult("threads_requested", threads);
  report.AddResult("threads_resolved",
                   ThreadPool::ResolveThreadCount(threads));

  // Guardrails apply to the OPIM-C variants (the anytime algorithms); the
  // baselines ignore them. The guard is installed for the whole command so
  // a second SIGINT forces an immediate _exit(128 + sig) — even while the
  // checkpoint-on-shutdown write is in an fsync (see SignalGuard).
  SignalGuard guard;
  RunControl control;
  ArmRunControl(flags, guard, &control);
  StopReason stop_reason = StopReason::kConverged;

  TraceSessionScope trace_scope(flags.GetString("trace-json", ""));
  std::unique_ptr<ProgressHeartbeat> progress =
      MaybeStartProgress(flags, &control);

  Stopwatch sw;
  std::vector<NodeId> seeds;
  uint64_t rr_sets = 0;
  if (is_opimc) {
    OpimCOptions o;
    o.seed = seed;
    o.num_threads = threads;
    o.query_ks = query_ks;
    o.incremental_selection = flags.GetBool("incremental-selection", true);
    o.bound = algo == "opim-c0"   ? BoundKind::kBasic
              : algo == "opim-c'" ? BoundKind::kLeskovec
                                  : BoundKind::kImproved;
    o.control = &control;
    o.spill_dir = flags.GetString("spill-dir", "");
    o.view_arena = flags.GetBool("view-arena", false);
    o.checkpoint_dir = flags.GetString("checkpoint-dir", "");
    o.checkpoint_every_iters =
        static_cast<uint32_t>(flags.GetUint("checkpoint-every", 1));
    o.resume = resume.get();
    OpimCResult r = RunOpimC(g, model, k, eps, delta, o);
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
    stop_reason = r.guardrails.stop_reason;
    std::printf("alpha=%.4f iterations=%u\n", r.alpha, r.iterations);
    // One line and one report row per --query-ks size, answered from the
    // final iteration's prefix-complete selection trace.
    for (const OpimCQueryAnswer& q : r.queries) {
      std::printf("query k=%u alpha=%.4f sigma_lower=%.2f sigma_upper=%.2f"
                  " seeds:",
                  q.k, q.alpha, q.sigma_lower, q.sigma_upper);
      for (NodeId v : q.seeds) std::printf(" %u", v);
      std::printf("\n");
      RunReport::QueryAnswer row;
      row.k = q.k;
      row.alpha = q.alpha;
      row.sigma_lower = q.sigma_lower;
      row.sigma_upper = q.sigma_upper;
      row.seeds.assign(q.seeds.begin(), q.seeds.end());
      report.AddQuery(std::move(row));
    }
    ReportGuardrails(r.guardrails, &report);
    report.AddResult("alpha", r.alpha);
    report.AddResult("iterations", r.iterations);
    report.AddResult("i_max", r.i_max);
    report.AddResult("total_rr_size", static_cast<double>(r.total_rr_size));
    // Storage compression, next to the guardrail bytes: the member pool's
    // group-varint footprint and raw_bytes/compressed_bytes (inline
    // singleton sets make the ratio exceed plain codec savings).
    report.AddResult("compressed_bytes",
                     static_cast<double>(r.rr_compressed_bytes));
    report.AddResult("compression_ratio",
                     r.rr_compressed_bytes > 0
                         ? static_cast<double>(r.rr_raw_member_bytes) /
                               static_cast<double>(r.rr_compressed_bytes)
                         : 0.0);
    if (!o.spill_dir.empty()) {
      report.AddResult("spill_chunks_spilled",
                       static_cast<double>(r.spill_chunks_spilled));
      report.AddResult("spill_chunks_faulted",
                       static_cast<double>(r.spill_chunks_faulted));
      report.AddResult("spilled_bytes",
                       static_cast<double>(r.spilled_bytes));
    }
    if (!o.checkpoint_dir.empty()) {
      report.AddResult("checkpoints_written",
                       static_cast<double>(r.checkpoints_written));
      report.AddResult("checkpoint_bytes_written",
                       static_cast<double>(r.checkpoint_bytes_written));
      report.AddResult("checkpoint_write_ms",
                       r.checkpoint_write_seconds * 1e3);
    }
    if (resume != nullptr) {
      report.AddInfo("resumed_from", resume_path);
      report.AddResult("resumed_from_iteration", r.resumed_from_iteration);
      report.AddResult("resume_load_ms", resume_load_seconds * 1e3);
    }
    for (size_t i = 0; i < r.trace.size(); ++i) {
      const OpimCIteration& it = r.trace[i];
      report.AddIteration()
          .Set("iteration", static_cast<double>(i + 1))
          .Set("theta1", static_cast<double>(it.theta1))
          .Set("sigma_lower", it.sigma_lower)
          .Set("sigma_upper", it.sigma_upper)
          .Set("alpha", it.alpha)
          .Set("generate_seconds", it.generate_seconds)
          .Set("greedy_seconds", it.greedy_seconds)
          .Set("bounds_seconds", it.bounds_seconds)
          .Set("rr_bytes", static_cast<double>(it.rr_bytes))
          .Set("rr_compressed_bytes",
               static_cast<double>(it.rr_compressed_bytes));
    }
  } else if (algo == "imm") {
    ImResult r = RunImm(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "tim") {
    TimOptions o;
    o.seed = seed;
    ImResult r = RunTim(g, model, k, eps, delta, o);
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "ssa-fix") {
    ImResult r = RunSsaFix(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "dssa-fix") {
    ImResult r = RunDssaFix(g, model, k, eps, delta, {seed, 0});
    seeds = std::move(r.seeds);
    rr_sets = r.num_rr_sets;
  } else if (algo == "mc-greedy") {
    seeds = SelectMcGreedy(g, model, k, flags.GetUint("mc-greedy-samples", 1000),
                           seed);
  } else if (algo == "degree") {
    seeds = SelectByDegree(g, k);
  } else if (algo == "degree-discount") {
    seeds = SelectByDegreeDiscount(g, k, flags.GetDouble("dd-p", 0.01));
  } else if (algo == "pagerank") {
    seeds = SelectByPageRank(g, k);
  } else if (algo == "two-hop") {
    seeds = SelectByTwoHop(g, k);
  } else if (algo == "irie") {
    seeds = SelectByIrie(g, k);
  } else {
    return Fail(Status::InvalidArgument("unknown --algo: " + algo));
  }
  const double elapsed = sw.ElapsedSeconds();

  std::printf("algorithm=%s model=%s k=%u eps=%g delta=%g\n", algo.c_str(),
              DiffusionModelName(model), k, eps, delta);
  std::printf("time_seconds=%.3f rr_sets=%llu\n", elapsed,
              static_cast<unsigned long long>(rr_sets));
  std::printf("seeds:");
  for (NodeId v : seeds) std::printf(" %u", v);
  std::printf("\n");
  report.AddResult("time_seconds", elapsed);
  report.AddResult("rr_sets", static_cast<double>(rr_sets));
  report.AddResult("num_seeds", static_cast<double>(seeds.size()));

  const uint64_t mc = flags.GetUint("mc", 10000);
  if (mc > 0) {
    SpreadEstimator est(g, model);
    const double spread = est.Estimate(seeds, mc, seed);
    std::printf("expected_spread=%.2f (over %llu Monte-Carlo runs)\n",
                spread, static_cast<unsigned long long>(mc));
    report.AddResult("expected_spread", spread);
  }
  progress.reset();  // final heartbeat line before the report outputs
  Status trace_st = trace_scope.Finish();
  if (!trace_st.ok()) return Fail(trace_st);
  Status report_st =
      WriteReportOutputs(&report, flags.GetString("metrics-json", ""),
                         flags.GetString("metrics-csv", ""));
  if (!report_st.ok()) return Fail(report_st);
  return ExitCodeForStopReason(stop_reason);
}

int CmdEvaluate(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  const DiffusionModel model = ModelFromFlags(flags);

  // Seeds come as positional node ids.
  std::vector<NodeId> seeds;
  for (const std::string& arg : flags.positional()) {
    char* end = nullptr;
    unsigned long v = std::strtoul(arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v >= g.num_nodes()) {
      return Fail(Status::InvalidArgument("bad seed id: " + arg));
    }
    seeds.push_back(static_cast<NodeId>(v));
  }
  if (seeds.empty()) {
    return Fail(Status::InvalidArgument(
        "usage: opim_cli evaluate --graph=<path> <seed ids...>"));
  }

  const uint64_t mc = flags.GetUint("mc", 10000);
  SpreadEstimator est(g, model);
  auto r = est.EstimateWithError(seeds, mc, flags.GetUint("seed", 1));
  std::printf("model=%s seeds=%zu mc=%llu\n", DiffusionModelName(model),
              seeds.size(), static_cast<unsigned long long>(mc));
  std::printf("expected_spread=%.3f ci95=+-%.3f\n", r.mean,
              1.96 * r.stderr_);
  return 0;
}

int CmdOnline(const Flags& flags) {
  auto graph_or = LoadAny(flags.GetString("graph", ""),
                          flags.GetBool("undirected", false));
  if (!graph_or.ok()) return Fail(graph_or.status());
  const Graph& g = graph_or.ValueOrDie();
  const DiffusionModel model = ModelFromFlags(flags);
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const double delta = flags.GetDouble("delta", 1.0 / g.num_nodes());
  const uint64_t batch = flags.GetUint("batch", 10000);
  const uint32_t rounds = static_cast<uint32_t>(flags.GetUint("rounds", 20));
  const double target = flags.GetDouble("target", 0.9);
  const bool sequential = flags.GetBool("sequential", false);
  const unsigned threads =
      static_cast<unsigned>(flags.GetUint("threads", 0));
  const uint64_t seed = flags.GetUint("seed", 1);

  RunReport report;
  report.AddInfo("command", "online");
  report.AddInfo("model", DiffusionModelName(model));
  report.AddInfo("graph", flags.GetString("graph", ""));
  report.AddResult("nodes", g.num_nodes());
  report.AddResult("edges", static_cast<double>(g.num_edges()));
  report.AddResult("k", k);
  report.AddResult("delta", delta);
  report.AddResult("seed", static_cast<double>(seed));
  report.AddResult("batch", static_cast<double>(batch));
  report.AddResult("threads_requested", threads);

  // --threads=0 keeps the serial single-sampler stream; any other value
  // switches to the deterministic parallel generator (a different but
  // equally reproducible stream, keyed on the thread count).
  OnlineMaximizer om(g, model, k, delta, seed);
  SignalGuard sig_guard;
  RunControl control;
  ArmRunControl(flags, sig_guard, &control);
  om.set_run_control(&control);
  TraceSessionScope trace_scope(flags.GetString("trace-json", ""));
  std::unique_ptr<ProgressHeartbeat> progress =
      MaybeStartProgress(flags, &control);
  auto advance = [&](uint64_t count) {
    if (threads == 0) {
      om.Advance(count);
    } else {
      om.AdvanceParallel(count, threads);
    }
  };
  double last_alpha = 0.0;
  std::printf("%10s  %8s  %8s  %8s\n", "rr_sets", "OPIM0", "OPIM+", "OPIM'");
  for (uint32_t r = 0; r < rounds; ++r) {
    Stopwatch watch;
    advance(batch);
    const double advance_seconds = watch.ElapsedSeconds();
    watch.Restart();
    RunReport::Row& row = report.AddIteration();
    row.Set("round", r + 1);
    bool reached = false;
    if (sequential) {
      OnlineSnapshot snap = om.QuerySequential(BoundKind::kImproved);
      std::printf("%10llu  %8s  %8.4f  %8s   (sequential, all-rounds "
                  "validity)\n",
                  static_cast<unsigned long long>(om.num_rr_sets()), "-",
                  snap.alpha, "-");
      row.Set("rr_sets", static_cast<double>(om.num_rr_sets()))
          .Set("alpha", snap.alpha);
      last_alpha = snap.alpha;
      reached = snap.alpha >= target;
    } else {
      OnlineSnapshotAll snap = om.QueryAll();
      std::printf("%10llu  %8.4f  %8.4f  %8.4f\n",
                  static_cast<unsigned long long>(snap.theta_total),
                  snap.alpha_basic, snap.alpha_improved,
                  snap.alpha_leskovec);
      row.Set("rr_sets", static_cast<double>(snap.theta_total))
          .Set("alpha_basic", snap.alpha_basic)
          .Set("alpha_improved", snap.alpha_improved)
          .Set("alpha_leskovec", snap.alpha_leskovec);
      last_alpha = snap.alpha_improved;
      reached = snap.alpha_improved >= target;
    }
    row.Set("advance_seconds", advance_seconds)
        .Set("query_seconds", watch.ElapsedSeconds());
    if (reached) break;
    // A tripped guardrail ends the session after this round's query: the
    // snapshot just reported is the anytime answer at the pause point.
    if (control.Stopped()) break;
  }
  report.AddResult("rr_sets", static_cast<double>(om.num_rr_sets()));
  report.AddResult("alpha", last_alpha);
  const uint64_t compressed_bytes =
      om.r1().CompressedMemberBytes() + om.r2().CompressedMemberBytes();
  const uint64_t raw_bytes = om.r1().RawMemberBytes() + om.r2().RawMemberBytes();
  report.AddResult("compressed_bytes", static_cast<double>(compressed_bytes));
  report.AddResult("compression_ratio",
                   compressed_bytes > 0 ? static_cast<double>(raw_bytes) /
                                              static_cast<double>(compressed_bytes)
                                        : 0.0);
  const OpimCGuardrails gr = SummarizeGuardrails(control);
  ReportGuardrails(gr, &report);
  progress.reset();  // final heartbeat line before the report outputs
  Status trace_st = trace_scope.Finish();
  if (!trace_st.ok()) return Fail(trace_st);
  Status report_st = WriteReportOutputs(
      &report, flags.GetString("metrics-json", ""),
      flags.GetString("metrics-csv", ""));
  if (!report_st.ok()) return Fail(report_st);
  return ExitCodeForStopReason(gr.stop_reason);
}

int Main(int argc, char** argv) {
#if OPIM_FAULT_INJECT_ENABLED
  // Test builds only: OPIM_FAULT_INJECT="site=hit,..." arms deterministic
  // fault sites (support/fault_inject.h) for the whole invocation.
  fault::ArmFromEnv();
#endif
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: opim_cli <gen|convert|stats|run|evaluate|online> [flags]\n"
        "see the header comment of tools/opim_cli.cc for details\n");
    return 2;
  }
  const std::string cmd = argv[1];
  Flags flags(argc - 1, argv + 1);
  const std::string log_level = flags.GetString("log-level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      return Fail(Status::InvalidArgument("bad --log-level: " + log_level));
    }
    SetLogLevel(level);
  }
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "online") return CmdOnline(flags);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace opim::cli

int main(int argc, char** argv) { return opim::cli::Main(argc, argv); }
