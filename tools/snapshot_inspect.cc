// snapshot_inspect: validate and dump a .opimss checkpoint container
// (rrset/snapshot.h), for CI gating and post-mortem debugging.
//
//   snapshot_inspect <snapshot.opimss>
//
// The file is loaded through the strict LoadSnapshot path — the same
// checksum, length, and pool-structure validation the --resume flow
// uses — so exit 0 here means the CLI would accept the file. On
// success the raw header words, the run-state record, and a per-pool
// summary (sets, chunks, members, compressed bytes) are printed, one
// "key=value" per line. On rejection the loader's Status (which names
// the defect) is printed to stderr.
//
// Exit codes: 0 valid, 1 invalid or unreadable, 2 usage error.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rrset/rr_collection.h"
#include "rrset/snapshot.h"
#include "support/status.h"

namespace {

// Best-effort raw peek at the fixed header words, printed before strict
// validation so a corrupt file's header is still visible in the output.
void DumpRawHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> head(opim::kOpimssHeaderBytes, 0);
  if (!in.read(head.data(), static_cast<std::streamsize>(head.size()))) {
    std::printf("header=<shorter than %zu bytes>\n", opim::kOpimssHeaderBytes);
    return;
  }
  char magic[9] = {};
  std::memcpy(magic, head.data(), 8);
  for (char& c : magic) {
    if (c != '\0' && (c < 0x20 || c > 0x7e)) c = '.';
  }
  uint32_t version = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, head.data() + opim::kOpimssVersionOffset,
              sizeof(version));
  std::memcpy(&payload_bytes, head.data() + opim::kOpimssPayloadBytesOffset,
              sizeof(payload_bytes));
  std::memcpy(&checksum, head.data() + opim::kOpimssChecksumOffset,
              sizeof(checksum));
  std::printf("magic=%s\n", magic);
  std::printf("version=%" PRIu32 "\n", version);
  std::printf("payload_bytes=%" PRIu64 "\n", payload_bytes);
  std::printf("payload_checksum=0x%016" PRIx64 "\n", checksum);
}

void DumpPool(const char* name, const opim::RRCollection& pool) {
  std::printf("%s.num_sets=%" PRIu32 "\n", name, pool.num_sets());
  std::printf("%s.num_chunks=%" PRIu32 "\n", name, pool.num_pool_chunks());
  std::printf("%s.total_members=%" PRIu64 "\n", name, pool.total_size());
  std::printf("%s.compressed_bytes=%" PRIu64 "\n", name,
              pool.CompressedMemberBytes());
  std::printf("%s.retains_costs=%d\n", name,
              pool.retains_set_costs() ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || argv[1][0] == '\0' ||
      std::strncmp(argv[1], "--help", 6) == 0) {
    std::fprintf(stderr, "usage: snapshot_inspect <snapshot.opimss>\n");
    return 2;
  }
  const std::string path = argv[1];
  DumpRawHeader(path);

  opim::Result<opim::RRPoolSnapshot> snap = opim::LoadSnapshot(path);
  if (!snap.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 snap.status().ToString().c_str());
    return 1;
  }
  const opim::RRPoolSnapshot& s = snap.ValueOrDie();
  const opim::SnapshotRunState& rs = s.run;
  std::printf("run.seed=%" PRIu64 "\n", rs.run_seed);
  std::printf("run.batch_counter=%" PRIu64 "\n", rs.batch_counter);
  std::printf("run.next_iteration=%" PRIu32 "\n", rs.next_iteration);
  std::printf("run.clean_boundary=%" PRIu32 "\n", rs.clean_boundary);
  std::printf("run.k=%" PRIu32 "\n", rs.k);
  std::printf("run.eps=%g\n", rs.eps);
  std::printf("run.delta=%g\n", rs.delta);
  std::printf("run.num_threads=%" PRIu32 "\n", rs.num_threads);
  std::printf("run.bound=%" PRIu32 "\n", rs.bound);
  std::printf("run.model=%" PRIu32 "\n", rs.model);
  std::printf("run.graph_nodes=%" PRIu32 "\n", rs.graph_nodes);
  std::printf("run.graph_edges=%" PRIu64 "\n", rs.graph_edges);
  std::printf("run.weights_checksum=0x%016" PRIx64 "\n", rs.weights_checksum);
  std::printf("run.peak_rr_bytes=%" PRIu64 "\n", rs.peak_rr_bytes);
  DumpPool("r1", s.r1);
  DumpPool("r2", s.r2);
  std::printf("snapshot_inspect: ok\n");
  return 0;
}
