// report_lint: machine check that opim's emitted telemetry artifacts are
// well-formed, for CI gating.
//
//   report_lint --metrics-json=report.json --trace-json=trace.json
//
// Either flag may be given alone; at least one is required. Each file is
// parsed with the checked JSON reader and validated against its schema
// (obs/report_lint.h): version tags, section shapes, and — for traces —
// per-thread timestamp monotonicity, non-negative durations, and span
// nesting. Exit code 0 when every given file is clean, 1 when any
// violation or read error was found, 2 on usage errors. Violations are
// printed one per line as "<path>: <violation>".

#include <cstdio>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "obs/json_reader.h"
#include "obs/report_lint.h"

namespace {

int LintFile(const std::string& path,
             std::vector<std::string> (*lint)(const opim::JsonValue&)) {
  opim::Result<opim::JsonValue> doc = opim::ParseJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> violations = lint(doc.ValueOrDie());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), v.c_str());
  }
  return violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const std::string metrics = flags.GetString("metrics-json", "");
  const std::string trace = flags.GetString("trace-json", "");
  if (metrics.empty() && trace.empty()) {
    std::fprintf(stderr,
                 "usage: report_lint [--metrics-json=<path>] "
                 "[--trace-json=<path>]\n");
    return 2;
  }
  int rc = 0;
  if (!metrics.empty()) rc |= LintFile(metrics, &opim::LintRunReportJson);
  if (!trace.empty()) rc |= LintFile(trace, &opim::LintTraceJson);
  if (rc == 0) std::fprintf(stdout, "report_lint: ok\n");
  return rc;
}
