// Figure 3 — OPIM approximation guarantee vs number of RR sets on the
// twitter-sim dataset under the LT model, for k in {1, 10, 100, 1000}.
//
//   ./build/bench/bench_fig3_opim_lt_k [--full] [--scale=13] [--reps=2]

#include "opim_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunKSweepPanels(
      argc, argv, opim::DiffusionModel::kLinearThreshold, "Figure 3");
}
