// Perf baseline for RR-set *generation*: the sampling kernel itself (a
// serial SampleInto loop, no collection) and the end-to-end
// ParallelGenerate path (sample + ingest), for both diffusion models under
// weighted-cascade weights at 1 and N threads. Emits one JSON object
// (interleaved-median kernel timings, min-of-R end-to-end timings) so
// scripts/run_perf_baseline.sh can track before/after numbers
// (BENCH_generate.json).
//
// Two end-to-end configurations:
//   *_generate_1t — cold path: per-call SamplingView build + temporary
//                   pool, the historical headline (comparable across all
//                   committed baseline labels).
//   *_generate_nt — engine path at `threads_n` threads: run-owned pool
//                   and cached SamplingView, i.e. exactly what RunOpimC
//                   pays per doubling (view and pool amortize across the
//                   run). Falls back to the 1t number when threads_n == 1.
// Each end-to-end run also reports an ingest-phase breakdown
// (ingest_breakdown_us) assembled from telemetry histogram deltas:
// sample+fused sort/compress in the workers (opim.rrset.shard_us),
// ingestion assembly (opim.rrset.ingest_us) and the index merge/rebuild
// inside it. Zeros in OPIM_TELEMETRY=OFF builds.
//
//   ./build/bench/bench_generate [--smoke] [--n=N] [--theta=T] [--reps=R]
//       [--threads=T] [--label=NAME] [--out=FILE]
//
// The kernel timings are the ones the ISSUE acceptance criteria compare:
// `ic_kernel_1t` / `lt_kernel_1t` are pure per-sample cost (RNG draws,
// threshold compares, walk steps) on the n=100k weighted-cascade config.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "support/random.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim {
namespace {

struct Config {
  uint32_t n = 100000;
  uint32_t edges_per_node = 10;
  uint64_t theta = 200000;
  int reps = 5;
  unsigned threads = 0;  // 0 = hardware default
  std::string label = "run";
  std::string out;  // empty = stdout only
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.n = 2000;
      cfg.edges_per_node = 5;
      cfg.theta = 5000;
      cfg.reps = 2;
    } else if (ParseFlag(argv[i], "--n=", &v)) {
      cfg.n = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--theta=", &v)) {
      cfg.theta = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      cfg.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--threads=", &v)) {
      cfg.threads = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--label=", &v)) {
      cfg.label = v;
    } else if (ParseFlag(argv[i], "--out=", &v)) {
      cfg.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Times `fn` `reps` times and returns the MINIMUM wall time in us. Used
/// for the end-to-end engine timings: on shared/virtualized hosts the
/// interference distribution is one-sided (runs only ever get slower), so
/// the minimum is the stable estimator of the code's true cost — medians
/// of small R swing with whatever the neighbors were doing that minute.
template <typename Fn>
double TimeMinUs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double s = watch.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best * 1e6;
}

/// Sum of the named histogram in a snapshot (0 when absent, e.g. in
/// OPIM_TELEMETRY=OFF builds).
double HistSum(const MetricsSnapshot& s, const char* name) {
  const HistogramSample* h = s.FindHistogram(name);
  return h == nullptr ? 0.0 : static_cast<double>(h->sum);
}

/// Per-rep average of each generation stage between two registry
/// snapshots: sampling + fused sort/compress inside the workers, total
/// ingestion (assembly + index), and the index merge/rebuild alone.
struct StageBreakdown {
  double sample_sort_compress_us = 0.0;
  double ingest_us = 0.0;
  double index_us = 0.0;
};

StageBreakdown BreakdownBetween(const MetricsSnapshot& before,
                                const MetricsSnapshot& after, int reps) {
  StageBreakdown b;
  const double r = static_cast<double>(reps);
  b.sample_sort_compress_us =
      (HistSum(after, "opim.rrset.shard_us") -
       HistSum(before, "opim.rrset.shard_us")) / r;
  b.ingest_us = (HistSum(after, "opim.rrset.ingest_us") -
                 HistSum(before, "opim.rrset.ingest_us")) / r;
  b.index_us = (HistSum(after, "opim.rrset.index_merge_us") -
                HistSum(before, "opim.rrset.index_merge_us") +
                HistSum(after, "opim.rrset.index_rebuild_us") -
                HistSum(before, "opim.rrset.index_rebuild_us")) / r;
  return b;
}

/// Times `ref` and `fn` interleaved rep by rep. Returns {median ref us,
/// median fn us, median per-rep ref/fn ratio}. Interleaving keeps every
/// ratio inside one tight machine window, so the speedup survives the
/// host-speed drift that makes two separate runs on shared/virtualized
/// hardware differ by 1.5x for reasons unrelated to the code.
template <typename RefFn, typename Fn>
std::array<double, 3> TimePairedMedianUs(int reps, RefFn&& ref, Fn&& fn) {
  std::vector<double> rs, fs, ratios;
  for (int r = 0; r < reps; ++r) {
    Stopwatch wr;
    ref();
    rs.push_back(wr.ElapsedSeconds());
    Stopwatch wf;
    fn();
    fs.push_back(wf.ElapsedSeconds());
    ratios.push_back(rs.back() / fs.back());
  }
  std::sort(rs.begin(), rs.end());
  std::sort(fs.begin(), fs.end());
  std::sort(ratios.begin(), ratios.end());
  const size_t mid = rs.size() / 2;
  return {rs[mid] * 1e6, fs[mid] * 1e6, ratios[mid]};
}

/// Faithful port of the pre-rework IC kernel: per-edge
/// `rng.Bernoulli(Graph::InProbs()[i])` double compares with a
/// visited-check-first edge loop and a separate BFS queue. Kept in the
/// benchmark so every run reports an in-process, interleaved speedup of
/// the SamplingView kernel over it.
struct ReferenceIcSampler {
  const Graph& g;
  uint32_t epoch = 0;
  std::vector<uint32_t> visited;
  std::vector<NodeId> queue;

  explicit ReferenceIcSampler(const Graph& graph)
      : g(graph), visited(graph.num_nodes(), 0) {}

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) {
    out->clear();
    ++epoch;
    NodeId root = rng.UniformBelow(g.num_nodes());
    visited[root] = epoch;
    out->push_back(root);
    queue.clear();
    queue.push_back(root);
    uint64_t edges_examined = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      auto in_nbrs = g.InNeighbors(u);
      auto in_probs = g.InProbs(u);
      edges_examined += in_nbrs.size();
      for (size_t i = 0; i < in_nbrs.size(); ++i) {
        NodeId w = in_nbrs[i];
        if (visited[w] == epoch) continue;
        if (!rng.Bernoulli(in_probs[i])) continue;
        visited[w] = epoch;
        out->push_back(w);
        queue.push_back(w);
      }
    }
    return edges_examined;
  }
};

/// Faithful port of the pre-rework LT kernel: per-node AliasSampler
/// objects and a double-precision stop draw per step.
struct ReferenceLtSampler {
  const Graph& g;
  uint32_t epoch = 0;
  std::vector<uint32_t> visited;
  std::vector<AliasSampler> in_alias;

  explicit ReferenceLtSampler(const Graph& graph)
      : g(graph), visited(graph.num_nodes(), 0), in_alias(graph.num_nodes()) {
    std::vector<double> weights;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto probs = g.InProbs(v);
      weights.assign(probs.begin(), probs.end());
      in_alias[v].Build(weights);
    }
  }

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) {
    out->clear();
    ++epoch;
    NodeId u = rng.UniformBelow(g.num_nodes());
    uint64_t edges_examined = 0;
    for (;;) {
      if (visited[u] == epoch) break;
      visited[u] = epoch;
      out->push_back(u);
      edges_examined += g.InDegree(u);
      double stay = g.InWeightSum(u);
      if (stay <= 0.0 || in_alias[u].empty()) break;
      if (rng.UniformDouble() >= stay) break;
      uint32_t pick = in_alias[u].Sample(rng);
      u = g.InNeighbors(u)[pick];
    }
    return edges_examined;
  }
};

int Run(const Config& cfg) {
  const unsigned nt = ThreadPool::ResolveThreadCount(cfg.threads);
  std::fprintf(stderr,
               "bench_generate: n=%u theta=%llu reps=%d threads=%u label=%s\n",
               cfg.n, static_cast<unsigned long long>(cfg.theta), cfg.reps,
               nt, cfg.label.c_str());

  // Weighted-cascade weights: the paper's experimental setting (§8.1).
  Graph g = GenerateBarabasiAlbert(cfg.n, cfg.edges_per_node);

  JsonWriter w;
  w.BeginObject();
  w.Key("label").Value(cfg.label);
  w.Key("config").BeginObject();
  w.Key("n").Value(static_cast<uint64_t>(cfg.n));
  w.Key("edges_per_node").Value(static_cast<uint64_t>(cfg.edges_per_node));
  w.Key("theta").Value(cfg.theta);
  w.Key("reps").Value(static_cast<int64_t>(cfg.reps));
  w.Key("threads_n").Value(static_cast<uint64_t>(nt));
  w.EndObject();

  uint64_t sink = 0;
  std::vector<std::pair<std::string, double>> timings;
  std::vector<std::pair<std::string, double>> speedups;
  std::vector<std::pair<std::string, StageBreakdown>> breakdowns;
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    const char* tag = DiffusionModelName(model);

    // Kernel: serial SampleInto loop, sampler constructed outside the
    // timed region (preprocessing is amortized across doublings in the
    // engine), no collection involved. The pre-rework reference kernel is
    // timed interleaved with it, rep by rep, and the median per-rep ratio
    // is reported as the drift-immune kernel speedup.
    // Both kernels are held by concrete type: the reference samplers are
    // non-virtual, so the measured kernel must not pay a vtable dispatch
    // the reference does not.
    const bool is_ic = model == DiffusionModel::kIndependentCascade;
    std::optional<IcRRSampler> ic_sampler;
    std::optional<LtRRSampler> lt_sampler;
    std::optional<ReferenceIcSampler> ref_ic;
    std::optional<ReferenceLtSampler> ref_lt;
    if (is_ic) {
      ic_sampler.emplace(g);
      ref_ic.emplace(g);
    } else {
      lt_sampler.emplace(g);
      ref_lt.emplace(g);
    }
    const auto [ref_us, kernel_us, kernel_speedup] = TimePairedMedianUs(
        cfg.reps,
        [&] {
          Rng rng(101);
          std::vector<NodeId> scratch;
          for (uint64_t i = 0; i < cfg.theta; ++i) {
            sink += is_ic ? ref_ic->SampleInto(rng, &scratch)
                          : ref_lt->SampleInto(rng, &scratch);
            sink += scratch.size();
          }
        },
        [&] {
          Rng rng(101);
          std::vector<NodeId> scratch;
          for (uint64_t i = 0; i < cfg.theta; ++i) {
            sink += is_ic ? ic_sampler->SampleInto(rng, &scratch)
                          : lt_sampler->SampleInto(rng, &scratch);
            sink += scratch.size();
          }
        });
    timings.emplace_back(std::string(tag) + "_kernel_1t", kernel_us);
    timings.emplace_back(std::string(tag) + "_kernel_1t_ref", ref_us);
    speedups.emplace_back(std::string(tag) + "_kernel_1t", kernel_speedup);

    // Cold end-to-end path at 1 thread: per-call SamplingView build +
    // temporary pool + sampling + ingestion + index build. The historical
    // headline, comparable across every committed baseline label.
    MetricsSnapshot snap0 = MetricsRegistry::Default().Snapshot();
    const double gen1_us = TimeMinUs(cfg.reps, [&] {
      RRCollection rr(cfg.n);
      ParallelGenerate(g, model, &rr, cfg.theta, /*seed=*/11,
                       /*num_threads=*/1);
      sink += rr.total_size();
    });
    timings.emplace_back(std::string(tag) + "_generate_1t", gen1_us);
    MetricsSnapshot snap1 = MetricsRegistry::Default().Snapshot();
    breakdowns.emplace_back(std::string(tag) + "_1t",
                            BreakdownBetween(snap0, snap1, cfg.reps));

    // Engine end-to-end path at `nt` threads: run-owned pool and cached
    // SamplingView (both built outside the timed region), matching what
    // RunOpimC pays per doubling once the run is set up. The view build
    // it amortizes is reported separately below.
    Stopwatch view_watch;
    const SamplingView cached_view(g, SamplingViewPartsFor(model));
    timings.emplace_back(std::string(tag) + "_view_build",
                         view_watch.ElapsedSeconds() * 1e6);
    double genN_us = gen1_us;
    StageBreakdown bn = breakdowns.back().second;
    if (nt > 1) {
      ThreadPool pool(nt);
      genN_us = TimeMinUs(cfg.reps, [&] {
        RRCollection rr(cfg.n);
        ParallelGenerate(g, model, &rr, cfg.theta, /*seed=*/11,
                         /*num_threads=*/nt, {}, &pool, &cached_view);
        sink += rr.total_size();
      });
      bn = BreakdownBetween(snap1, MetricsRegistry::Default().Snapshot(),
                            cfg.reps);
    }
    timings.emplace_back(std::string(tag) + "_generate_nt", genN_us);
    breakdowns.emplace_back(std::string(tag) + "_nt", bn);

    std::fprintf(stderr,
                 "bench_generate: %s kernel_1t=%.0fus (ref=%.0fus, "
                 "speedup=%.2fx) generate_1t=%.0fus generate_%ut=%.0fus "
                 "(sample+compress=%.0fus ingest=%.0fus index=%.0fus)\n",
                 tag, kernel_us, ref_us, kernel_speedup, gen1_us, nt,
                 genN_us, bn.sample_sort_compress_us, bn.ingest_us,
                 bn.index_us);
  }

  w.Key("timings_us").BeginObject();
  for (const auto& [key, us] : timings) w.Key(key).Value(us);
  w.EndObject();
  // Median of per-rep interleaved (reference kernel)/(view kernel) ratios:
  // the machine-drift-immune speedup numbers.
  w.Key("kernel_speedup_vs_ref").BeginObject();
  for (const auto& [key, ratio] : speedups) w.Key(key).Value(ratio);
  w.EndObject();
  // Per-rep stage timings of each end-to-end configuration, from
  // telemetry histogram deltas (all zeros when OPIM_TELEMETRY=OFF):
  // sample_sort_compress_us is the in-worker shard loop (sampling with
  // the fused sort + group-varint encode), ingest_us the ingestion
  // (assembly + index), index_us the index merge/rebuild inside it.
  w.Key("ingest_breakdown_us").BeginObject();
  for (const auto& [key, b] : breakdowns) {
    w.Key(key).BeginObject();
    w.Key("sample_sort_compress").Value(b.sample_sort_compress_us);
    w.Key("ingest").Value(b.ingest_us);
    w.Key("index").Value(b.index_us);
    w.EndObject();
  }
  w.EndObject();
  w.Key("throughput_sets_per_s").BeginObject();
  for (const auto& [key, us] : timings) {
    if (key.ends_with("_view_build")) continue;  // one-shot, not per-set
    w.Key(key).Value(static_cast<double>(cfg.theta) * 1e6 / us);
  }
  w.EndObject();
  w.Key("checksum").Value(sink);
  w.EndObject();

  std::printf("%s\n", w.str().c_str());
  if (!cfg.out.empty()) {
    std::FILE* f = std::fopen(cfg.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) {
  return opim::Run(opim::ParseArgs(argc, argv));
}
