// Figure 6 — conventional influence maximization with (1-1/e-ε)-
// approximation on twitter-sim under the LT model: (a) expected spread and
// (b) running time, for ε from 0.1 down to 0.01.
//
//   ./build/bench/bench_fig6_im_lt [--full] [--scale=13] [--reps=2]
//                                  [--eps=0.1] [--cap=2000000]

#include "im_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunImPanels(
      argc, argv, opim::DiffusionModel::kLinearThreshold, "Figure 6");
}
