// Figure 2 — OPIM approximation guarantee vs number of RR sets on the
// four datasets under the LT model (k = 50). Seven algorithms: Borgs,
// OPIM0/OPIM+/OPIM', and the OPIM-adoptions of IMM / SSA-Fix / D-SSA-Fix.
//
//   ./build/bench/bench_fig2_opim_lt [--full] [--scale=13] [--reps=2]
//                                    [--checkpoints=9] [--k=50]

#include "opim_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunDatasetPanels(
      argc, argv, opim::DiffusionModel::kLinearThreshold, "Figure 2");
}
