// Perf baseline for graph *loading*: text edge-list parsing vs the
// memory-mapped `.opimg` container (see graph/graph_mmap.h), plus an
// out-of-core spill demonstration. Emits one JSON object so
// scripts/run_perf_baseline.sh can track before/after numbers
// (BENCH_load.json).
//
// Timed configurations (min over reps, same page-cache state for all —
// this measures the CPU cost of getting a usable Graph, which is what
// the .opimg format removes):
//   text_parse_load  — LoadEdgeList on the equivalent "u v p" text file:
//                      the historical startup path every run used to pay.
//   opimg_mmap_cold  — LoadOpimg with full validation (header checks,
//                      whole-payload checksum scan, structure scan): the
//                      default first-load-of-a-file path.
//   opimg_mmap_warm  — LoadOpimg with both scans off: pure mmap + header
//                      parse, the repeat-load path for a file already
//                      validated once (O(1) in the graph size).
//   opimg_heap_load  — LoadOpimg --force-heap with full validation: what
//                      platforms without usable mmap pay.
// Derived: load_speedup = text_parse_load / opimg_mmap_cold, the
// headline "pay the parse once" ratio.
//
// The spill section runs a budgeted OPIM-C configuration whose memory
// budget sits at its fully-resident peak footprint, with the spill tier
// armed: it reports the stop reason (must be "converged"), chunks
// spilled, and bytes moved to disk — the out-of-core tier's end-to-end
// smoke, next to the loading numbers it shares this PR with.
//
//   ./build/bench/bench_load [--smoke] [--n=N] [--reps=R]
//       [--label=NAME] [--out=FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "core/opim_c.h"
#include "gen/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_mmap.h"
#include "obs/json.h"
#include "support/run_control.h"
#include "support/stopwatch.h"

namespace opim {
namespace {

struct Config {
  uint32_t n = 200000;
  uint32_t edges_per_node = 10;
  int reps = 5;
  std::string label = "run";
  std::string out;  // empty = stdout only
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.n = 20000;
      cfg.edges_per_node = 8;
      cfg.reps = 3;
    } else if (ParseFlag(argv[i], "--n=", &v)) {
      cfg.n = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      cfg.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--label=", &v)) {
      cfg.label = v;
    } else if (ParseFlag(argv[i], "--out=", &v)) {
      cfg.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Minimum wall time in us over `reps` runs (same estimator rationale as
/// bench_generate: interference on shared hosts is one-sided).
template <typename Fn>
double TimeMinUs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double s = watch.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best * 1e6;
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<uint64_t>(size) : 0;
}

int Run(const Config& cfg) {
  std::fprintf(stderr, "bench_load: n=%u epn=%u reps=%d label=%s\n", cfg.n,
               cfg.edges_per_node, cfg.reps, cfg.label.c_str());

  Graph g = GenerateBarabasiAlbert(cfg.n, cfg.edges_per_node);
  const std::string stem =
      "/tmp/bench_load_" + std::to_string(::getpid());
  const std::string text_path = stem + ".txt";
  const std::string opimg_path = stem + ".opimg";
  if (!SaveEdgeList(g, text_path).ok() || !SaveOpimg(g, opimg_path).ok()) {
    std::fprintf(stderr, "bench_load: cannot write %s\n", stem.c_str());
    return 1;
  }

  uint64_t sink = 0;
  auto consume = [&sink](const Result<Graph>& r) {
    if (!r.ok()) {
      std::fprintf(stderr, "bench_load: load failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    sink += r.ValueOrDie().num_edges() + r.ValueOrDie().num_nodes();
  };

  std::vector<std::pair<std::string, double>> timings;
  timings.emplace_back("text_parse_load", TimeMinUs(cfg.reps, [&] {
                         consume(LoadEdgeList(text_path));
                       }));
  timings.emplace_back("opimg_mmap_cold", TimeMinUs(cfg.reps, [&] {
                         consume(LoadOpimg(opimg_path));
                       }));
  OpimgLoadOptions trusting;
  trusting.verify_checksum = false;
  trusting.validate_structure = false;
  timings.emplace_back("opimg_mmap_warm", TimeMinUs(cfg.reps, [&] {
                         consume(LoadOpimg(opimg_path, trusting));
                       }));
  OpimgLoadOptions heap;
  heap.force_heap = true;
  timings.emplace_back("opimg_heap_load", TimeMinUs(cfg.reps, [&] {
                         consume(LoadOpimg(opimg_path, heap));
                       }));
  const double text_us = timings[0].second;
  const double cold_us = timings[1].second;
  const double warm_us = timings[2].second;

  // Out-of-core smoke: a serial budgeted run at its fully-resident peak
  // footprint must spill and still converge (the spill differential test
  // pins bit-identical outputs; this reports the scale of the movement).
  GenOptions dense;
  dense.scheme = WeightScheme::kConstant;
  dense.constant_p = 0.25;
  dense.seed = 9;
  const Graph spill_graph = GenerateBarabasiAlbert(1500, 4, false, dense);
  OpimCOptions oc;
  oc.seed = 42;
  oc.num_threads = 1;
  const OpimCResult resident = RunOpimC(
      spill_graph, DiffusionModel::kIndependentCascade, 8, 0.25, 0.05, oc);
  uint64_t peak = 0;
  for (const OpimCIteration& it : resident.trace) {
    peak = std::max(peak, it.rr_bytes);
  }
  RunControl control;
  control.SetMemoryBudgetBytes(peak);
  oc.control = &control;
  oc.spill_dir = "/tmp";
  const OpimCResult spilled = RunOpimC(
      spill_graph, DiffusionModel::kIndependentCascade, 8, 0.25, 0.05, oc);

  JsonWriter w;
  w.BeginObject();
  w.Key("label").Value(cfg.label);
  w.Key("config").BeginObject();
  w.Key("n").Value(static_cast<uint64_t>(cfg.n));
  w.Key("edges_per_node").Value(static_cast<uint64_t>(cfg.edges_per_node));
  w.Key("reps").Value(static_cast<int64_t>(cfg.reps));
  w.Key("text_bytes").Value(FileBytes(text_path));
  w.Key("opimg_bytes").Value(FileBytes(opimg_path));
  w.EndObject();
  w.Key("timings_us").BeginObject();
  for (const auto& [key, us] : timings) w.Key(key).Value(us);
  w.EndObject();
  w.Key("load_speedup").BeginObject();
  w.Key("opimg_mmap_cold").Value(text_us / cold_us);
  w.Key("opimg_mmap_warm").Value(text_us / warm_us);
  w.EndObject();
  w.Key("spill").BeginObject();
  w.Key("stop_reason")
      .Value(StopReasonName(spilled.guardrails.stop_reason));
  w.Key("memory_budget_bytes").Value(peak);
  w.Key("chunks_spilled").Value(spilled.spill_chunks_spilled);
  w.Key("chunks_faulted").Value(spilled.spill_chunks_faulted);
  w.Key("spilled_bytes").Value(spilled.spilled_bytes);
  w.EndObject();
  w.Key("checksum").Value(sink);
  w.EndObject();

  std::fprintf(stderr,
               "bench_load: text=%.0fus opimg_cold=%.0fus (%.1fx) "
               "opimg_warm=%.0fus (%.1fx) heap=%.0fus spill=%s/%llu "
               "chunks\n",
               text_us, cold_us, text_us / cold_us, warm_us,
               text_us / warm_us, timings[3].second,
               StopReasonName(spilled.guardrails.stop_reason),
               static_cast<unsigned long long>(spilled.spill_chunks_spilled));

  std::printf("%s\n", w.str().c_str());
  if (!cfg.out.empty()) {
    std::FILE* f = std::fopen(cfg.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }
  std::remove(text_path.c_str());
  std::remove(opimg_path.c_str());
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) {
  return opim::Run(opim::ParseArgs(argc, argv));
}
