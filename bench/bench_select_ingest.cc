// Perf baseline for the RR-set engine hot paths: batch ingestion into an
// RRCollection, greedy / CELF seed selection (with and without the §5
// trace), and bound assembly. Emits one JSON object with median-of-R
// timings so scripts/run_perf_baseline.sh can track before/after numbers
// (BENCH_select_ingest.json).
//
//   ./build/bench/bench_select_ingest [--smoke] [--n=N] [--theta=T]
//       [--k=K] [--reps=R] [--label=NAME] [--out=FILE]
//
// Sampling is excluded from the ingest timing: RR sets are materialized
// once up front and replayed into a fresh collection per rep, so the
// number isolates storage + inverted-index build cost exactly as
// ParallelGenerate pays it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bounds/bounds.h"
#include "gen/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/random.h"
#include "support/stopwatch.h"

namespace opim {
namespace {

struct Config {
  uint32_t n = 100000;
  uint32_t edges_per_node = 10;
  uint64_t theta = 200000;
  uint32_t k = 50;
  int reps = 5;
  std::string label = "run";
  std::string out;  // empty = stdout only
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.n = 2000;
      cfg.edges_per_node = 5;
      cfg.theta = 4000;
      cfg.k = 8;
      cfg.reps = 2;
    } else if (ParseFlag(argv[i], "--n=", &v)) {
      cfg.n = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--theta=", &v)) {
      cfg.theta = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--k=", &v)) {
      cfg.k = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      cfg.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--label=", &v)) {
      cfg.label = v;
    } else if (ParseFlag(argv[i], "--out=", &v)) {
      cfg.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Median of the collected per-rep timings, in microseconds.
double MedianUs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e6;
}

/// Times `fn` cfg.reps times and returns the median wall time in us.
template <typename Fn>
double TimeMedianUs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedSeconds());
  }
  return MedianUs(std::move(samples));
}

int Run(const Config& cfg) {
  std::fprintf(stderr,
               "bench_select_ingest: n=%u theta=%llu k=%u reps=%d label=%s\n",
               cfg.n, static_cast<unsigned long long>(cfg.theta), cfg.k,
               cfg.reps, cfg.label.c_str());

  Graph g = GenerateBarabasiAlbert(cfg.n, cfg.edges_per_node);

  // Materialize the RR-set stream once (sampling excluded from timings):
  // one flat node pool plus per-set (size, cost), the exact shape the
  // generator's shard buffers have.
  std::vector<NodeId> pool;
  std::vector<std::pair<uint32_t, uint64_t>> sets;
  sets.reserve(cfg.theta);
  {
    IcRRSampler sampler(g);
    Rng rng(7);
    std::vector<NodeId> scratch;
    for (uint64_t i = 0; i < cfg.theta; ++i) {
      uint64_t cost = sampler.SampleInto(rng, &scratch);
      sets.emplace_back(static_cast<uint32_t>(scratch.size()), cost);
      pool.insert(pool.end(), scratch.begin(), scratch.end());
    }
  }
  std::fprintf(stderr, "bench_select_ingest: pool=%zu nodes\n", pool.size());

  // --- Ingestion: replay the stream into a fresh collection via the
  // engine's batch path, ending with a built inverted index. The batch is
  // copied outside the timed region (AddBatch consumes its shards), so the
  // timing covers exactly what ParallelGenerate pays per batch.
  uint64_t ingest_sink = 0;
  double ingest_us = 0.0;
  {
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(cfg.reps));
    for (int r = 0; r < cfg.reps; ++r) {
      std::vector<RRBatch> shards(1);
      shards[0].pool = pool;
      shards[0].sets = sets;
      RRCollection fresh(cfg.n);
      Stopwatch watch;
      fresh.AddBatch(std::move(shards));
      ingest_sink += fresh.SetsCovering(0).size();
      samples.push_back(watch.ElapsedSeconds());
    }
    ingest_us = MedianUs(std::move(samples));
  }

  // One persistent collection for the selection/bounds timings.
  RRCollection rr(cfg.n);
  {
    std::vector<RRBatch> shards(1);
    shards[0].pool = pool;
    shards[0].sets = sets;
    rr.AddBatch(std::move(shards));
  }

  uint64_t select_sink = 0;
  const double greedy_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedy(rr, cfg.k).coverage;
  });
  const double greedy_trace_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedy(rr, cfg.k, /*with_trace=*/true).coverage;
  });
  const double celf_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedyCelf(rr, cfg.k).coverage;
  });
  const double celf_trace_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedyCelf(rr, cfg.k, /*with_trace=*/true).coverage;
  });

  // --- Bounds: trace-bound assembly from a cached greedy trace.
  GreedyResult traced = SelectGreedy(rr, cfg.k, /*with_trace=*/true);
  double bounds_sink = 0.0;
  const double bounds_us = TimeMedianUs(cfg.reps, [&] {
    for (int it = 0; it < 100; ++it) {
      bounds_sink +=
          SigmaUpper(BoundKind::kImproved, traced, rr.num_sets(), cfg.n, 0.01);
      bounds_sink +=
          SigmaUpper(BoundKind::kBasic, traced, rr.num_sets(), cfg.n, 0.01);
    }
  });

  // --- End-to-end engine path: sample + ingest via ParallelGenerate.
  uint64_t generate_sink = 0;
  const double generate_us = TimeMedianUs(cfg.reps, [&] {
    RRCollection tmp(cfg.n);
    ParallelGenerate(g, DiffusionModel::kIndependentCascade, &tmp, cfg.theta,
                     /*seed=*/11, /*num_threads=*/1);
    generate_sink += tmp.total_size();
  });

  JsonWriter w;
  w.BeginObject();
  w.Key("label").Value(cfg.label);
  w.Key("config").BeginObject();
  w.Key("n").Value(static_cast<uint64_t>(cfg.n));
  w.Key("edges_per_node").Value(static_cast<uint64_t>(cfg.edges_per_node));
  w.Key("theta").Value(cfg.theta);
  w.Key("k").Value(static_cast<uint64_t>(cfg.k));
  w.Key("reps").Value(static_cast<int64_t>(cfg.reps));
  w.Key("pool_nodes").Value(static_cast<uint64_t>(pool.size()));
  w.EndObject();
  w.Key("timings_us").BeginObject();
  w.Key("ingest").Value(ingest_us);
  w.Key("select_greedy").Value(greedy_us);
  w.Key("select_greedy_trace").Value(greedy_trace_us);
  w.Key("select_celf").Value(celf_us);
  w.Key("select_celf_trace").Value(celf_trace_us);
  w.Key("bounds_x100").Value(bounds_us);
  w.Key("generate_ingest").Value(generate_us);
  w.EndObject();
  // The telemetry the acceptance criteria reference: per-phase counters
  // and timer sums recorded by the engine itself during the runs above.
  w.Key("telemetry").BeginObject();
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  w.Key("counters").BeginObject();
  for (const CounterSample& c : snap.counters) {
    if (c.name.rfind("opim.select.", 0) == 0 ||
        c.name.rfind("opim.rrset.", 0) == 0 ||
        c.name.rfind("opim.pool.", 0) == 0) {
      w.Key(c.name).Value(c.value);
    }
  }
  w.EndObject();
  w.Key("timer_sums_us").BeginObject();
  for (const HistogramSample& h : snap.histograms) {
    if (h.name.rfind("opim.select.", 0) == 0 ||
        h.name.rfind("opim.rrset.", 0) == 0) {
      w.Key(h.name).Value(h.sum);
    }
  }
  w.EndObject();
  w.EndObject();
  // Sinks: keep the optimizer from dropping timed work.
  w.Key("checksum")
      .Value(ingest_sink + select_sink + generate_sink +
             static_cast<uint64_t>(bounds_sink));
  w.EndObject();

  std::printf("%s\n", w.str().c_str());
  if (!cfg.out.empty()) {
    std::FILE* f = std::fopen(cfg.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) {
  return opim::Run(opim::ParseArgs(argc, argv));
}
