// Perf baseline for the RR-set engine hot paths: batch ingestion into an
// RRCollection, greedy / CELF seed selection (with and without the §5
// trace), and bound assembly. Emits one JSON object with median-of-R
// timings so scripts/run_perf_baseline.sh can track before/after numbers
// (BENCH_select_ingest.json).
//
//   ./build/bench/bench_select_ingest [--smoke] [--n=N] [--theta=T]
//       [--k=K] [--reps=R] [--seed=S] [--label=NAME] [--out=FILE]
//
// Sampling is excluded from the ingest timing: RR sets are materialized
// once up front and replayed into a fresh collection per rep, so the
// number isolates storage + inverted-index build cost exactly as
// ParallelGenerate pays it.
//
// Seed plumbing: the RR-set stream is produced by a self-contained
// reference sampler (plain reverse BFS, one UniformDouble draw per
// examined in-edge) seeded by --seed, deliberately NOT the engine's
// sampling kernels — those change across releases, which is exactly how
// earlier shipped baselines ended up with diverging pool_nodes/checksum
// between the before and after labels. Two binaries from different
// releases given the same (n, theta, seed) now replay the identical
// stream; the config block records a pool checksum so the harness can
// verify that before comparing timings.
//
// The compression block reports the collection's compressed footprint
// against (a) the raw uint32 bytes of the same members and (b) the exact
// byte layout of the pre-compression storage (flat uint32 pool + uint64
// offsets/costs + uint64-offset CSR index), plus CELF-trace timings for
// the scalar and SIMD coverage kernels and for an in-process replica of
// the legacy raw-array selection path on the identical stream.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bounds/bounds.h"
#include "gen/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "rrset/cover_bitset.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "select/greedy.h"
#include "select/selection_state.h"
#include "support/random.h"
#include "support/stopwatch.h"

namespace opim {
namespace {

struct Config {
  // n is deliberately large relative to θ's touched-node footprint: the
  // paper's regime (and the engine's doubling cadence) selects over
  // pools whose distinct members are a small fraction of the graph, and
  // the incremental-vs-scratch headline below measures exactly the
  // per-node work that footprint gap saves.
  uint32_t n = 300000;
  uint32_t edges_per_node = 10;
  uint64_t theta = 200000;
  uint32_t k = 50;
  int reps = 5;
  uint64_t seed = 7;
  std::string label = "run";
  std::string out;  // empty = stdout only
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.n = 2000;
      cfg.edges_per_node = 5;
      cfg.theta = 4000;
      cfg.k = 8;
      cfg.reps = 2;
    } else if (ParseFlag(argv[i], "--n=", &v)) {
      cfg.n = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--theta=", &v)) {
      cfg.theta = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--k=", &v)) {
      cfg.k = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      cfg.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed=", &v)) {
      cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--label=", &v)) {
      cfg.label = v;
    } else if (ParseFlag(argv[i], "--out=", &v)) {
      cfg.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Median of the collected per-rep timings, in microseconds.
double MedianUs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e6;
}

uint64_t CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double TimerSumUs(const MetricsSnapshot& snap, const std::string& name) {
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == name) return h.sum;
  }
  return 0.0;
}

/// Times `fn` cfg.reps times and returns the median wall time in us.
template <typename Fn>
double TimeMedianUs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedSeconds());
  }
  return MedianUs(std::move(samples));
}

/// Reference IC RR-set stream: uniform root, plain reverse BFS visiting
/// in-edges in CSR order with one UniformDouble() < p draw per edge.
/// Self-contained on purpose — the stream depends only on (graph, seed),
/// never on the engine's sampling kernels.
void ReferenceSampleStream(const Graph& g, uint64_t theta, uint64_t seed,
                           std::vector<NodeId>* pool,
                           std::vector<std::pair<uint32_t, uint64_t>>* sets) {
  const uint32_t n = g.num_nodes();
  Rng rng(seed, 0x62656e63ULL);  // "benc"
  std::vector<uint32_t> visited(n, 0);
  uint32_t stamp = 0;
  std::vector<NodeId> rr;
  for (uint64_t i = 0; i < theta; ++i) {
    ++stamp;
    rr.clear();
    const NodeId root = rng.UniformBelow(n);
    visited[root] = stamp;
    rr.push_back(root);
    uint64_t cost = 0;
    for (size_t head = 0; head < rr.size(); ++head) {
      const NodeId v = rr[head];
      const std::span<const NodeId> in = g.InNeighbors(v);
      const std::span<const double> p = g.InProbs(v);
      for (size_t e = 0; e < in.size(); ++e) {
        ++cost;
        if (rng.UniformDouble() < p[e] && visited[in[e]] != stamp) {
          visited[in[e]] = stamp;
          rr.push_back(in[e]);
        }
      }
    }
    sets->emplace_back(static_cast<uint32_t>(rr.size()), cost);
    pool->insert(pool->end(), rr.begin(), rr.end());
  }
}

/// FNV-1a over the pool node ids and per-set sizes: two runs replayed the
/// same stream iff this matches (what the before/after harness checks).
uint64_t PoolChecksum(const std::vector<NodeId>& pool,
                      const std::vector<std::pair<uint32_t, uint64_t>>& sets) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (NodeId v : pool) mix(v);
  for (const auto& [size, cost] : sets) mix(size);
  return h;
}

/// The pre-compression storage replica: flat uint32 member pool + uint64
/// set offsets + uint64 per-set costs + CSR inverted index with uint64
/// node offsets + the epoch-stamped coverage scratch — byte for byte the
/// state RRCollection held before the group-varint rework, built from the
/// identical stream. mark_epoch is materialized the way the old engine
/// materialized it: by the first CoverageOf, which RunOpimC issued every
/// iteration, so it was always part of the engine's metered peak.
struct LegacyStore {
  std::vector<NodeId> pool;
  std::vector<uint64_t> offsets;        // num_sets + 1
  std::vector<uint64_t> set_cost;
  std::vector<uint64_t> cover_offsets;  // n + 1
  std::vector<RRId> cover_ids;
  mutable std::vector<uint32_t> mark_epoch;
  mutable uint32_t epoch = 0;

  LegacyStore(const std::vector<NodeId>& stream_pool,
              const std::vector<std::pair<uint32_t, uint64_t>>& sets,
              uint32_t n)
      : pool(stream_pool), cover_offsets(n + 1, 0) {
    offsets.reserve(sets.size() + 1);
    offsets.push_back(0);
    set_cost.reserve(sets.size());
    uint64_t off = 0;
    for (const auto& [size, cost] : sets) {
      off += size;
      offsets.push_back(off);
      set_cost.push_back(cost);
    }
    cover_ids.resize(pool.size());
    for (NodeId v : pool) ++cover_offsets[v + 1];
    for (uint32_t v = 0; v < n; ++v) cover_offsets[v + 1] += cover_offsets[v];
    std::vector<uint64_t> cursor(cover_offsets.begin(),
                                 cover_offsets.end() - 1);
    for (uint64_t id = 0; id + 1 < offsets.size(); ++id) {
      for (uint64_t e = offsets[id]; e < offsets[id + 1]; ++e) {
        cover_ids[cursor[pool[e]]++] = static_cast<RRId>(id);
      }
    }
  }

  uint32_t num_sets() const {
    return static_cast<uint32_t>(offsets.size() - 1);
  }
  std::span<const NodeId> Set(RRId id) const {
    return {pool.data() + offsets[id], pool.data() + offsets[id + 1]};
  }
  std::span<const RRId> Covering(NodeId v) const {
    return {cover_ids.data() + cover_offsets[v],
            cover_ids.data() + cover_offsets[v + 1]};
  }
  uint64_t CoverageOf(std::span<const NodeId> seeds) const {
    if (mark_epoch.empty()) mark_epoch.assign(num_sets(), 0);
    ++epoch;
    uint64_t covered = 0;
    for (NodeId v : seeds) {
      for (RRId id : Covering(v)) {
        if (mark_epoch[id] != epoch) {
          mark_epoch[id] = epoch;
          ++covered;
        }
      }
    }
    return covered;
  }
  uint64_t MemoryBytes() const {
    return pool.size() * sizeof(NodeId) + offsets.size() * sizeof(uint64_t) +
           set_cost.size() * sizeof(uint64_t) +
           cover_offsets.size() * sizeof(uint64_t) +
           cover_ids.size() * sizeof(RRId) +
           mark_epoch.size() * sizeof(uint32_t);
  }
};

/// The pre-rework trace-mode CELF (covered char array, span-based
/// decrement loops, bucket histogram) run against the legacy layout —
/// the "current raw-uint32 path" reference of the acceptance criteria.
std::vector<NodeId> LegacyCelfTrace(const LegacyStore& store, uint32_t n,
                                    uint32_t k, uint64_t* coverage_out) {
  struct Entry {
    uint64_t gain;
    NodeId node;
    uint32_t round;
    bool operator<(const Entry& o) const {
      if (gain != o.gain) return gain < o.gain;
      return node > o.node;
    }
  };
  const uint32_t theta = store.num_sets();
  std::vector<char> covered(theta, 0);
  std::vector<char> selected(n, 0);
  std::vector<uint64_t> counts(n, 0);
  uint64_t max_count = 0;
  std::priority_queue<Entry> queue;
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t g = store.Covering(v).size();
    counts[v] = g;
    if (g > 0) queue.push({g, v, 0});
    max_count = std::max(max_count, g);
  }
  std::vector<uint32_t> hist(max_count + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (counts[v] > 0) ++hist[counts[v]];
  }
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  std::vector<uint64_t> coverage_at, topk_at;
  uint64_t coverage = 0;
  uint32_t round = 0;
  auto record_prefix = [&] {
    coverage_at.push_back(coverage);
    while (max_count > 0 && hist[max_count] == 0) --max_count;
    uint64_t sum = 0, taken = 0;
    for (uint64_t value = max_count; value > 0 && taken < k; --value) {
      const uint64_t take = std::min<uint64_t>(hist[value], k - taken);
      sum += value * take;
      taken += take;
    }
    topk_at.push_back(sum);
  };
  for (uint32_t i = 0; i < k; ++i) {
    record_prefix();
    NodeId best = kInvalidNode;
    uint64_t best_gain = 0;
    while (!queue.empty()) {
      Entry top = queue.top();
      queue.pop();
      if (selected[top.node]) continue;
      if (top.round != round) {
        top.gain = counts[top.node];
        top.round = round;
        if (top.gain > 0) queue.push(top);
        continue;
      }
      best = top.node;
      best_gain = top.gain;
      break;
    }
    if (best == kInvalidNode) break;
    selected[best] = 1;
    seeds.push_back(best);
    coverage += best_gain;
    for (RRId id : store.Covering(best)) {
      if (covered[id]) continue;
      covered[id] = 1;
      for (NodeId w : store.Set(id)) {
        const uint64_t c = counts[w]--;
        --hist[c];
        if (c > 1) ++hist[c - 1];
      }
    }
    ++round;
  }
  record_prefix();
  *coverage_out = coverage + topk_at.back() * 0;  // keep trace arrays live
  return seeds;
}

int Run(const Config& cfg) {
  std::fprintf(
      stderr,
      "bench_select_ingest: n=%u theta=%llu k=%u reps=%d seed=%llu label=%s\n",
      cfg.n, static_cast<unsigned long long>(cfg.theta), cfg.k, cfg.reps,
      static_cast<unsigned long long>(cfg.seed), cfg.label.c_str());

  Graph g = GenerateBarabasiAlbert(cfg.n, cfg.edges_per_node);

  // Materialize the RR-set stream once (sampling excluded from timings):
  // one flat node pool plus per-set (size, cost), the exact shape the
  // generator's shard buffers have.
  std::vector<NodeId> pool;
  std::vector<std::pair<uint32_t, uint64_t>> sets;
  sets.reserve(cfg.theta);
  ReferenceSampleStream(g, cfg.theta, cfg.seed, &pool, &sets);
  const uint64_t pool_checksum = PoolChecksum(pool, sets);
  std::fprintf(stderr, "bench_select_ingest: pool=%zu nodes checksum=%llx\n",
               pool.size(), static_cast<unsigned long long>(pool_checksum));

  // --- Ingestion: replay the stream into a fresh collection via the
  // engine's batch path (sort + compress + hybrid index build). The batch
  // is copied outside the timed region (AddBatch consumes its shards), so
  // the timing covers exactly what ParallelGenerate pays per batch.
  // Collections are configured exactly as the engines configure theirs
  // (no per-set cost column): peak_rr_bytes below is the quantity
  // RunOpimC / OnlineMaximizer meter against a RunControl memory budget.
  const RRStoreOptions kEngineStore{.retain_set_costs = false};

  uint64_t ingest_sink = 0;
  double ingest_us = 0.0;
  {
    std::vector<double> samples;
    samples.reserve(static_cast<size_t>(cfg.reps));
    for (int r = 0; r < cfg.reps; ++r) {
      std::vector<RRBatch> shards(1);
      shards[0].pool = pool;
      shards[0].sets = sets;
      RRCollection fresh(cfg.n, kEngineStore);
      Stopwatch watch;
      fresh.AddBatch(std::move(shards));
      ingest_sink += fresh.CoveringCount(0);
      samples.push_back(watch.ElapsedSeconds());
    }
    ingest_us = MedianUs(std::move(samples));
  }

  // One persistent collection for the selection/bounds timings.
  RRCollection rr(cfg.n, kEngineStore);
  {
    std::vector<RRBatch> shards(1);
    shards[0].pool = pool;
    shards[0].sets = sets;
    rr.AddBatch(std::move(shards));
  }

  uint64_t select_sink = 0;
  const double greedy_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedy(rr, cfg.k).coverage;
  });
  const double greedy_trace_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedy(rr, cfg.k, /*with_trace=*/true).coverage;
  });
  const double celf_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedyCelf(rr, cfg.k).coverage;
  });
  // (select_celf_trace itself is timed below, interleaved with the legacy
  // reference so the headline comparison is fair.)

  // --- Compression ablation: the same selection under forced scalar and
  // (when available) forced AVX2 kernels, plus the legacy raw-layout
  // replica of the pre-rework storage + CELF path on the same stream.
  SetCoverageSimdMode(SimdMode::kScalar);
  const double celf_scalar_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedyCelf(rr, cfg.k).coverage;
  });
  const double celf_trace_scalar_us = TimeMedianUs(cfg.reps, [&] {
    select_sink += SelectGreedyCelf(rr, cfg.k, /*with_trace=*/true).coverage;
  });
  const std::vector<NodeId> scalar_seeds = SelectGreedyCelf(rr, cfg.k).seeds;
  SetCoverageSimdMode(SimdMode::kAuto);
  const std::vector<NodeId> auto_seeds = SelectGreedyCelf(rr, cfg.k).seeds;
  if (scalar_seeds != auto_seeds) {
    std::fprintf(stderr, "FATAL: scalar/simd seed sets diverge\n");
    return 1;
  }

  uint64_t legacy_bytes = 0;
  uint64_t legacy_coverage = 0;
  double celf_trace_us = 0.0;
  double legacy_celf_trace_us = 0.0;
  {
    LegacyStore legacy(pool, sets, cfg.n);
    // Headline acceptance comparison: compressed trace-CELF vs the legacy
    // raw-layout replica. The two paths alternate inside every rep so
    // cache state and CPU-frequency drift hit both equally instead of
    // biasing whichever standalone block runs later; extra reps because
    // this pair is the number the ablation summary is derived from.
    const int pair_reps = cfg.reps * 2 + 1;
    std::vector<double> new_samples;
    std::vector<double> legacy_samples;
    new_samples.reserve(static_cast<size_t>(pair_reps));
    legacy_samples.reserve(static_cast<size_t>(pair_reps));
    for (int r = 0; r < pair_reps; ++r) {
      {
        Stopwatch watch;
        select_sink +=
            SelectGreedyCelf(rr, cfg.k, /*with_trace=*/true).coverage;
        new_samples.push_back(watch.ElapsedSeconds());
      }
      {
        Stopwatch watch;
        uint64_t cov = 0;
        const std::vector<NodeId> seeds =
            LegacyCelfTrace(legacy, cfg.n, cfg.k, &cov);
        legacy_coverage = cov;
        select_sink += cov + seeds.size();
        legacy_samples.push_back(watch.ElapsedSeconds());
      }
    }
    celf_trace_us = MedianUs(std::move(new_samples));
    legacy_celf_trace_us = MedianUs(std::move(legacy_samples));
    const std::vector<NodeId> legacy_seeds =
        LegacyCelfTrace(legacy, cfg.n, cfg.k, &legacy_coverage);
    const std::vector<NodeId> new_seeds =
        SelectGreedyCelf(rr, cfg.k, /*with_trace=*/true).seeds;
    if (legacy_seeds != new_seeds) {
      std::fprintf(stderr, "FATAL: legacy/compressed seed sets diverge\n");
      return 1;
    }
    // Λ2-style coverage query on both representations: checks the bitset
    // CoverageOf against the legacy epoch-stamp scratch, and materializes
    // each side's coverage scratch so both footprints below include it
    // (the engines run this query every iteration).
    if (rr.CoverageOf(new_seeds) != legacy.CoverageOf(legacy_seeds)) {
      std::fprintf(stderr, "FATAL: legacy/bitset coverage diverges\n");
      return 1;
    }
    legacy_bytes = legacy.MemoryBytes();
  }

  // --- Bounds: trace-bound assembly from a cached greedy trace.
  GreedyResult traced = SelectGreedy(rr, cfg.k, /*with_trace=*/true);
  double bounds_sink = 0.0;
  const double bounds_us = TimeMedianUs(cfg.reps, [&] {
    for (int it = 0; it < 100; ++it) {
      bounds_sink +=
          SigmaUpper(BoundKind::kImproved, traced, rr.num_sets(), cfg.n, 0.01);
      bounds_sink +=
          SigmaUpper(BoundKind::kBasic, traced, rr.num_sets(), cfg.n, 0.01);
    }
  });

  // --- End-to-end engine path: sample + ingest via ParallelGenerate.
  uint64_t generate_sink = 0;
  const double generate_us = TimeMedianUs(cfg.reps, [&] {
    RRCollection tmp(cfg.n, kEngineStore);
    ParallelGenerate(g, DiffusionModel::kIndependentCascade, &tmp, cfg.theta,
                     /*seed=*/11, /*num_threads=*/1);
    generate_sink += tmp.total_size();
  });

  // --- Incremental vs from-scratch selection across a doubling run: the
  // engine's actual cadence. The stream is replayed as kDoublings batches
  // (θ/256, then doubling up to θ — matching the engine's small-θ0
  // start, where most selections run over a pool that touches only a
  // small fraction of n); after each batch one traced CELF
  // selection runs. "scratch" re-derives the initial gains from the
  // posting index every time (the pre-PR behavior); "incremental" keeps a
  // SelectionState across the doublings, so each selection's initial
  // gains are an O(n) copy of the pool's incrementally maintained
  // membership counts. Only the selections are timed (ingest excluded);
  // each mode's number is the min over reps of its summed selection time
  // — min, not median, because the quantity is a fixed amount of work
  // and the only variance is interference noise.
  constexpr int kDoublings = 9;
  std::vector<size_t> doubling_targets;
  for (int d = kDoublings - 1; d >= 0; --d) {
    const size_t target = std::max<size_t>(sets.size() >> d, 1);
    // Tiny streams (--smoke) collapse leading steps onto the same
    // target; keep each distinct target once.
    if (doubling_targets.empty() || target > doubling_targets.back()) {
      doubling_targets.push_back(target);
    }
  }
  std::vector<uint64_t> set_offsets(sets.size() + 1, 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    set_offsets[i + 1] = set_offsets[i] + sets[i].first;
  }
  uint64_t doubling_sink = 0;
  auto run_doubling = [&](bool incremental, std::vector<NodeId>* final_seeds) {
    RRCollection c(cfg.n, kEngineStore);
    SelectionState state;
    CelfOptions opts;
    if (incremental) opts.state = &state;
    double select_seconds = 0.0;
    size_t done = 0;
    for (size_t target : doubling_targets) {
      std::vector<RRBatch> shards(1);
      shards[0].pool.assign(pool.begin() + set_offsets[done],
                            pool.begin() + set_offsets[target]);
      shards[0].sets.assign(sets.begin() + done, sets.begin() + target);
      c.AddBatch(std::move(shards));
      done = target;
      Stopwatch watch;
      GreedyResult r = SelectGreedyCelf(c, cfg.k, /*with_trace=*/true, opts);
      select_seconds += watch.ElapsedSeconds();
      doubling_sink += r.coverage;
      if (final_seeds != nullptr) *final_seeds = std::move(r.seeds);
    }
    return select_seconds;
  };
  double doubling_scratch_us = 0.0;
  double doubling_incremental_us = 0.0;
  uint64_t warm_hits_delta = 0;
  uint64_t postings_delta = 0;
  uint64_t warm_fallbacks_delta = 0;
  double warm_sync_us_delta = 0.0;
  double member_counts_us_delta = 0.0;
  {
    std::vector<NodeId> scratch_seeds, incremental_seeds;
    double scratch_best = 0.0, incremental_best = 0.0;
    // The two modes alternate inside every rep (same fairness rationale
    // as the legacy pair above). The telemetry delta brackets the first
    // incremental pass: with kDoublings selections it must show
    // kDoublings warm-sync calls, kDoublings - 1 of them warm hits, and
    // a postings_delta equal to the stream mass past the first batch.
    for (int r = 0; r < cfg.reps; ++r) {
      const double scratch = run_doubling(false, &scratch_seeds);
      MetricsSnapshot before, after;
      if (r == 0) before = MetricsRegistry::Default().Snapshot();
      const double incremental = run_doubling(true, &incremental_seeds);
      if (r == 0) {
        after = MetricsRegistry::Default().Snapshot();
        warm_hits_delta =
            CounterValue(after, "opim.select.warm_start_hits") -
            CounterValue(before, "opim.select.warm_start_hits");
        postings_delta =
            CounterValue(after, "opim.select.postings_delta_ingested") -
            CounterValue(before, "opim.select.postings_delta_ingested");
        warm_fallbacks_delta =
            CounterValue(after, "opim.select.warm_start_fallbacks") -
            CounterValue(before, "opim.select.warm_start_fallbacks");
        warm_sync_us_delta =
            TimerSumUs(after, "opim.select.warm_sync_us") -
            TimerSumUs(before, "opim.select.warm_sync_us");
        member_counts_us_delta =
            TimerSumUs(after, "opim.rrset.member_counts_us") -
            TimerSumUs(before, "opim.rrset.member_counts_us");
      }
      if (r == 0 || scratch < scratch_best) scratch_best = scratch;
      if (r == 0 || incremental < incremental_best) {
        incremental_best = incremental;
      }
      if (scratch_seeds != incremental_seeds) {
        std::fprintf(stderr,
                     "FATAL: incremental/scratch seed sets diverge\n");
        return 1;
      }
    }
    doubling_scratch_us = scratch_best * 1e6;
    doubling_incremental_us = incremental_best * 1e6;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("label").Value(cfg.label);
  w.Key("config").BeginObject();
  w.Key("n").Value(static_cast<uint64_t>(cfg.n));
  w.Key("edges_per_node").Value(static_cast<uint64_t>(cfg.edges_per_node));
  w.Key("theta").Value(cfg.theta);
  w.Key("k").Value(static_cast<uint64_t>(cfg.k));
  w.Key("reps").Value(static_cast<int64_t>(cfg.reps));
  w.Key("seed").Value(cfg.seed);
  w.Key("pool_nodes").Value(static_cast<uint64_t>(pool.size()));
  w.Key("pool_checksum").Value(pool_checksum);
  w.EndObject();
  w.Key("timings_us").BeginObject();
  w.Key("ingest").Value(ingest_us);
  w.Key("select_greedy").Value(greedy_us);
  w.Key("select_greedy_trace").Value(greedy_trace_us);
  w.Key("select_celf").Value(celf_us);
  w.Key("select_celf_trace").Value(celf_trace_us);
  w.Key("bounds_x100").Value(bounds_us);
  w.Key("generate_ingest").Value(generate_us);
  w.Key("select_doubling_scratch").Value(doubling_scratch_us);
  w.Key("select_doubling_incremental").Value(doubling_incremental_us);
  w.EndObject();
  // The doubling-run breakdown: schedule shape, the headline speedup, and
  // the telemetry delta of the first incremental pass (what the warm
  // starts actually did).
  w.Key("doubling").BeginObject();
  w.Key("doublings").Value(static_cast<uint64_t>(doubling_targets.size()));
  w.Key("theta_start").Value(static_cast<uint64_t>(doubling_targets.front()));
  w.Key("theta_final").Value(static_cast<uint64_t>(doubling_targets.back()));
  w.Key("incremental_speedup")
      .Value(doubling_incremental_us > 0.0
                 ? doubling_scratch_us / doubling_incremental_us
                 : 0.0);
  w.Key("telemetry_delta").BeginObject();
  w.Key("opim.select.warm_start_hits").Value(warm_hits_delta);
  w.Key("opim.select.warm_start_fallbacks").Value(warm_fallbacks_delta);
  w.Key("opim.select.postings_delta_ingested").Value(postings_delta);
  w.Key("opim.select.warm_sync_us").Value(warm_sync_us_delta);
  w.Key("opim.rrset.member_counts_us").Value(member_counts_us_delta);
  w.EndObject();
  w.EndObject();
  // Storage + kernel ablation: peak_rr_bytes is MemoryUsage() — what the
  // PR 4 memory budget meters — against the exact byte layout the
  // pre-compression storage would hold for the identical stream.
  w.Key("compression").BeginObject();
  w.Key("peak_rr_bytes").Value(rr.MemoryUsage());
  w.Key("legacy_layout_bytes").Value(legacy_bytes);
  w.Key("layout_ratio")
      .Value(static_cast<double>(legacy_bytes) /
             static_cast<double>(rr.MemoryUsage()));
  w.Key("compressed_member_bytes").Value(rr.CompressedMemberBytes());
  w.Key("raw_member_bytes").Value(rr.RawMemberBytes());
  w.Key("simd_kernel").Value(ActiveCoverageKernelName());
  w.Key("select_celf_scalar").Value(celf_scalar_us);
  w.Key("select_celf_trace_scalar").Value(celf_trace_scalar_us);
  w.Key("select_celf_trace_legacy_ref").Value(legacy_celf_trace_us);
  w.EndObject();
  // The telemetry the acceptance criteria reference: per-phase counters
  // and timer sums recorded by the engine itself during the runs above.
  w.Key("telemetry").BeginObject();
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  w.Key("counters").BeginObject();
  for (const CounterSample& c : snap.counters) {
    if (c.name.rfind("opim.select.", 0) == 0 ||
        c.name.rfind("opim.rrset.", 0) == 0 ||
        c.name.rfind("opim.pool.", 0) == 0) {
      w.Key(c.name).Value(c.value);
    }
  }
  w.EndObject();
  w.Key("timer_sums_us").BeginObject();
  for (const HistogramSample& h : snap.histograms) {
    if (h.name.rfind("opim.select.", 0) == 0 ||
        h.name.rfind("opim.rrset.", 0) == 0) {
      w.Key(h.name).Value(h.sum);
    }
  }
  w.EndObject();
  w.EndObject();
  // Sinks: keep the optimizer from dropping timed work.
  w.Key("checksum")
      .Value(ingest_sink + select_sink + generate_sink + doubling_sink +
             legacy_coverage + static_cast<uint64_t>(bounds_sink));
  w.EndObject();

  std::printf("%s\n", w.str().c_str());
  if (!cfg.out.empty()) {
    std::FILE* f = std::fopen(cfg.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) {
  return opim::Run(opim::ParseArgs(argc, argv));
}
