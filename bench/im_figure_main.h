// Shared main() body for the Figure 6/7 benches: conventional influence
// maximization on twitter-sim, spread and running time vs ε, for the three
// OPIM-C variants against IMM, SSA-Fix and D-SSA-Fix.

#pragma once

#include <cstdio>
#include <string>

#include "diffusion/cascade.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "harness/im_figure.h"

namespace opim::benchmain {

inline int RunImPanels(int argc, char** argv, DiffusionModel model,
                       const char* figure_name) {
  Flags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  // IC reverse sampling is ~8x LT's cost on these graphs; the quick
  // default drops one scale step and halves the cap.
  const bool ic = model == DiffusionModel::kIndependentCascade;
  const uint32_t scale = static_cast<uint32_t>(
      flags.GetUint("scale", full ? 15 : (ic ? 12 : 13)));
  auto graph_or = MakeDataset("twitter-sim", scale, flags.GetUint("seed", 1));
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph_or.ValueOrDie();

  ImFigureOptions opt;
  opt.k = static_cast<uint32_t>(flags.GetUint("k", 50));
  opt.reps = static_cast<uint32_t>(flags.GetUint("reps", full ? 5 : 2));
  opt.mc_samples = flags.GetUint("mc", full ? 10000 : 2000);
  opt.cap_rr_sets =
      flags.GetUint("cap", full ? 20000000 : (ic ? 1000000 : 2000000));
  opt.seed = flags.GetUint("seed", 1);
  opt.include_tim = flags.GetBool("with-tim", false);
  if (flags.Has("eps")) {
    opt.eps_list = {flags.GetDouble("eps", 0.1)};
  } else {
    opt.eps_list = {0.1, 0.05, 0.02, 0.01};
  }

  std::printf("%s: conventional IM on twitter-sim under %s "
              "(n=%u, m=%llu, k=%u, delta=1/n, %u reps)\n"
              "(a) expected spread and (b) running time vs eps. Rows with "
              "extrapolated=yes hit the\n%llu-RR-set cap and scale "
              "measured per-set cost to the demanded sample size.\n\n",
              figure_name, DiffusionModelName(model), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), opt.k,
              opt.reps,
              static_cast<unsigned long long>(opt.cap_rr_sets));

  auto rows = RunImFigure(g, model, opt);
  TablePrinter table = ImFigureToTable(rows);
  std::printf("%s\n", table.ToAlignedString().c_str());
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    Status st = table.WriteCsv(csv + ".csv");
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  }
  std::printf("paper shape check: (a) all six algorithms reach similar "
              "spreads; (b) OPIM-C+ is fastest,\nwith the gap to IMM "
              "widening as eps shrinks (orders of magnitude at eps=0.01); "
              "OPIM-C0 is\ncomparable to the best prior method.\n");
  return 0;
}

}  // namespace opim::benchmain
