// Figure 5 — OPIM approximation guarantee vs number of RR sets on the
// twitter-sim dataset under the IC model, for k in {1, 10, 100, 1000};
// the IC twin of Figure 3.
//
//   ./build/bench/bench_fig5_opim_ic_k [--full] [--scale=13] [--reps=2]

#include "opim_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunKSweepPanels(
      argc, argv, opim::DiffusionModel::kIndependentCascade, "Figure 5");
}
