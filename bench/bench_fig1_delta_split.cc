// Figure 1 — the near-optimality of the δ1 = δ2 = δ/2 split (Lemma 4.4).
//
// The paper plots f(ln 2/δ)·g(ln 1/δ) / (f(ln 1/δ)·g(ln 2/δ)) at
// Λ2(S*) = 100 for δ from 10^-9 to ~0.1 and Λ1(S*) ∈ {10², 10³, 10⁴},
// observing values close to 1 everywhere. This bench prints the same
// series (one column per Λ1).
//
//   ./build/bench/bench_fig1_delta_split [--lambda2=100] [--csv=path]

#include <cmath>
#include <cstdio>

#include "bounds/bounds.h"
#include "harness/flags.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const double lambda2 = flags.GetDouble("lambda2", 100.0);

  std::printf("Figure 1: delta-split ratio f(ln 2/d)g(ln 1/d) / "
              "(f(ln 1/d)g(ln 2/d)), Lambda2 = %g\n\n", lambda2);

  opim::TablePrinter table(
      {"delta", "Lambda1=1e2", "Lambda1=1e3", "Lambda1=1e4"});
  for (int e = -9; e <= -1; ++e) {
    const double delta = std::pow(10.0, e);
    std::vector<std::string> row = {opim::TablePrinter::Cell(delta, 2)};
    for (double lambda1 : {100.0, 1000.0, 10000.0}) {
      row.push_back(opim::TablePrinter::Cell(
          opim::DeltaSplitRatio(lambda1, lambda2, delta), 5));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("paper: ratio close to 1 in all cases => the even split is "
              "near-optimal.\n");

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    auto st = table.WriteCsv(csv);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
