// Google-benchmark micro-benchmarks for the hot components: RR-set
// sampling under IC and LT, greedy selection (destructive vs CELF —
// the DESIGN.md ablation of the selection strategy), coverage queries,
// alias-table construction/sampling, and forward cascade simulation.
//
//   ./build/bench/bench_micro_components [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/alias_sampler.h"
#include "support/random.h"

namespace opim {
namespace {

const Graph& BenchGraph() {
  static Graph g = GenerateBarabasiAlbert(1u << 14, 12);
  return g;
}

void BM_SampleRRSetIC(benchmark::State& state) {
  IcRRSampler sampler(BenchGraph());
  Rng rng(1);
  std::vector<NodeId> out;
  uint64_t nodes = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, &out);
    nodes += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_rr_size"] =
      static_cast<double>(nodes) / state.iterations();
}
BENCHMARK(BM_SampleRRSetIC);

void BM_SampleRRSetLT(benchmark::State& state) {
  LtRRSampler sampler(BenchGraph());
  Rng rng(1);
  std::vector<NodeId> out;
  uint64_t nodes = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, &out);
    nodes += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["avg_rr_size"] =
      static_cast<double>(nodes) / state.iterations();
}
BENCHMARK(BM_SampleRRSetLT);

RRCollection MakeBenchCollection(uint32_t num_sets) {
  const Graph& g = BenchGraph();
  RRCollection rr(g.num_nodes());
  IcRRSampler sampler(g);
  Rng rng(2);
  sampler.Generate(&rr, num_sets, rng);
  return rr;
}

void BM_GreedyDestructive(benchmark::State& state) {
  RRCollection rr = MakeBenchCollection(
      static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    GreedyResult r = SelectGreedy(rr, 50);
    benchmark::DoNotOptimize(r.coverage);
  }
}
BENCHMARK(BM_GreedyDestructive)->Arg(10000)->Arg(40000);

void BM_GreedyDestructiveWithTrace(benchmark::State& state) {
  RRCollection rr = MakeBenchCollection(
      static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    GreedyResult r = SelectGreedy(rr, 50, /*with_trace=*/true);
    benchmark::DoNotOptimize(r.coverage);
  }
}
BENCHMARK(BM_GreedyDestructiveWithTrace)->Arg(10000)->Arg(40000);

void BM_GreedyCelf(benchmark::State& state) {
  RRCollection rr = MakeBenchCollection(
      static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    GreedyResult r = SelectGreedyCelf(rr, 50);
    benchmark::DoNotOptimize(r.coverage);
  }
}
BENCHMARK(BM_GreedyCelf)->Arg(10000)->Arg(40000);

void BM_CoverageQuery(benchmark::State& state) {
  RRCollection rr = MakeBenchCollection(40000);
  GreedyResult g = SelectGreedy(rr, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.CoverageOf(g.seeds));
  }
}
BENCHMARK(BM_CoverageQuery);

void BM_AliasBuild(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.UniformDouble();
  AliasSampler sampler;
  for (auto _ : state) {
    sampler.Build(weights);
    benchmark::DoNotOptimize(sampler.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AliasBuild)->Arg(64)->Arg(4096);

void BM_AliasSample(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> weights(1024);
  for (double& w : weights) w = rng.UniformDouble();
  AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample);

void BM_CascadeIC(benchmark::State& state) {
  CascadeSimulator sim(BenchGraph());
  Rng rng(5);
  std::vector<NodeId> seeds = {0, 100, 200, 300, 400};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Run(DiffusionModel::kIndependentCascade, seeds, rng));
  }
}
BENCHMARK(BM_CascadeIC);

void BM_CascadeLT(benchmark::State& state) {
  CascadeSimulator sim(BenchGraph());
  Rng rng(5);
  std::vector<NodeId> seeds = {0, 100, 200, 300, 400};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Run(DiffusionModel::kLinearThreshold, seeds, rng));
  }
}
BENCHMARK(BM_CascadeLT);

// --- Telemetry primitives (docs/observability.md overhead budget) ---

void BM_TelemetryCounterAdd(benchmark::State& state) {
  Counter* counter =
      MetricsRegistry::Default().FindOrCreateCounter("bench.counter_add");
  for (auto _ : state) {
    counter->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterAdd)->Threads(1)->Threads(4);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  Histogram* hist =
      MetricsRegistry::Default().FindOrCreateHistogram("bench.hist_record");
  uint64_t v = 1;
  for (auto _ : state) {
    hist->Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 40;  // vary buckets
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_TelemetrySnapshot(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.FindOrCreateCounter("bench.c" + std::to_string(i))->Add(i);
    registry.FindOrCreateHistogram("bench.h" + std::to_string(i))
        ->Record(static_cast<uint64_t>(i) * 17);
  }
  for (auto _ : state) {
    MetricsSnapshot snap = registry.Snapshot();
    benchmark::DoNotOptimize(snap.counters.data());
  }
}
BENCHMARK(BM_TelemetrySnapshot);

void BM_TelemetryScopedTimer(benchmark::State& state) {
  Histogram* hist =
      MetricsRegistry::Default().FindOrCreateHistogram("bench.scoped_timer");
  for (auto _ : state) {
    ScopedTimer timer(hist);
    benchmark::DoNotOptimize(&timer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryScopedTimer);

void BM_TelemetryLogFiltered(benchmark::State& state) {
  // Default runtime level is kWarn, so kDebug messages are dropped without
  // evaluating the stream operands — this measures the filter check alone.
  SetLogLevel(LogLevel::kWarn);
  uint64_t x = 0;
  for (auto _ : state) {
    OPIM_LOG(kDebug) << "never emitted " << ++x;
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryLogFiltered);

}  // namespace
}  // namespace opim

BENCHMARK_MAIN();
