// Table 2 — dataset statistics. The paper lists n, m, type, and average
// degree for Pokec, Orkut, LiveJournal, and Twitter; this bench prints the
// same columns for the synthetic stand-ins actually used in our
// experiments (DESIGN.md §3), so every other bench's workload is on the
// record. Also prints degree extrema as a shape check.
//
//   ./build/bench/bench_table2_datasets [--scale=15] [--seed=1]

#include <cstdio>

#include "graph/graph.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 15));
  const uint64_t seed = flags.GetUint("seed", 1);

  std::printf("Table 2: dataset statistics (synthetic stand-ins, scale "
              "2^%u)\n\n", scale);
  opim::TablePrinter table({"dataset", "n", "m", "type", "avg_degree",
                            "max_in_deg", "max_out_deg"});
  for (const std::string& name : opim::StandardDatasetNames()) {
    auto r = opim::MakeDataset(name, scale, seed);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    const opim::Graph& g = r.ValueOrDie();
    opim::GraphStats s = opim::ComputeStats(g);
    const bool undirected = name == "orkut-sim";
    table.AddRow({name, opim::TablePrinter::Cell(uint64_t{s.num_nodes}),
                  opim::TablePrinter::Cell(s.num_edges),
                  undirected ? "undirected" : "directed",
                  opim::TablePrinter::Cell(s.average_degree, 4),
                  opim::TablePrinter::Cell(s.max_in_degree),
                  opim::TablePrinter::Cell(s.max_out_degree)});
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("paper (full-size SNAP originals): Pokec 1.6M/30.6M deg 37.5,"
              "\nOrkut 3.1M/117.2M deg 76.3, LiveJournal 4.8M/69.0M deg "
              "28.5,\nTwitter 41.7M/1.5G deg 70.5\n");
  return 0;
}
