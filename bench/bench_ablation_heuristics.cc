// Ablation — certified RIS algorithm vs classic guarantee-free
// heuristics.
//
// The paper's related work (§7) positions RIS algorithms against the
// heuristic line (degree / degree-discount / PageRank); this bench
// quantifies the gap on all four dataset stand-ins: spread achieved (with
// 95% CIs) and selection time. The usual finding — heuristics come close
// on scale-free graphs but carry no certificate and occasionally crater —
// is the motivation for instance-specific guarantees.
//
//   ./build/bench/bench_ablation_heuristics [--scale=12] [--k=50]

#include <cstdio>
#include <functional>

#include "baselines/heuristics.h"
#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "support/stopwatch.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 12));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const uint64_t mc = flags.GetUint("mc", 5000);
  const auto model = opim::DiffusionModel::kIndependentCascade;

  std::printf("Ablation: certified OPIM-C+ vs guarantee-free heuristics "
              "(IC, k=%u, %llu MC evaluations, 95%% CI)\n\n", k,
              static_cast<unsigned long long>(mc));

  opim::TablePrinter table(
      {"dataset", "algorithm", "spread", "ci95", "select_seconds"});
  for (const std::string& name : opim::StandardDatasetNames()) {
    auto graph_or = opim::MakeDataset(name, scale, 1);
    if (!graph_or.ok()) {
      std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
      return 1;
    }
    const opim::Graph& g = graph_or.ValueOrDie();
    opim::SpreadEstimator est(g, model);

    using Select = std::function<std::vector<opim::NodeId>()>;
    const std::vector<std::pair<std::string, Select>> algos = {
        {"OPIM-C+",
         [&] {
           return RunOpimC(g, model, k, 0.1, 1.0 / g.num_nodes()).seeds;
         }},
        {"Degree", [&] { return opim::SelectByDegree(g, k); }},
        {"DegreeDiscount",
         [&] { return opim::SelectByDegreeDiscount(g, k); }},
        {"PageRank", [&] { return opim::SelectByPageRank(g, k); }},
        {"TwoHop", [&] { return opim::SelectByTwoHop(g, k); }},
    };
    for (const auto& [algo, select] : algos) {
      opim::Stopwatch sw;
      std::vector<opim::NodeId> seeds = select();
      const double select_seconds = sw.ElapsedSeconds();
      auto spread = est.EstimateWithError(seeds, mc, 7);
      table.AddRow({name, algo, opim::TablePrinter::Cell(spread.mean, 6),
                    "+-" + opim::TablePrinter::Cell(
                               1.96 * spread.stderr_, 3),
                    opim::TablePrinter::Cell(select_seconds, 3)});
    }
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("expected: heuristics within ~10-30%% of OPIM-C+ on these "
              "graphs (and faster), but\nwithout any quality certificate — "
              "the gap OPIM's alpha reporting closes.\n");
  return 0;
}
