// Ablation — tightness of the three Λ1(S°) upper bounds as sampling
// progresses.
//
// Section 5's argument is that the worst-case factor Λ1(S*)/(1 - 1/e) is
// loose on real instances while the greedy-trace bound Λ1ᵘ (Eq. 10) is
// tight; the Leskovec-style Λ1⋄ (Eq. 15) sits in between and can even
// exceed the worst-case bound. This bench prints all three (normalized by
// Λ1(S*), so "1.0" would be a perfect certificate) as θ1 doubles —
// explaining *why* OPIM⁺ reports better α at every checkpoint of
// Figures 2–5.
//
//   ./build/bench/bench_ablation_bounds [--scale=12] [--k=50]

#include <cstdio>

#include "bounds/bounds.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 12));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));

  auto graph_or = opim::MakeDataset("pokec-sim", scale, 1);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const opim::Graph& g = graph_or.ValueOrDie();

  std::printf("Ablation: upper bounds on Lambda1(S_opt), normalized by the "
              "achieved Lambda1(S*)\n(pokec-sim IC, n=%u, k=%u; lower is "
              "tighter, 1.0 is perfect, worst-case = 1/(1-1/e) = %.4f)\n\n",
              g.num_nodes(), k, 1.0 / opim::kOneMinusInvE);

  auto sampler =
      opim::MakeRRSampler(g, opim::DiffusionModel::kIndependentCascade);
  opim::Rng rng(1);
  opim::RRCollection r1(g.num_nodes());

  opim::TablePrinter table({"theta1", "worst_case", "trace_Eq10",
                            "leskovec_Eq15"});
  for (uint64_t theta : {1000ULL, 4000ULL, 16000ULL, 64000ULL, 256000ULL}) {
    sampler->Generate(&r1, theta - r1.num_sets(), rng);
    opim::GreedyResult greedy = opim::SelectGreedy(r1, k, true);
    const double base = static_cast<double>(greedy.coverage);
    table.AddRow(
        {opim::TablePrinter::Cell(theta),
         opim::TablePrinter::Cell(1.0 / opim::kOneMinusInvE, 4),
         opim::TablePrinter::Cell(
             static_cast<double>(opim::LambdaUpperFromTrace(greedy)) / base,
             4),
         opim::TablePrinter::Cell(
             static_cast<double>(opim::LambdaUpperLeskovec(greedy)) / base,
             4)});
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("expected: trace_Eq10 <= min(worst_case, leskovec) always "
              "(Lemma 5.2); Eq10 approaches\n1.0 as theta grows — the slack "
              "OPIM+ recovers over OPIM0.\n");
  return 0;
}
