// Perf baseline for the crash-safe .opimss checkpoint path
// (rrset/snapshot.h): what one checkpoint costs a doubling iteration,
// and what a --resume pays at startup. Emits one JSON object so
// scripts/check_bench_regression.py can track before/after numbers
// (BENCH_snapshot.json).
//
// Timed configurations (min over reps; the pools are a realistic
// two-pool OPIM-C state sampled with ParallelGenerate):
//   checkpoint_write — SaveSnapshot of both pools: payload assembly,
//                      FNV-1a checksum, write-to-temp + fsync + rename.
//                      This is the per-cadence overhead a run with
//                      --checkpoint-dir pays at an iteration boundary.
//   resume_load      — LoadSnapshot of the same container: the strict
//                      validation path (checksum scan + per-set checked
//                      decode) plus pool reassembly. This is the
//                      --resume startup cost.
// Derived: checkpoint_mb_s / resume_mb_s, container bytes over wall
// time — the numbers to watch when the codec or validator changes.
//
//   ./build/bench/bench_snapshot [--smoke] [--sets=N] [--reps=R]
//       [--label=NAME] [--out=FILE]

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.h"
#include "graph/graph.h"
#include "obs/json.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "rrset/snapshot.h"
#include "support/stopwatch.h"

namespace opim {
namespace {

struct Config {
  uint32_t n = 100000;
  uint64_t sets_per_pool = 1 << 18;  // 256k sets per pool
  int reps = 5;
  std::string label = "run";
  std::string out;  // empty = stdout only
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = arg + len;
  return true;
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.n = 20000;
      cfg.sets_per_pool = 1 << 15;
      cfg.reps = 3;
    } else if (ParseFlag(argv[i], "--sets=", &v)) {
      cfg.sets_per_pool = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--n=", &v)) {
      cfg.n = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reps=", &v)) {
      cfg.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--label=", &v)) {
      cfg.label = v;
    } else if (ParseFlag(argv[i], "--out=", &v)) {
      cfg.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Minimum wall time in us over `reps` runs (same estimator rationale as
/// bench_generate: interference on shared hosts is one-sided).
template <typename Fn>
double TimeMinUs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double s = watch.ElapsedSeconds();
    if (r == 0 || s < best) best = s;
  }
  return best * 1e6;
}

int Run(const Config& cfg) {
  std::fprintf(stderr, "bench_snapshot: n=%u sets/pool=%llu reps=%d label=%s\n",
               cfg.n, static_cast<unsigned long long>(cfg.sets_per_pool),
               cfg.reps, cfg.label.c_str());

  const Graph g = GenerateBarabasiAlbert(cfg.n, 10);
  RRStoreOptions store;
  store.retain_set_costs = false;
  RRCollection r1(g.num_nodes(), store), r2(g.num_nodes(), store);
  ParallelGenerate(g, DiffusionModel::kIndependentCascade, &r1,
                   cfg.sets_per_pool, /*seed=*/1, /*num_threads=*/0);
  ParallelGenerate(g, DiffusionModel::kIndependentCascade, &r2,
                   cfg.sets_per_pool, /*seed=*/2, /*num_threads=*/0);

  SnapshotRunState rs;
  rs.run_seed = 1;
  rs.batch_counter = 4;
  rs.graph_nodes = g.num_nodes();
  rs.graph_edges = g.num_edges();
  rs.eps = 0.1;
  rs.delta = 0.01;
  rs.next_iteration = 3;
  rs.num_threads = 1;
  rs.k = 50;

  const std::string path =
      "/tmp/bench_snapshot_" + std::to_string(::getpid()) + ".opimss";
  uint64_t snapshot_bytes = 0;
  const double write_us = TimeMinUs(cfg.reps, [&] {
    auto written = SaveSnapshot(rs, r1, r2, path);
    if (!written.ok()) {
      std::fprintf(stderr, "bench_snapshot: save failed: %s\n",
                   written.status().ToString().c_str());
      std::exit(1);
    }
    snapshot_bytes = written.ValueOrDie();
  });

  uint64_t sink = 0;
  const double load_us = TimeMinUs(cfg.reps, [&] {
    auto snap = LoadSnapshot(path);
    if (!snap.ok()) {
      std::fprintf(stderr, "bench_snapshot: load failed: %s\n",
                   snap.status().ToString().c_str());
      std::exit(1);
    }
    sink += snap.ValueOrDie().r1.num_sets() + snap.ValueOrDie().r2.total_size();
  });
  std::remove(path.c_str());

  const double mb = static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0);
  JsonWriter w;
  w.BeginObject();
  w.Key("label").Value(cfg.label);
  w.Key("config").BeginObject();
  w.Key("n").Value(static_cast<uint64_t>(cfg.n));
  w.Key("sets_per_pool").Value(cfg.sets_per_pool);
  w.Key("reps").Value(static_cast<int64_t>(cfg.reps));
  w.Key("snapshot_bytes").Value(snapshot_bytes);
  w.Key("pool_members").Value(r1.total_size() + r2.total_size());
  w.EndObject();
  w.Key("timings_us").BeginObject();
  w.Key("checkpoint_write").Value(write_us);
  w.Key("resume_load").Value(load_us);
  w.EndObject();
  w.Key("throughput_mb_s").BeginObject();
  w.Key("checkpoint_write").Value(mb / (write_us * 1e-6));
  w.Key("resume_load").Value(mb / (load_us * 1e-6));
  w.EndObject();
  w.Key("checksum").Value(sink);
  w.EndObject();

  std::fprintf(stderr,
               "bench_snapshot: %.1f MiB container, write=%.0fus "
               "(%.0f MB/s) load=%.0fus (%.0f MB/s)\n",
               mb, write_us, mb / (write_us * 1e-6), load_us,
               mb / (load_us * 1e-6));

  std::printf("%s\n", w.str().c_str());
  if (!cfg.out.empty()) {
    std::FILE* f = std::fopen(cfg.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace opim

int main(int argc, char** argv) {
  return opim::Run(opim::ParseArgs(argc, argv));
}
