// Table 1 — time complexities of the three OPIM query variants:
//
//   vanilla (OPIM0)            O(Σ|R|)
//   improved via σ̂u (OPIM+)    O(kn + Σ|R|)
//   improved via σ⋄ (OPIM')    O(n + Σ|R|)
//
// Table 1 is analytic; this bench validates it empirically: it measures
// the pause-and-query cost of each variant while Σ|R| grows by doubling,
// and prints per-unit costs. Linear-in-Σ|R| behaviour shows up as a
// roughly constant "us_per_1k_units" column; the kn term shows up as the
// constant gap between OPIM+ and OPIM0 at fixed n, k.
//
//   ./build/bench/bench_table1_complexity [--scale=13] [--k=50]

#include <cstdio>

#include "core/online_maximizer.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "support/stopwatch.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 13));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const uint32_t rounds =
      static_cast<uint32_t>(flags.GetUint("rounds", 7));

  auto graph_or = opim::MakeDataset("pokec-sim", scale, 1);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const opim::Graph& g = graph_or.ValueOrDie();
  const uint32_t n = g.num_nodes();

  std::printf("Table 1: empirical query cost of the OPIM bound variants "
              "(pokec-sim, n=%u, k=%u)\n\n", n, k);

  opim::OnlineMaximizer om(
      g, opim::DiffusionModel::kIndependentCascade, k, 1.0 / n, 1);

  opim::TablePrinter table({"total_rr_size", "OPIM0_ms", "OPIM+_ms",
                            "OPIM'_ms", "OPIM0_us_per_1k_units",
                            "OPIM+_minus_OPIM0_ms"});
  uint64_t target = 4000;
  for (uint32_t round = 0; round < rounds; ++round) {
    om.Advance(target - om.num_rr_sets());

    auto time_query = [&](opim::BoundKind kind) {
      // Median of three to de-noise.
      double best = 1e300;
      for (int i = 0; i < 3; ++i) {
        opim::Stopwatch sw;
        (void)om.Query(kind);
        best = std::min(best, sw.ElapsedMillis());
      }
      return best;
    };
    const double ms0 = time_query(opim::BoundKind::kBasic);
    const double msp = time_query(opim::BoundKind::kImproved);
    const double msl = time_query(opim::BoundKind::kLeskovec);
    const uint64_t units = om.r1().total_size() + om.r2().total_size();
    table.AddRow({opim::TablePrinter::Cell(units),
                  opim::TablePrinter::Cell(ms0, 4),
                  opim::TablePrinter::Cell(msp, 4),
                  opim::TablePrinter::Cell(msl, 4),
                  opim::TablePrinter::Cell(1000.0 * ms0 / (units / 1000.0 + 1),
                                           4),
                  opim::TablePrinter::Cell(msp - ms0, 4)});
    target *= 2;
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("expected: OPIM0 cost linear in total RR size (last-but-one "
              "column roughly flat once\nSigma|R| dominates); OPIM+ adds a "
              "roughly constant O(kn) term (last column).\n");
  return 0;
}
