// Ablation — nominator/judge pool split ratio.
//
// The paper splits R evenly into R1 (greedy + upper bound) and R2 (lower
// bound) "evenly" (§4.1) and proves the δ-split near-optimal (Lemma 4.4),
// but does not ablate the *sample* split. This bench fixes a total RR-set
// budget and sweeps the fraction routed to R1, reporting the resulting α
// for each bound variant — showing the 50/50 choice is a sensible default
// (extreme splits starve either the nominators or the judges).
//
//   ./build/bench/bench_ablation_split [--scale=12] [--k=50]
//                                      [--budget=131072]

#include <cstdio>
#include <vector>

#include "bounds/bounds.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/random.h"
#include "support/table_printer.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 12));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const uint64_t budget = flags.GetUint("budget", 131072);
  const uint32_t reps = static_cast<uint32_t>(flags.GetUint("reps", 3));

  auto graph_or = opim::MakeDataset("pokec-sim", scale, 1);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const opim::Graph& g = graph_or.ValueOrDie();
  const uint32_t n = g.num_nodes();
  const double delta = 1.0 / n;

  std::printf("Ablation: R1:R2 split ratio at a fixed budget of %llu RR "
              "sets (pokec-sim IC, n=%u, k=%u, mean of %u reps)\n\n",
              static_cast<unsigned long long>(budget), n, k, reps);

  opim::TablePrinter table(
      {"r1_fraction", "alpha_OPIM0", "alpha_OPIM+", "alpha_OPIM'"});
  for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double sum0 = 0, sump = 0, suml = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      auto sampler = opim::MakeRRSampler(
          g, opim::DiffusionModel::kIndependentCascade);
      opim::Rng rng(rep + 1, 0xab1a);
      opim::RRCollection r1(n), r2(n);
      const uint64_t theta1 =
          std::max<uint64_t>(1, static_cast<uint64_t>(budget * frac));
      sampler->Generate(&r1, theta1, rng);
      sampler->Generate(&r2, budget - theta1, rng);

      opim::GreedyResult greedy = opim::SelectGreedy(r1, k, true);
      uint64_t lambda2 = r2.CoverageOf(greedy.seeds);
      double lower = opim::SigmaLower(lambda2, r2.num_sets(), n, delta / 2);
      sum0 += opim::ApproxRatio(
          lower, opim::SigmaUpper(opim::BoundKind::kBasic, greedy,
                                  r1.num_sets(), n, delta / 2));
      sump += opim::ApproxRatio(
          lower, opim::SigmaUpper(opim::BoundKind::kImproved, greedy,
                                  r1.num_sets(), n, delta / 2));
      suml += opim::ApproxRatio(
          lower, opim::SigmaUpper(opim::BoundKind::kLeskovec, greedy,
                                  r1.num_sets(), n, delta / 2));
    }
    table.AddRow({opim::TablePrinter::Cell(frac, 2),
                  opim::TablePrinter::Cell(sum0 / reps, 4),
                  opim::TablePrinter::Cell(sump / reps, 4),
                  opim::TablePrinter::Cell(suml / reps, 4)});
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf("expected: alpha peaks near the middle; starving R1 hurts "
              "the seed set and the upper\nbound, starving R2 hurts the "
              "lower bound. The paper's even split is a robust default.\n");
  return 0;
}
