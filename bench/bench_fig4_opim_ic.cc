// Figure 4 — OPIM approximation guarantee vs number of RR sets on the
// four datasets under the IC model (k = 50); the IC twin of Figure 2.
//
//   ./build/bench/bench_fig4_opim_ic [--full] [--scale=13] [--reps=2]

#include "opim_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunDatasetPanels(
      argc, argv, opim::DiffusionModel::kIndependentCascade, "Figure 4");
}
