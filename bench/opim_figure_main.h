// Shared main() body for the Figure 2/4 benches (the four-dataset OPIM
// comparison under one diffusion model) and Figure 3/5 benches (the
// k-sweep on twitter-sim). Each figure keeps its own binary, as the
// harness contract requires; this header holds the common driver.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "diffusion/cascade.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "harness/opim_figure.h"
#include "support/stopwatch.h"

namespace opim::benchmain {

/// Runs the Figure 2/4 panel set: all four datasets at fixed k.
/// IC sampling pays hub in-degrees per reverse-BFS expansion (~8x the LT
/// cost on these graphs), so the quick default drops one scale step.
inline int RunDatasetPanels(int argc, char** argv, DiffusionModel model,
                            const char* figure_name) {
  Flags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const bool ic = model == DiffusionModel::kIndependentCascade;
  OpimFigureOptions opt;
  opt.k = static_cast<uint32_t>(flags.GetUint("k", 50));
  opt.reps =
      static_cast<uint32_t>(flags.GetUint("reps", full ? 10 : 2));
  opt.num_checkpoints = static_cast<uint32_t>(
      flags.GetUint("checkpoints", full ? 11 : (ic ? 8 : 9)));
  opt.seed = flags.GetUint("seed", 1);
  const uint32_t scale = static_cast<uint32_t>(
      flags.GetUint("scale", full ? 15 : (ic ? 12 : 13)));

  std::printf("%s: reported approximation guarantee alpha vs #RR sets "
              "(%s model, k=%u, %u reps, datasets at scale 2^%u)\n\n",
              figure_name, DiffusionModelName(model), opt.k, opt.reps,
              scale);

  for (const std::string& name : StandardDatasetNames()) {
    auto graph_or = MakeDataset(name, scale, flags.GetUint("seed", 1));
    if (!graph_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   graph_or.status().ToString().c_str());
      return 1;
    }
    const Graph& g = graph_or.ValueOrDie();
    Stopwatch sw;
    OpimFigureSeries series = RunOpimFigure(g, model, opt);
    std::printf("--- %s (n=%u, m=%llu) [%.1fs] ---\n", name.c_str(),
                g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()),
                sw.ElapsedSeconds());
    TablePrinter table = OpimFigureToTable(series);
    std::printf("%s\n", table.ToAlignedString().c_str());
    const std::string csv = flags.GetString("csv", "");
    if (!csv.empty()) {
      Status st = table.WriteCsv(csv + "_" + name + ".csv");
      if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    }
  }
  std::printf("paper shape check: Borgs ~ 0 everywhere; OPIM+ >= OPIM0; "
              "OPIM-adoptions are step functions capped at 1-1/e ~ 0.632;\n"
              "our OPIM variants exceed 1-1/e at large sample counts.\n");
  return 0;
}

/// Runs the Figure 3/5 panel set: twitter-sim with k in {1,10,100,1000}.
inline int RunKSweepPanels(int argc, char** argv, DiffusionModel model,
                           const char* figure_name) {
  Flags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const bool ic = model == DiffusionModel::kIndependentCascade;
  const uint32_t scale = static_cast<uint32_t>(
      flags.GetUint("scale", full ? 15 : (ic ? 12 : 13)));
  auto graph_or = MakeDataset("twitter-sim", scale, flags.GetUint("seed", 1));
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph_or.ValueOrDie();

  std::printf("%s: alpha vs #RR sets on twitter-sim for varying k "
              "(%s model, n=%u, m=%llu)\n\n", figure_name,
              DiffusionModelName(model), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  for (uint32_t k : {1u, 10u, 100u, 1000u}) {
    OpimFigureOptions opt;
    opt.k = k;
    opt.reps = static_cast<uint32_t>(flags.GetUint("reps", full ? 10 : 2));
    opt.num_checkpoints = static_cast<uint32_t>(
        flags.GetUint("checkpoints", full ? 11 : (ic ? 7 : 8)));
    opt.seed = flags.GetUint("seed", 1);
    Stopwatch sw;
    OpimFigureSeries series = RunOpimFigure(g, model, opt);
    std::printf("--- k = %u [%.1fs] ---\n", k, sw.ElapsedSeconds());
    TablePrinter table = OpimFigureToTable(series);
    std::printf("%s\n", table.ToAlignedString().c_str());
    const std::string csv = flags.GetString("csv", "");
    if (!csv.empty()) {
      Status st = table.WriteCsv(csv + "_k" + std::to_string(k) + ".csv");
      if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    }
  }
  std::printf("paper shape check: OPIM+ dominates for all k; OPIM' beats "
              "OPIM0 for k >= 10 but not k = 1.\n");
  // (The paper's k = 1 crossover needs near-tied top influencers and is
  // instance-dependent; see EXPERIMENTS.md and the TwinHubs test.)
  return 0;
}

}  // namespace opim::benchmain
