// Ablation — parallel RR-set generation scaling.
//
// RR sampling dominates every RIS algorithm's cost; this bench measures
// ParallelGenerate throughput versus worker count under both diffusion
// models, and the end-to-end effect on OPIM-C. Not a paper experiment
// (the authors' code is single-threaded) — it documents the headroom the
// library's parallel path provides.
//
//   ./build/bench/bench_ablation_threads [--scale=13] [--count=200000]

#include <cstdio>

#include "core/opim_c.h"
#include "harness/datasets.h"
#include "harness/flags.h"
#include "rrset/parallel_generate.h"
#include "support/stopwatch.h"
#include "support/table_printer.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 13));
  const uint64_t count = flags.GetUint("count", 200000);

  auto graph_or = opim::MakeDataset("twitter-sim", scale, 1);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const opim::Graph& g = graph_or.ValueOrDie();
  const unsigned hw = opim::ThreadPool::DefaultThreadCount();

  std::printf("Ablation: RR-set generation scaling on twitter-sim "
              "(n=%u, m=%llu, %llu sets per cell, %u hardware threads)\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(count), hw);

  opim::TablePrinter table(
      {"threads", "IC_sets_per_sec", "LT_sets_per_sec", "IC_speedup"});
  double base_ic = 0.0;
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    if (t > 2 * hw) break;
    double rate_ic, rate_lt;
    {
      opim::RRCollection rr(g.num_nodes());
      opim::Stopwatch sw;
      opim::ParallelGenerate(g, opim::DiffusionModel::kIndependentCascade,
                             &rr, count, 1, t);
      rate_ic = count / sw.ElapsedSeconds();
    }
    {
      opim::RRCollection rr(g.num_nodes());
      opim::Stopwatch sw;
      opim::ParallelGenerate(g, opim::DiffusionModel::kLinearThreshold, &rr,
                             count, 1, t);
      rate_lt = count / sw.ElapsedSeconds();
    }
    if (t == 1) base_ic = rate_ic;
    table.AddRow({opim::TablePrinter::Cell(uint64_t{t}),
                  opim::TablePrinter::Cell(rate_ic, 5),
                  opim::TablePrinter::Cell(rate_lt, 5),
                  opim::TablePrinter::Cell(rate_ic / base_ic, 3)});
  }
  std::printf("%s\n", table.ToAlignedString().c_str());

  // End-to-end: OPIM-C wall clock, serial vs parallel generation.
  std::printf("OPIM-C end-to-end (k=50, eps=0.05):\n");
  for (unsigned t : {1u, 4u}) {
    opim::OpimCOptions o;
    o.num_threads = t;
    opim::Stopwatch sw;
    opim::OpimCResult r =
        RunOpimC(g, opim::DiffusionModel::kIndependentCascade, 50, 0.05,
                 1.0 / g.num_nodes(), o);
    std::printf("  threads=%u: %.2fs (%llu RR sets, alpha=%.3f)\n", t,
                sw.ElapsedSeconds(),
                static_cast<unsigned long long>(r.num_rr_sets), r.alpha);
  }
  std::printf("\nnote: LT generation is cheaper per set (single reverse "
              "walk) but parallel speedup\nis similar; the alias tables "
              "are built once per sampler per shard.\n");
  return 0;
}
