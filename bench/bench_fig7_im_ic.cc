// Figure 7 — conventional influence maximization with (1-1/e-ε)-
// approximation on twitter-sim under the IC model; the IC twin of
// Figure 6.
//
//   ./build/bench/bench_fig7_im_ic [--full] [--scale=13] [--reps=2]

#include "im_figure_main.h"

int main(int argc, char** argv) {
  return opim::benchmain::RunImPanels(
      argc, argv, opim::DiffusionModel::kIndependentCascade, "Figure 7");
}
