// Forward simulation of influence cascades under the IC and LT models
// (paper §2.1), plus a multithreaded Monte-Carlo estimator of the expected
// spread σ(S). The paper evaluates returned seed sets with 10,000 MC
// simulations (§8.1); SpreadEstimator is that evaluator.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/random.h"

namespace opim {

/// The two diffusion models studied by the paper. Both are instances of
/// the triggering model of Kempe et al.
enum class DiffusionModel {
  /// Independent cascade: a newly activated u activates each inactive
  /// out-neighbor v independently with probability p(u, v), once.
  kIndependentCascade,
  /// Linear threshold: v has threshold λ_v ~ U[0, 1]; v activates when the
  /// summed weight of its activated in-neighbors reaches λ_v. Requires
  /// incoming weights to sum to at most 1 per node.
  kLinearThreshold,
};

/// Returns "IC" / "LT".
const char* DiffusionModelName(DiffusionModel model);

/// Simulates one cascade from `seeds` and returns the number of activated
/// nodes (including the seeds; duplicate seeds count once). If `activated`
/// is non-null it receives the activated nodes in activation order.
///
/// Allocates per call; for repeated simulation use CascadeSimulator.
uint32_t SimulateCascade(const Graph& g, DiffusionModel model,
                         std::span<const NodeId> seeds, Rng& rng,
                         std::vector<NodeId>* activated = nullptr);

/// Reusable cascade simulator: owns epoch-stamped scratch so repeated runs
/// do not reallocate or clear O(n) state. Not thread-safe; use one per
/// thread.
class CascadeSimulator {
 public:
  explicit CascadeSimulator(const Graph& g);

  /// Runs one cascade and returns the activated count.
  uint32_t Run(DiffusionModel model, std::span<const NodeId> seeds, Rng& rng,
               std::vector<NodeId>* activated = nullptr);

 private:
  uint32_t RunIc(std::span<const NodeId> seeds, Rng& rng,
                 std::vector<NodeId>* activated);
  uint32_t RunLt(std::span<const NodeId> seeds, Rng& rng,
                 std::vector<NodeId>* activated);

  const Graph& graph_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> visited_epoch_;   // activation stamp per node
  std::vector<uint32_t> touched_epoch_;   // LT: threshold-drawn stamp
  std::vector<double> threshold_;         // LT: λ_v for the current run
  std::vector<double> accumulated_;       // LT: activated in-weight so far
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_frontier_;
};

/// Monte-Carlo estimator of σ(S). Deterministic for a fixed (seed,
/// num_threads) pair: each simulation index gets a derived RNG stream.
class SpreadEstimator {
 public:
  /// `num_threads` = 0 picks the hardware default.
  SpreadEstimator(const Graph& g, DiffusionModel model,
                  unsigned num_threads = 0);
  ~SpreadEstimator();

  OPIM_DISALLOW_COPY(SpreadEstimator);

  /// Averages `num_samples` cascade sizes from `seeds`.
  double Estimate(std::span<const NodeId> seeds, uint64_t num_samples,
                  uint64_t seed = 1) const;

  /// Weighted variant: averages Σ_{v activated} node_weights[v] — the
  /// weighted spread σ_w(S). `node_weights` must have one entry per node.
  double EstimateWeighted(std::span<const NodeId> seeds,
                          std::span<const double> node_weights,
                          uint64_t num_samples, uint64_t seed = 1) const;

  /// Point estimate with a CLT standard error, for reporting confidence
  /// intervals (mean ± z·stderr).
  struct EstimateResult {
    double mean = 0.0;
    double stderr_ = 0.0;  // sample std / sqrt(num_samples)
    uint64_t num_samples = 0;
  };

  /// Like Estimate() but also returns the standard error of the mean.
  EstimateResult EstimateWithError(std::span<const NodeId> seeds,
                                   uint64_t num_samples,
                                   uint64_t seed = 1) const;

 private:
  const Graph& graph_;
  DiffusionModel model_;
  unsigned num_threads_;
};

}  // namespace opim
