#include "diffusion/cascade.h"

#include <atomic>
#include <cmath>

#include "support/thread_pool.h"

namespace opim {

const char* DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return "IC";
    case DiffusionModel::kLinearThreshold:
      return "LT";
  }
  return "?";
}

uint32_t SimulateCascade(const Graph& g, DiffusionModel model,
                         std::span<const NodeId> seeds, Rng& rng,
                         std::vector<NodeId>* activated) {
  CascadeSimulator sim(g);
  return sim.Run(model, seeds, rng, activated);
}

CascadeSimulator::CascadeSimulator(const Graph& g)
    : graph_(g),
      visited_epoch_(g.num_nodes(), 0),
      touched_epoch_(g.num_nodes(), 0),
      threshold_(g.num_nodes(), 0.0),
      accumulated_(g.num_nodes(), 0.0) {}

uint32_t CascadeSimulator::Run(DiffusionModel model,
                               std::span<const NodeId> seeds, Rng& rng,
                               std::vector<NodeId>* activated) {
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: reset stamps
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    std::fill(touched_epoch_.begin(), touched_epoch_.end(), 0);
    epoch_ = 1;
  }
  if (activated != nullptr) activated->clear();
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return RunIc(seeds, rng, activated);
    case DiffusionModel::kLinearThreshold:
      return RunLt(seeds, rng, activated);
  }
  return 0;
}

uint32_t CascadeSimulator::RunIc(std::span<const NodeId> seeds, Rng& rng,
                                 std::vector<NodeId>* activated) {
  frontier_.clear();
  uint32_t count = 0;
  for (NodeId s : seeds) {
    OPIM_CHECK_LT(s, graph_.num_nodes());
    if (visited_epoch_[s] == epoch_) continue;
    visited_epoch_[s] = epoch_;
    frontier_.push_back(s);
    if (activated != nullptr) activated->push_back(s);
    ++count;
  }
  while (!frontier_.empty()) {
    next_frontier_.clear();
    for (NodeId u : frontier_) {
      auto nbrs = graph_.OutNeighbors(u);
      auto probs = graph_.OutProbs(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        NodeId v = nbrs[i];
        if (visited_epoch_[v] == epoch_) continue;
        if (!rng.Bernoulli(probs[i])) continue;
        visited_epoch_[v] = epoch_;
        next_frontier_.push_back(v);
        if (activated != nullptr) activated->push_back(v);
        ++count;
      }
    }
    frontier_.swap(next_frontier_);
  }
  return count;
}

uint32_t CascadeSimulator::RunLt(std::span<const NodeId> seeds, Rng& rng,
                                 std::vector<NodeId>* activated) {
  frontier_.clear();
  uint32_t count = 0;
  for (NodeId s : seeds) {
    OPIM_CHECK_LT(s, graph_.num_nodes());
    if (visited_epoch_[s] == epoch_) continue;
    visited_epoch_[s] = epoch_;
    frontier_.push_back(s);
    if (activated != nullptr) activated->push_back(s);
    ++count;
  }
  while (!frontier_.empty()) {
    next_frontier_.clear();
    for (NodeId u : frontier_) {
      auto nbrs = graph_.OutNeighbors(u);
      auto probs = graph_.OutProbs(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        NodeId v = nbrs[i];
        if (visited_epoch_[v] == epoch_) continue;
        // Draw v's threshold lazily on first touch this run.
        if (touched_epoch_[v] != epoch_) {
          touched_epoch_[v] = epoch_;
          threshold_[v] = rng.UniformDouble();
          accumulated_[v] = 0.0;
        }
        accumulated_[v] += probs[i];
        if (accumulated_[v] >= threshold_[v]) {
          visited_epoch_[v] = epoch_;
          next_frontier_.push_back(v);
          if (activated != nullptr) activated->push_back(v);
          ++count;
        }
      }
    }
    frontier_.swap(next_frontier_);
  }
  return count;
}

SpreadEstimator::SpreadEstimator(const Graph& g, DiffusionModel model,
                                 unsigned num_threads)
    : graph_(g),
      model_(model),
      num_threads_(num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                    : num_threads) {}

SpreadEstimator::~SpreadEstimator() = default;

double SpreadEstimator::Estimate(std::span<const NodeId> seeds,
                                 uint64_t num_samples, uint64_t seed) const {
  if (num_samples == 0 || graph_.num_nodes() == 0) return 0.0;

  // Shard simulations over threads; each shard owns a simulator and an RNG
  // stream derived from (seed, shard), so results are deterministic for a
  // fixed thread count.
  const unsigned shards = static_cast<unsigned>(
      std::min<uint64_t>(num_samples, num_threads_));
  std::vector<uint64_t> partial(shards, 0);
  auto run_shard = [&](unsigned s) {
    CascadeSimulator sim(graph_);
    Rng rng(seed, 0x73696d00ULL + s);  // "sim"+shard
    uint64_t lo = num_samples * s / shards;
    uint64_t hi = num_samples * (s + 1) / shards;
    uint64_t total = 0;
    for (uint64_t i = lo; i < hi; ++i) {
      total += sim.Run(model_, seeds, rng);
    }
    partial[s] = total;
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    ThreadPool pool(shards);
    for (unsigned s = 0; s < shards; ++s) {
      pool.Submit([&, s] { run_shard(s); });
    }
    pool.Wait();
  }

  uint64_t total = 0;
  for (uint64_t p : partial) total += p;
  return static_cast<double>(total) / static_cast<double>(num_samples);
}

SpreadEstimator::EstimateResult SpreadEstimator::EstimateWithError(
    std::span<const NodeId> seeds, uint64_t num_samples,
    uint64_t seed) const {
  EstimateResult result;
  result.num_samples = num_samples;
  if (num_samples == 0 || graph_.num_nodes() == 0) return result;

  const unsigned shards = static_cast<unsigned>(
      std::min<uint64_t>(num_samples, num_threads_));
  std::vector<double> sum(shards, 0.0), sumsq(shards, 0.0);
  auto run_shard = [&](unsigned s) {
    CascadeSimulator sim(graph_);
    // Same stream derivation as Estimate(): identical seeds give the
    // identical mean.
    Rng rng(seed, 0x73696d00ULL + s);
    uint64_t lo = num_samples * s / shards;
    uint64_t hi = num_samples * (s + 1) / shards;
    for (uint64_t i = lo; i < hi; ++i) {
      double x = static_cast<double>(sim.Run(model_, seeds, rng));
      sum[s] += x;
      sumsq[s] += x * x;
    }
  };
  if (shards == 1) {
    run_shard(0);
  } else {
    ThreadPool pool(shards);
    for (unsigned s = 0; s < shards; ++s) {
      pool.Submit([&, s] { run_shard(s); });
    }
    pool.Wait();
  }

  double total = 0.0, total_sq = 0.0;
  for (unsigned s = 0; s < shards; ++s) {
    total += sum[s];
    total_sq += sumsq[s];
  }
  const double mean = total / static_cast<double>(num_samples);
  result.mean = mean;
  if (num_samples > 1) {
    double var = (total_sq - num_samples * mean * mean) /
                 static_cast<double>(num_samples - 1);
    result.stderr_ = std::sqrt(std::max(var, 0.0) /
                               static_cast<double>(num_samples));
  }
  return result;
}

double SpreadEstimator::EstimateWeighted(std::span<const NodeId> seeds,
                                         std::span<const double> node_weights,
                                         uint64_t num_samples,
                                         uint64_t seed) const {
  OPIM_CHECK_EQ(node_weights.size(), graph_.num_nodes());
  if (num_samples == 0 || graph_.num_nodes() == 0) return 0.0;

  const unsigned shards = static_cast<unsigned>(
      std::min<uint64_t>(num_samples, num_threads_));
  std::vector<double> partial(shards, 0.0);
  auto run_shard = [&](unsigned s) {
    CascadeSimulator sim(graph_);
    Rng rng(seed, 0x77736d00ULL + s);  // "wsm"+shard
    uint64_t lo = num_samples * s / shards;
    uint64_t hi = num_samples * (s + 1) / shards;
    std::vector<NodeId> activated;
    double total = 0.0;
    for (uint64_t i = lo; i < hi; ++i) {
      sim.Run(model_, seeds, rng, &activated);
      for (NodeId v : activated) total += node_weights[v];
    }
    partial[s] = total;
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    ThreadPool pool(shards);
    for (unsigned s = 0; s < shards; ++s) {
      pool.Submit([&, s] { run_shard(s); });
    }
    pool.Wait();
  }
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(num_samples);
}

}  // namespace opim
