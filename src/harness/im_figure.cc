#include "harness/im_figure.h"

#include <functional>

#include "baselines/dssa_fix.h"
#include "baselines/im_result.h"
#include "baselines/imm.h"
#include "baselines/ssa_fix.h"
#include "baselines/tim.h"
#include "core/opim_c.h"
#include "support/stopwatch.h"

namespace opim {

namespace {

/// What one timed run reports back to the sweep loop.
struct RunOutcome {
  std::vector<NodeId> seeds;
  double seconds = 0.0;       // extrapolated if capped
  double rr_sets = 0.0;       // demanded count if capped
  bool extrapolated = false;
};

using Runner = std::function<RunOutcome(double eps, uint64_t seed)>;

}  // namespace

std::vector<ImFigureRow> RunImFigure(const Graph& g, DiffusionModel model,
                                     const ImFigureOptions& options) {
  OPIM_CHECK_GE(options.reps, 1u);
  const double delta =
      options.delta > 0.0 ? options.delta : 1.0 / g.num_nodes();
  const uint32_t k = options.k;
  SpreadEstimator estimator(g, model);

  auto make_opimc = [&](BoundKind bound) {
    return [&, bound](double eps, uint64_t seed) {
      OpimCOptions o;
      o.bound = bound;
      o.seed = seed;
      Stopwatch sw;
      OpimCResult r = RunOpimC(g, model, k, eps, delta, o);
      RunOutcome out;
      out.seconds = sw.ElapsedSeconds();
      out.rr_sets = static_cast<double>(r.num_rr_sets);
      out.seeds = std::move(r.seeds);
      return out;
    };
  };

  Runner run_imm = [&](double eps, uint64_t seed) {
    ImmOptions o;
    o.seed = seed;
    o.max_rr_sets = options.cap_rr_sets;
    ImmStats stats;
    Stopwatch sw;
    ImResult r = RunImm(g, model, k, eps, delta, o, &stats);
    RunOutcome out;
    out.seconds = sw.ElapsedSeconds();
    out.rr_sets = static_cast<double>(r.num_rr_sets);
    out.seeds = std::move(r.seeds);
    if (stats.capped && r.num_rr_sets > 0) {
      // RR-set generation dominates; scale by the demanded sample size.
      double factor = static_cast<double>(stats.theta_required) /
                      static_cast<double>(r.num_rr_sets);
      out.seconds *= factor;
      out.rr_sets = static_cast<double>(stats.theta_required);
      out.extrapolated = true;
    }
    return out;
  };

  Runner run_ssa = [&](double eps, uint64_t seed) {
    SsaFixOptions o;
    o.seed = seed;
    o.max_rr_sets = options.cap_rr_sets;
    SsaFixStats stats;
    Stopwatch sw;
    ImResult r = RunSsaFix(g, model, k, eps, delta, o, &stats);
    RunOutcome out;
    out.seconds = sw.ElapsedSeconds();
    out.rr_sets = static_cast<double>(r.num_rr_sets);
    out.seeds = std::move(r.seeds);
    // Capped stop-and-stare: the next doubling (at least) was still due.
    if (stats.capped) {
      out.seconds *= 2.0;
      out.rr_sets *= 2.0;
      out.extrapolated = true;
    }
    return out;
  };

  Runner run_dssa = [&](double eps, uint64_t seed) {
    DssaFixOptions o;
    o.seed = seed;
    o.max_rr_sets = options.cap_rr_sets;
    DssaFixStats stats;
    Stopwatch sw;
    ImResult r = RunDssaFix(g, model, k, eps, delta, o, &stats);
    RunOutcome out;
    out.seconds = sw.ElapsedSeconds();
    out.rr_sets = static_cast<double>(r.num_rr_sets);
    out.seeds = std::move(r.seeds);
    if (stats.capped) {
      out.seconds *= 2.0;
      out.rr_sets *= 2.0;
      out.extrapolated = true;
    }
    return out;
  };

  Runner run_tim = [&](double eps, uint64_t seed) {
    TimOptions o;
    o.seed = seed;
    o.max_rr_sets = options.cap_rr_sets;
    TimStats stats;
    Stopwatch sw;
    ImResult r = RunTim(g, model, k, eps, delta, o, &stats);
    RunOutcome out;
    out.seconds = sw.ElapsedSeconds();
    out.rr_sets = static_cast<double>(r.num_rr_sets);
    out.seeds = std::move(r.seeds);
    if (stats.capped && r.num_rr_sets > 0) {
      double factor = static_cast<double>(stats.theta_required) /
                      static_cast<double>(r.num_rr_sets);
      out.seconds *= factor;
      out.rr_sets = static_cast<double>(stats.theta_required);
      out.extrapolated = true;
    }
    return out;
  };

  std::vector<std::pair<std::string, Runner>> algos = {
      {"OPIM-C0", make_opimc(BoundKind::kBasic)},
      {"OPIM-C'", make_opimc(BoundKind::kLeskovec)},
      {"OPIM-C+", make_opimc(BoundKind::kImproved)},
      {"IMM", run_imm},
      {"SSA-Fix", run_ssa},
      {"D-SSA-Fix", run_dssa},
  };
  if (options.include_tim) algos.emplace_back("TIM+", run_tim);

  std::vector<ImFigureRow> rows;
  for (const auto& [name, runner] : algos) {
    for (double eps : options.eps_list) {
      ImFigureRow row;
      row.algorithm = name;
      row.eps = eps;
      for (uint32_t rep = 0; rep < options.reps; ++rep) {
        RunOutcome out = runner(eps, options.seed + 104729ULL * rep);
        row.seconds += out.seconds;
        row.rr_sets += out.rr_sets;
        row.extrapolated = row.extrapolated || out.extrapolated;
        Stopwatch eval_watch;
        row.spread += estimator.Estimate(out.seeds, options.mc_samples,
                                         options.seed + rep);
        row.eval_seconds += eval_watch.ElapsedSeconds();
      }
      row.seconds /= options.reps;
      row.rr_sets /= options.reps;
      row.spread /= options.reps;
      row.eval_seconds /= options.reps;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

TablePrinter ImFigureToTable(const std::vector<ImFigureRow>& rows) {
  TablePrinter table({"algorithm", "eps", "spread", "seconds", "rr_sets",
                      "eval_s", "extrapolated"});
  for (const ImFigureRow& row : rows) {
    table.AddRow({row.algorithm, TablePrinter::Cell(row.eps, 3),
                  TablePrinter::Cell(row.spread, 6),
                  TablePrinter::Cell(row.seconds, 4),
                  TablePrinter::Cell(row.rr_sets, 6),
                  TablePrinter::Cell(row.eval_seconds, 4),
                  row.extrapolated ? "yes" : "no"});
  }
  return table;
}

}  // namespace opim
