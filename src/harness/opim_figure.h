// Shared runner for the OPIM experiments (Figures 2, 3, 4, 5).
//
// One invocation evaluates, on a single (graph, model, k) instance, the
// seven algorithms of §8.2/§8.3 at the paper's checkpoint schedule of
// 2^i × 1000 generated RR sets (i = 0..10), averaged over repetitions:
//
//   Borgs      — Borgs et al.'s OPIM baseline (§3.2)
//   OPIM0/+/'  — our three bound variants (§4, §5), one shared RR stream
//   IMM / SSA-Fix / D-SSA-Fix — OPIM-adoptions per §3.3
//
// The y-value is the reported approximation guarantee α at each
// checkpoint; the paper's qualitative outcome is Borgs ≈ 0,
// OPIM⁺ ≥ OPIM⁰, adoptions capped at 1 - 1/e.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "support/table_printer.h"

namespace opim {

/// Parameters for RunOpimFigure.
struct OpimFigureOptions {
  /// Seed set size (paper default 50).
  uint32_t k = 50;
  /// Failure probability; <= 0 means the paper default 1/n.
  double delta = -1.0;
  /// Checkpoints are base_checkpoint · 2^i for i = 0..num_checkpoints-1.
  uint64_t base_checkpoint = 1000;
  uint32_t num_checkpoints = 11;
  /// Independent repetitions averaged per point (paper uses 50).
  uint32_t reps = 3;
  /// Base RNG seed.
  uint64_t seed = 1;
};

/// One figure panel: α per algorithm per checkpoint, plus mean wall time
/// spent in the shared-stream Advance/QueryAll phases per checkpoint
/// (averaged over reps; diagnostic only, not deterministic).
struct OpimFigureSeries {
  std::vector<uint64_t> checkpoints;
  /// (algorithm name, mean α at each checkpoint).
  std::vector<std::pair<std::string, std::vector<double>>> series;
  /// Mean seconds spent generating RR sets up to each checkpoint.
  std::vector<double> advance_seconds;
  /// Mean seconds spent in QueryAll at each checkpoint.
  std::vector<double> query_seconds;
};

/// Runs the seven-algorithm comparison.
OpimFigureSeries RunOpimFigure(const Graph& g, DiffusionModel model,
                               const OpimFigureOptions& options);

/// Renders a series as a table with one row per checkpoint and one column
/// per algorithm.
TablePrinter OpimFigureToTable(const OpimFigureSeries& series);

}  // namespace opim
