// Shared runner for the conventional influence-maximization experiments
// (Figures 6 and 7): expected spread and running time versus ε for
// OPIM-C⁰ / OPIM-C′ / OPIM-C⁺ against IMM, SSA-Fix and D-SSA-Fix, all
// promising the same (1 - 1/e - ε)-guarantee at failure probability δ.
//
// The paper ran IMM at ε = 0.01 on Twitter for ~10⁵ seconds; this harness
// instead caps every baseline at `cap_rr_sets` generated RR sets and, when
// the cap fires, extrapolates the full running time from the measured
// per-RR-set cost and the sample size the algorithm's formulas demanded
// (RR-set generation dominates these algorithms asymptotically; the
// extrapolated rows are flagged). OPIM-C stops on its own bound and is
// never extrapolated — that gap is the phenomenon being measured.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "support/table_printer.h"

namespace opim {

/// Parameters for RunImFigure.
struct ImFigureOptions {
  /// Seed set size (paper default 50).
  uint32_t k = 50;
  /// Failure probability; <= 0 means the paper default 1/n.
  double delta = -1.0;
  /// The ε sweep (paper: 0.01 to 0.1).
  std::vector<double> eps_list = {0.1, 0.05, 0.02, 0.01};
  /// Monte-Carlo samples for the spread evaluation (paper: 10,000).
  uint64_t mc_samples = 2000;
  /// Independent repetitions averaged per point.
  uint32_t reps = 3;
  /// Base RNG seed.
  uint64_t seed = 1;
  /// RR-set cap per baseline run (0 = uncapped).
  uint64_t cap_rr_sets = 2000000;
  /// Also run TIM+ (not in the paper's Figures 6-7, which predate it being
  /// dropped from comparisons; available for completeness).
  bool include_tim = false;
};

/// One (algorithm, ε) measurement.
struct ImFigureRow {
  std::string algorithm;
  double eps = 0.0;
  /// Mean Monte-Carlo spread of the returned seeds.
  double spread = 0.0;
  /// Mean wall-clock seconds per run (extrapolated when capped).
  double seconds = 0.0;
  /// Mean RR sets generated (the demanded count when capped).
  double rr_sets = 0.0;
  /// Mean seconds spent in the Monte-Carlo spread evaluation (diagnostic;
  /// not part of the algorithm's running time).
  double eval_seconds = 0.0;
  /// True if any rep hit the cap and the time is extrapolated.
  bool extrapolated = false;
};

/// Runs the six-algorithm sweep; rows grouped by algorithm, ε descending
/// as given in options.eps_list.
std::vector<ImFigureRow> RunImFigure(const Graph& g, DiffusionModel model,
                                     const ImFigureOptions& options);

/// Renders rows as an aligned table.
TablePrinter ImFigureToTable(const std::vector<ImFigureRow>& rows);

}  // namespace opim
