#include "harness/flags.h"

#include <cstdlib>

namespace opim {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

uint64_t Flags::GetUint(const std::string& name, uint64_t fallback) const {
  int64_t v = GetInt(name, -1);
  return v < 0 ? fallback : static_cast<uint64_t>(v);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace opim
