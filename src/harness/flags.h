// Minimal command-line flag parsing for the bench and example binaries.
// Flags look like --name=value or --name value; anything else is a
// positional argument.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opim {

/// Parsed command line: --key=value flags plus positionals.
class Flags {
 public:
  /// Parses argv (argv[0] skipped).
  Flags(int argc, char** argv);

  /// True if --name was given.
  bool Has(const std::string& name) const;

  /// Typed accessors with defaults. Malformed values fall back to the
  /// default (benches prefer running over aborting on a typo).
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  uint64_t GetUint(const std::string& name, uint64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace opim
