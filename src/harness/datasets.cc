#include "harness/datasets.h"

#include "gen/generators.h"

namespace opim {

std::vector<std::string> StandardDatasetNames() {
  return {"pokec-sim", "orkut-sim", "livejournal-sim", "twitter-sim"};
}

Result<Graph> MakeDataset(const std::string& name, uint32_t scale_exponent,
                          uint64_t seed) {
  if (scale_exponent < 8 || scale_exponent > 24) {
    return Status::InvalidArgument("scale_exponent must be in [8, 24]");
  }
  const uint32_t n = 1u << scale_exponent;
  GenOptions opt;
  opt.seed = seed;
  opt.scheme = WeightScheme::kWeightedCascade;

  if (name == "pokec-sim") {
    // Pokec: directed, avg degree 37.5 -> 37-38 out-edges per node.
    return GenerateBarabasiAlbert(n, 37, /*undirected=*/false, opt);
  }
  if (name == "orkut-sim") {
    // Orkut: undirected, avg degree 76.3 -> 38 undirected attachments
    // (each contributing 2 directed edges).
    return GenerateBarabasiAlbert(n, 38, /*undirected=*/true, opt);
  }
  if (name == "livejournal-sim") {
    // LiveJournal: directed power-law, avg degree 28.5.
    return GeneratePowerLawConfiguration(n, /*exponent=*/2.1,
                                         /*avg_degree=*/28.5,
                                         /*max_degree=*/n / 8, opt);
  }
  if (name == "twitter-sim") {
    // Twitter: heavily skewed follow graph, avg degree 70.5.
    return GenerateRmat(scale_exponent,
                        static_cast<uint64_t>(70.5 * n), 0.57, 0.19, 0.19,
                        0.05, opt);
  }
  return Status::NotFound("unknown dataset: " + name +
                          " (expected one of pokec-sim, orkut-sim, "
                          "livejournal-sim, twitter-sim)");
}

Graph MakeTinyTestGraph(uint32_t n, uint64_t seed) {
  GenOptions opt;
  opt.seed = seed;
  opt.scheme = WeightScheme::kWeightedCascade;
  return GenerateBarabasiAlbert(n, 4, /*undirected=*/false, opt);
}

}  // namespace opim
