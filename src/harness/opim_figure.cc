#include "harness/opim_figure.h"

#include "baselines/borgs_online.h"
#include "baselines/dssa_fix.h"
#include "baselines/imm.h"
#include "baselines/opim_adoption.h"
#include "baselines/ssa_fix.h"
#include "core/online_maximizer.h"
#include "support/stopwatch.h"

namespace opim {

namespace {

/// Indices into the series vector (kept in presentation order).
enum AlgoIndex {
  kBorgs = 0,
  kOpim0,
  kOpimPlus,
  kOpimPrime,
  kAdoptImm,
  kAdoptSsa,
  kAdoptDssa,
  kNumAlgos,
};

const char* kAlgoNames[kNumAlgos] = {
    "Borgs", "OPIM0", "OPIM+", "OPIM'", "IMM", "SSA-Fix", "D-SSA-Fix",
};

}  // namespace

OpimFigureSeries RunOpimFigure(const Graph& g, DiffusionModel model,
                               const OpimFigureOptions& options) {
  OPIM_CHECK_GE(options.reps, 1u);
  OPIM_CHECK_GE(options.num_checkpoints, 1u);
  const double delta =
      options.delta > 0.0 ? options.delta : 1.0 / g.num_nodes();

  OpimFigureSeries out;
  for (uint32_t i = 0; i < options.num_checkpoints; ++i) {
    out.checkpoints.push_back(options.base_checkpoint << i);
  }
  const uint64_t budget = out.checkpoints.back();
  const size_t num_cp = out.checkpoints.size();

  std::vector<std::vector<double>> sums(
      kNumAlgos, std::vector<double>(num_cp, 0.0));
  std::vector<double> advance_sums(num_cp, 0.0);
  std::vector<double> query_sums(num_cp, 0.0);

  for (uint32_t rep = 0; rep < options.reps; ++rep) {
    const uint64_t rep_seed = options.seed + 7919ULL * rep;

    // Our OPIM variants share one RR stream; QueryAll judges all three.
    OnlineMaximizer om(g, model, options.k, delta, rep_seed);
    // Borgs' baseline streams its own RR sets.
    BorgsOnline borgs(g, model, options.k, rep_seed ^ 0xb0b5);

    uint64_t generated = 0;
    for (size_t c = 0; c < num_cp; ++c) {
      const uint64_t target = out.checkpoints[c];
      Stopwatch watch;
      om.Advance(target - generated);
      advance_sums[c] += watch.ElapsedSeconds();
      borgs.Advance(target - generated);
      generated = target;

      watch.Restart();
      OnlineSnapshotAll snap = om.QueryAll();
      query_sums[c] += watch.ElapsedSeconds();
      sums[kOpim0][c] += snap.alpha_basic;
      sums[kOpimPlus][c] += snap.alpha_improved;
      sums[kOpimPrime][c] += snap.alpha_leskovec;
      sums[kBorgs][c] += borgs.Query().alpha;
    }

    // Adoption curves: each conventional algorithm is re-invoked with the
    // §3.3 ε-schedule; capping an invocation at the budget marks it
    // incomplete (its step lands past every checkpoint).
    auto add_adoption = [&](AlgoIndex idx, auto&& run_algo) {
      auto curve = BuildAdoptionCurve(
          [&](double eps, uint32_t invocation) {
            return run_algo(eps, rep_seed * 31 + invocation);
          },
          budget);
      for (size_t c = 0; c < num_cp; ++c) {
        sums[idx][c] += AdoptionAlphaAt(curve, out.checkpoints[c]);
      }
    };

    add_adoption(kAdoptImm, [&](double eps, uint64_t seed) {
      ImmOptions o;
      o.seed = seed;
      o.max_rr_sets = budget + 1;
      return RunImm(g, model, options.k, eps, delta, o);
    });
    add_adoption(kAdoptSsa, [&](double eps, uint64_t seed) {
      SsaFixOptions o;
      o.seed = seed;
      o.max_rr_sets = budget + 1;
      return RunSsaFix(g, model, options.k, eps, delta, o);
    });
    add_adoption(kAdoptDssa, [&](double eps, uint64_t seed) {
      DssaFixOptions o;
      o.seed = seed;
      o.max_rr_sets = budget + 1;
      return RunDssaFix(g, model, options.k, eps, delta, o);
    });
  }

  for (int a = 0; a < kNumAlgos; ++a) {
    std::vector<double> means(num_cp);
    for (size_t c = 0; c < num_cp; ++c) {
      means[c] = sums[a][c] / options.reps;
    }
    out.series.emplace_back(kAlgoNames[a], std::move(means));
  }
  out.advance_seconds.resize(num_cp);
  out.query_seconds.resize(num_cp);
  for (size_t c = 0; c < num_cp; ++c) {
    out.advance_seconds[c] = advance_sums[c] / options.reps;
    out.query_seconds[c] = query_sums[c] / options.reps;
  }
  return out;
}

TablePrinter OpimFigureToTable(const OpimFigureSeries& series) {
  const bool with_times =
      series.advance_seconds.size() == series.checkpoints.size() &&
      series.query_seconds.size() == series.checkpoints.size();
  std::vector<std::string> headers = {"rr_sets"};
  for (const auto& [name, values] : series.series) headers.push_back(name);
  if (with_times) {
    headers.push_back("advance_s");
    headers.push_back("query_s");
  }
  TablePrinter table(std::move(headers));
  for (size_t c = 0; c < series.checkpoints.size(); ++c) {
    std::vector<std::string> row = {
        TablePrinter::Cell(series.checkpoints[c])};
    for (const auto& [name, values] : series.series) {
      row.push_back(TablePrinter::Cell(values[c], 4));
    }
    if (with_times) {
      row.push_back(TablePrinter::Cell(series.advance_seconds[c], 4));
      row.push_back(TablePrinter::Cell(series.query_seconds[c], 4));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace opim
