// Dataset registry for the experiments.
//
// The paper's Table 2 datasets are SNAP graphs too large to ship; the
// registry provides deterministic synthetic stand-ins whose degree shape
// and average degree match each dataset's character, at a laptop-friendly
// scale (DESIGN.md §3 documents the substitution argument):
//
//   pokec-sim        BA preferential attachment, directed, avg deg ~ 37
//   orkut-sim        BA undirected (symmetric),  avg deg ~ 76
//   livejournal-sim  power-law configuration,    avg deg ~ 28
//   twitter-sim      R-MAT (skewed),             avg deg ~ 70
//
// `scale_exponent` sets n ≈ 2^scale (default 15 → 32768 nodes). Real SNAP
// files can be used instead via graph/graph_io.h.

#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/status.h"

namespace opim {

/// The four stand-in dataset names in Table 2 order.
std::vector<std::string> StandardDatasetNames();

/// Builds the named dataset at the given scale (n ≈ 2^scale_exponent).
/// Edges get weighted-cascade probabilities p(u,v) = 1/indeg(v), the
/// paper's setting. Unknown names return NotFound.
Result<Graph> MakeDataset(const std::string& name,
                          uint32_t scale_exponent = 15, uint64_t seed = 1);

/// A small fixture graph for tests and the quickstart example: BA graph
/// with `n` nodes, avg degree ~ 8, WC weights. Deterministic in `seed`.
Graph MakeTinyTestGraph(uint32_t n = 256, uint64_t seed = 1);

}  // namespace opim
