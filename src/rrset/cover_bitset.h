// Covered-RR-set state as a flat 64-bit-word bitset, plus the counting
// kernels CELF's marginal recount hot path runs over it.
//
// Postings for a node come in two representations (see rr_collection.h):
// raw ascending RR ids, or (word index, 64-bit mask) blocks for dense
// nodes. The kernels below answer "how many of this node's RR sets are
// still uncovered" — an intersection with the complement of the bitset
// followed by a popcount — in whole 64-bit words. Both have a portable
// scalar implementation and an AVX2 one (cover_kernels_avx2.cc, compiled
// only under the OPIM_SIMD CMake gate on x86-64); dispatch is resolved at
// runtime from cpuid and can be forced per process with
// SetCoverageSimdMode, which is how the differential tests pin the two
// paths bit-identical.

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/macros.h"

namespace opim {

/// Index of an RR set within a collection (canonical alias; identical to
/// the one rr_collection.h declares).
using RRId = uint32_t;

/// Bitset over RR-set ids; bit i set means RR set i is covered.
class CoverBitset {
 public:
  /// Sizes for `num_bits` ids and clears every bit.
  void Reset(uint64_t num_bits) {
    words_.assign((num_bits + 63) / 64, 0);
    num_bits_ = num_bits;
  }

  /// Grows to `num_bits` ids, preserving every existing bit; the new tail
  /// bits are clear. `num_bits` must not shrink the bitset — append-only
  /// RR pools only ever grow, and the incremental selection state relies
  /// on the old prefix staying intact across doublings.
  void Extend(uint64_t num_bits) {
    OPIM_DCHECK_LE(num_bits_, num_bits);
    words_.resize((num_bits + 63) / 64, 0);
    num_bits_ = num_bits;
  }

  /// Clears every bit without releasing the word arena.
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  bool Test(uint64_t i) const {
    OPIM_DCHECK_LT(i, num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(uint64_t i) {
    OPIM_DCHECK_LT(i, num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t num_words() const { return words_.size(); }
  uint64_t num_bits() const { return num_bits_; }

  uint64_t MemoryUsage() const {
    return words_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> words_;
  uint64_t num_bits_ = 0;
};

/// Coverage-kernel selection. kAuto resolves from cpuid at first use;
/// kScalar/kAvx2 force a path (kAvx2 silently degrades to scalar when the
/// binary or CPU lacks AVX2 — check CoverageSimdAvailable()).
enum class SimdMode { kAuto, kScalar, kAvx2 };

/// Process-wide override, primarily for differential tests.
void SetCoverageSimdMode(SimdMode mode);

/// True iff the AVX2 path is compiled in and this CPU supports it.
bool CoverageSimdAvailable();

/// The resolved mode (never kAuto).
SimdMode EffectiveCoverageSimd();

/// "avx2" or "scalar" — what the counting kernels will actually run.
const char* ActiveCoverageKernelName();

/// Number of `ids` whose bit is clear in `words` (raw postings).
uint64_t CountUncoveredIds(std::span<const RRId> ids, const uint64_t* words);

/// Popcount of masks & ~words[block_words[i]] over all blocks.
uint64_t CountUncoveredBlocks(std::span<const uint32_t> block_words,
                              std::span<const uint64_t> block_masks,
                              const uint64_t* words);

/// Marks every id covered and calls `fn(RRId)` for each id that was not
/// already covered, in ascending order.
template <typename Fn>
inline void ForEachNewlyCoveredIds(std::span<const RRId> ids, uint64_t* words,
                                   Fn&& fn) {
  for (RRId id : ids) {
    uint64_t& w = words[id >> 6];
    const uint64_t bit = uint64_t{1} << (id & 63);
    if ((w & bit) == 0) {
      w |= bit;
      fn(id);
    }
  }
}

/// Block-rep variant of ForEachNewlyCoveredIds.
template <typename Fn>
inline void ForEachNewlyCoveredBlocks(std::span<const uint32_t> block_words,
                                      std::span<const uint64_t> block_masks,
                                      uint64_t* words, Fn&& fn) {
  for (size_t i = 0; i < block_words.size(); ++i) {
    const uint32_t wi = block_words[i];
    uint64_t fresh = block_masks[i] & ~words[wi];
    if (fresh == 0) continue;
    words[wi] |= fresh;
    const uint64_t base = uint64_t{wi} << 6;
    while (fresh != 0) {
      fn(static_cast<RRId>(base + std::countr_zero(fresh)));
      fresh &= fresh - 1;
    }
  }
}

}  // namespace opim
