// Crash-safe .opimss snapshots of the OPIM-C run state.
//
// A snapshot captures everything the doubling loop needs to continue a
// run after a crash, OOM-kill, or guardrail trip: both compressed RR
// pools (R1 and R2, serialized as their canonical chunk byte runs +
// slot words), the sampler's batch counter (the RR stream is a pure
// function of (seed, num_threads, batch_counter), so no generator
// state beyond the counter exists), and the doubling-loop position —
// next iteration, ε/δ schedule parameters, RunControl peak accounting.
// Resuming from a snapshot written at an iteration boundary and
// re-running from that iteration is bit-identical to never having
// stopped: the same seeds, the same Eq. (10) certificate, the same RR
// stream (tests/core/checkpoint_resume_test.cc pins this for the eager
// and pipelined schedules).
//
// Container layout (all little-endian, written via
// support/atomic_file.h so readers only ever see complete files):
//
//   [0, 64)   OpimssHeader — magic "OPIMSSv1", version, header size,
//             payload length, and a word-wise FNV-1a checksum of the
//             payload (the .opimg conventions from graph/graph_mmap.h).
//   [64, ...) payload:
//             SnapshotRunState (fixed 88-byte packed record)
//             pool R1: PoolSection
//             pool R2: PoolSection
//
//   PoolSection = header {num_nodes, num_sets, num_chunks,
//                 retain_costs, total_members, total_edges_examined,
//                 encoded_pool_bytes}
//               + slot words  (num_sets × u32)
//               + cost column (num_sets × u64, iff retain_costs)
//               + per chunk: u64 run length + the group-varint run
//
// LoadSnapshot is strict: truncation, trailing bytes, bad magic,
// version skew, flag skew, checksum mismatch, declared lengths that
// overflow the payload, and structurally invalid pools (slot offsets
// out of order or range, undecodable set encodings, member totals that
// do not add up) each fail with a distinct Status naming the file and
// the defect — never UB, never a partial result. A checkpoint reader
// treats any non-OK load as "no snapshot".
//
// Fault-injection sites snapshot.short_write / snapshot.rename_fail /
// snapshot.corrupt_header are documented in support/fault_inject.h.

#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "rrset/rr_collection.h"
#include "support/status.h"

namespace opim {

/// Current .opimss container version.
inline constexpr uint32_t kOpimssVersion = 1;

/// Byte offsets into the 64-byte header, exposed so tests and tools can
/// corrupt or inspect specific fields without re-deriving the layout.
inline constexpr size_t kOpimssHeaderBytes = 64;
inline constexpr size_t kOpimssVersionOffset = 8;
inline constexpr size_t kOpimssPayloadBytesOffset = 24;
inline constexpr size_t kOpimssChecksumOffset = 32;

#pragma pack(push, 1)
/// The doubling-loop position and run identity, serialized verbatim.
/// Resume refuses (via the engine's consistency checks and the CLI's
/// graph-fingerprint validation) to continue a run whose parameters or
/// graph differ from the snapshot's.
struct SnapshotRunState {
  uint64_t run_seed = 0;        // OpimCOptions::seed
  uint64_t batch_counter = 0;   // next RR batch index to consume
  uint64_t peak_rr_bytes = 0;   // RunControl peak at snapshot time
  uint64_t graph_edges = 0;     // graph fingerprint: m
  uint64_t weights_checksum = 0;  // FNV-1a over node weights; 0 = none
  double eps = 0.0;
  double delta = 0.0;
  uint32_t next_iteration = 1;  // doubling iteration to (re-)enter
  uint32_t num_threads = 1;     // resolved worker count (stream identity)
  uint32_t k = 0;
  uint32_t bound = 0;           // BoundKind underlying value
  uint32_t model = 0;           // DiffusionModel underlying value
  uint32_t clean_boundary = 1;  // 1 = exact iteration-boundary state
  uint32_t graph_nodes = 0;     // graph fingerprint: n
  uint32_t reserved = 0;
};
#pragma pack(pop)
static_assert(sizeof(SnapshotRunState) == 88,
              ".opimss run-state record is part of the wire format");

/// A loaded snapshot: the run position plus both restored pools (index
/// marked stale; EnsureIndex or the first read rebuilds it).
struct RRPoolSnapshot {
  SnapshotRunState run;
  RRCollection r1{0};
  RRCollection r2{0};
};

/// Serializes `run` + both pools and atomically publishes the container
/// at `path` (write-to-temp + fsync + rename; on failure any previous
/// file at `path` is untouched). Spilled chunks are faulted in for the
/// write. Returns the container size in bytes.
Result<uint64_t> SaveSnapshot(const SnapshotRunState& run,
                              const RRCollection& r1, const RRCollection& r2,
                              const std::string& path);

/// Strictly validates and loads a snapshot container. See the file
/// comment for the rejection taxonomy; safe on untrusted bytes.
Result<RRPoolSnapshot> LoadSnapshot(const std::string& path);

/// Fingerprint for the optional node-weight vector carried in
/// SnapshotRunState::weights_checksum (0 for an empty span).
uint64_t SnapshotWeightsChecksum(std::span<const double> weights);

}  // namespace opim
