#include "rrset/rr_sampler.h"

#include "obs/telemetry.h"

namespace opim {

void RRSampler::Generate(RRCollection* collection, uint64_t count, Rng& rng) {
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t cost = SampleInto(rng, &scratch);
    collection->AddSet(scratch, cost);
  }
}

namespace {

/// Builds the (possibly empty) weighted-root alias table, validating size.
AliasSampler MakeRootSampler(const Graph& g,
                             std::span<const double> root_weights) {
  if (root_weights.empty()) return AliasSampler();
  OPIM_CHECK_EQ(root_weights.size(), g.num_nodes());
  return AliasSampler(
      std::vector<double>(root_weights.begin(), root_weights.end()));
}

NodeId PickRoot(const Graph& g, const AliasSampler& root_sampler, Rng& rng) {
  if (root_sampler.empty()) return rng.UniformBelow(g.num_nodes());
  return root_sampler.Sample(rng);
}

}  // namespace

IcRRSampler::IcRRSampler(const Graph& g, std::span<const double> root_weights)
    : graph_(g),
      root_sampler_(MakeRootSampler(g, root_weights)),
      visited_epoch_(g.num_nodes(), 0) {
  OPIM_CHECK_GT(g.num_nodes(), 0u);
}

uint64_t IcRRSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  NodeId root = PickRoot(graph_, root_sampler_, rng);
  OPIM_TM_STMT(alias_draws_ += root_sampler_.empty() ? 0 : 1);
  visited_epoch_[root] = epoch_;
  out->push_back(root);
  queue_.clear();
  queue_.push_back(root);
  uint64_t edges_examined = 0;

  // `queue_` doubles as BFS frontier storage; `head` walks it in order.
  for (size_t head = 0; head < queue_.size(); ++head) {
    NodeId u = queue_[head];
    auto in_nbrs = graph_.InNeighbors(u);
    auto in_probs = graph_.InProbs(u);
    edges_examined += in_nbrs.size();
    for (size_t i = 0; i < in_nbrs.size(); ++i) {
      NodeId w = in_nbrs[i];
      if (visited_epoch_[w] == epoch_) continue;
      if (!rng.Bernoulli(in_probs[i])) continue;
      visited_epoch_[w] = epoch_;
      out->push_back(w);
      queue_.push_back(w);
    }
  }
  return edges_examined;
}

LtRRSampler::LtRRSampler(const Graph& g, std::span<const double> root_weights)
    : graph_(g),
      root_sampler_(MakeRootSampler(g, root_weights)),
      in_alias_(g.num_nodes()),
      visited_epoch_(g.num_nodes(), 0) {
  OPIM_CHECK_GT(g.num_nodes(), 0u);
  OPIM_CHECK_MSG(g.MaxInWeightSum() <= 1.0 + 1e-9,
                 "LT requires per-node incoming weights to sum to <= 1");
  std::vector<double> weights;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto probs = g.InProbs(v);
    weights.assign(probs.begin(), probs.end());
    in_alias_[v].Build(weights);
  }
}

uint64_t LtRRSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  NodeId u = PickRoot(graph_, root_sampler_, rng);
  OPIM_TM_STMT(alias_draws_ += root_sampler_.empty() ? 0 : 1);
  uint64_t edges_examined = 0;
  for (;;) {
    if (visited_epoch_[u] == epoch_) break;  // walk closed a cycle
    visited_epoch_[u] = epoch_;
    out->push_back(u);
    edges_examined += graph_.InDegree(u);
    double stay = graph_.InWeightSum(u);
    if (stay <= 0.0 || in_alias_[u].empty()) break;  // no in-neighbors
    if (rng.UniformDouble() >= stay) break;          // walk stops at u
    uint32_t pick = in_alias_[u].Sample(rng);
    OPIM_TM_STMT(++alias_draws_);
    u = graph_.InNeighbors(u)[pick];
  }
  return edges_examined;
}

std::unique_ptr<RRSampler> MakeRRSampler(
    const Graph& g, DiffusionModel model,
    std::span<const double> root_weights) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return std::make_unique<IcRRSampler>(g, root_weights);
    case DiffusionModel::kLinearThreshold:
      return std::make_unique<LtRRSampler>(g, root_weights);
  }
  return nullptr;
}

}  // namespace opim
