#include "rrset/rr_sampler.h"

#include <utility>

#include "obs/telemetry.h"

namespace opim {

SamplingView::Parts SamplingViewPartsFor(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return SamplingView::Parts::kIc;
    case DiffusionModel::kLinearThreshold:
      return SamplingView::Parts::kLt;
  }
  return SamplingView::Parts::kBoth;
}

void RRSampler::Generate(RRCollection* collection, uint64_t count, Rng& rng) {
  if (count == 0) return;
  // Each set is sorted and compressed the moment it is sampled (members
  // still cache-hot) — the raw member pool of the old RRBatch path is
  // never materialized — and ingestion is one shard-merge.
  ShardEncoder encoder;
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t cost = SampleInto(rng, &scratch);
    encoder.Add(&scratch, cost);
  }
  std::vector<CompressedRRShard> shards;
  shards.push_back(encoder.Finish(graph().num_nodes()));
  collection->AddCompressedShards(std::move(shards));
}

namespace {

/// Builds the (possibly empty) weighted-root alias table, validating size.
AliasSampler MakeRootSampler(const Graph& g,
                             std::span<const double> root_weights) {
  if (root_weights.empty()) return AliasSampler();
  OPIM_CHECK_EQ(root_weights.size(), g.num_nodes());
  return AliasSampler(
      std::vector<double>(root_weights.begin(), root_weights.end()));
}

NodeId PickRoot(const Graph& g, const AliasSampler* root, Rng& rng) {
  if (root == nullptr) return rng.UniformBelow(g.num_nodes());
  return root->Sample(rng);
}

}  // namespace

IcRRSampler::IcRRSampler(const Graph& g, std::span<const double> root_weights)
    : owned_view_(std::make_unique<const SamplingView>(
          g, SamplingView::Parts::kIc)),
      view_(owned_view_.get()),
      owned_root_(MakeRootSampler(g, root_weights)),
      root_(owned_root_.empty() ? nullptr : &owned_root_),
      visited_epoch_(g.num_nodes(), 0) {}

IcRRSampler::IcRRSampler(const SamplingView& view,
                         const AliasSampler* shared_root)
    : view_(&view),
      root_(shared_root != nullptr && !shared_root->empty() ? shared_root
                                                            : nullptr),
      visited_epoch_(view.graph().num_nodes(), 0) {
  OPIM_CHECK_MSG(view.has_ic(), "SamplingView lacks the IC part");
}

uint64_t IcRRSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  const SamplingView& view = *view_;
  const Graph& g = view.graph();
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  uint32_t* const visited = visited_epoch_.data();
  const uint32_t epoch = epoch_;
  const SamplingView::IcNodeMeta* const meta = view.IcMetaData();
  const SamplingView::IcEdge* const all_edges = view.IcEdgeData();

  // Refill the root lookahead ring: draw a block of roots and prefetch
  // their visited slots and packed records, so that by the time each one
  // is sampled its two random cache lines are already resident.
  if (ring_pos_ == kRootLookahead) {
    for (uint32_t i = 0; i < kRootLookahead; ++i) {
      const NodeId r = PickRoot(g, root_, rng);
      root_ring_[i] = r;
      __builtin_prefetch(visited + r, 1);
      __builtin_prefetch(meta + r);
    }
    OPIM_TM_STMT(alias_draws_ += root_ == nullptr ? 0 : kRootLookahead);
    ring_pos_ = 0;
  }
  const NodeId root = root_ring_[ring_pos_++];
  visited[root] = epoch;
  out->push_back(root);
  uint64_t edges_examined = 0;

  // `out` doubles as the BFS frontier: members in visit order are exactly
  // the RR set, so `head` walks the output vector while it grows. Each
  // member costs one packed-meta load (offset + full in-degree + kind) and
  // one run through its interleaved {neighbor, reject} pairs.
  std::vector<NodeId>& frontier = *out;
  for (size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    const SamplingView::IcNodeMeta m = meta[u];
    // The cost contract charges the *full* in-degree of every member, even
    // though the view compacts away p <= 0 edges and skipping elides draws.
    edges_examined += m.indeg_kind >> 2;
    const SamplingView::IcEdge* const edges = all_edges + m.offset;
    const uint32_t kept = meta[u + 1].offset - m.offset;
    switch (static_cast<SamplingView::IcNodeKind>(m.indeg_kind & 3u)) {
      case SamplingView::IcNodeKind::kEmpty:
        break;
      case SamplingView::IcNodeKind::kKeepAll:
        for (uint32_t i = 0; i < kept; ++i) {
          const NodeId w = edges[i].nbr;
          if (visited[w] == epoch) continue;
          visited[w] = epoch;
          // Fetch the new member's packed record while the current node's
          // remaining edges are processed; by the time `head` reaches it
          // the load has left the critical path.
          __builtin_prefetch(meta + w);
          frontier.push_back(w);
        }
        break;
      case SamplingView::IcNodeKind::kSkip: {
        // Uniform p: the gap to the next live edge is Geometric(p), so jump
        // straight to it — expected p·deg + 1 draws instead of deg.
        const double inv = view.IcSkipInvLog(u);
        for (uint64_t j = rng.GeometricSkip(inv); j < kept;) {
          const NodeId w = edges[j].nbr;
          if (visited[w] != epoch) {
            visited[w] = epoch;
            __builtin_prefetch(meta + w);
            frontier.push_back(w);
          }
          const uint64_t gap = rng.GeometricSkip(inv);
          if (gap >= kept - j - 1) break;  // next live edge is past the end
          j += gap + 1;
        }
        break;
      }
      case SamplingView::IcNodeKind::kPerEdge: {
        // Flip the coin before touching the visited array: a rejected edge
        // (the common case) then costs one sequential pair load and one
        // draw, never a random access into the n-sized epoch array.
        for (uint32_t i = 0; i < kept; ++i) {
          if (rng.NextU32() < edges[i].rej) continue;
          const NodeId w = edges[i].nbr;
          if (visited[w] == epoch) continue;
          visited[w] = epoch;
          __builtin_prefetch(meta + w);
          frontier.push_back(w);
        }
        break;
      }
    }
  }
  return edges_examined;
}

LtRRSampler::LtRRSampler(const Graph& g, std::span<const double> root_weights)
    : owned_view_(std::make_unique<const SamplingView>(
          g, SamplingView::Parts::kLt)),
      view_(owned_view_.get()),
      owned_root_(MakeRootSampler(g, root_weights)),
      root_(owned_root_.empty() ? nullptr : &owned_root_),
      visited_epoch_(g.num_nodes(), 0) {}

LtRRSampler::LtRRSampler(const SamplingView& view,
                         const AliasSampler* shared_root)
    : view_(&view),
      root_(shared_root != nullptr && !shared_root->empty() ? shared_root
                                                            : nullptr),
      visited_epoch_(view.graph().num_nodes(), 0) {
  OPIM_CHECK_MSG(view.has_lt(), "SamplingView lacks the LT part");
}

uint64_t LtRRSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  const SamplingView& view = *view_;
  const Graph& g = view.graph();
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  uint32_t* const visited = visited_epoch_.data();
  const uint32_t epoch = epoch_;
  const SamplingView::LtNodeMeta* const meta = view.LtMetaData();
  const SamplingView::LtBucket* const buckets = view.LtBucketData();

  // Root lookahead, as in the IC kernel: block-draw and prefetch.
  if (ring_pos_ == kRootLookahead) {
    for (uint32_t i = 0; i < kRootLookahead; ++i) {
      const NodeId r = PickRoot(g, root_, rng);
      root_ring_[i] = r;
      __builtin_prefetch(visited + r, 1);
      __builtin_prefetch(meta + r);
    }
    OPIM_TM_STMT(alias_draws_ += root_ == nullptr ? 0 : kRootLookahead);
    ring_pos_ = 0;
  }
  NodeId u = root_ring_[ring_pos_++];
  uint64_t edges_examined = 0;
  // Each step costs one packed-meta load (offset + stop threshold, with
  // in-degree as the offset delta) and one resolved bucket load — the
  // walk never touches the Graph adjacency arrays.
  for (;;) {
    if (visited[u] == epoch) break;  // walk closed a cycle
    visited[u] = epoch;
    out->push_back(u);
    const SamplingView::LtNodeMeta m = meta[u];
    const uint32_t d = meta[u + 1].offset - m.offset;
    edges_examined += d;
    if (m.stop_rej == SamplingView::kAlwaysReject) break;  // no stay mass
    // Saturated nodes (Σ p = 1, e.g. weighted cascade) have stop_rej == 0
    // and never spend a draw on the stop decision.
    if (m.stop_rej != 0 && rng.NextU32() < m.stop_rej) break;  // walk stops
    const uint32_t pick = d == 1 ? 0 : rng.UniformBelow(d);
    const SamplingView::LtBucket b = buckets[m.offset + pick];
    // Full buckets (rej == 0) keep their own neighbor without a draw.
    u = (b.rej != 0 && rng.NextU32() < b.rej) ? b.alias : b.keep;
    OPIM_TM_STMT(++alias_draws_);
  }
  return edges_examined;
}

std::unique_ptr<RRSampler> MakeRRSampler(
    const Graph& g, DiffusionModel model,
    std::span<const double> root_weights) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return std::make_unique<IcRRSampler>(g, root_weights);
    case DiffusionModel::kLinearThreshold:
      return std::make_unique<LtRRSampler>(g, root_weights);
  }
  return nullptr;
}

std::unique_ptr<RRSampler> MakeRRSampler(
    const SamplingView& view, DiffusionModel model,
    const AliasSampler* shared_root) {
  switch (model) {
    case DiffusionModel::kIndependentCascade:
      return std::make_unique<IcRRSampler>(view, shared_root);
    case DiffusionModel::kLinearThreshold:
      return std::make_unique<LtRRSampler>(view, shared_root);
  }
  return nullptr;
}

}  // namespace opim
