#include "rrset/snapshot.h"

#include <errno.h>
#include <stdio.h>
#include <string.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/graph_mmap.h"
#include "rrset/varint_codec.h"
#include "support/atomic_file.h"
#include "support/fault_inject.h"
#include "support/macros.h"

namespace opim {
namespace {

constexpr char kOpimssMagic[8] = {'O', 'P', 'I', 'M', 'S', 'S', 'v', '1'};

#pragma pack(push, 1)
// 64-byte container header, mirroring the .opimg conventions
// (graph/graph_mmap.cc): magic + version + self-described header size,
// then the payload length and its word-wise FNV-1a checksum.
struct OpimssHeader {
  char magic[8];
  uint32_t version;
  uint32_t header_bytes;
  uint32_t flags;
  uint32_t reserved_a;
  uint64_t payload_bytes;
  uint64_t payload_checksum;
  uint64_t reserved[3];
};

// Per-pool section header inside the payload.
struct PoolSectionHeader {
  uint32_t num_nodes;
  uint32_t num_sets;
  uint32_t num_chunks;
  uint32_t retain_costs;
  uint64_t total_members;
  uint64_t total_edges_examined;
  uint64_t encoded_pool_bytes;
};
#pragma pack(pop)
static_assert(sizeof(OpimssHeader) == kOpimssHeaderBytes);
static_assert(offsetof(OpimssHeader, version) == kOpimssVersionOffset);
static_assert(offsetof(OpimssHeader, payload_bytes) ==
              kOpimssPayloadBytesOffset);
static_assert(offsetof(OpimssHeader, payload_checksum) ==
              kOpimssChecksumOffset);
static_assert(sizeof(PoolSectionHeader) == 40);

constexpr uint32_t kSetsPerChunk = 4096;  // RRCollection's chunk size
constexpr uint32_t kInlineTag = rrslot::kInlineTag;
constexpr uint32_t kEmptySlot = rrslot::kEmpty;

void AppendBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  if (len == 0) return;  // empty spans hand out data() == nullptr
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& value) {
  AppendBytes(out, &value, sizeof(T));
}

void AppendPool(std::vector<uint8_t>* out, const RRCollection& rr) {
  PoolSectionHeader h{};
  h.num_nodes = rr.num_nodes();
  h.num_sets = rr.num_sets();
  h.num_chunks = rr.num_pool_chunks();
  h.retain_costs = rr.retains_set_costs() ? 1 : 0;
  h.total_members = rr.total_size();
  h.total_edges_examined = rr.total_edges_examined();
  h.encoded_pool_bytes = rr.CompressedMemberBytes();
  AppendPod(out, h);
  const std::span<const uint32_t> slots = rr.slots();
  AppendBytes(out, slots.data(), slots.size_bytes());
  const std::span<const uint64_t> costs = rr.set_costs();
  AppendBytes(out, costs.data(), costs.size_bytes());
  for (uint32_t c = 0; c < h.num_chunks; ++c) {
    // Copy immediately: with the spill tier armed, faulting chunk c+1
    // in may evict chunk c's buffer.
    const std::span<const uint8_t> run = rr.ChunkRun(c);
    AppendPod(out, static_cast<uint64_t>(run.size()));
    AppendBytes(out, run.data(), run.size());
  }
}

/// Bounds-checked forward reader over the payload. Every Read names
/// what it was reading so a corrupt declared length fails with a
/// message pointing at the oversized section, not a crash.
class PayloadCursor {
 public:
  PayloadCursor(const std::string& path, std::span<const uint8_t> payload)
      : path_(path), p_(payload.data()), remaining_(payload.size()) {}

  Status Read(void* out, uint64_t len, const char* what) {
    OPIM_RETURN_NOT_OK(Skip(len, what));
    // An empty destination (e.g. a zero-set slot array) is a null
    // data() pointer; memcpy's arguments are declared nonnull.
    if (len > 0) std::memcpy(out, p_ - len, len);
    return Status::OK();
  }

  Status View(std::span<const uint8_t>* out, uint64_t len, const char* what) {
    OPIM_RETURN_NOT_OK(Skip(len, what));
    *out = {p_ - len, static_cast<size_t>(len)};
    return Status::OK();
  }

  Status Skip(uint64_t len, const char* what) {
    if (len > remaining_) {
      return Status::InvalidArgument(
          path_ + ": snapshot declares oversized " + std::string(what) +
          " (" + std::to_string(len) + " bytes, " +
          std::to_string(remaining_) + " remain)");
    }
    p_ += len;
    remaining_ -= len;
    return Status::OK();
  }

  uint64_t remaining() const { return remaining_; }

 private:
  const std::string& path_;
  const uint8_t* p_;
  uint64_t remaining_;
};

/// Validates and reassembles one pool section. The payload checksum has
/// already passed, but a hand-crafted (or checksum-fixed) file must
/// still never produce UB: every slot offset, chunk run, and set
/// encoding is checked before RRCollection sees it.
Result<RRCollection> LoadPool(const std::string& path, PayloadCursor* cur,
                              const char* pool_name) {
  PoolSectionHeader h{};
  OPIM_RETURN_NOT_OK(cur->Read(&h, sizeof(h), "pool header"));
  if (h.num_nodes >= kInlineTag) {
    return Status::InvalidArgument(path + ": snapshot pool " + pool_name +
                                   " declares out-of-range node count");
  }
  const uint64_t expected_chunks =
      h.num_sets == 0 ? 0 : (uint64_t{h.num_sets} + kSetsPerChunk - 1) /
                                kSetsPerChunk;
  if (h.num_chunks != expected_chunks) {
    return Status::InvalidArgument(
        path + ": snapshot pool " + pool_name + " chunk count mismatch (" +
        std::to_string(h.num_chunks) + " declared, " +
        std::to_string(expected_chunks) + " expected for " +
        std::to_string(h.num_sets) + " sets)");
  }

  std::vector<uint32_t> slots(h.num_sets);
  OPIM_RETURN_NOT_OK(
      cur->Read(slots.data(), uint64_t{h.num_sets} * sizeof(uint32_t),
                "pool slot array"));
  std::vector<uint64_t> costs;
  if (h.retain_costs != 0) {
    costs.resize(h.num_sets);
    OPIM_RETURN_NOT_OK(
        cur->Read(costs.data(), uint64_t{h.num_sets} * sizeof(uint64_t),
                  "pool cost column"));
  }

  uint64_t members = 0;
  uint64_t encoded_total = 0;
  std::vector<std::vector<uint8_t>> runs(h.num_chunks);
  std::vector<NodeId> decode_scratch;
  for (uint32_t c = 0; c < h.num_chunks; ++c) {
    uint64_t run_len = 0;
    OPIM_RETURN_NOT_OK(cur->Read(&run_len, sizeof(run_len), "chunk run length"));
    if (run_len >= kInlineTag) {
      // Slot offsets are 31-bit chunk-relative, so a longer run cannot
      // have been written by the serializer.
      return Status::InvalidArgument(path + ": snapshot declares oversized " +
                                     std::string("chunk run (") +
                                     std::to_string(run_len) + " bytes)");
    }
    std::span<const uint8_t> run;
    OPIM_RETURN_NOT_OK(cur->View(&run, run_len, "chunk run"));
    encoded_total += run_len;

    // The serializer appends sets contiguously, so the non-inline slots
    // of a chunk tile its run exactly: the first sits at offset 0, each
    // encoding ends where the next non-inline slot begins, and the last
    // ends at the run's end. DecodeRRMembersChecked enforces
    // ends-exactly-at-the-boundary, so validating the offsets plus
    // decoding every span proves the tiling.
    const uint32_t first_set = c * kSetsPerChunk;
    const uint32_t last_set =
        std::min<uint32_t>(first_set + kSetsPerChunk, h.num_sets);
    std::vector<uint64_t> offsets;
    for (uint32_t id = first_set; id < last_set; ++id) {
      const uint32_t slot = slots[id];
      if (slot & kInlineTag) {
        if (slot != kEmptySlot && (slot & ~kInlineTag) >= h.num_nodes) {
          return Status::InvalidArgument(
              path + ": snapshot inline member out of range (set " +
              std::to_string(id) + ")");
        }
        if (slot != kEmptySlot) ++members;
        continue;
      }
      const bool in_order = offsets.empty()
                                ? slot == 0
                                : uint64_t{slot} > offsets.back();
      if (!in_order || slot >= run_len) {
        return Status::InvalidArgument(
            path + ": snapshot slot offset out of order (set " +
            std::to_string(id) + " at offset " + std::to_string(slot) +
            " in a " + std::to_string(run_len) + "-byte run)");
      }
      offsets.push_back(slot);
    }
    if (offsets.empty() && run_len != 0) {
      return Status::InvalidArgument(
          path + ": snapshot chunk " + std::to_string(c) +
          " has a byte run but no non-inline sets");
    }
    for (size_t j = 0; j < offsets.size(); ++j) {
      const uint64_t begin = offsets[j];
      const uint64_t end = j + 1 < offsets.size() ? offsets[j + 1] : run_len;
      if (Status s = DecodeRRMembersChecked(run.subspan(begin, end - begin),
                                            h.num_nodes, &decode_scratch);
          !s.ok()) {
        return Status::InvalidArgument(path + ": corrupt RR-set encoding: " +
                                       s.message());
      }
      members += decode_scratch.size();
    }
    runs[c].assign(run.begin(), run.end());
  }

  if (encoded_total != h.encoded_pool_bytes) {
    return Status::InvalidArgument(
        path + ": snapshot pool byte total mismatch (" +
        std::to_string(encoded_total) + " summed, " +
        std::to_string(h.encoded_pool_bytes) + " declared)");
  }
  if (members != h.total_members) {
    return Status::InvalidArgument(
        path + ": snapshot member total mismatch (" + std::to_string(members) +
        " decoded, " + std::to_string(h.total_members) + " declared)");
  }

  RRStoreOptions store;
  store.retain_set_costs = h.retain_costs != 0;
  return RRCollection::RestoreFromSnapshotParts(
      h.num_nodes, store, std::move(runs), std::move(slots), std::move(costs),
      h.total_members, h.total_edges_examined);
}

}  // namespace

uint64_t SnapshotWeightsChecksum(std::span<const double> weights) {
  if (weights.empty()) return 0;
  return OpimgChecksum(weights.data(), weights.size_bytes());
}

Result<uint64_t> SaveSnapshot(const SnapshotRunState& run,
                              const RRCollection& r1, const RRCollection& r2,
                              const std::string& path) {
  std::vector<uint8_t> payload;
  AppendPod(&payload, run);
  AppendPool(&payload, r1);
  AppendPool(&payload, r2);

  OpimssHeader h{};
  std::memcpy(h.magic, kOpimssMagic, sizeof(kOpimssMagic));
  h.version = kOpimssVersion;
  h.header_bytes = sizeof(OpimssHeader);
  h.payload_bytes = payload.size();
  h.payload_checksum = OpimgChecksum(payload.data(), payload.size());

  std::vector<uint8_t> file;
  file.reserve(sizeof(h) + payload.size());
  AppendPod(&file, h);
  file.insert(file.end(), payload.begin(), payload.end());
  if (OPIM_FAULT_POINT("snapshot.corrupt_header")) {
    file[0] ^= 0xFF;  // torn-write simulation: the loader must reject it
  }
  OPIM_RETURN_NOT_OK(WriteFileAtomic(path, file));
  return static_cast<uint64_t>(file.size());
}

Result<RRPoolSnapshot> LoadSnapshot(const std::string& path) {
  FILE* f = ::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot " + path + ": " +
                           ::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> file(size > 0 ? static_cast<size_t>(size) : 0);
  if (!file.empty() && std::fread(file.data(), 1, file.size(), f) != file.size()) {
    std::fclose(f);
    return Status::IOError("cannot read snapshot " + path);
  }
  std::fclose(f);

  if (file.size() < sizeof(OpimssHeader)) {
    return Status::InvalidArgument(
        path + ": truncated snapshot header (" + std::to_string(file.size()) +
        " of " + std::to_string(sizeof(OpimssHeader)) + " bytes)");
  }
  OpimssHeader h{};
  std::memcpy(&h, file.data(), sizeof(h));
  if (std::memcmp(h.magic, kOpimssMagic, sizeof(kOpimssMagic)) != 0) {
    return Status::InvalidArgument(path + ": bad snapshot magic");
  }
  if (h.version != kOpimssVersion) {
    return Status::InvalidArgument(
        path + ": unsupported snapshot version " + std::to_string(h.version) +
        " (supported: " + std::to_string(kOpimssVersion) + ")");
  }
  if (h.header_bytes != sizeof(OpimssHeader)) {
    return Status::InvalidArgument(path + ": snapshot header size mismatch");
  }
  if (h.flags != 0) {
    return Status::InvalidArgument(path + ": unsupported snapshot flags");
  }
  const uint64_t actual_payload = file.size() - sizeof(OpimssHeader);
  if (h.payload_bytes > actual_payload) {
    return Status::InvalidArgument(
        path + ": truncated snapshot payload (declares " +
        std::to_string(h.payload_bytes) + " bytes, " +
        std::to_string(actual_payload) + " present)");
  }
  if (h.payload_bytes < actual_payload) {
    return Status::InvalidArgument(
        path + ": snapshot has " +
        std::to_string(actual_payload - h.payload_bytes) + " trailing bytes");
  }
  const uint8_t* payload = file.data() + sizeof(OpimssHeader);
  const uint64_t got = OpimgChecksum(payload, h.payload_bytes);
  if (got != h.payload_checksum) {
    return Status::InvalidArgument(path +
                                   ": snapshot payload checksum mismatch");
  }

  PayloadCursor cur(path, {payload, static_cast<size_t>(h.payload_bytes)});
  SnapshotRunState run;
  OPIM_RETURN_NOT_OK(cur.Read(&run, sizeof(run), "run-state record"));
  OPIM_ASSIGN_OR_RETURN(RRCollection r1, LoadPool(path, &cur, "R1"));
  OPIM_ASSIGN_OR_RETURN(RRCollection r2, LoadPool(path, &cur, "R2"));
  if (cur.remaining() != 0) {
    return Status::InvalidArgument(
        path + ": snapshot payload has " + std::to_string(cur.remaining()) +
        " unconsumed bytes");
  }
  if (r1.num_nodes() != run.graph_nodes || r2.num_nodes() != run.graph_nodes) {
    return Status::InvalidArgument(
        path + ": snapshot pool node count disagrees with run state");
  }
  RRPoolSnapshot snap;
  snap.run = run;
  snap.r1 = std::move(r1);
  snap.r2 = std::move(r2);
  return snap;
}

}  // namespace opim
