#include "rrset/parallel_generate.h"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/rr_sampler.h"
#include "support/fault_inject.h"
#include "support/random.h"
#include "support/run_control.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim {

StagedGeneration::StagedGeneration(const SamplingView& view,
                                   DiffusionModel model, uint64_t count,
                                   uint64_t seed, unsigned shards,
                                   const AliasSampler* root_table,
                                   RunControl* control, uint64_t base_bytes,
                                   bool speculative)
    : view_(view),
      model_(model),
      count_(count),
      seed_(seed),
      root_table_(root_table),
      control_(control),
      base_bytes_(base_bytes),
      speculative_(speculative),
      shards_(shards) {
  OPIM_CHECK_GE(shards, 1u);
  OPIM_CHECK_LE(shards, count);
}

void StagedGeneration::RunShard(unsigned s) {
  OPIM_TR_SPAN1(speculative_ ? "speculate_shard" : "shard", "rrset", "shard",
                s);
  Stopwatch shard_watch;
  auto sampler = MakeRRSampler(view_, model_, root_table_);
  Rng rng(seed_, 0x70617267ULL + s);  // "parg" + shard
  const unsigned shards = this->shards();
  const uint64_t lo = count_ * s / shards;
  const uint64_t hi = count_ * (s + 1) / shards;
  Shard& shard = shards_[s];
  std::vector<NodeId> scratch;
  uint64_t last_published = 0;
  for (uint64_t i = lo; i < hi; ++i) {
    if ((i - lo) % kControlPollStride == 0) {
      if (abort_.load(std::memory_order_relaxed)) break;
      if (control_ != nullptr) {
        // Publish this shard's staging delta, then poll with the shared
        // total: the footprint the control sees is the caller's base plus
        // what all shards hold *compressed* (the raw member lists are
        // never materialized on this path).
        const uint64_t bytes = shard.encoder.StagingBytes();
        published_bytes_.fetch_add(bytes - last_published,
                                   std::memory_order_relaxed);
        last_published = bytes;
        if (control_->Poll(base_bytes_ +
                           published_bytes_.load(std::memory_order_relaxed))) {
          break;
        }
      }
    }
    if (OPIM_FAULT_POINT("rrset.worker_throw")) {
      throw std::runtime_error("injected fault: rrset.worker_throw");
    }
    if (speculative_ && OPIM_FAULT_POINT("rrset.speculation_throw")) {
      throw std::runtime_error("injected fault: rrset.speculation_throw");
    }
    const uint64_t cost = sampler->SampleInto(rng, &scratch);
    // The encoder sorts and compresses the set immediately, while its
    // members are cache-hot; a mid-Add failure leaves the shard
    // ingestable (see ShardEncoder).
    shard.encoder.Add(&scratch, cost);
    ++shard.sets;
    shard.nodes += scratch.size();
    shard.edges += cost;
  }
  shard.alias = sampler->alias_draws();
  OPIM_TM_HISTOGRAM_RECORD("opim.rrset.shard_us",
                           shard_watch.ElapsedSeconds() * 1e6);
}

uint64_t StagedGeneration::TotalSets() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sets;
  return total;
}

uint64_t StagedGeneration::TotalNodes() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.nodes;
  return total;
}

uint64_t StagedGeneration::TotalEdges() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.edges;
  return total;
}

uint64_t StagedGeneration::TotalAliasDraws() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.alias;
  return total;
}

std::vector<CompressedRRShard> StagedGeneration::TakeShards() {
  std::vector<CompressedRRShard> out;
  out.reserve(shards_.size());
  for (Shard& s : shards_) {
    out.push_back(s.encoder.Finish(view_.graph().num_nodes()));
  }
  return out;
}

void IngestStaged(StagedGeneration* stage, RRCollection* collection,
                  ThreadPool* pool) {
  collection->AddCompressedShards(stage->TakeShards(), pool);
  OPIM_TM_COUNTER_ADD("opim.rrset.sets_generated", stage->TotalSets());
  OPIM_TM_COUNTER_ADD("opim.rrset.nodes_total", stage->TotalNodes());
  OPIM_TM_COUNTER_ADD("opim.rrset.edges_examined", stage->TotalEdges());
  OPIM_TM_COUNTER_ADD("opim.rrset.alias_draws", stage->TotalAliasDraws());
}

void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads,
                      std::span<const double> root_weights, ThreadPool* pool,
                      const SamplingView* view, RunControl* control) {
  if (count == 0) return;
  OPIM_TR_SPAN1("generate", "rrset", "count", count);
  OPIM_TM_SCOPED_TIMER("opim.rrset.generate_us");
  num_threads = pool != nullptr ? pool->num_threads()
                                : ThreadPool::ResolveThreadCount(num_threads);
  const unsigned shards = GenerateShardCount(count, num_threads);

  // A temporary pool is only created when the caller did not supply one
  // (and more than one shard exists); it parallelizes the view build below,
  // the shards, and the index merge inside AddCompressedShards, then
  // reports its stats before destruction.
  std::unique_ptr<ThreadPool> local_pool;
  if (shards > 1 && pool == nullptr) {
    local_pool = std::make_unique<ThreadPool>(shards);
    pool = local_pool.get();
  }

  // Shared read-only sampling state: built once here (not once per shard)
  // unless the caller already cached a view across calls.
  std::unique_ptr<const SamplingView> local_view;
  if (view == nullptr) {
    local_view = std::make_unique<const SamplingView>(
        g, SamplingViewPartsFor(model), pool);
    view = local_view.get();
  } else {
    OPIM_CHECK_MSG(&view->graph() == &g,
                   "SamplingView was built for a different graph");
  }

  // Weighted roots: one shared alias table instead of one copy per shard.
  AliasSampler root_table;
  if (!root_weights.empty()) {
    OPIM_CHECK_EQ(root_weights.size(), g.num_nodes());
    root_table.Build(
        std::vector<double>(root_weights.begin(), root_weights.end()));
  }
  const AliasSampler* shared_root = root_table.empty() ? nullptr : &root_table;

  const uint64_t base_bytes =
      control != nullptr ? collection->MemoryUsage() : 0;
  StagedGeneration stage(*view, model, count, seed, shards, shared_root,
                         control, base_bytes, /*speculative=*/false);

  // A worker exception is captured by the pool and rethrown from Wait()
  // (support/thread_pool.h); with a control we degrade — record the
  // failure, keep every completed staged shard — and without one we
  // propagate, preserving the uncontrolled contract.
  try {
    if (shards == 1) {
      stage.RunShard(0);
    } else {
      for (unsigned s = 0; s < shards; ++s) {
        pool->Submit([&stage, s] { stage.RunShard(s); });
      }
      pool->Wait();
    }
  } catch (...) {
    if (control == nullptr) throw;
    control->TripWorkerFailure();
  }

  IngestStaged(&stage, collection, pool);

  OPIM_TM_STMT({
    // Caller-owned pools accumulate lifetime stats the caller reports once
    // (e.g. RunOpimC after its final doubling); report here only for the
    // pool this call created and is about to destroy.
    if (local_pool != nullptr) {
      const ThreadPoolStats stats = local_pool->Stats();
      OPIM_TM_COUNTER_ADD("opim.pool.tasks_run", stats.tasks_run);
      OPIM_TM_COUNTER_ADD("opim.pool.queue_wait_us", stats.queue_wait_us);
      OPIM_TM_COUNTER_ADD("opim.pool.idle_wait_us", stats.idle_wait_us);
    }
  });
}

}  // namespace opim
