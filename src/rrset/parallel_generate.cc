#include "rrset/parallel_generate.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "rrset/rr_sampler.h"
#include "support/random.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim {

void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads,
                      std::span<const double> root_weights) {
  if (count == 0) return;
  OPIM_TM_SCOPED_TIMER("opim.rrset.generate_us");
  num_threads = ThreadPool::ResolveThreadCount(num_threads);
  const unsigned shards =
      static_cast<unsigned>(std::min<uint64_t>(count, num_threads));

  // Per-shard buffers: flat node pool + per-set (length, cost) so append
  // order is exactly shard-major, sample-minor.
  struct ShardBuffer {
    std::vector<NodeId> pool;
    std::vector<std::pair<uint32_t, uint64_t>> sets;  // (size, cost)
    uint64_t edges_examined = 0;
    uint64_t alias_draws = 0;
  };
  std::vector<ShardBuffer> buffers(shards);

  auto run_shard = [&](unsigned s) {
    Stopwatch shard_watch;
    auto sampler = MakeRRSampler(g, model, root_weights);
    Rng rng(seed, 0x70617267ULL + s);  // "parg" + shard
    const uint64_t lo = count * s / shards;
    const uint64_t hi = count * (s + 1) / shards;
    std::vector<NodeId> scratch;
    ShardBuffer& buf = buffers[s];
    for (uint64_t i = lo; i < hi; ++i) {
      uint64_t cost = sampler->SampleInto(rng, &scratch);
      buf.sets.emplace_back(static_cast<uint32_t>(scratch.size()), cost);
      buf.pool.insert(buf.pool.end(), scratch.begin(), scratch.end());
      buf.edges_examined += cost;
    }
    buf.alias_draws = sampler->alias_draws();
    OPIM_TM_HISTOGRAM_RECORD("opim.rrset.shard_us",
                             shard_watch.ElapsedSeconds() * 1e6);
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    ThreadPool pool(shards);
    for (unsigned s = 0; s < shards; ++s) {
      pool.Submit([&, s] { run_shard(s); });
    }
    pool.Wait();
    OPIM_TM_STMT({
      const ThreadPoolStats stats = pool.Stats();
      OPIM_TM_COUNTER_ADD("opim.pool.tasks_run", stats.tasks_run);
      OPIM_TM_COUNTER_ADD("opim.pool.queue_wait_us", stats.queue_wait_us);
      OPIM_TM_COUNTER_ADD("opim.pool.idle_wait_us", stats.idle_wait_us);
    });
  }

  uint64_t nodes_total = 0;
  uint64_t edges_total = 0;
  uint64_t alias_total = 0;
  for (const ShardBuffer& buf : buffers) {
    size_t offset = 0;
    for (const auto& [size, cost] : buf.sets) {
      collection->AddSet(
          std::span<const NodeId>(buf.pool.data() + offset, size), cost);
      offset += size;
    }
    nodes_total += buf.pool.size();
    edges_total += buf.edges_examined;
    alias_total += buf.alias_draws;
  }
  OPIM_TM_COUNTER_ADD("opim.rrset.sets_generated", count);
  OPIM_TM_COUNTER_ADD("opim.rrset.nodes_total", nodes_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.edges_examined", edges_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.alias_draws", alias_total);
}

}  // namespace opim
