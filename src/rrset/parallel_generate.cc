#include "rrset/parallel_generate.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include <atomic>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/rr_sampler.h"
#include "support/fault_inject.h"
#include "support/random.h"
#include "support/run_control.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim {

void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads,
                      std::span<const double> root_weights, ThreadPool* pool,
                      const SamplingView* view, RunControl* control) {
  if (count == 0) return;
  OPIM_TR_SPAN1("generate", "rrset", "count", count);
  OPIM_TM_SCOPED_TIMER("opim.rrset.generate_us");
  num_threads = pool != nullptr ? pool->num_threads()
                                : ThreadPool::ResolveThreadCount(num_threads);
  const unsigned shards =
      static_cast<unsigned>(std::min<uint64_t>(count, num_threads));

  // A temporary pool is only created when the caller did not supply one
  // (and more than one shard exists); it parallelizes the view build below,
  // the shards, and the index rebuild inside AddBatch, then reports its
  // stats before destruction.
  std::unique_ptr<ThreadPool> local_pool;
  if (shards > 1 && pool == nullptr) {
    local_pool = std::make_unique<ThreadPool>(shards);
    pool = local_pool.get();
  }

  // Shared read-only sampling state: built once here (not once per shard)
  // unless the caller already cached a view across calls.
  std::unique_ptr<const SamplingView> local_view;
  if (view == nullptr) {
    local_view = std::make_unique<const SamplingView>(
        g, SamplingViewPartsFor(model), pool);
    view = local_view.get();
  } else {
    OPIM_CHECK_MSG(&view->graph() == &g,
                   "SamplingView was built for a different graph");
  }

  // Weighted roots: one shared alias table instead of one copy per shard.
  AliasSampler root_table;
  if (!root_weights.empty()) {
    OPIM_CHECK_EQ(root_weights.size(), g.num_nodes());
    root_table.Build(
        std::vector<double>(root_weights.begin(), root_weights.end()));
  }
  const AliasSampler* shared_root = root_table.empty() ? nullptr : &root_table;

  // Per-shard RRBatch buffers, filled so the append order is exactly
  // shard-major, sample-minor; AddBatch moves the node pools wholesale.
  std::vector<RRBatch> buffers(shards);
  std::vector<uint64_t> shard_edges(shards, 0);
  std::vector<uint64_t> shard_alias(shards, 0);

  // Guardrail bookkeeping: shards publish buffered nodes/sets to shared
  // counters once per poll stride, so the footprint estimate the control
  // sees is base (the destination collection as it stands, compressed) +
  // what the in-flight batch holds *raw*: shard buffers are plain NodeId
  // vectors until AddBatch sorts and group-varint-compresses them, so
  // mid-batch the raw bytes are what the allocator really holds (plus
  // roughly one inverted-index posting per node and slot/cost/record
  // bytes per set after ingestion). Iteration-boundary accounting in the
  // engines is exact and compressed; this deliberately conservative
  // estimate only has to catch runaway pools mid-batch.
  const uint64_t base_bytes = control != nullptr ? collection->MemoryUsage() : 0;
  std::atomic<uint64_t> buffered_nodes{0};
  std::atomic<uint64_t> buffered_sets{0};
  constexpr uint64_t kBytesPerNode = sizeof(NodeId) + sizeof(RRId);
  constexpr uint64_t kBytesPerSet = 3 * sizeof(uint64_t);

  auto run_shard = [&](unsigned s) {
    OPIM_TR_SPAN1("shard", "rrset", "shard", s);
    Stopwatch shard_watch;
    auto sampler = MakeRRSampler(*view, model, shared_root);
    Rng rng(seed, 0x70617267ULL + s);  // "parg" + shard
    const uint64_t lo = count * s / shards;
    const uint64_t hi = count * (s + 1) / shards;
    std::vector<NodeId> scratch;
    RRBatch& buf = buffers[s];
    uint64_t unpublished_nodes = 0;
    uint64_t unpublished_sets = 0;
    for (uint64_t i = lo; i < hi; ++i) {
      if (control != nullptr && (i - lo) % kControlPollStride == 0) {
        const uint64_t nodes =
            buffered_nodes.fetch_add(unpublished_nodes,
                                     std::memory_order_relaxed) +
            unpublished_nodes;
        const uint64_t sets =
            buffered_sets.fetch_add(unpublished_sets,
                                    std::memory_order_relaxed) +
            unpublished_sets;
        unpublished_nodes = 0;
        unpublished_sets = 0;
        if (control->Poll(base_bytes + nodes * kBytesPerNode +
                          sets * kBytesPerSet)) {
          break;
        }
      }
      if (OPIM_FAULT_POINT("rrset.worker_throw")) {
        throw std::runtime_error("injected fault: rrset.worker_throw");
      }
      uint64_t cost = sampler->SampleInto(rng, &scratch);
      // Pool nodes first, set record second: if either append throws
      // (allocation failure), the buffer never holds a set record whose
      // nodes are missing, so partial shard buffers stay ingestable.
      buf.pool.insert(buf.pool.end(), scratch.begin(), scratch.end());
      buf.sets.emplace_back(static_cast<uint32_t>(scratch.size()), cost);
      shard_edges[s] += cost;
      unpublished_nodes += scratch.size();
      ++unpublished_sets;
    }
    shard_alias[s] = sampler->alias_draws();
    OPIM_TM_HISTOGRAM_RECORD("opim.rrset.shard_us",
                             shard_watch.ElapsedSeconds() * 1e6);
  };

  // A worker exception is captured by the pool and rethrown from Wait()
  // (support/thread_pool.h); with a control we degrade — record the
  // failure, keep every completed shard buffer — and without one we
  // propagate, preserving the uncontrolled contract.
  try {
    if (shards == 1) {
      run_shard(0);
    } else {
      for (unsigned s = 0; s < shards; ++s) {
        pool->Submit([&, s] { run_shard(s); });
      }
      pool->Wait();
    }
  } catch (...) {
    if (control == nullptr) throw;
    control->TripWorkerFailure();
  }

  uint64_t sets_total = 0;
  uint64_t nodes_total = 0;
  uint64_t edges_total = 0;
  uint64_t alias_total = 0;
  for (unsigned s = 0; s < shards; ++s) {
    sets_total += buffers[s].sets.size();
    nodes_total += buffers[s].pool.size();
    edges_total += shard_edges[s];
    alias_total += shard_alias[s];
  }
  collection->AddBatch(std::move(buffers), pool);

  OPIM_TM_COUNTER_ADD("opim.rrset.sets_generated", sets_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.nodes_total", nodes_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.edges_examined", edges_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.alias_draws", alias_total);
  OPIM_TM_STMT({
    // Caller-owned pools accumulate lifetime stats the caller reports once
    // (e.g. RunOpimC after its final doubling); report here only for the
    // pool this call created and is about to destroy.
    if (local_pool != nullptr) {
      const ThreadPoolStats stats = local_pool->Stats();
      OPIM_TM_COUNTER_ADD("opim.pool.tasks_run", stats.tasks_run);
      OPIM_TM_COUNTER_ADD("opim.pool.queue_wait_us", stats.queue_wait_us);
      OPIM_TM_COUNTER_ADD("opim.pool.idle_wait_us", stats.idle_wait_us);
    }
  });
}

}  // namespace opim
