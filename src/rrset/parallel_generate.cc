#include "rrset/parallel_generate.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "rrset/rr_sampler.h"
#include "support/random.h"
#include "support/thread_pool.h"

namespace opim {

void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads,
                      std::span<const double> root_weights) {
  if (count == 0) return;
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreadCount();
  const unsigned shards =
      static_cast<unsigned>(std::min<uint64_t>(count, num_threads));

  // Per-shard buffers: flat node pool + per-set (length, cost) so append
  // order is exactly shard-major, sample-minor.
  struct ShardBuffer {
    std::vector<NodeId> pool;
    std::vector<std::pair<uint32_t, uint64_t>> sets;  // (size, cost)
  };
  std::vector<ShardBuffer> buffers(shards);

  auto run_shard = [&](unsigned s) {
    auto sampler = MakeRRSampler(g, model, root_weights);
    Rng rng(seed, 0x70617267ULL + s);  // "parg" + shard
    const uint64_t lo = count * s / shards;
    const uint64_t hi = count * (s + 1) / shards;
    std::vector<NodeId> scratch;
    ShardBuffer& buf = buffers[s];
    for (uint64_t i = lo; i < hi; ++i) {
      uint64_t cost = sampler->SampleInto(rng, &scratch);
      buf.sets.emplace_back(static_cast<uint32_t>(scratch.size()), cost);
      buf.pool.insert(buf.pool.end(), scratch.begin(), scratch.end());
    }
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    ThreadPool pool(shards);
    for (unsigned s = 0; s < shards; ++s) {
      pool.Submit([&, s] { run_shard(s); });
    }
    pool.Wait();
  }

  for (const ShardBuffer& buf : buffers) {
    size_t offset = 0;
    for (const auto& [size, cost] : buf.sets) {
      collection->AddSet(
          std::span<const NodeId>(buf.pool.data() + offset, size), cost);
      offset += size;
    }
  }
}

}  // namespace opim
