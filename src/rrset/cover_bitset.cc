#include "rrset/cover_bitset.h"

#include <atomic>

namespace opim {

namespace {

uint64_t CountUncoveredIdsScalar(std::span<const RRId> ids,
                                 const uint64_t* words) {
  uint64_t uncovered = 0;
  for (RRId id : ids) {
    uncovered += ((words[id >> 6] >> (id & 63)) & 1u) ^ 1u;
  }
  return uncovered;
}

uint64_t CountUncoveredBlocksScalar(std::span<const uint32_t> block_words,
                                    std::span<const uint64_t> block_masks,
                                    const uint64_t* words) {
  uint64_t uncovered = 0;
  for (size_t i = 0; i < block_words.size(); ++i) {
    uncovered += std::popcount(block_masks[i] & ~words[block_words[i]]);
  }
  return uncovered;
}

// kAuto by default; SetCoverageSimdMode is a test/tooling hook, so a
// relaxed atomic is all the synchronization this needs.
std::atomic<SimdMode> g_simd_mode{SimdMode::kAuto};

bool Avx2Supported() {
#if OPIM_SIMD_AVX2
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

}  // namespace

#if OPIM_SIMD_AVX2
// Defined in cover_kernels_avx2.cc (compiled with -mavx2 -mpopcnt).
uint64_t CountUncoveredIdsAvx2(std::span<const RRId> ids,
                               const uint64_t* words);
uint64_t CountUncoveredBlocksAvx2(std::span<const uint32_t> block_words,
                                  std::span<const uint64_t> block_masks,
                                  const uint64_t* words);
#endif

void SetCoverageSimdMode(SimdMode mode) {
  g_simd_mode.store(mode, std::memory_order_relaxed);
}

bool CoverageSimdAvailable() { return Avx2Supported(); }

SimdMode EffectiveCoverageSimd() {
  const SimdMode mode = g_simd_mode.load(std::memory_order_relaxed);
  if (mode == SimdMode::kScalar) return SimdMode::kScalar;
  if (!Avx2Supported()) return SimdMode::kScalar;  // kAvx2 degrades too
  return SimdMode::kAvx2;
}

const char* ActiveCoverageKernelName() {
  return EffectiveCoverageSimd() == SimdMode::kAvx2 ? "avx2" : "scalar";
}

uint64_t CountUncoveredIds(std::span<const RRId> ids, const uint64_t* words) {
#if OPIM_SIMD_AVX2
  if (EffectiveCoverageSimd() == SimdMode::kAvx2) {
    return CountUncoveredIdsAvx2(ids, words);
  }
#endif
  return CountUncoveredIdsScalar(ids, words);
}

uint64_t CountUncoveredBlocks(std::span<const uint32_t> block_words,
                              std::span<const uint64_t> block_masks,
                              const uint64_t* words) {
#if OPIM_SIMD_AVX2
  if (EffectiveCoverageSimd() == SimdMode::kAvx2) {
    return CountUncoveredBlocksAvx2(block_words, block_masks, words);
  }
#endif
  return CountUncoveredBlocksScalar(block_words, block_masks, words);
}

}  // namespace opim
