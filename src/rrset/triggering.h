// The triggering model of Kempe et al. — the generalization under which
// the paper's complexity results are stated (Theorem 6.4 "under the
// triggering model"), with IC and LT as instances.
//
// Each node v independently draws a *triggering set* T_v from a
// distribution over subsets of its in-neighbors; v activates as soon as
// any member of T_v is active. IC draws each in-neighbor independently
// with probability p(w, v); LT draws at most one in-neighbor, w with
// probability p(w, v) (and none with probability 1 - Σ p).
//
// This header provides the abstraction:
//   * TriggeringDistribution — samples T_v for a node,
//   * SimulateTriggeringCascade — forward diffusion under any
//     distribution (live-edge view, sampling T_v lazily),
//   * TriggeringRRSampler — a generic reverse-reachability sampler: the
//     reverse BFS expands a node u by drawing T_u and following it.
//
// The specialized IC/LT samplers in rrset/ remain the fast paths; the
// generic machinery exists so downstream users can plug in their own
// triggering distributions (and so tests can cross-check the fast paths
// against the general implementation).

#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "rrset/rr_sampler.h"
#include "support/random.h"

namespace opim {

/// Distribution over triggering sets, one per node. Implementations must
/// be deterministic functions of (v, rng state).
class TriggeringDistribution {
 public:
  virtual ~TriggeringDistribution() = default;

  /// Draws T_v and appends its members (in-neighbors of v) to `out`
  /// (not cleared). Returns the traversal cost charged for the draw
  /// (edges examined; by convention the in-degree of v).
  virtual uint64_t SampleTriggeringSet(NodeId v, Rng& rng,
                                       std::vector<NodeId>* out) const = 0;

  /// The graph this distribution is defined over.
  virtual const Graph& graph() const = 0;
};

/// IC as a triggering distribution: each in-edge kept independently.
class IcTriggering final : public TriggeringDistribution {
 public:
  explicit IcTriggering(const Graph& g) : graph_(g) {}
  uint64_t SampleTriggeringSet(NodeId v, Rng& rng,
                               std::vector<NodeId>* out) const override;
  const Graph& graph() const override { return graph_; }

 private:
  const Graph& graph_;
};

/// LT as a triggering distribution: at most one in-neighbor, weighted by
/// the edge probabilities.
class LtTriggering final : public TriggeringDistribution {
 public:
  explicit LtTriggering(const Graph& g);
  uint64_t SampleTriggeringSet(NodeId v, Rng& rng,
                               std::vector<NodeId>* out) const override;
  const Graph& graph() const override { return graph_; }

 private:
  const Graph& graph_;
  std::vector<AliasSampler> in_alias_;
};

/// Simulates one forward cascade under the live-edge view: activated
/// nodes' triggering sets are drawn lazily; v activates when some member
/// of T_v activates. Returns the number of activated nodes.
uint32_t SimulateTriggeringCascade(const TriggeringDistribution& dist,
                                   std::span<const NodeId> seeds, Rng& rng,
                                   std::vector<NodeId>* activated = nullptr);

/// Generic RR-set sampler for any triggering distribution: reverse BFS
/// that expands u by drawing T_u. Distributionally identical to the
/// specialized IC/LT samplers for those models.
class TriggeringRRSampler final : public RRSampler {
 public:
  /// Takes shared ownership so callers can hand over a freshly built
  /// distribution without keeping it alive themselves.
  explicit TriggeringRRSampler(std::shared_ptr<TriggeringDistribution> dist);

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) override;
  const Graph& graph() const override { return dist_->graph(); }

 private:
  std::shared_ptr<TriggeringDistribution> dist_;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> visited_epoch_;
  std::vector<NodeId> queue_;
  std::vector<NodeId> trigger_scratch_;
};

}  // namespace opim
