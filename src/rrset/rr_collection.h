// Compressed pooled storage for random reverse-reachable (RR) sets with a
// hybrid inverted node -> RR-set index (paper §3.1).
//
// An RR set is a set of nodes; a collection R of them supports the two
// operations every RIS algorithm needs:
//   * coverage Λ(S): how many RR sets in R intersect a seed set S, and
//   * greedy max-coverage (via the inverted index; see select/).
//
// Storage. Members are kept sorted and group-varint delta-encoded
// (rrset/varint_codec.h) into one append-only byte pool. Each set owns a
// 4-byte slot: empty and singleton sets — the overwhelming majority on
// sparse IC/LT pools — are tagged inline in the slot itself (no pool
// bytes, no decode), larger sets store their byte offset relative to a
// per-4096-set chunk base. Per-set traversal costs are optional
// (RRStoreOptions::retain_set_costs); engine pools that never ask for
// SetCost drop the 8 bytes/set. MemoryUsage() is therefore the
// *compressed* footprint, and it is the quantity RunControl's memory
// budget and the peak_rr_bytes telemetry are checked against.
//
// Inverted index. Each node's posting list (the ascending ids of the RR
// sets containing it) is stored in one of two representations chosen per
// node at rebuild time: raw RRId postings, or (word index, 64-bit mask)
// blocks over the RR-id space for dense nodes. A block costs 12 bytes
// against 4 per raw posting, so blocks win exactly when 3·blocks <=
// postings — hub nodes collapse to ~θ/64 words that the bitset coverage
// kernels (rrset/cover_bitset.h) AND + popcount whole words at a time.
// Both representations hang off dual CSR offset arrays; exactly one has a
// nonzero extent per node.
//
// Index validity contract: AddBatch leaves the index built (in parallel
// when given a ThreadPool). AddSet defers the rebuild; the first index
// read after single-set appends rebuilds serially. Interleaving AddSet
// with reads is therefore valid but pays one rebuild per flip from
// writing to reading — the engine paths (ParallelGenerate / select/)
// always ingest whole batches. The lazy rebuild also means the first
// post-append read is not safe to race with other readers.

// Out-of-core spill tier. The pool is chunked (4096 sets per chunk);
// each chunk's encoded bytes are an independent byte run, so a sealed
// chunk can be written to an unlinked spill file and its heap buffer
// freed while the run continues. EnableSpill arms the tier;
// SpillColdChunks evicts cold sealed chunks (LRU by last decode) until
// the resident pool fits a target, and any later decode of a spilled
// set faults its chunk back in transparently (evicting other cold
// chunks past the sticky resident target). Fault-in happens inside
// SetBytes, so the CELF recount path — the only engine path that
// decodes members after ingest — drives residency. Decode-time
// fault-in is single-threaded-readers-only: with spill enabled the
// index rebuild runs serially, matching the engine (selection decodes
// are serial; parallel generation workers never read the collection).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "rrset/cover_bitset.h"
#include "rrset/varint_codec.h"
#include "support/status.h"

namespace opim {

class ThreadPool;

/// Slot encoding shared by RRCollection and the shard-side compressors:
/// a set's 4-byte slot either carries the inline tag (empty/singleton
/// sets; low 31 bits hold the member id, or kEmpty's payload) or a pool
/// byte offset / encoded length.
namespace rrslot {
inline constexpr uint32_t kInlineTag = 0x80000000u;
inline constexpr uint32_t kEmpty = 0xFFFFFFFFu;
}  // namespace rrslot

/// One producer shard of sampled RR sets, in append order: `pool` is the
/// concatenation of the sets' nodes and `sets` holds each set's (size,
/// traversal cost). This is exactly the per-worker buffer shape of
/// ParallelGenerate; ingestion sorts and compresses the members shard by
/// shard (in parallel when given a pool).
struct RRBatch {
  std::vector<NodeId> pool;
  std::vector<std::pair<uint32_t, uint64_t>> sets;  // (size, edges examined)
};

/// One producer shard already in wire format: the concatenation of the
/// sets' group-varint encodings (no tail slack), one record per set (an
/// inline slot value for empty/singleton sets — tag bit set — or the
/// set's encoded byte length, paired with its traversal cost), and the
/// shard-local inverted postings (per node, the ascending *local* set
/// indices within this shard). Built inside generation workers by
/// ShardEncoder so ingestion is a cheap shard-order merge: byte streams
/// are appended wholesale and the index update is a parallel per-node
/// merge of old postings with each shard's postings (global id = shard
/// base + local index) instead of a full re-decode of every stored set.
struct CompressedRRShard {
  std::vector<uint8_t> bytes;
  struct SetRec {
    uint32_t rec;    // inline slot (tag bit set) or encoded byte length
    uint64_t cost;   // edges examined sampling this set
  };
  std::vector<SetRec> sets;
  std::vector<uint32_t> post_offsets;  // num_nodes + 1 once finalized
  std::vector<RRId> postings;          // local set indices, per node asc
  uint64_t total_members = 0;

  bool finalized() const { return !post_offsets.empty(); }

  /// Heap footprint (capacity-based) — what RunControl staging-buffer
  /// metering charges for a speculatively sampled shard.
  uint64_t StagingBytes() const {
    return bytes.capacity() * sizeof(uint8_t) +
           sets.capacity() * sizeof(SetRec) +
           post_offsets.capacity() * sizeof(uint32_t) +
           postings.capacity() * sizeof(RRId);
  }
};

/// Streaming per-shard compressor: generation workers feed it one sampled
/// set at a time (sorted + encoded immediately, while the members are
/// cache-hot) and Finish() builds the shard-local postings, yielding a
/// CompressedRRShard ready for RRCollection::AddCompressedShards. The raw
/// member pool of the RRBatch path is never materialized.
///
/// Exception safety: Add() appends the encoding before the set record, so
/// an allocation failure mid-append can orphan trailing bytes but never a
/// record whose bytes are missing; Finalize/merge walk the records and
/// ignore orphan bytes, keeping a partially filled encoder ingestable
/// (the worker-failure degradation path relies on this).
class ShardEncoder {
 public:
  ShardEncoder() = default;

  /// Sorts `*members` in place (distinct nodes by sampler contract) and
  /// appends its encoding. `cost` is the traversal cost (γ accounting).
  void Add(std::vector<NodeId>* members, uint64_t cost);

  /// Same for members already strictly ascending (validated in debug
  /// builds) — the AddBatch path sorts spans of its pool in place first.
  void AddSorted(std::span<const NodeId> members, uint64_t cost);

  /// Sets encoded so far (readable mid-stream, e.g. for poll metering).
  uint64_t num_sets() const { return shard_.sets.size(); }

  /// Current heap footprint of the staged shard.
  uint64_t StagingBytes() const { return shard_.StagingBytes(); }

  /// Builds the shard-local postings (counting sort over this shard's
  /// decoded members) and returns the finished shard. The encoder is left
  /// empty and reusable. `num_nodes` is the graph's node-id bound.
  CompressedRRShard Finish(uint32_t num_nodes);

  /// Finalizes `shard` in place (used when a worker threw before its own
  /// Finish ran: records stay consistent, so postings can be rebuilt by
  /// any thread afterwards). No-op when already finalized.
  static void Finalize(CompressedRRShard* shard, uint32_t num_nodes);

 private:
  CompressedRRShard shard_;
};

/// Storage knobs fixed at construction.
struct RRStoreOptions {
  /// Keep the per-set traversal cost (8 bytes/set) so SetCost() answers.
  /// Engine pools that only need aggregate γ turn this off.
  bool retain_set_costs = true;
};

/// Spill-tier configuration for RRCollection::EnableSpill.
struct RRSpillOptions {
  /// Directory for the (immediately unlinked) spill file.
  std::string dir = "/tmp";
};

/// Cumulative spill-tier activity counters (plain values so tests and
/// reports read them without telemetry).
struct RRSpillStats {
  uint64_t chunks_spilled = 0;  // chunk evictions (heap buffer freed)
  uint64_t chunks_faulted = 0;  // chunk fault-ins from the spill file
};

/// Append-only collection of RR sets over a graph with n nodes.
class RRCollection {
 public:
  /// Creates an empty collection for node ids in [0, num_nodes).
  /// `num_nodes` must be < 2^31 (one slot bit tags inline sets).
  explicit RRCollection(uint32_t num_nodes, RRStoreOptions options = {});

  // Move-only (the spill state owns a file descriptor). Out-of-line:
  // SpillState is incomplete here.
  ~RRCollection();
  RRCollection(RRCollection&&) noexcept;
  RRCollection& operator=(RRCollection&&) noexcept;
  OPIM_DISALLOW_COPY(RRCollection);

  /// Appends one RR set (list of distinct nodes, any order; stored
  /// sorted). `edges_examined` is the traversal cost the sampler paid
  /// (the paper's γ accounting, §3.2). Returns the new set's id. The
  /// inverted index rebuild is deferred to the next index read (see the
  /// contract above); bulk producers should use AddBatch.
  RRId AddSet(std::span<const NodeId> nodes, uint64_t edges_examined);

  /// Appends every set of every shard, in shard order, sorting and
  /// compressing each shard's members (parallelized over shards when
  /// `pool` is provided), then rebuilds the inverted index. The index is
  /// valid on return. Per-node range validation is debug-only on this
  /// path (OPIM_DCHECK). Implemented as encode-to-CompressedRRShard +
  /// AddCompressedShards, so the result is byte-identical to the
  /// streaming producer path.
  void AddBatch(std::vector<RRBatch> shards, ThreadPool* pool = nullptr);

  /// Appends pre-compressed shards (ShardEncoder output), in shard order:
  /// byte streams are appended wholesale, and the inverted index is
  /// updated by a parallel per-node merge of the existing postings with
  /// each shard's local postings — existing sets are never re-decoded.
  /// Non-finalized shards (worker threw before Finish) are finalized
  /// here first. The index is valid on return; deterministic for any
  /// worker count. Falls back to a full rebuild when single-set appends
  /// left the index stale.
  void AddCompressedShards(std::vector<CompressedRRShard> shards,
                           ThreadPool* pool = nullptr);

  /// Number of RR sets θ.
  uint32_t num_sets() const { return num_sets_; }

  /// Number of nodes n of the underlying graph.
  uint32_t num_nodes() const { return num_nodes_; }

  /// Member count of RR set `id`.
  uint32_t SetSize(RRId id) const {
    OPIM_DCHECK_LT(id, num_sets_);
    const uint32_t slot = slot_[id];
    if (slot & kSlotInlineTag) return slot == kEmptySlot ? 0 : 1;
    return DecodedRRMemberCount(SetBytes(id, slot));
  }

  /// Calls `fn(NodeId)` for each member of RR set `id`, ascending.
  template <typename Fn>
  void ForEachMember(RRId id, Fn&& fn) const {
    OPIM_DCHECK_LT(id, num_sets_);
    const uint32_t slot = slot_[id];
    if (slot & kSlotInlineTag) {
      if (slot != kEmptySlot) fn(static_cast<NodeId>(slot & ~kSlotInlineTag));
      return;
    }
    DecodeRRMembersForEach(SetBytes(id, slot), fn);
  }

  /// Members of RR set `id`, decoded into a fresh vector (ascending).
  std::vector<NodeId> DecodeSet(RRId id) const;

  /// Number of RR sets containing `v` — Λ({v}). Rebuilds the inverted
  /// index first if single-set appends left it stale.
  uint32_t CoveringCount(NodeId v) const;

  /// One node's posting list in whichever representation it is stored;
  /// exactly one of {ids} / {words, masks} is non-empty (both empty when
  /// no RR set contains `v`).
  struct CoverPostings {
    std::span<const RRId> ids;
    std::span<const uint32_t> words;
    std::span<const uint64_t> masks;
  };
  CoverPostings Covering(NodeId v) const {
    OPIM_DCHECK_LT(v, num_nodes_);
    if (index_dirty_) RebuildIndex(nullptr);
    return {{cover_ids_.data() + raw_offsets_[v],
             cover_ids_.data() + raw_offsets_[v + 1]},
            {block_words_.data() + block_offsets_[v],
             block_words_.data() + block_offsets_[v + 1]},
            {block_masks_.data() + block_offsets_[v],
             block_masks_.data() + block_offsets_[v + 1]}};
  }

  /// Calls `fn(RRId)` for each RR set containing `v`, ascending.
  template <typename Fn>
  void ForEachCovering(NodeId v, Fn&& fn) const {
    const CoverPostings p = Covering(v);
    for (RRId id : p.ids) fn(id);
    for (size_t i = 0; i < p.words.size(); ++i) {
      uint64_t mask = p.masks[i];
      const uint64_t base = uint64_t{p.words[i]} << 6;
      while (mask != 0) {
        fn(static_cast<RRId>(base + std::countr_zero(mask)));
        mask &= mask - 1;
      }
    }
  }

  /// Ids of the RR sets containing `v`, decoded into a fresh vector.
  std::vector<RRId> DecodeCovering(NodeId v) const;

  /// Per-node membership counts: MemberCounts()[v] == CoveringCount(v)
  /// for every node, materialized lazily and maintained incrementally.
  /// First call decodes the whole pool once; afterwards
  /// AddCompressedShards folds each new shard's posting-count deltas in
  /// O(num_nodes) per shard — never re-decoding existing sets — which is
  /// what makes warm-started selection's initial-gain pass an O(n) copy
  /// instead of an O(Σ|R|) recount. Serial AddSet appends are folded
  /// lazily on the next call. Collections that never call this pay
  /// nothing. The span is invalidated by any mutation.
  std::span<const uint64_t> MemberCounts() const;

  /// Nodes with MemberCounts()[v] > 0, each exactly once, maintained for
  /// free inside the same folds that maintain the counts (a node is
  /// appended when its count first leaves zero; counts never decrease).
  /// Warm-started selection iterates this instead of all n nodes when
  /// building its CELF heap and gain histogram — at small θ the touched
  /// nodes are a small fraction of n, and the selection output cannot
  /// depend on the iteration order (the CELF comparator is a strict
  /// total order over (gain, node)), so the order here is first-touch,
  /// not sorted. Materializes the counts if needed; the span is
  /// invalidated by any mutation.
  std::span<const NodeId> MemberNonzero() const;

  /// Sets already folded into MemberCounts() (0 before first use). The
  /// selection state uses this watermark to detect a restored pool whose
  /// counts must be rebuilt.
  uint64_t member_counts_accounted() const { return counts_accounted_; }

  /// Total nodes across all sets, Σ_R |R|. The query-time complexity of the
  /// OPIM bounds is linear in this (paper Table 1).
  uint64_t total_size() const { return total_members_; }

  /// Cumulative traversal cost γ across all sampled sets.
  uint64_t total_edges_examined() const { return total_edges_examined_; }

  /// Heap footprint of this collection in bytes (capacity-based, so it
  /// reflects what the allocator actually holds): the *resident* part of
  /// the compressed member pool (spilled chunks cost nothing), slots +
  /// chunk records, optional per-set costs, the hybrid inverted index,
  /// and the coverage scratch bitset. This is the quantity RunControl's
  /// memory budget is checked against — which is exactly why spilling
  /// cold chunks lets a budgeted run continue.
  uint64_t MemoryUsage() const {
    uint64_t resident_pool = 0;
    for (const PoolChunk& c : chunks_) {
      resident_pool += c.bytes.capacity() * sizeof(uint8_t);
    }
    return resident_pool + chunks_.capacity() * sizeof(PoolChunk) +
           slot_.capacity() * sizeof(uint32_t) +
           set_cost_.capacity() * sizeof(uint64_t) +
           raw_offsets_.capacity() * sizeof(uint32_t) +
           cover_ids_.capacity() * sizeof(RRId) +
           block_offsets_.capacity() * sizeof(uint32_t) +
           block_words_.capacity() * sizeof(uint32_t) +
           block_masks_.capacity() * sizeof(uint64_t) +
           member_counts_.capacity() * sizeof(uint64_t) +
           member_nonzero_.capacity() * sizeof(NodeId) +
           cover_scratch_.MemoryUsage();
  }

  /// Bytes of the compressed member pool, resident or spilled
  /// (inline-tagged sets cost zero).
  uint64_t CompressedMemberBytes() const { return pool_bytes_; }

  // --- Out-of-core spill tier -------------------------------------------

  /// Arms the spill tier: creates (and immediately unlinks) a spill file
  /// in `options.dir`, so the file vanishes with the process no matter
  /// how the run ends. Idempotent; fails with IOError when the directory
  /// refuses a temp file. Decode-time fault-in makes the collection
  /// single-threaded-readers-only afterwards (see file comment).
  Status EnableSpill(const RRSpillOptions& options);

  /// True once EnableSpill succeeded.
  bool spill_enabled() const { return spill_ != nullptr; }

  /// Evicts cold sealed chunks — least recently decoded first — until
  /// the resident pool fits `target_resident_bytes` (or nothing sealed
  /// is left to evict). The target is sticky: later fault-ins evict
  /// other cold chunks past it. First eviction of a chunk writes its
  /// bytes to the spill file (site io.short_write); re-evictions are
  /// free. On write failure the collection is untouched and fully
  /// usable — the caller degrades to the stop-at-budget path. Returns
  /// the number of chunks evicted.
  Result<uint64_t> SpillColdChunks(uint64_t target_resident_bytes);

  /// Encoded bytes currently on the spill file only (not resident).
  uint64_t SpilledBytes() const;

  /// Cumulative spill/fault counters (zeros before EnableSpill).
  RRSpillStats SpillStats() const;

  /// What the member lists would occupy raw, Σ_R |R| * sizeof(NodeId) —
  /// the PR-4-era storage; CompressedMemberBytes()/RawMemberBytes() is
  /// the pool compression ratio reported in telemetry.
  uint64_t RawMemberBytes() const { return total_members_ * sizeof(NodeId); }

  /// Whether SetCost() is answerable (RRStoreOptions::retain_set_costs).
  bool retains_set_costs() const { return retain_costs_; }

  /// Traversal cost ("width" in TIM's terminology: total in-degree of the
  /// set's members) of one RR set. Requires retain_set_costs.
  uint64_t SetCost(RRId id) const {
    OPIM_DCHECK_LT(id, num_sets_);
    OPIM_CHECK_MSG(retain_costs_,
                   "SetCost requires RRStoreOptions::retain_set_costs");
    return set_cost_[id];
  }

  /// Coverage Λ(S): number of RR sets intersecting S, counted by marking
  /// a scratch bitset with each seed's postings. O(θ/64 + Σ_{v∈S} work).
  /// Duplicate nodes in `seeds` are handled (each RR set counted once).
  uint64_t CoverageOf(std::span<const NodeId> seeds) const;

  /// |V|/θ · Λ(S): the unbiased RIS estimate of σ(S) (Lemma 3.1). Returns 0
  /// for an empty collection.
  double EstimateSpread(std::span<const NodeId> seeds) const;

  // --- Snapshot support (rrset/snapshot.h) ------------------------------
  //
  // The snapshot container serializes exactly the canonical storage —
  // per-chunk byte runs, slot words, optional cost column, and the
  // member/γ totals. The inverted index is NOT serialized: it is a
  // deterministic function of the pool (RebuildIndex produces identical
  // output for any worker count), so restore marks it stale and the
  // first read — or an explicit EnsureIndex — rebuilds it.

  /// Number of pool chunks (ceil(num_sets / 4096); 0 when empty).
  uint32_t num_pool_chunks() const {
    return static_cast<uint32_t>(chunks_.size());
  }

  /// Encoded byte run of chunk `chunk` (no decode slack), faulting it in
  /// from the spill file first when evicted. Empty when every set in the
  /// chunk is stored inline.
  std::span<const uint8_t> ChunkRun(uint32_t chunk) const;

  /// Per-set slot words (inline tag or chunk-relative byte offset).
  std::span<const uint32_t> slots() const { return slot_; }

  /// Per-set cost column; empty unless retains_set_costs().
  std::span<const uint64_t> set_costs() const { return set_cost_; }

  /// Rebuilds the inverted index now (parallel when `pool` is given) if
  /// single-set appends or a snapshot restore left it stale; no-op
  /// otherwise.
  void EnsureIndex(ThreadPool* pool = nullptr) const {
    if (index_dirty_) RebuildIndex(pool);
  }

  /// Reassembles a collection from snapshot parts. `chunk_runs` are the
  /// slack-free per-chunk byte runs (ChunkRun output); `slots`, `costs`,
  /// and the totals mirror the accessors above. The caller (the snapshot
  /// loader) has already validated structure — offsets, encodings, and
  /// member totals — so violations here are programmer errors
  /// (OPIM_CHECK). The restored collection is byte-identical to the
  /// saved one: further appends, spills, and index reads behave as if
  /// the sets had been added directly.
  static RRCollection RestoreFromSnapshotParts(
      uint32_t num_nodes, RRStoreOptions options,
      std::vector<std::vector<uint8_t>> chunk_runs,
      std::vector<uint32_t> slots, std::vector<uint64_t> costs,
      uint64_t total_members, uint64_t total_edges_examined);

 private:
  /// Slot tag for sets stored inline (empty or singleton); see rrslot.
  static constexpr uint32_t kSlotInlineTag = rrslot::kInlineTag;
  static constexpr uint32_t kEmptySlot = rrslot::kEmpty;
  /// Sets per pool chunk; a slot offset is relative to its chunk's byte
  /// run so 31 bits suffice no matter how large the pool grows — and a
  /// chunk's run is independently spillable.
  static constexpr uint32_t kChunkShift = 12;

  /// One pool chunk: the group-varint byte run of its non-inline sets.
  /// Resident chunks keep the run (plus decode slack) in `bytes` with
  /// `data` caching bytes.data(); spilled chunks have an empty vector,
  /// null `data`, and their run at `spill_offset` in the spill file.
  struct PoolChunk {
    static constexpr uint64_t kNotSpilled = ~uint64_t{0};

    std::vector<uint8_t> bytes;
    uint64_t encoded_bytes = 0;      // run length sans decode slack
    uint64_t spill_offset = kNotSpilled;
    const uint8_t* data = nullptr;   // bytes.data(), null when spilled
    uint64_t lru_stamp = 0;          // last decode (spill enabled only)
  };

  struct SpillState;

  const uint8_t* SetBytes(RRId id, uint32_t slot) const {
    const PoolChunk& c = chunks_[id >> kChunkShift];
    if (spill_ != nullptr) return SpillAwareChunkData(id >> kChunkShift) + slot;
    return c.data + slot;
  }

  /// Returns chunk `chunk`'s resident run, faulting it in from the spill
  /// file first when evicted, and stamps its LRU recency.
  const uint8_t* SpillAwareChunkData(uint32_t chunk) const;

  /// Reloads an evicted chunk and evicts other cold on-disk chunks past
  /// the sticky resident target. Requires spill enabled.
  void FaultChunk(uint32_t chunk) const;

  /// Sorts (and de-dups) `*nodes` in place, then appends the slot /
  /// encoded bytes for one set. Shared by AddSet and batch assembly.
  void AppendEncodedSet(std::vector<NodeId>* nodes);

  /// Rebuilds the hybrid inverted index from the compressed pool:
  /// counting-sort into raw ascending postings (parallelized across set
  /// ranges when `pool` has > 1 worker), then per-node representation
  /// selection and compaction. Deterministic: the result is identical
  /// for any worker count.
  void RebuildIndex(ThreadPool* pool) const;

  /// Merges per-shard local postings into the hybrid index without
  /// re-decoding existing sets: per node, the old postings (enumerated
  /// from whichever representation holds them) are concatenated with each
  /// shard's postings offset by its id base, then the representation is
  /// re-chosen. Parallel over node ranges when `pool` has > 1 worker;
  /// output is identical to a full RebuildIndex for any worker count.
  /// `shard_bases[s]` is the first global RRId of shard s.
  void MergeIndex(std::span<const CompressedRRShard> shards,
                  std::span<const RRId> shard_bases, ThreadPool* pool) const;

  /// Appends `len` bytes from `src` to the open (last) chunk's run,
  /// maintaining the per-chunk decode slack and `pool_bytes_`.
  void AppendRunToOpenChunk(const uint8_t* src, uint64_t len);

  uint32_t num_nodes_ = 0;
  uint32_t num_sets_ = 0;
  bool retain_costs_ = true;
  // Chunked compressed pool; each resident chunk's run ends with
  // kVarintDecodeSlackBytes zero bytes. Mutable: decodes fault spilled
  // chunks back in and stamp recency.
  mutable std::vector<PoolChunk> chunks_;
  uint64_t pool_bytes_ = 0;          // Σ encoded_bytes, resident or not
  std::vector<uint32_t> slot_;       // per set: inline tag or chunk offset
  std::vector<uint64_t> set_cost_;   // per-set cost iff retain_costs_
  std::unique_ptr<SpillState> spill_;  // armed by EnableSpill
  std::vector<NodeId> addset_scratch_;  // AddSet sort buffer (reused)
  uint64_t total_members_ = 0;
  uint64_t total_edges_examined_ = 0;
  // Hybrid inverted index; rebuilt lazily (mutable) after AddSet appends.
  mutable std::vector<uint32_t> raw_offsets_;    // num_nodes + 1
  mutable std::vector<RRId> cover_ids_;
  mutable std::vector<uint32_t> block_offsets_;  // num_nodes + 1
  mutable std::vector<uint32_t> block_words_;
  mutable std::vector<uint64_t> block_masks_;
  mutable bool index_dirty_ = false;
  // Scratch for CoverageOf (covered-set bitset, reset per call).
  mutable CoverBitset cover_scratch_;
  // Lazily materialized per-node membership counts and the id of the
  // first set not yet folded in (see MemberCounts). Empty until first use.
  mutable std::vector<uint64_t> member_counts_;
  mutable uint64_t counts_accounted_ = 0;
  // Nodes whose count left zero, in first-touch order (see MemberNonzero).
  mutable std::vector<NodeId> member_nonzero_;

  /// Folds sets [counts_accounted_, num_sets_) into member_counts_,
  /// materializing the vector first when empty.
  void AccountMemberCounts() const;
};

}  // namespace opim
