// Pooled storage for random reverse-reachable (RR) sets with an inverted
// node -> RR-set index (paper §3.1).
//
// An RR set is a set of nodes; a collection R of them supports the two
// operations every RIS algorithm needs:
//   * coverage Λ(S): how many RR sets in R intersect a seed set S, and
//   * greedy max-coverage (via the inverted index; see select/).
// Storage is append-only: sets are concatenated into one flat pool with an
// offsets array (CSR-of-sets), and each node keeps the list of RR-set ids
// that contain it.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace opim {

/// Index of an RR set within a collection.
using RRId = uint32_t;

/// Append-only collection of RR sets over a graph with n nodes.
class RRCollection {
 public:
  /// Creates an empty collection for node ids in [0, num_nodes).
  explicit RRCollection(uint32_t num_nodes);

  /// Appends one RR set (list of distinct nodes). `edges_examined` is the
  /// traversal cost the sampler paid (the paper's γ accounting, §3.2).
  /// Returns the new set's id.
  RRId AddSet(std::span<const NodeId> nodes, uint64_t edges_examined);

  /// Number of RR sets θ.
  uint32_t num_sets() const { return static_cast<uint32_t>(offsets_.size() - 1); }

  /// Number of nodes n of the underlying graph.
  uint32_t num_nodes() const { return static_cast<uint32_t>(covers_.size()); }

  /// Nodes of RR set `id`.
  std::span<const NodeId> Set(RRId id) const {
    OPIM_CHECK_LT(id, num_sets());
    return {pool_.data() + offsets_[id], pool_.data() + offsets_[id + 1]};
  }

  /// Ids of the RR sets containing `v` (ascending).
  std::span<const RRId> SetsCovering(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes());
    return covers_[v];
  }

  /// Total nodes across all sets, Σ_R |R|. The query-time complexity of the
  /// OPIM bounds is linear in this (paper Table 1).
  uint64_t total_size() const { return pool_.size(); }

  /// Cumulative traversal cost γ across all sampled sets.
  uint64_t total_edges_examined() const { return total_edges_examined_; }

  /// Traversal cost ("width" in TIM's terminology: total in-degree of the
  /// set's members) of one RR set.
  uint64_t SetCost(RRId id) const {
    OPIM_CHECK_LT(id, num_sets());
    return set_cost_[id];
  }

  /// Coverage Λ(S): number of RR sets intersecting S. O(Σ_{v∈S}|covers(v)|).
  /// Duplicate nodes in `seeds` are handled (each RR set counted once).
  uint64_t CoverageOf(std::span<const NodeId> seeds) const;

  /// |V|/θ · Λ(S): the unbiased RIS estimate of σ(S) (Lemma 3.1). Returns 0
  /// for an empty collection.
  double EstimateSpread(std::span<const NodeId> seeds) const;

 private:
  std::vector<NodeId> pool_;
  std::vector<uint64_t> offsets_;          // num_sets + 1
  std::vector<std::vector<RRId>> covers_;  // node -> RR ids
  std::vector<uint64_t> set_cost_;         // per-set traversal cost
  uint64_t total_edges_examined_ = 0;
  // Scratch for CoverageOf: stamp per RR set, grown lazily.
  mutable std::vector<uint32_t> mark_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace opim
