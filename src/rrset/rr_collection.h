// Pooled storage for random reverse-reachable (RR) sets with an inverted
// node -> RR-set index (paper §3.1).
//
// An RR set is a set of nodes; a collection R of them supports the two
// operations every RIS algorithm needs:
//   * coverage Λ(S): how many RR sets in R intersect a seed set S, and
//   * greedy max-coverage (via the inverted index; see select/).
// Storage is append-only: sets are concatenated into one flat pool with an
// offsets array (CSR-of-sets). The inverted node -> RR-id index is itself
// CSR (cover_offsets_ + cover_ids_, ids ascending per node), rebuilt by a
// counting-sort pass instead of being maintained per insert — one flat
// array instead of n independently growing vectors, so greedy's inner
// loops stream through contiguous memory.
//
// Index validity contract: AddBatch leaves the index built (in parallel
// when given a ThreadPool). AddSet defers the rebuild; the first
// SetsCovering after single-set appends rebuilds serially. Interleaving
// AddSet with reads is therefore valid but pays one O(Σ|R|) rebuild per
// flip from writing to reading — the engine paths (ParallelGenerate /
// select/) always ingest whole batches. The lazy rebuild also means the
// first post-append read is not safe to race with other readers.

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace opim {

class ThreadPool;

/// Index of an RR set within a collection.
using RRId = uint32_t;

/// One producer shard of sampled RR sets, in append order: `pool` is the
/// concatenation of the sets' nodes and `sets` holds each set's (size,
/// traversal cost). This is exactly the per-worker buffer shape of
/// ParallelGenerate, so ingestion can move the node pools instead of
/// copying set-by-set.
struct RRBatch {
  std::vector<NodeId> pool;
  std::vector<std::pair<uint32_t, uint64_t>> sets;  // (size, edges examined)
};

/// Append-only collection of RR sets over a graph with n nodes.
class RRCollection {
 public:
  /// Creates an empty collection for node ids in [0, num_nodes).
  explicit RRCollection(uint32_t num_nodes);

  /// Appends one RR set (list of distinct nodes). `edges_examined` is the
  /// traversal cost the sampler paid (the paper's γ accounting, §3.2).
  /// Returns the new set's id. The inverted index rebuild is deferred to
  /// the next SetsCovering (see the contract above); bulk producers should
  /// use AddBatch.
  RRId AddSet(std::span<const NodeId> nodes, uint64_t edges_examined);

  /// Appends every set of every shard, in shard order, moving the shard
  /// node pools instead of copying set-by-set, then rebuilds the inverted
  /// index (counting sort, parallelized over `pool` when provided). The
  /// index is valid on return. Per-node range validation is debug-only on
  /// this path (OPIM_DCHECK).
  void AddBatch(std::vector<RRBatch> shards, ThreadPool* pool = nullptr);

  /// Number of RR sets θ.
  uint32_t num_sets() const { return static_cast<uint32_t>(offsets_.size() - 1); }

  /// Number of nodes n of the underlying graph.
  uint32_t num_nodes() const { return num_nodes_; }

  /// Nodes of RR set `id`.
  std::span<const NodeId> Set(RRId id) const {
    OPIM_DCHECK_LT(id, num_sets());
    return {pool_.data() + offsets_[id], pool_.data() + offsets_[id + 1]};
  }

  /// Ids of the RR sets containing `v` (ascending). Rebuilds the inverted
  /// index first if single-set appends left it stale.
  std::span<const RRId> SetsCovering(NodeId v) const {
    OPIM_DCHECK_LT(v, num_nodes_);
    if (index_dirty_) RebuildIndex(nullptr);
    return {cover_ids_.data() + cover_offsets_[v],
            cover_ids_.data() + cover_offsets_[v + 1]};
  }

  /// Total nodes across all sets, Σ_R |R|. The query-time complexity of the
  /// OPIM bounds is linear in this (paper Table 1).
  uint64_t total_size() const { return pool_.size(); }

  /// Cumulative traversal cost γ across all sampled sets.
  uint64_t total_edges_examined() const { return total_edges_examined_; }

  /// Heap footprint of this collection in bytes (capacity-based, so it
  /// reflects what the allocator actually holds): set pool, offsets,
  /// per-set costs, the CSR inverted index, and the coverage scratch.
  /// This is the quantity RunControl's memory budget is checked against.
  uint64_t MemoryUsage() const {
    return pool_.capacity() * sizeof(NodeId) +
           offsets_.capacity() * sizeof(uint64_t) +
           set_cost_.capacity() * sizeof(uint64_t) +
           cover_offsets_.capacity() * sizeof(uint64_t) +
           cover_ids_.capacity() * sizeof(RRId) +
           mark_epoch_.capacity() * sizeof(uint32_t);
  }

  /// Traversal cost ("width" in TIM's terminology: total in-degree of the
  /// set's members) of one RR set.
  uint64_t SetCost(RRId id) const {
    OPIM_DCHECK_LT(id, num_sets());
    return set_cost_[id];
  }

  /// Coverage Λ(S): number of RR sets intersecting S. O(Σ_{v∈S}|covers(v)|).
  /// Duplicate nodes in `seeds` are handled (each RR set counted once).
  uint64_t CoverageOf(std::span<const NodeId> seeds) const;

  /// |V|/θ · Λ(S): the unbiased RIS estimate of σ(S) (Lemma 3.1). Returns 0
  /// for an empty collection.
  double EstimateSpread(std::span<const NodeId> seeds) const;

 private:
  /// Counting-sort rebuild of (cover_offsets_, cover_ids_) from the set
  /// pool; parallelized across set ranges when `pool` has > 1 worker.
  /// Deterministic: the result is identical for any worker count.
  void RebuildIndex(ThreadPool* pool) const;

  uint32_t num_nodes_ = 0;
  std::vector<NodeId> pool_;
  std::vector<uint64_t> offsets_;   // num_sets + 1
  std::vector<uint64_t> set_cost_;  // per-set traversal cost
  uint64_t total_edges_examined_ = 0;
  // CSR inverted index; rebuilt lazily (mutable) after AddSet appends.
  mutable std::vector<uint64_t> cover_offsets_;  // num_nodes + 1
  mutable std::vector<RRId> cover_ids_;
  mutable bool index_dirty_ = false;
  // Scratch for CoverageOf: stamp per RR set, grown lazily.
  mutable std::vector<uint32_t> mark_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace opim
