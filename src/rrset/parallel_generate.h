// Parallel RR-set generation.
//
// RR sets are independent samples, so generation parallelizes trivially:
// each worker owns a private sampler and an RNG stream derived from
// (seed, shard), fills a local RRBatch, and the batches are ingested in
// shard order via RRCollection::AddBatch — so the result is deterministic
// for a fixed (seed, num_threads) pair, and single-threaded generation
// with the same derivation reproduces num_threads = 1 exactly.
//
// Callers that generate repeatedly (OPIM-C's doublings) should construct
// one ThreadPool and pass it to every call: the workers and their stacks
// are reused across generations and the same pool parallelizes the
// inverted-index rebuild of each ingestion batch. Without a pool, a
// temporary pool is created per call (the original behavior).
//
// The samplers' per-sample scratch (epoch arrays, alias tables) is why the
// RRSampler class itself is not thread-safe; this helper is the supported
// way to use multiple cores.

#pragma once

#include <cstdint>
#include <span>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace opim {

class RunControl;
class SamplingView;
class ThreadPool;

/// Samples `count` RR sets under `model` and appends them to `collection`.
/// Deterministic in (seed, num_threads); num_threads = 0 picks the
/// hardware default. Non-empty `root_weights` selects weighted-spread
/// sampling (see IcRRSampler). When `pool` is non-null it supplies the
/// workers (its size overrides `num_threads`, so the RR stream is
/// deterministic in (seed, pool->num_threads())) and no pool is
/// constructed internally.
///
/// Shared read-only sampling state (SamplingView + one weighted-root alias
/// table) is built once per call and borrowed by every shard; callers that
/// generate repeatedly on the same graph (OPIM-C's doublings) should build
/// a SamplingView themselves and pass it as `view` to skip even that
/// once-per-call cost. `view` must be for `g` with the part for `model`
/// built (checked).
///
/// Guardrails: when `control` is non-null, every shard polls it once per
/// chunk of kControlPollStride samples (bounding cancellation latency to
/// one chunk of sampling work per worker) with a running footprint
/// estimate — the destination collection's current MemoryUsage() plus the
/// bytes buffered so far across shards. Once the control trips, shards
/// stop at the next whole RR set; everything sampled up to that point is
/// still ingested, so the caller can evaluate bounds on the partial pool.
/// A worker exception (possible only via fault injection or allocation
/// failure) trips control->TripWorkerFailure() and the completed shard
/// buffers are ingested; with control == nullptr it propagates to the
/// caller instead (rethrown from ThreadPool::Wait). Early exit makes the
/// number of generated sets timing-dependent — by design, and only after
/// a trip; untripped runs are byte-identical to control == nullptr.
void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads = 0,
                      std::span<const double> root_weights = {},
                      ThreadPool* pool = nullptr,
                      const SamplingView* view = nullptr,
                      RunControl* control = nullptr);

/// Samples between RunControl polls in each ParallelGenerate shard: the
/// cancellation-latency bound is this many samples' work per worker.
inline constexpr uint64_t kControlPollStride = 32;

}  // namespace opim
