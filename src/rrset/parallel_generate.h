// Parallel RR-set generation.
//
// RR sets are independent samples, so generation parallelizes trivially:
// each worker owns a private sampler and an RNG stream derived from
// (seed, shard), fills a local buffer, and the buffers are appended to the
// collection in shard order — so the result is deterministic for a fixed
// (seed, num_threads) pair, and single-threaded generation with the same
// derivation reproduces num_threads = 1 exactly.
//
// The samplers' per-sample scratch (epoch arrays, alias tables) is why the
// RRSampler class itself is not thread-safe; this helper is the supported
// way to use multiple cores.

#pragma once

#include <cstdint>
#include <span>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace opim {

/// Samples `count` RR sets under `model` and appends them to `collection`.
/// Deterministic in (seed, num_threads); num_threads = 0 picks the
/// hardware default. Non-empty `root_weights` selects weighted-spread
/// sampling (see IcRRSampler).
void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads = 0,
                      std::span<const double> root_weights = {});

}  // namespace opim
