// Parallel RR-set generation with streaming per-shard ingestion.
//
// RR sets are independent samples, so generation parallelizes trivially:
// each worker owns a private sampler and an RNG stream derived from
// (seed, shard), and streams its sets straight into a shard-local
// CompressedShard — members sorted and group-varint-compressed while they
// are cache-hot, partial inverted-index postings built in the worker — so
// ingestion after the barrier is a cheap deterministic shard-order merge
// (RRCollection::AddCompressedShards + parallel MergeIndex) instead of a
// serial sort/compress/rebuild pass. The result is deterministic for a
// fixed (seed, num_threads) pair, and single-threaded generation with the
// same derivation reproduces num_threads = 1 exactly.
//
// StagedGeneration exposes the two halves separately: RunShard() calls
// can overlap other work on the same pool (the pipelined doubling loop
// runs them speculatively during CELF + bounds, see docs/performance.md)
// and IngestStaged() merges the staged shards — or drops them, if the
// speculation was not needed — at a point the caller chooses.
//
// Callers that generate repeatedly (OPIM-C's doublings) should construct
// one ThreadPool and pass it to every call: the workers and their stacks
// are reused across generations and the same pool parallelizes the
// inverted-index rebuild of each ingestion batch. Without a pool, a
// temporary pool is created per call (the original behavior).
//
// The samplers' per-sample scratch (epoch arrays, alias tables) is why the
// RRSampler class itself is not thread-safe; this helper is the supported
// way to use multiple cores.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace opim {

class AliasSampler;
class RunControl;
class SamplingView;
class ThreadPool;

/// Samples `count` RR sets under `model` and appends them to `collection`.
/// Deterministic in (seed, num_threads); num_threads = 0 picks the
/// hardware default. Non-empty `root_weights` selects weighted-spread
/// sampling (see IcRRSampler). When `pool` is non-null it supplies the
/// workers (its size overrides `num_threads`, so the RR stream is
/// deterministic in (seed, pool->num_threads())) and no pool is
/// constructed internally.
///
/// Shared read-only sampling state (SamplingView + one weighted-root alias
/// table) is built once per call and borrowed by every shard; callers that
/// generate repeatedly on the same graph (OPIM-C's doublings) should build
/// a SamplingView themselves and pass it as `view` to skip even that
/// once-per-call cost. `view` must be for `g` with the part for `model`
/// built (checked).
///
/// Guardrails: when `control` is non-null, every shard polls it once per
/// chunk of kControlPollStride samples (bounding cancellation latency to
/// one chunk of sampling work per worker) with a running footprint
/// estimate — the destination collection's current MemoryUsage() plus the
/// bytes buffered so far across shards. Once the control trips, shards
/// stop at the next whole RR set; everything sampled up to that point is
/// still ingested, so the caller can evaluate bounds on the partial pool.
/// A worker exception (possible only via fault injection or allocation
/// failure) trips control->TripWorkerFailure() and the completed shard
/// buffers are ingested; with control == nullptr it propagates to the
/// caller instead (rethrown from ThreadPool::Wait). Early exit makes the
/// number of generated sets timing-dependent — by design, and only after
/// a trip; untripped runs are byte-identical to control == nullptr.
void ParallelGenerate(const Graph& g, DiffusionModel model,
                      RRCollection* collection, uint64_t count,
                      uint64_t seed, unsigned num_threads = 0,
                      std::span<const double> root_weights = {},
                      ThreadPool* pool = nullptr,
                      const SamplingView* view = nullptr,
                      RunControl* control = nullptr);

/// Samples between RunControl polls in each ParallelGenerate shard: the
/// cancellation-latency bound is this many samples' work per worker.
inline constexpr uint64_t kControlPollStride = 32;

/// Shard count ParallelGenerate uses for `count` sets on `num_threads`
/// workers — the quantity the per-shard RNG stream derivation is keyed
/// on. Exposed so speculative staging reproduces the schedule exactly.
inline unsigned GenerateShardCount(uint64_t count, unsigned num_threads) {
  return static_cast<unsigned>(std::min<uint64_t>(count, num_threads));
}

/// One batch of RR sets being sampled and compressed shard by shard —
/// either synchronously inside ParallelGenerate, or speculatively ahead
/// of the doubling that will consume it, overlapped with selection.
///
/// Construction fixes the sampling schedule (count, seed, shard count):
/// the same derivation ParallelGenerate uses, so a staged batch is
/// byte-identical to a synchronous one. RunShard(s) runs shard s's
/// sample+compress loop on the calling thread; callers pick the execution
/// context — ParallelGenerate submits every shard to its pool and waits,
/// the pipelined engine submits them through a TaskGroup and joins only
/// at the merge point. Abort() asks shards to stop at the next
/// poll-stride boundary: the discard path when the doubling loop
/// converges before the staged batch is needed.
///
/// Guardrails: shards publish their compressed staging footprint to a
/// shared counter once per kControlPollStride samples and poll `control`
/// with `base_bytes` plus that total, so speculative staging is metered
/// against the same memory budget as synchronous generation. A shard
/// that throws (fault injection, allocation failure) leaves its completed
/// sets ingestable (ShardEncoder's exception-safety contract).
class StagedGeneration {
 public:
  /// Fixes the schedule; nothing is sampled until RunShard. `view` must
  /// have the part for `model` built and, like `root_table` (nullptr for
  /// uniform roots) and `control`, must outlive the staging run.
  /// `speculative` selects the rrset.speculation_throw fault site and the
  /// speculative trace span names.
  StagedGeneration(const SamplingView& view, DiffusionModel model,
                   uint64_t count, uint64_t seed, unsigned shards,
                   const AliasSampler* root_table, RunControl* control,
                   uint64_t base_bytes, bool speculative);

  /// Samples shard `s` (thread-safe for distinct `s`; call once per `s`).
  void RunShard(unsigned s);

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// Asks running shards to stop at their next poll-stride boundary.
  void Abort() { abort_.store(true, std::memory_order_relaxed); }

  /// Compressed staging footprint published so far (poll-stride stale).
  uint64_t StagingBytes() const {
    return published_bytes_.load(std::memory_order_relaxed);
  }

  /// Aggregate sample stats; valid once every RunShard has returned.
  uint64_t TotalSets() const;
  uint64_t TotalNodes() const;
  uint64_t TotalEdges() const;
  uint64_t TotalAliasDraws() const;

  /// Finalizes and takes the per-shard wire-format buffers (call after
  /// every RunShard returned; the stats above remain valid).
  std::vector<CompressedRRShard> TakeShards();

 private:
  const SamplingView& view_;
  DiffusionModel model_;
  uint64_t count_;
  uint64_t seed_;
  const AliasSampler* root_table_;
  RunControl* control_;
  uint64_t base_bytes_;
  bool speculative_;
  std::atomic<bool> abort_{false};
  std::atomic<uint64_t> published_bytes_{0};
  struct alignas(64) Shard {
    ShardEncoder encoder;
    uint64_t sets = 0;
    uint64_t nodes = 0;
    uint64_t edges = 0;
    uint64_t alias = 0;
  };
  std::vector<Shard> shards_;
};

/// Ingests a fully sampled staged batch into `collection` (shard-order
/// merge; RRCollection::AddCompressedShards) and reports the batch's
/// generation counters to telemetry. Every RunShard must have returned.
void IngestStaged(StagedGeneration* stage, RRCollection* collection,
                  ThreadPool* pool);

}  // namespace opim
