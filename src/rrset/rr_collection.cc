#include "rrset/rr_collection.h"

namespace opim {

RRCollection::RRCollection(uint32_t num_nodes)
    : offsets_(1, 0), covers_(num_nodes) {}

RRId RRCollection::AddSet(std::span<const NodeId> nodes,
                          uint64_t edges_examined) {
  const RRId id = num_sets();
  for (NodeId v : nodes) {
    OPIM_CHECK_LT(v, num_nodes());
    pool_.push_back(v);
    covers_[v].push_back(id);
  }
  offsets_.push_back(pool_.size());
  set_cost_.push_back(edges_examined);
  total_edges_examined_ += edges_examined;
  return id;
}

uint64_t RRCollection::CoverageOf(std::span<const NodeId> seeds) const {
  if (mark_epoch_.size() < num_sets()) mark_epoch_.resize(num_sets(), 0);
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0);
    epoch_ = 1;
  }
  uint64_t covered = 0;
  for (NodeId v : seeds) {
    for (RRId id : SetsCovering(v)) {
      if (mark_epoch_[id] != epoch_) {
        mark_epoch_[id] = epoch_;
        ++covered;
      }
    }
  }
  return covered;
}

double RRCollection::EstimateSpread(std::span<const NodeId> seeds) const {
  if (num_sets() == 0) return 0.0;
  return static_cast<double>(CoverageOf(seeds)) * num_nodes() / num_sets();
}

}  // namespace opim
