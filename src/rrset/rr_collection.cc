#include "rrset/rr_collection.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Below this many total members a serial rebuild beats the fan-out
/// overhead.
constexpr uint64_t kParallelRebuildMinNodes = 1u << 16;

/// A block representation entry costs 12 bytes (uint32 word + uint64
/// mask) against 4 per raw posting: blocks win iff 3·blocks <= postings.
constexpr uint32_t kBlockCostRatio = 3;

}  // namespace

RRCollection::RRCollection(uint32_t num_nodes, RRStoreOptions options)
    : num_nodes_(num_nodes),
      retain_costs_(options.retain_set_costs),
      raw_offsets_(num_nodes + 1, 0),
      block_offsets_(num_nodes + 1, 0) {
  // One slot bit tags inline sets, so ids must fit in 31 bits.
  OPIM_CHECK_LT(num_nodes, kSlotInlineTag);
}

void RRCollection::AppendEncodedSet(std::vector<NodeId>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
  const RRId id = num_sets_;
  const uint64_t encoded_end =
      pool_.empty() ? 0 : pool_.size() - kVarintDecodeSlackBytes;
  if ((id & ((1u << kChunkShift) - 1)) == 0) {
    chunk_base_.push_back(encoded_end);
  }
  if (nodes->empty()) {
    slot_.push_back(kEmptySlot);
  } else if (nodes->size() == 1) {
    slot_.push_back(kSlotInlineTag | (*nodes)[0]);
  } else {
    const uint64_t rel = encoded_end - chunk_base_[id >> kChunkShift];
    OPIM_CHECK_LT(rel, kSlotInlineTag);
    slot_.push_back(static_cast<uint32_t>(rel));
    if (!pool_.empty()) pool_.resize(encoded_end);  // strip tail slack
    EncodeRRMembers(*nodes, &pool_);
    pool_.resize(pool_.size() + kVarintDecodeSlackBytes, 0);
  }
  ++num_sets_;
  total_members_ += nodes->size();
}

RRId RRCollection::AddSet(std::span<const NodeId> nodes,
                          uint64_t edges_examined) {
  const RRId id = num_sets_;
  for (NodeId v : nodes) {
    OPIM_CHECK_LT(v, num_nodes_);
  }
  addset_scratch_.assign(nodes.begin(), nodes.end());
  AppendEncodedSet(&addset_scratch_);
  if (retain_costs_) set_cost_.push_back(edges_examined);
  total_edges_examined_ += edges_examined;
  if (!nodes.empty()) index_dirty_ = true;
  return id;
}

void RRCollection::AddBatch(std::vector<RRBatch> shards, ThreadPool* pool) {
  OPIM_TR_SPAN1("ingest", "rrset", "shards", shards.size());
  OPIM_TM_SCOPED_TIMER("opim.rrset.ingest_us");
  uint64_t add_nodes = 0;
  uint64_t add_sets = 0;
  for (const RRBatch& shard : shards) {
    add_nodes += shard.pool.size();
    add_sets += shard.sets.size();
#if OPIM_DEBUG_CHECKS
    for (NodeId v : shard.pool) OPIM_DCHECK_LT(v, num_nodes_);
    uint64_t shard_nodes = 0;
    for (const auto& [size, cost] : shard.sets) shard_nodes += size;
    OPIM_DCHECK_EQ(shard_nodes, shard.pool.size());
#endif
  }
  if (add_sets == 0) return;

  // Per-shard sort + compress, in parallel: each worker sorts its shard's
  // sets in place and emits one encoded byte stream plus one uint32
  // record per set — an inline slot value (tag bit set) or the set's
  // encoded byte length.
  struct ShardEnc {
    std::vector<uint8_t> bytes;
    std::vector<uint32_t> rec;
  };
  std::vector<ShardEnc> enc(shards.size());
  auto encode_shard = [&](uint64_t s) {
    RRBatch& shard = shards[s];
    ShardEnc& e = enc[s];
    e.rec.reserve(shard.sets.size());
    NodeId* cursor = shard.pool.data();
    for (const auto& [size, cost] : shard.sets) {
      std::span<NodeId> members(cursor, size);
      cursor += size;
      std::sort(members.begin(), members.end());
#if OPIM_DEBUG_CHECKS
      for (size_t i = 1; i < members.size(); ++i) {
        OPIM_DCHECK_LT(members[i - 1], members[i]);  // distinct by contract
      }
#endif
      if (size == 0) {
        e.rec.push_back(kEmptySlot);
      } else if (size == 1) {
        e.rec.push_back(kSlotInlineTag | members[0]);
      } else {
        const size_t len = EncodeRRMembers(members, &e.bytes);
        OPIM_CHECK_LT(len, kSlotInlineTag);
        e.rec.push_back(static_cast<uint32_t>(len));
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && shards.size() > 1) {
    pool->ParallelFor(shards.size(), encode_shard);
  } else {
    for (uint64_t s = 0; s < shards.size(); ++s) encode_shard(s);
  }

  // Serial assembly: shard byte streams are appended wholesale (sets are
  // consecutive within a shard), slots/chunk bases/costs follow the
  // record walk in shard-major, sample-minor append order.
  uint64_t encoded_end =
      pool_.empty() ? 0 : pool_.size() - kVarintDecodeSlackBytes;
  uint64_t total_bytes = 0;
  for (const ShardEnc& e : enc) total_bytes += e.bytes.size();
  pool_.resize(encoded_end);  // strip tail slack before bulk appends
  pool_.reserve(encoded_end + total_bytes + kVarintDecodeSlackBytes);
  slot_.reserve(slot_.size() + add_sets);
  if (retain_costs_) set_cost_.reserve(set_cost_.size() + add_sets);
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardEnc& e = enc[s];
    pool_.insert(pool_.end(), e.bytes.begin(), e.bytes.end());
    for (uint32_t rec : e.rec) {
      const RRId id = num_sets_;
      if ((id & ((1u << kChunkShift) - 1)) == 0) {
        chunk_base_.push_back(encoded_end);
      }
      if (rec & kSlotInlineTag) {
        slot_.push_back(rec);
      } else {
        const uint64_t rel = encoded_end - chunk_base_[id >> kChunkShift];
        OPIM_CHECK_LT(rel, kSlotInlineTag);
        slot_.push_back(static_cast<uint32_t>(rel));
        encoded_end += rec;
      }
      ++num_sets_;
    }
    for (const auto& [size, cost] : shards[s].sets) {
      if (retain_costs_) set_cost_.push_back(cost);
      total_edges_examined_ += cost;
      total_members_ += size;
    }
  }
  OPIM_CHECK_EQ(encoded_end, pool_.size());
  pool_.resize(pool_.size() + kVarintDecodeSlackBytes, 0);
  OPIM_TM_GAUGE_SET("opim.rrset.compressed_bytes", pool_.size());
  RebuildIndex(pool);
}

void RRCollection::RebuildIndex(ThreadPool* pool) const {
  OPIM_TR_SPAN1("index_rebuild", "rrset", "sets", num_sets_);
  OPIM_TM_SCOPED_TIMER("opim.rrset.index_rebuild_us");
  OPIM_TM_COUNTER_ADD("opim.rrset.index_rebuilds", 1);
  index_dirty_ = false;
  const uint32_t n = num_nodes_;
  const uint64_t sets = num_sets_;
  // Posting positions are uint32 (a raw posting is 4 bytes; 2^32 of them
  // is a 16 GiB index, far past any budgeted run).
  OPIM_CHECK_LE(total_members_, 0xFFFFFFFFull);
  cover_ids_.resize(total_members_);

  // Stage 1: counting-sort the decoded sets into full raw postings
  // (ascending RR ids per node), exactly the PR-2 rebuild but reading
  // members through the codec.
  std::vector<uint32_t> full_offsets(n + 1, 0);
  const unsigned workers = pool != nullptr ? pool->num_threads() : 1;
  if (workers <= 1 || total_members_ < kParallelRebuildMinNodes) {
    // Serial two-pass counting sort: count into full_offsets[v + 1],
    // prefix-sum, then place ids in ascending set order per node.
    for (uint64_t id = 0; id < sets; ++id) {
      ForEachMember(static_cast<RRId>(id),
                    [&](NodeId v) { ++full_offsets[v + 1]; });
    }
    for (uint32_t v = 0; v < n; ++v) full_offsets[v + 1] += full_offsets[v];
    std::vector<uint32_t> cursor(full_offsets.begin(), full_offsets.end() - 1);
    for (uint64_t id = 0; id < sets; ++id) {
      ForEachMember(static_cast<RRId>(id), [&](NodeId v) {
        cover_ids_[cursor[v]++] = static_cast<RRId>(id);
      });
    }
  } else {
    // Parallel counting sort over contiguous set ranges ("chunks"):
    // per-chunk node counts, a serial combine that turns them into
    // per-chunk write cursors, and a parallel placement pass. Chunks are
    // ordered by set id and cursors start at each chunk's global
    // position, so every node's id list comes out ascending — identical
    // to the serial result for any worker count.
    const unsigned chunks = workers;
    std::vector<uint64_t> chunk_set_end(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
      chunk_set_end[c] = sets * (c + 1) / chunks;
    }
    std::vector<std::vector<uint32_t>> chunk_counts(chunks);
    pool->ParallelFor(chunks, [&](uint64_t c) {
      std::vector<uint32_t>& counts = chunk_counts[c];
      counts.assign(n, 0);
      const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
      for (uint64_t id = lo; id < chunk_set_end[c]; ++id) {
        ForEachMember(static_cast<RRId>(id), [&](NodeId v) { ++counts[v]; });
      }
    });
    uint32_t acc = 0;
    for (uint32_t v = 0; v < n; ++v) {
      full_offsets[v] = acc;
      for (unsigned c = 0; c < chunks; ++c) {
        const uint32_t count = chunk_counts[c][v];
        chunk_counts[c][v] = acc;  // becomes chunk c's write cursor for v
        acc += count;
      }
    }
    full_offsets[n] = acc;
    pool->ParallelFor(chunks, [&](uint64_t c) {
      std::vector<uint32_t>& cursor = chunk_counts[c];
      const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
      for (uint64_t id = lo; id < chunk_set_end[c]; ++id) {
        ForEachMember(static_cast<RRId>(id), [&](NodeId v) {
          cover_ids_[cursor[v]++] = static_cast<RRId>(id);
        });
      }
    });
  }

  // Stage 2: per-node representation selection + in-place compaction.
  // Raw postings for a node are rewritten left-to-right at or before
  // their original position (the kept total only shrinks), so the block
  // conversion reads ahead of every write and no temporary copy of the
  // postings is needed.
  block_words_.clear();
  block_masks_.clear();
  uint32_t write = 0;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t lo = full_offsets[v];
    const uint32_t hi = full_offsets[v + 1];
    const uint32_t p = hi - lo;
    raw_offsets_[v] = write;
    block_offsets_[v] = static_cast<uint32_t>(block_words_.size());
    if (p == 0) continue;
    uint32_t blocks = 1;
    for (uint32_t i = lo + 1; i < hi; ++i) {
      blocks += (cover_ids_[i] >> 6) != (cover_ids_[i - 1] >> 6);
    }
    if (kBlockCostRatio * blocks <= p) {
      uint32_t word = cover_ids_[lo] >> 6;
      uint64_t mask = 0;
      for (uint32_t i = lo; i < hi; ++i) {
        const uint32_t w = cover_ids_[i] >> 6;
        if (w != word) {
          block_words_.push_back(word);
          block_masks_.push_back(mask);
          word = w;
          mask = 0;
        }
        mask |= uint64_t{1} << (cover_ids_[i] & 63);
      }
      block_words_.push_back(word);
      block_masks_.push_back(mask);
    } else {
      for (uint32_t i = lo; i < hi; ++i) {
        cover_ids_[write++] = cover_ids_[i];
      }
    }
  }
  raw_offsets_[n] = write;
  block_offsets_[n] = static_cast<uint32_t>(block_words_.size());
  cover_ids_.resize(write);
  cover_ids_.shrink_to_fit();
  block_words_.shrink_to_fit();
  block_masks_.shrink_to_fit();
}

std::vector<NodeId> RRCollection::DecodeSet(RRId id) const {
  std::vector<NodeId> out;
  out.reserve(SetSize(id));
  ForEachMember(id, [&](NodeId v) { out.push_back(v); });
  return out;
}

uint32_t RRCollection::CoveringCount(NodeId v) const {
  const CoverPostings p = Covering(v);
  uint64_t count = p.ids.size();
  for (uint64_t mask : p.masks) count += std::popcount(mask);
  return static_cast<uint32_t>(count);
}

std::vector<RRId> RRCollection::DecodeCovering(NodeId v) const {
  std::vector<RRId> out;
  ForEachCovering(v, [&](RRId id) { out.push_back(id); });
  return out;
}

uint64_t RRCollection::CoverageOf(std::span<const NodeId> seeds) const {
  if (index_dirty_) RebuildIndex(nullptr);
  cover_scratch_.Reset(num_sets_);
  uint64_t* words = cover_scratch_.words();
  uint64_t covered = 0;
  for (NodeId v : seeds) {
    const CoverPostings p = Covering(v);
    ForEachNewlyCoveredIds(p.ids, words, [&](RRId) { ++covered; });
    for (size_t i = 0; i < p.words.size(); ++i) {
      const uint64_t fresh = p.masks[i] & ~words[p.words[i]];
      covered += std::popcount(fresh);
      words[p.words[i]] |= fresh;
    }
  }
  return covered;
}

double RRCollection::EstimateSpread(std::span<const NodeId> seeds) const {
  if (num_sets() == 0) return 0.0;
  return static_cast<double>(CoverageOf(seeds)) * num_nodes() / num_sets();
}

}  // namespace opim
