#include "rrset/rr_collection.h"

#include <algorithm>

#include "obs/telemetry.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Below this pool size a serial rebuild beats the fan-out overhead.
constexpr uint64_t kParallelRebuildMinNodes = 1u << 16;

}  // namespace

RRCollection::RRCollection(uint32_t num_nodes)
    : num_nodes_(num_nodes), offsets_(1, 0), cover_offsets_(num_nodes + 1, 0) {}

RRId RRCollection::AddSet(std::span<const NodeId> nodes,
                          uint64_t edges_examined) {
  const RRId id = num_sets();
  for (NodeId v : nodes) {
    OPIM_CHECK_LT(v, num_nodes_);
  }
  pool_.insert(pool_.end(), nodes.begin(), nodes.end());
  offsets_.push_back(pool_.size());
  set_cost_.push_back(edges_examined);
  total_edges_examined_ += edges_examined;
  if (!nodes.empty()) index_dirty_ = true;
  return id;
}

void RRCollection::AddBatch(std::vector<RRBatch> shards, ThreadPool* pool) {
  OPIM_TM_SCOPED_TIMER("opim.rrset.ingest_us");
  uint64_t add_nodes = 0;
  uint64_t add_sets = 0;
  for (const RRBatch& shard : shards) {
    add_nodes += shard.pool.size();
    add_sets += shard.sets.size();
#if OPIM_DEBUG_CHECKS
    for (NodeId v : shard.pool) OPIM_DCHECK_LT(v, num_nodes_);
    uint64_t shard_nodes = 0;
    for (const auto& [size, cost] : shard.sets) shard_nodes += size;
    OPIM_DCHECK_EQ(shard_nodes, shard.pool.size());
#endif
  }
  if (add_sets == 0) return;

  if (pool_.empty() && shards.size() == 1) {
    pool_ = std::move(shards[0].pool);
  } else {
    pool_.reserve(pool_.size() + add_nodes);
    for (RRBatch& shard : shards) {
      pool_.insert(pool_.end(), shard.pool.begin(), shard.pool.end());
    }
  }
  offsets_.reserve(offsets_.size() + add_sets);
  set_cost_.reserve(set_cost_.size() + add_sets);
  uint64_t offset = offsets_.back();
  for (const RRBatch& shard : shards) {
    for (const auto& [size, cost] : shard.sets) {
      offset += size;
      offsets_.push_back(offset);
      set_cost_.push_back(cost);
      total_edges_examined_ += cost;
    }
  }
  OPIM_CHECK_EQ(offsets_.back(), pool_.size());
  RebuildIndex(pool);
}

void RRCollection::RebuildIndex(ThreadPool* pool) const {
  OPIM_TM_SCOPED_TIMER("opim.rrset.index_rebuild_us");
  OPIM_TM_COUNTER_ADD("opim.rrset.index_rebuilds", 1);
  index_dirty_ = false;
  const uint32_t n = num_nodes_;
  const uint64_t sets = num_sets();
  cover_ids_.resize(pool_.size());

  const unsigned workers = pool != nullptr ? pool->num_threads() : 1;
  if (workers <= 1 || pool_.size() < kParallelRebuildMinNodes) {
    // Serial two-pass counting sort: count into cover_offsets_[v + 1],
    // prefix-sum, then place ids in ascending set order per node.
    std::fill(cover_offsets_.begin(), cover_offsets_.end(), 0);
    for (NodeId v : pool_) ++cover_offsets_[v + 1];
    for (uint32_t v = 0; v < n; ++v) cover_offsets_[v + 1] += cover_offsets_[v];
    std::vector<uint64_t> cursor(cover_offsets_.begin(),
                                 cover_offsets_.end() - 1);
    for (uint64_t id = 0; id < sets; ++id) {
      for (uint64_t e = offsets_[id]; e < offsets_[id + 1]; ++e) {
        cover_ids_[cursor[pool_[e]]++] = static_cast<RRId>(id);
      }
    }
    return;
  }

  // Parallel counting sort over contiguous set ranges ("chunks"): per-chunk
  // node counts, a serial combine that turns them into per-chunk write
  // cursors, and a parallel placement pass. Chunks are ordered by set id
  // and cursors start at each chunk's global position, so every node's id
  // list comes out ascending — identical to the serial result.
  const unsigned chunks = workers;
  std::vector<uint64_t> chunk_set_end(chunks);
  for (unsigned c = 0; c < chunks; ++c) {
    if (c + 1 == chunks) {
      chunk_set_end[c] = sets;
    } else {
      // Split by pool position for balance, snapped to a set boundary.
      const uint64_t target = pool_.size() * (c + 1) / chunks;
      chunk_set_end[c] =
          std::upper_bound(offsets_.begin(), offsets_.end(), target) -
          offsets_.begin() - 1;
    }
  }
  std::vector<std::vector<uint64_t>> chunk_counts(chunks);
  pool->ParallelFor(chunks, [&](uint64_t c) {
    std::vector<uint64_t>& counts = chunk_counts[c];
    counts.assign(n, 0);
    const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
    for (uint64_t e = offsets_[lo]; e < offsets_[chunk_set_end[c]]; ++e) {
      ++counts[pool_[e]];
    }
  });
  uint64_t acc = 0;
  for (uint32_t v = 0; v < n; ++v) {
    cover_offsets_[v] = acc;
    for (unsigned c = 0; c < chunks; ++c) {
      const uint64_t count = chunk_counts[c][v];
      chunk_counts[c][v] = acc;  // becomes chunk c's write cursor for v
      acc += count;
    }
  }
  cover_offsets_[n] = acc;
  pool->ParallelFor(chunks, [&](uint64_t c) {
    std::vector<uint64_t>& cursor = chunk_counts[c];
    const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
    for (uint64_t id = lo; id < chunk_set_end[c]; ++id) {
      for (uint64_t e = offsets_[id]; e < offsets_[id + 1]; ++e) {
        cover_ids_[cursor[pool_[e]]++] = static_cast<RRId>(id);
      }
    }
  });
}

uint64_t RRCollection::CoverageOf(std::span<const NodeId> seeds) const {
  if (mark_epoch_.size() < num_sets()) mark_epoch_.resize(num_sets(), 0);
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(mark_epoch_.begin(), mark_epoch_.end(), 0);
    epoch_ = 1;
  }
  uint64_t covered = 0;
  for (NodeId v : seeds) {
    for (RRId id : SetsCovering(v)) {
      if (mark_epoch_[id] != epoch_) {
        mark_epoch_[id] = epoch_;
        ++covered;
      }
    }
  }
  return covered;
}

double RRCollection::EstimateSpread(std::span<const NodeId> seeds) const {
  if (num_sets() == 0) return 0.0;
  return static_cast<double>(CoverageOf(seeds)) * num_nodes() / num_sets();
}

}  // namespace opim
