#include "rrset/rr_collection.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "support/fault_inject.h"
#include "support/io_util.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Below this many total members a serial rebuild beats the fan-out
/// overhead.
constexpr uint64_t kParallelRebuildMinNodes = 1u << 16;

/// A block representation entry costs 12 bytes (uint32 word + uint64
/// mask) against 4 per raw posting: blocks win iff 3·blocks <= postings.
constexpr uint32_t kBlockCostRatio = 3;

}  // namespace

void ShardEncoder::Add(std::vector<NodeId>* members, uint64_t cost) {
  std::sort(members->begin(), members->end());
  AddSorted(*members, cost);
}

void ShardEncoder::AddSorted(std::span<const NodeId> members, uint64_t cost) {
#if OPIM_DEBUG_CHECKS
  for (size_t i = 1; i < members.size(); ++i) {
    OPIM_DCHECK_LT(members[i - 1], members[i]);  // distinct by contract
  }
#endif
  uint32_t rec;
  if (members.empty()) {
    rec = rrslot::kEmpty;
  } else if (members.size() == 1) {
    rec = rrslot::kInlineTag | members[0];
  } else {
    // Bytes precede the record: a failed record push can only orphan
    // trailing bytes, which Finalize strips (see header).
    const size_t len = EncodeRRMembers(members, &shard_.bytes);
    OPIM_CHECK_LT(len, rrslot::kInlineTag);
    rec = static_cast<uint32_t>(len);
  }
  shard_.sets.push_back({rec, cost});
}

CompressedRRShard ShardEncoder::Finish(uint32_t num_nodes) {
  Finalize(&shard_, num_nodes);
  CompressedRRShard out = std::move(shard_);
  shard_ = {};
  return out;
}

void ShardEncoder::Finalize(CompressedRRShard* shard, uint32_t num_nodes) {
  if (shard->finalized()) return;
  // Drop orphan trailing bytes (a worker that threw mid-Add may have
  // appended an encoding without its record), then add temporary decode
  // slack: the counting-sort passes below read via the fast decoder.
  uint64_t used = 0;
  for (const CompressedRRShard::SetRec& s : shard->sets) {
    if (!(s.rec & rrslot::kInlineTag)) used += s.rec;
  }
  shard->bytes.resize(used);
  shard->bytes.resize(used + kVarintDecodeSlackBytes, 0);

  const uint32_t sets = static_cast<uint32_t>(shard->sets.size());
  auto for_each_member = [&](auto&& fn) {
    const uint8_t* p = shard->bytes.data();
    for (uint32_t local = 0; local < sets; ++local) {
      const uint32_t rec = shard->sets[local].rec;
      if (rec & rrslot::kInlineTag) {
        if (rec != rrslot::kEmpty) {
          fn(static_cast<RRId>(local),
             static_cast<NodeId>(rec & ~rrslot::kInlineTag));
        }
      } else {
        DecodeRRMembersForEach(
            p, [&](NodeId v) { fn(static_cast<RRId>(local), v); });
        p += rec;
      }
    }
  };
  shard->post_offsets.assign(num_nodes + 1, 0);
  uint64_t members = 0;
  for_each_member([&](RRId, NodeId v) {
    OPIM_DCHECK_LT(v, num_nodes);
    ++shard->post_offsets[v + 1];
    ++members;
  });
  for (uint32_t v = 0; v < num_nodes; ++v) {
    shard->post_offsets[v + 1] += shard->post_offsets[v];
  }
  shard->postings.resize(members);
  std::vector<uint32_t> cursor(shard->post_offsets.begin(),
                               shard->post_offsets.end() - 1);
  for_each_member(
      [&](RRId local, NodeId v) { shard->postings[cursor[v]++] = local; });
  shard->total_members = members;
  shard->bytes.resize(used);  // strip the temporary slack again
}

RRCollection::RRCollection(uint32_t num_nodes, RRStoreOptions options)
    : num_nodes_(num_nodes),
      retain_costs_(options.retain_set_costs),
      raw_offsets_(num_nodes + 1, 0),
      block_offsets_(num_nodes + 1, 0) {
  // One slot bit tags inline sets, so ids must fit in 31 bits.
  OPIM_CHECK_LT(num_nodes, kSlotInlineTag);
}

RRCollection::~RRCollection() = default;
RRCollection::RRCollection(RRCollection&&) noexcept = default;
RRCollection& RRCollection::operator=(RRCollection&&) noexcept = default;

void RRCollection::AppendRunToOpenChunk(const uint8_t* src, uint64_t len) {
  PoolChunk& c = chunks_.back();
  c.bytes.resize(c.encoded_bytes);  // strip the decode slack
  c.bytes.insert(c.bytes.end(), src, src + len);
  c.encoded_bytes += len;
  c.bytes.resize(c.encoded_bytes + kVarintDecodeSlackBytes, 0);
  c.data = c.bytes.data();
  pool_bytes_ += len;
}

void RRCollection::AppendEncodedSet(std::vector<NodeId>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
  const RRId id = num_sets_;
  if ((id & ((1u << kChunkShift) - 1)) == 0) chunks_.emplace_back();
  PoolChunk& c = chunks_.back();
  if (nodes->empty()) {
    slot_.push_back(kEmptySlot);
  } else if (nodes->size() == 1) {
    slot_.push_back(kSlotInlineTag | (*nodes)[0]);
  } else {
    OPIM_CHECK_LT(c.encoded_bytes, kSlotInlineTag);
    slot_.push_back(static_cast<uint32_t>(c.encoded_bytes));
    c.bytes.resize(c.encoded_bytes);  // strip the decode slack
    const uint64_t len = EncodeRRMembers(*nodes, &c.bytes);
    c.encoded_bytes += len;
    c.bytes.resize(c.encoded_bytes + kVarintDecodeSlackBytes, 0);
    c.data = c.bytes.data();
    pool_bytes_ += len;
  }
  ++num_sets_;
  total_members_ += nodes->size();
}

RRId RRCollection::AddSet(std::span<const NodeId> nodes,
                          uint64_t edges_examined) {
  const RRId id = num_sets_;
  for (NodeId v : nodes) {
    OPIM_CHECK_LT(v, num_nodes_);
  }
  addset_scratch_.assign(nodes.begin(), nodes.end());
  AppendEncodedSet(&addset_scratch_);
  if (retain_costs_) set_cost_.push_back(edges_examined);
  total_edges_examined_ += edges_examined;
  if (!nodes.empty()) index_dirty_ = true;
  return id;
}

void RRCollection::AddBatch(std::vector<RRBatch> shards, ThreadPool* pool) {
  uint64_t add_sets = 0;
  for (const RRBatch& shard : shards) {
    add_sets += shard.sets.size();
#if OPIM_DEBUG_CHECKS
    for (NodeId v : shard.pool) OPIM_DCHECK_LT(v, num_nodes_);
    uint64_t shard_nodes = 0;
    for (const auto& [size, cost] : shard.sets) shard_nodes += size;
    OPIM_DCHECK_EQ(shard_nodes, shard.pool.size());
#endif
  }
  if (add_sets == 0) return;

  // Per-shard sort + compress + local postings, in parallel; ingestion
  // proper is the shard-order merge in AddCompressedShards.
  std::vector<CompressedRRShard> enc(shards.size());
  auto encode_shard = [&](uint64_t s) {
    OPIM_TM_SCOPED_TIMER("opim.rrset.shard_encode_us");
    RRBatch& shard = shards[s];
    ShardEncoder encoder;
    NodeId* cursor = shard.pool.data();
    for (const auto& [size, cost] : shard.sets) {
      std::span<NodeId> members(cursor, size);
      cursor += size;
      std::sort(members.begin(), members.end());
      encoder.AddSorted(members, cost);
    }
    enc[s] = encoder.Finish(num_nodes_);
  };
  if (pool != nullptr && pool->num_threads() > 1 && shards.size() > 1) {
    pool->ParallelFor(shards.size(), encode_shard);
  } else {
    for (uint64_t s = 0; s < shards.size(); ++s) encode_shard(s);
  }
  AddCompressedShards(std::move(enc), pool);
}

void RRCollection::AddCompressedShards(std::vector<CompressedRRShard> shards,
                                       ThreadPool* pool) {
  OPIM_TR_SPAN1("ingest", "rrset", "shards", shards.size());
  OPIM_TM_SCOPED_TIMER("opim.rrset.ingest_us");
  uint64_t add_sets = 0;
  for (CompressedRRShard& shard : shards) {
    ShardEncoder::Finalize(&shard, num_nodes_);  // no-op on Finish output
    add_sets += shard.sets.size();
  }
  if (add_sets == 0) return;

  // When the per-node membership counts are already materialized and
  // current, each shard's posting counts update them in O(num_nodes)
  // below — the whole point of the compressed-shard path for incremental
  // selection. Captured before any append so a stale vector (serial
  // AddSet interleaved) keeps its lazy-decode watermark instead.
  const bool counts_live =
      member_counts_.size() == num_nodes_ && counts_accounted_ == num_sets_;

  // Serial assembly: each shard's byte stream is appended in contiguous
  // runs split only at chunk boundaries (sets are consecutive within a
  // shard), slots/costs follow the record walk in shard-major,
  // sample-minor append order.
  std::vector<RRId> shard_bases;
  shard_bases.reserve(shards.size());
  slot_.reserve(slot_.size() + add_sets);
  if (retain_costs_) set_cost_.reserve(set_cost_.size() + add_sets);
  for (const CompressedRRShard& shard : shards) {
    shard_bases.push_back(num_sets_);
    const uint8_t* src = shard.bytes.data();
    uint64_t src_pos = 0;  // bytes of this shard already flushed
    uint64_t run_len = 0;  // bytes pending for the open chunk
    for (const auto& [rec, cost] : shard.sets) {
      const RRId id = num_sets_;
      if ((id & ((1u << kChunkShift) - 1)) == 0) {
        if (run_len > 0) {
          AppendRunToOpenChunk(src + src_pos, run_len);
          src_pos += run_len;
          run_len = 0;
        }
        chunks_.emplace_back();
      }
      if (rec & kSlotInlineTag) {
        slot_.push_back(rec);
      } else {
        const uint64_t rel = chunks_.back().encoded_bytes + run_len;
        OPIM_CHECK_LT(rel, kSlotInlineTag);
        slot_.push_back(static_cast<uint32_t>(rel));
        run_len += rec;
      }
      ++num_sets_;
      if (retain_costs_) set_cost_.push_back(cost);
      total_edges_examined_ += cost;
    }
    if (run_len > 0) {
      AppendRunToOpenChunk(src + src_pos, run_len);
      src_pos += run_len;
    }
    OPIM_CHECK_EQ(src_pos, shard.bytes.size());
    total_members_ += shard.total_members;
  }
  if (counts_live) {
    for (const CompressedRRShard& shard : shards) {
      OPIM_DCHECK_EQ(shard.post_offsets.size(), size_t{num_nodes_} + 1);
      for (uint32_t v = 0; v < num_nodes_; ++v) {
        const uint64_t add =
            shard.post_offsets[v + 1] - shard.post_offsets[v];
        if (add != 0 && member_counts_[v] == 0) member_nonzero_.push_back(v);
        member_counts_[v] += add;
      }
    }
    counts_accounted_ = num_sets_;
  }
  OPIM_TM_GAUGE_SET("opim.rrset.compressed_bytes", pool_bytes_);
  if (index_dirty_) {
    RebuildIndex(pool);  // single-set appends left no merge base
  } else {
    MergeIndex(shards, shard_bases, pool);
  }
}

void RRCollection::MergeIndex(std::span<const CompressedRRShard> shards,
                              std::span<const RRId> shard_bases,
                              ThreadPool* pool) const {
  OPIM_TR_SPAN1("index_merge", "rrset", "sets", num_sets_);
  OPIM_TM_SCOPED_TIMER("opim.rrset.index_merge_us");
  OPIM_TM_COUNTER_ADD("opim.rrset.index_merges", 1);
  index_dirty_ = false;
  const uint32_t n = num_nodes_;
  OPIM_CHECK_LE(total_members_, 0xFFFFFFFFull);

  // Every phase runs over the same fixed node ranges; per-node output
  // never depends on the split, so the result is identical for any worker
  // count. More ranges than workers keeps the merge balanced when posting
  // mass is skewed toward hubs.
  const unsigned workers = pool != nullptr ? pool->num_threads() : 1;
  const uint32_t ranges =
      workers > 1 && total_members_ >= kParallelRebuildMinNodes
          ? std::min<uint32_t>(n, workers * 4)
          : 1;
  auto range_lo = [n, ranges](uint32_t r) {
    return static_cast<uint32_t>(uint64_t{n} * r / ranges);
  };
  auto for_ranges = [&](auto&& fn) {
    if (ranges == 1) {
      fn(0);
    } else {
      pool->ParallelFor(ranges,
                        [&](uint64_t r) { fn(static_cast<uint32_t>(r)); });
    }
  };

  // Phase 1: merged per-node posting counts, then a serial prefix sum.
  std::vector<uint32_t> offsets(n + 1, 0);
  for_ranges([&](uint32_t r) {
    for (uint32_t v = range_lo(r); v < range_lo(r + 1); ++v) {
      uint32_t count = raw_offsets_[v + 1] - raw_offsets_[v];
      for (uint32_t b = block_offsets_[v]; b < block_offsets_[v + 1]; ++b) {
        count += static_cast<uint32_t>(std::popcount(block_masks_[b]));
      }
      for (const CompressedRRShard& shard : shards) {
        count += shard.post_offsets[v + 1] - shard.post_offsets[v];
      }
      offsets[v + 1] = count;
    }
  });
  for (uint32_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  OPIM_CHECK_EQ(offsets[n], static_cast<uint32_t>(total_members_));

  // Phase 2: fill the merged raw postings. Old ids first (ascending out
  // of either representation), then shard postings in shard order —
  // local indices ascend per node and bases increase, so every node's
  // merged list comes out ascending without any sort.
  std::vector<RRId> merged(offsets[n]);
  for_ranges([&](uint32_t r) {
    for (uint32_t v = range_lo(r); v < range_lo(r + 1); ++v) {
      uint32_t w = offsets[v];
      for (uint32_t i = raw_offsets_[v]; i < raw_offsets_[v + 1]; ++i) {
        merged[w++] = cover_ids_[i];
      }
      for (uint32_t b = block_offsets_[v]; b < block_offsets_[v + 1]; ++b) {
        uint64_t mask = block_masks_[b];
        const uint64_t base = uint64_t{block_words_[b]} << 6;
        while (mask != 0) {
          merged[w++] = static_cast<RRId>(base + std::countr_zero(mask));
          mask &= mask - 1;
        }
      }
      for (size_t s = 0; s < shards.size(); ++s) {
        const CompressedRRShard& shard = shards[s];
        for (uint32_t i = shard.post_offsets[v];
             i < shard.post_offsets[v + 1]; ++i) {
          merged[w++] = shard_bases[s] + shard.postings[i];
        }
      }
      OPIM_DCHECK_EQ(w, offsets[v + 1]);
    }
  });

  // Phase 3: per-node representation selection + compaction, two passes
  // over the same ranges: per-range output sizes, a serial prefix fixing
  // each range's write base, then emission. The choice rule matches
  // RebuildIndex exactly (blocks win iff 3·blocks <= postings).
  auto node_blocks = [&](uint32_t lo, uint32_t hi) {
    uint32_t blocks = 1;
    for (uint32_t i = lo + 1; i < hi; ++i) {
      blocks += (merged[i] >> 6) != (merged[i - 1] >> 6);
    }
    return blocks;
  };
  std::vector<uint64_t> range_raw(ranges + 1, 0);
  std::vector<uint64_t> range_blocks(ranges + 1, 0);
  for_ranges([&](uint32_t r) {
    uint64_t raw = 0;
    uint64_t blk = 0;
    for (uint32_t v = range_lo(r); v < range_lo(r + 1); ++v) {
      const uint32_t p = offsets[v + 1] - offsets[v];
      if (p == 0) continue;
      const uint32_t blocks = node_blocks(offsets[v], offsets[v + 1]);
      if (kBlockCostRatio * blocks <= p) {
        blk += blocks;
      } else {
        raw += p;
      }
    }
    range_raw[r + 1] = raw;
    range_blocks[r + 1] = blk;
  });
  for (uint32_t r = 0; r < ranges; ++r) {
    range_raw[r + 1] += range_raw[r];
    range_blocks[r + 1] += range_blocks[r];
  }
  cover_ids_.resize(range_raw[ranges]);
  block_words_.resize(range_blocks[ranges]);
  block_masks_.resize(range_blocks[ranges]);
  for_ranges([&](uint32_t r) {
    uint32_t w_raw = static_cast<uint32_t>(range_raw[r]);
    uint32_t w_blk = static_cast<uint32_t>(range_blocks[r]);
    for (uint32_t v = range_lo(r); v < range_lo(r + 1); ++v) {
      raw_offsets_[v] = w_raw;
      block_offsets_[v] = w_blk;
      const uint32_t lo = offsets[v];
      const uint32_t hi = offsets[v + 1];
      const uint32_t p = hi - lo;
      if (p == 0) continue;
      const uint32_t blocks = node_blocks(lo, hi);
      if (kBlockCostRatio * blocks <= p) {
        uint32_t word = merged[lo] >> 6;
        uint64_t mask = 0;
        for (uint32_t i = lo; i < hi; ++i) {
          const uint32_t w = merged[i] >> 6;
          if (w != word) {
            block_words_[w_blk] = word;
            block_masks_[w_blk] = mask;
            ++w_blk;
            word = w;
            mask = 0;
          }
          mask |= uint64_t{1} << (merged[i] & 63);
        }
        block_words_[w_blk] = word;
        block_masks_[w_blk] = mask;
        ++w_blk;
      } else {
        for (uint32_t i = lo; i < hi; ++i) cover_ids_[w_raw++] = merged[i];
      }
    }
  });
  raw_offsets_[n] = static_cast<uint32_t>(range_raw[ranges]);
  block_offsets_[n] = static_cast<uint32_t>(range_blocks[ranges]);
  cover_ids_.shrink_to_fit();
  block_words_.shrink_to_fit();
  block_masks_.shrink_to_fit();
}

void RRCollection::RebuildIndex(ThreadPool* pool) const {
  OPIM_TR_SPAN1("index_rebuild", "rrset", "sets", num_sets_);
  OPIM_TM_SCOPED_TIMER("opim.rrset.index_rebuild_us");
  OPIM_TM_COUNTER_ADD("opim.rrset.index_rebuilds", 1);
  index_dirty_ = false;
  const uint32_t n = num_nodes_;
  const uint64_t sets = num_sets_;
  // Posting positions are uint32 (a raw posting is 4 bytes; 2^32 of them
  // is a 16 GiB index, far past any budgeted run).
  OPIM_CHECK_LE(total_members_, 0xFFFFFFFFull);
  cover_ids_.resize(total_members_);

  // Stage 1: counting-sort the decoded sets into full raw postings
  // (ascending RR ids per node), exactly the PR-2 rebuild but reading
  // members through the codec. With the spill tier armed, decodes can
  // fault chunks in, so the rebuild must stay on one thread.
  std::vector<uint32_t> full_offsets(n + 1, 0);
  const unsigned workers =
      pool != nullptr && spill_ == nullptr ? pool->num_threads() : 1;
  if (workers <= 1 || total_members_ < kParallelRebuildMinNodes) {
    // Serial two-pass counting sort: count into full_offsets[v + 1],
    // prefix-sum, then place ids in ascending set order per node.
    for (uint64_t id = 0; id < sets; ++id) {
      ForEachMember(static_cast<RRId>(id),
                    [&](NodeId v) { ++full_offsets[v + 1]; });
    }
    for (uint32_t v = 0; v < n; ++v) full_offsets[v + 1] += full_offsets[v];
    std::vector<uint32_t> cursor(full_offsets.begin(), full_offsets.end() - 1);
    for (uint64_t id = 0; id < sets; ++id) {
      ForEachMember(static_cast<RRId>(id), [&](NodeId v) {
        cover_ids_[cursor[v]++] = static_cast<RRId>(id);
      });
    }
  } else {
    // Parallel counting sort over contiguous set ranges ("chunks"):
    // per-chunk node counts, a serial combine that turns them into
    // per-chunk write cursors, and a parallel placement pass. Chunks are
    // ordered by set id and cursors start at each chunk's global
    // position, so every node's id list comes out ascending — identical
    // to the serial result for any worker count.
    const unsigned chunks = workers;
    std::vector<uint64_t> chunk_set_end(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
      chunk_set_end[c] = sets * (c + 1) / chunks;
    }
    std::vector<std::vector<uint32_t>> chunk_counts(chunks);
    pool->ParallelFor(chunks, [&](uint64_t c) {
      std::vector<uint32_t>& counts = chunk_counts[c];
      counts.assign(n, 0);
      const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
      for (uint64_t id = lo; id < chunk_set_end[c]; ++id) {
        ForEachMember(static_cast<RRId>(id), [&](NodeId v) { ++counts[v]; });
      }
    });
    uint32_t acc = 0;
    for (uint32_t v = 0; v < n; ++v) {
      full_offsets[v] = acc;
      for (unsigned c = 0; c < chunks; ++c) {
        const uint32_t count = chunk_counts[c][v];
        chunk_counts[c][v] = acc;  // becomes chunk c's write cursor for v
        acc += count;
      }
    }
    full_offsets[n] = acc;
    pool->ParallelFor(chunks, [&](uint64_t c) {
      std::vector<uint32_t>& cursor = chunk_counts[c];
      const uint64_t lo = c == 0 ? 0 : chunk_set_end[c - 1];
      for (uint64_t id = lo; id < chunk_set_end[c]; ++id) {
        ForEachMember(static_cast<RRId>(id), [&](NodeId v) {
          cover_ids_[cursor[v]++] = static_cast<RRId>(id);
        });
      }
    });
  }

  // Stage 2: per-node representation selection + in-place compaction.
  // Raw postings for a node are rewritten left-to-right at or before
  // their original position (the kept total only shrinks), so the block
  // conversion reads ahead of every write and no temporary copy of the
  // postings is needed.
  block_words_.clear();
  block_masks_.clear();
  uint32_t write = 0;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t lo = full_offsets[v];
    const uint32_t hi = full_offsets[v + 1];
    const uint32_t p = hi - lo;
    raw_offsets_[v] = write;
    block_offsets_[v] = static_cast<uint32_t>(block_words_.size());
    if (p == 0) continue;
    uint32_t blocks = 1;
    for (uint32_t i = lo + 1; i < hi; ++i) {
      blocks += (cover_ids_[i] >> 6) != (cover_ids_[i - 1] >> 6);
    }
    if (kBlockCostRatio * blocks <= p) {
      uint32_t word = cover_ids_[lo] >> 6;
      uint64_t mask = 0;
      for (uint32_t i = lo; i < hi; ++i) {
        const uint32_t w = cover_ids_[i] >> 6;
        if (w != word) {
          block_words_.push_back(word);
          block_masks_.push_back(mask);
          word = w;
          mask = 0;
        }
        mask |= uint64_t{1} << (cover_ids_[i] & 63);
      }
      block_words_.push_back(word);
      block_masks_.push_back(mask);
    } else {
      for (uint32_t i = lo; i < hi; ++i) {
        cover_ids_[write++] = cover_ids_[i];
      }
    }
  }
  raw_offsets_[n] = write;
  block_offsets_[n] = static_cast<uint32_t>(block_words_.size());
  cover_ids_.resize(write);
  cover_ids_.shrink_to_fit();
  block_words_.shrink_to_fit();
  block_masks_.shrink_to_fit();
}

/// Spill-file bookkeeping behind unique_ptr so the collection stays
/// movable; the mutex guards the file cursor and chunk transitions
/// (belt and suspenders — decode-side faulting is single-threaded by
/// contract, but SpillColdChunks may be called while no reads run).
struct RRCollection::SpillState {
  int fd = -1;
  std::mutex mu;
  uint64_t append_cursor = 0;  // next free byte of the spill file
  uint64_t lru_clock = 0;      // advanced on every decode / fault-in
  uint64_t resident_target = ~uint64_t{0};  // sticky; set by SpillColdChunks
  RRSpillStats stats;

  ~SpillState() {
    if (fd >= 0) ::close(fd);
  }
};

Status RRCollection::EnableSpill(const RRSpillOptions& options) {
  if (spill_ != nullptr) return Status::OK();
  // Create-and-unlink: the spill file has no name from here on, so it
  // disappears with the process no matter how the run exits.
  std::string tmpl = options.dir + "/opim_rr_spill_XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return Status::IOError("cannot create RR spill file in " + options.dir +
                           ": " + std::strerror(errno));
  }
  ::unlink(path.data());
  auto state = std::make_unique<SpillState>();
  state->fd = fd;
  spill_ = std::move(state);
  return Status::OK();
}

Result<uint64_t> RRCollection::SpillColdChunks(
    uint64_t target_resident_bytes) {
  if (spill_ == nullptr) {
    return Status::FailedPrecondition(
        "SpillColdChunks before EnableSpill");
  }
  std::lock_guard<std::mutex> lock(spill_->mu);
  spill_->resident_target = target_resident_bytes;
  if (chunks_.size() <= 1) return uint64_t{0};  // nothing sealed yet

  uint64_t resident = 0;
  for (const PoolChunk& c : chunks_) resident += c.bytes.capacity();
  // Coldest first: chunks never decoded since the last fault carry the
  // oldest stamps, ties broken by chunk index (oldest sets first).
  std::vector<uint32_t> sealed;
  for (uint32_t i = 0; i + 1 < chunks_.size(); ++i) {
    if (chunks_[i].data != nullptr && chunks_[i].encoded_bytes > 0) {
      sealed.push_back(i);
    }
  }
  std::sort(sealed.begin(), sealed.end(), [this](uint32_t a, uint32_t b) {
    return chunks_[a].lru_stamp != chunks_[b].lru_stamp
               ? chunks_[a].lru_stamp < chunks_[b].lru_stamp
               : a < b;
  });

  uint64_t evicted = 0;
  for (uint32_t i : sealed) {
    if (resident <= target_resident_bytes) break;
    PoolChunk& c = chunks_[i];
    if (c.spill_offset == PoolChunk::kNotSpilled) {
      // First eviction pays the write; nothing is mutated until it
      // lands, so a failure leaves the collection fully usable and the
      // caller can degrade to the stop-at-budget path.
      if (OPIM_FAULT_POINT("io.short_write")) {
        return Status::IOError("injected short write on RR spill file");
      }
      const uint64_t off = spill_->append_cursor;
      if (Status w = io::PWriteFull(spill_->fd, c.bytes.data(),
                                    c.encoded_bytes, static_cast<off_t>(off));
          !w.ok()) {
        return Status::IOError("RR spill file: " + w.message());
      }
      c.spill_offset = off;
      spill_->append_cursor = off + c.encoded_bytes;
    }
    resident -= c.bytes.capacity();
    // swap with a temporary: `bytes = {}` would keep the capacity.
    std::vector<uint8_t>().swap(c.bytes);
    c.data = nullptr;
    ++evicted;
    ++spill_->stats.chunks_spilled;
  }
  OPIM_TM_COUNTER_ADD("opim.rrset.spill_chunks_spilled", evicted);
  OPIM_TM_GAUGE_SET("opim.rrset.spilled_bytes", SpilledBytes());
  return evicted;
}

const uint8_t* RRCollection::SpillAwareChunkData(uint32_t chunk) const {
  PoolChunk& c = chunks_[chunk];
  if (c.data == nullptr) FaultChunk(chunk);
  c.lru_stamp = ++spill_->lru_clock;
  return c.data;
}

void RRCollection::FaultChunk(uint32_t chunk) const {
  OPIM_CHECK_MSG(spill_ != nullptr,
                 "decode of an evicted chunk without spill state");
  std::lock_guard<std::mutex> lock(spill_->mu);
  PoolChunk& c = chunks_[chunk];
  if (c.data != nullptr) return;
  OPIM_CHECK_MSG(c.spill_offset != PoolChunk::kNotSpilled,
                 "evicted chunk has no spill offset");
  c.bytes.assign(c.encoded_bytes + kVarintDecodeSlackBytes, 0);
  // The file is unlinked and fully written; a read failure here is an
  // invariant break, not an expected runtime outcome.
  const Status read = io::PReadFull(spill_->fd, c.bytes.data(),
                                    c.encoded_bytes,
                                    static_cast<off_t>(c.spill_offset));
  OPIM_CHECK_MSG(read.ok(), "RR spill file read failed");
  c.data = c.bytes.data();
  ++spill_->stats.chunks_faulted;
  OPIM_TM_COUNTER_ADD("opim.rrset.spill_chunks_faulted", 1);

  // Keep residency at the sticky target: drop the coldest chunks that
  // are already on disk (re-eviction is free — no writes from the
  // decode path). The faulted chunk and the open chunk stay.
  uint64_t resident = 0;
  for (const PoolChunk& pc : chunks_) resident += pc.bytes.capacity();
  if (resident <= spill_->resident_target) return;
  std::vector<uint32_t> cand;
  for (uint32_t i = 0; i + 1 < chunks_.size(); ++i) {
    if (i == chunk) continue;
    if (chunks_[i].data != nullptr &&
        chunks_[i].spill_offset != PoolChunk::kNotSpilled) {
      cand.push_back(i);
    }
  }
  std::sort(cand.begin(), cand.end(), [this](uint32_t a, uint32_t b) {
    return chunks_[a].lru_stamp != chunks_[b].lru_stamp
               ? chunks_[a].lru_stamp < chunks_[b].lru_stamp
               : a < b;
  });
  uint64_t evicted = 0;
  for (uint32_t i : cand) {
    if (resident <= spill_->resident_target) break;
    resident -= chunks_[i].bytes.capacity();
    std::vector<uint8_t>().swap(chunks_[i].bytes);
    chunks_[i].data = nullptr;
    ++evicted;
    ++spill_->stats.chunks_spilled;
  }
  OPIM_TM_COUNTER_ADD("opim.rrset.spill_chunks_spilled", evicted);
}

uint64_t RRCollection::SpilledBytes() const {
  uint64_t bytes = 0;
  for (const PoolChunk& c : chunks_) {
    if (c.data == nullptr && c.spill_offset != PoolChunk::kNotSpilled) {
      bytes += c.encoded_bytes;
    }
  }
  return bytes;
}

RRSpillStats RRCollection::SpillStats() const {
  return spill_ != nullptr ? spill_->stats : RRSpillStats{};
}

std::vector<NodeId> RRCollection::DecodeSet(RRId id) const {
  std::vector<NodeId> out;
  out.reserve(SetSize(id));
  ForEachMember(id, [&](NodeId v) { out.push_back(v); });
  return out;
}

uint32_t RRCollection::CoveringCount(NodeId v) const {
  const CoverPostings p = Covering(v);
  uint64_t count = p.ids.size();
  for (uint64_t mask : p.masks) count += std::popcount(mask);
  return static_cast<uint32_t>(count);
}

std::vector<RRId> RRCollection::DecodeCovering(NodeId v) const {
  std::vector<RRId> out;
  ForEachCovering(v, [&](RRId id) { out.push_back(id); });
  return out;
}

std::span<const uint64_t> RRCollection::MemberCounts() const {
  if (member_counts_.size() != num_nodes_ || counts_accounted_ != num_sets_) {
    AccountMemberCounts();
  }
  return member_counts_;
}

void RRCollection::AccountMemberCounts() const {
  OPIM_TM_SCOPED_TIMER("opim.rrset.member_counts_us");
  if (member_counts_.size() != num_nodes_) {
    // First use (or a restore replaced the pool wholesale): materialize
    // and fold every set. This is the one full-pool decode the counts
    // ever pay; every later doubling folds only its shard deltas.
    member_counts_.assign(num_nodes_, 0);
    member_nonzero_.clear();
    counts_accounted_ = 0;
  }
  OPIM_TR_SPAN1("member_counts", "rrset", "delta_sets",
                num_sets_ - counts_accounted_);
  for (RRId id = static_cast<RRId>(counts_accounted_); id < num_sets_; ++id) {
    ForEachMember(id, [&](NodeId v) {
      if (member_counts_[v]++ == 0) member_nonzero_.push_back(v);
    });
  }
  counts_accounted_ = num_sets_;
}

std::span<const NodeId> RRCollection::MemberNonzero() const {
  MemberCounts();  // materialize / fold pending sets; keeps the list current
  return member_nonzero_;
}

uint64_t RRCollection::CoverageOf(std::span<const NodeId> seeds) const {
  if (index_dirty_) RebuildIndex(nullptr);
  cover_scratch_.Reset(num_sets_);
  uint64_t* words = cover_scratch_.words();
  uint64_t covered = 0;
  for (NodeId v : seeds) {
    const CoverPostings p = Covering(v);
    ForEachNewlyCoveredIds(p.ids, words, [&](RRId) { ++covered; });
    for (size_t i = 0; i < p.words.size(); ++i) {
      const uint64_t fresh = p.masks[i] & ~words[p.words[i]];
      covered += std::popcount(fresh);
      words[p.words[i]] |= fresh;
    }
  }
  return covered;
}

double RRCollection::EstimateSpread(std::span<const NodeId> seeds) const {
  if (num_sets() == 0) return 0.0;
  return static_cast<double>(CoverageOf(seeds)) * num_nodes() / num_sets();
}

std::span<const uint8_t> RRCollection::ChunkRun(uint32_t chunk) const {
  OPIM_CHECK_LT(chunk, chunks_.size());
  const PoolChunk& c = chunks_[chunk];
  if (c.encoded_bytes == 0) return {};
  // Faulting chunk `chunk` may evict a colder chunk past the sticky
  // resident target — never `chunk` itself, so the span stays valid
  // until the next decode or append.
  const uint8_t* data =
      spill_ != nullptr ? SpillAwareChunkData(chunk) : c.data;
  return {data, c.encoded_bytes};
}

RRCollection RRCollection::RestoreFromSnapshotParts(
    uint32_t num_nodes, RRStoreOptions options,
    std::vector<std::vector<uint8_t>> chunk_runs, std::vector<uint32_t> slots,
    std::vector<uint64_t> costs, uint64_t total_members,
    uint64_t total_edges_examined) {
  RRCollection rr(num_nodes, options);
  const size_t sets = slots.size();
  const size_t expected_chunks =
      sets == 0 ? 0 : (sets + ((1u << kChunkShift) - 1)) >> kChunkShift;
  OPIM_CHECK_EQ(chunk_runs.size(), expected_chunks);
  OPIM_CHECK(options.retain_set_costs ? costs.size() == sets : costs.empty());

  rr.chunks_.reserve(chunk_runs.size());
  for (std::vector<uint8_t>& run : chunk_runs) {
    PoolChunk c;
    c.encoded_bytes = run.size();
    rr.pool_bytes_ += run.size();
    if (!run.empty()) {
      run.resize(run.size() + kVarintDecodeSlackBytes, 0);
      c.bytes = std::move(run);
      c.data = c.bytes.data();
    }
    rr.chunks_.push_back(std::move(c));
  }
  rr.num_sets_ = static_cast<uint32_t>(sets);
  rr.slot_ = std::move(slots);
  rr.set_cost_ = std::move(costs);
  rr.total_members_ = total_members;
  rr.total_edges_examined_ = total_edges_examined;
  // The index is a deterministic function of the pool; rebuild on first
  // read (or EnsureIndex) instead of shipping it through the snapshot.
  rr.index_dirty_ = rr.num_sets_ > 0;
  return rr;
}

}  // namespace opim
