// Random RR-set samplers for the IC and LT models (paper Appendix A).
//
// IC: pick a uniform root v, run a stochastic *reverse* BFS — each incoming
// edge <w, u> of a traversed node u is kept with probability p(w, u) — and
// return every traversed node.
//
// LT: pick a uniform root v, then walk backwards: from the current node u,
// stop with probability 1 - Σ_w p(w, u), otherwise move to one in-neighbor
// w chosen with probability p(w, u). The walk also stops on revisiting a
// node (at most one in-neighbor can activate u under LT). Per-step neighbor
// choice is O(1) with Walker's alias method (paper [42]) after O(n + m)
// preprocessing.
//
// Both kernels run off a SamplingView (graph/sampling_view.h): quantized
// 32-bit edge thresholds instead of double compares, geometric skipping
// over high-degree uniform-probability nodes, and a flattened alias arena
// for the LT walk. A sampler either owns a private view (the Graph
// constructors, convenient for one-off use) or borrows a caller-owned one
// (the SamplingView constructors) so that parallel shards and repeated
// doublings share one read-only preprocessing pass.
//
// Both samplers report an `edges_examined` traversal cost per sample: the
// total in-degree of the nodes placed in the RR set. For the IC reverse
// BFS this is exactly the number of edge coin-flips of the unskipped
// kernel; it is the γ that Borgs et al.'s OPIM bound consumes (§3.2) and
// the "width" of TIM/IMM.

#pragma once

#include <array>
#include <memory>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "graph/sampling_view.h"
#include "rrset/rr_collection.h"
#include "support/alias_sampler.h"
#include "support/random.h"

namespace opim {

/// The SamplingView part a sampler for `model` consumes.
SamplingView::Parts SamplingViewPartsFor(DiffusionModel model);

/// Abstract RR-set sampler. Implementations are stateful (they own scratch
/// and preprocessing) but logically const per sample; not thread-safe.
///
/// Roots are drawn ahead in blocks of kRootLookahead and their per-node
/// records prefetched: a typical sample touches only a couple of random
/// cache lines, and the root's are the ones nothing can overlap — unless
/// they were requested a dozen samples early. Consequence: the RNG stream
/// interleaves block-of-root draws with per-sample expansion draws. It is
/// still a pure function of the seed (the block schedule is fixed), but
/// the draws for sample i are no longer contiguous.
class RRSampler {
 public:
  /// Roots drawn (and prefetched) ahead per block.
  static constexpr uint32_t kRootLookahead = 16;

  virtual ~RRSampler() = default;

  /// Samples one RR set into `out` (cleared first; distinct nodes, root
  /// included) and returns the traversal cost in edges examined.
  virtual uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) = 0;

  /// Samples `count` RR sets and appends them to `collection` through the
  /// bulk-ingest path (one RRBatch, one index rebuild).
  void Generate(RRCollection* collection, uint64_t count, Rng& rng);

  /// The graph being sampled.
  virtual const Graph& graph() const = 0;

  /// Lifetime count of alias-table draws (weighted roots + LT walk steps).
  /// Only maintained in telemetry builds; reads 0 otherwise.
  uint64_t alias_draws() const { return alias_draws_; }

 protected:
  uint64_t alias_draws_ = 0;
};

/// IC-model sampler: stochastic reverse BFS.
///
/// The optional `root_weights` (one non-negative weight per node) selects
/// the RR-set root with probability proportional to weight instead of
/// uniformly — the standard weighted-RIS generalization: with total
/// weight W, W·Pr[S ∩ R ≠ ∅] estimates the *weighted* spread
/// σ_w(S) = Σ_v w_v·Pr[S activates v] (Lemma 3.1 with importance-weighted
/// roots). Pass W as the `scale` of the bounds/ functions.
class IcRRSampler final : public RRSampler {
 public:
  /// Owns a private SamplingView built from `g` (IC part only).
  explicit IcRRSampler(const Graph& g,
                       std::span<const double> root_weights = {});

  /// Borrows caller-owned shared state: `view` (IC part required, checked)
  /// and optionally `shared_root` (weighted roots; nullptr or empty =>
  /// uniform). Both must outlive the sampler.
  explicit IcRRSampler(const SamplingView& view,
                       const AliasSampler* shared_root = nullptr);

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) override;
  const Graph& graph() const override { return view_->graph(); }

 private:
  std::unique_ptr<const SamplingView> owned_view_;
  const SamplingView* view_;
  AliasSampler owned_root_;
  const AliasSampler* root_ = nullptr;  // nullptr => uniform roots
  uint32_t epoch_ = 0;
  std::array<NodeId, kRootLookahead> root_ring_;
  uint32_t ring_pos_ = kRootLookahead;  // empty: refill on next sample
  // The caller's output vector doubles as the BFS frontier, so the sampler
  // needs no queue of its own.
  std::vector<uint32_t> visited_epoch_;
};

/// LT-model sampler: reverse random walk over the view's flattened alias
/// arena (one quantized stop threshold + alias bucket lookup per step).
class LtRRSampler final : public RRSampler {
 public:
  /// Owns a private SamplingView built from `g` (LT part only;
  /// `root_weights` as for IcRRSampler).
  explicit LtRRSampler(const Graph& g,
                       std::span<const double> root_weights = {});

  /// Borrows caller-owned shared state (LT part required, checked).
  explicit LtRRSampler(const SamplingView& view,
                       const AliasSampler* shared_root = nullptr);

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) override;
  const Graph& graph() const override { return view_->graph(); }

 private:
  std::unique_ptr<const SamplingView> owned_view_;
  const SamplingView* view_;
  AliasSampler owned_root_;
  const AliasSampler* root_ = nullptr;  // nullptr => uniform roots
  uint32_t epoch_ = 0;
  std::array<NodeId, kRootLookahead> root_ring_;
  uint32_t ring_pos_ = kRootLookahead;  // empty: refill on next sample
  std::vector<uint32_t> visited_epoch_;
};

/// Factory keyed on the diffusion model. `root_weights` non-empty selects
/// weighted-spread sampling (see IcRRSampler).
std::unique_ptr<RRSampler> MakeRRSampler(
    const Graph& g, DiffusionModel model,
    std::span<const double> root_weights = {});

/// Shared-state factory: the sampler borrows `view` (which must have the
/// part for `model` built) and, when non-null and non-empty, `shared_root`.
/// Use this to amortize preprocessing across shards / doublings.
std::unique_ptr<RRSampler> MakeRRSampler(
    const SamplingView& view, DiffusionModel model,
    const AliasSampler* shared_root = nullptr);

}  // namespace opim
