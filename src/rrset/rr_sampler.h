// Random RR-set samplers for the IC and LT models (paper Appendix A).
//
// IC: pick a uniform root v, run a stochastic *reverse* BFS — each incoming
// edge <w, u> of a traversed node u is kept with probability p(w, u) — and
// return every traversed node.
//
// LT: pick a uniform root v, then walk backwards: from the current node u,
// stop with probability 1 - Σ_w p(w, u), otherwise move to one in-neighbor
// w chosen with probability p(w, u). The walk also stops on revisiting a
// node (at most one in-neighbor can activate u under LT). Per-step neighbor
// choice is O(1) with Walker's alias method (paper [42]) after O(n + m)
// preprocessing.
//
// Both samplers report an `edges_examined` traversal cost per sample: the
// total in-degree of the nodes placed in the RR set. For the IC reverse
// BFS this is exactly the number of edge coin-flips; it is the γ that
// Borgs et al.'s OPIM bound consumes (§3.2) and the "width" of TIM/IMM.

#pragma once

#include <memory>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "support/alias_sampler.h"
#include "support/random.h"

namespace opim {

/// Abstract RR-set sampler. Implementations are stateful (they own scratch
/// and preprocessing) but logically const per sample; not thread-safe.
class RRSampler {
 public:
  virtual ~RRSampler() = default;

  /// Samples one RR set into `out` (cleared first; distinct nodes, root
  /// included) and returns the traversal cost in edges examined.
  virtual uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) = 0;

  /// Samples `count` RR sets and appends them to `collection`.
  void Generate(RRCollection* collection, uint64_t count, Rng& rng);

  /// The graph being sampled.
  virtual const Graph& graph() const = 0;

  /// Lifetime count of alias-table draws (weighted roots + LT walk steps).
  /// Only maintained in telemetry builds; reads 0 otherwise.
  uint64_t alias_draws() const { return alias_draws_; }

 protected:
  uint64_t alias_draws_ = 0;
};

/// IC-model sampler: stochastic reverse BFS.
///
/// The optional `root_weights` (one non-negative weight per node) selects
/// the RR-set root with probability proportional to weight instead of
/// uniformly — the standard weighted-RIS generalization: with total
/// weight W, W·Pr[S ∩ R ≠ ∅] estimates the *weighted* spread
/// σ_w(S) = Σ_v w_v·Pr[S activates v] (Lemma 3.1 with importance-weighted
/// roots). Pass W as the `scale` of the bounds/ functions.
class IcRRSampler final : public RRSampler {
 public:
  explicit IcRRSampler(const Graph& g,
                       std::span<const double> root_weights = {});

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) override;
  const Graph& graph() const override { return graph_; }

 private:
  const Graph& graph_;
  AliasSampler root_sampler_;  // empty => uniform roots
  uint32_t epoch_ = 0;
  std::vector<uint32_t> visited_epoch_;
  std::vector<NodeId> queue_;
};

/// LT-model sampler: reverse random walk with alias-method neighbor choice.
/// Preprocessing builds one alias table per node over its in-edge weights
/// (O(n + m) total, per Appendix A).
class LtRRSampler final : public RRSampler {
 public:
  /// `root_weights` as for IcRRSampler (weighted-spread estimation).
  explicit LtRRSampler(const Graph& g,
                       std::span<const double> root_weights = {});

  uint64_t SampleInto(Rng& rng, std::vector<NodeId>* out) override;
  const Graph& graph() const override { return graph_; }

 private:
  const Graph& graph_;
  AliasSampler root_sampler_;  // empty => uniform roots
  std::vector<AliasSampler> in_alias_;  // per node, over InNeighbors(v)
  uint32_t epoch_ = 0;
  std::vector<uint32_t> visited_epoch_;
};

/// Factory keyed on the diffusion model. `root_weights` non-empty selects
/// weighted-spread sampling (see IcRRSampler).
std::unique_ptr<RRSampler> MakeRRSampler(
    const Graph& g, DiffusionModel model,
    std::span<const double> root_weights = {});

}  // namespace opim
