// Group-varint delta codec for sorted RR-set member lists.
//
// An RR set is a strictly ascending list of node ids. The encoding is
//   varint(count) · group-varint(v_0, d_1, ..., d_{count-1})
// where v_0 is the first id and d_i = x_i - x_{i-1} - 1 (ids are distinct,
// so every gap is >= 1 and the stored delta saves one bit of entropy).
// Group varint packs values four at a time: one control byte holding four
// 2-bit (byte-length - 1) fields, followed by the 1..4 little-endian
// payload bytes of each value. A trailing group of 1-3 values keeps the
// control byte with its unused fields zero.
//
// The fast decoder reads each payload with one unaligned 4-byte load and
// masks to the encoded length, so callers must guarantee
// kVarintDecodeSlackBytes readable bytes past the end of every encoding
// (RRCollection keeps that slack zero-filled at the tail of its pool).
// DecodeRRMembersChecked is the trust-boundary variant: it never reads
// past the given span and returns Status instead of UB on corrupt input.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/status.h"

namespace opim {

/// Readable slack the fast decoder needs past the last encoded byte.
inline constexpr size_t kVarintDecodeSlackBytes = 3;

/// Appends the encoding of `sorted` (strictly ascending ids) to `*out`.
/// Returns the number of bytes appended.
size_t EncodeRRMembers(std::span<const NodeId> sorted,
                       std::vector<uint8_t>* out);

/// Exact encoded size of `sorted` without materializing it.
size_t EncodedRRMembersSize(std::span<const NodeId> sorted);

namespace varint_internal {

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));  // unaligned load; x86 and arm64 are LE
  return v;
}

/// Masks keeping the low 1..4 bytes of an unaligned 4-byte load.
inline constexpr uint32_t kLenMask[4] = {0xFFu, 0xFFFFu, 0xFFFFFFu,
                                         0xFFFFFFFFu};

}  // namespace varint_internal

/// Reads a LEB128 uint32 (the count header) and advances `*p`.
inline uint32_t DecodeVarint32(const uint8_t** p) {
  const uint8_t* q = *p;
  uint32_t v = *q & 0x7Fu;
  unsigned shift = 7;
  while (*q & 0x80u) {
    ++q;
    v |= static_cast<uint32_t>(*q & 0x7Fu) << shift;
    shift += 7;
  }
  *p = q + 1;
  return v;
}

/// Decoded member count of the encoding at `p` (does not decode members).
inline uint32_t DecodedRRMemberCount(const uint8_t* p) {
  return DecodeVarint32(&p);
}

/// Calls `fn(NodeId)` for each member, in ascending order. `p` points at
/// the count header; requires kVarintDecodeSlackBytes readable past the
/// encoding. Returns one past the last encoded byte.
template <typename Fn>
inline const uint8_t* DecodeRRMembersForEach(const uint8_t* p, Fn&& fn) {
  using varint_internal::kLenMask;
  using varint_internal::LoadLE32;
  const uint32_t count = DecodeVarint32(&p);
  if (count == 0) return p;
  // Peel the first group: its leading value is absolute (not a gap), so
  // handling it here keeps every loop below a branch-free accumulate.
  // Within a group the control byte shifts right two bits per value —
  // cheaper than re-indexing with a variable shift distance.
  const uint32_t head = count < 4 ? count : 4;
  uint32_t ctrl = *p++;
  uint32_t len = ctrl & 3u;  // payload bytes - 1
  uint32_t x = LoadLE32(p) & kLenMask[len];
  p += len + 1;
  fn(static_cast<NodeId>(x));
  for (uint32_t i = 1; i < head; ++i) {
    ctrl >>= 2;
    len = ctrl & 3u;
    x += (LoadLE32(p) & kLenMask[len]) + 1;
    p += len + 1;
    fn(static_cast<NodeId>(x));
  }
  uint32_t remaining = count - head;
  while (remaining >= 4) {
    ctrl = *p++;
    for (uint32_t i = 0; i < 4; ++i) {
      len = ctrl & 3u;
      ctrl >>= 2;
      x += (LoadLE32(p) & kLenMask[len]) + 1;
      p += len + 1;
      fn(static_cast<NodeId>(x));
    }
    remaining -= 4;
  }
  if (remaining > 0) {
    ctrl = *p++;
    do {
      len = ctrl & 3u;
      ctrl >>= 2;
      x += (LoadLE32(p) & kLenMask[len]) + 1;
      p += len + 1;
      fn(static_cast<NodeId>(x));
    } while (--remaining > 0);
  }
  return p;
}

/// Bounds- and monotonicity-checked decode for untrusted bytes: never
/// reads outside `bytes`, validates ids are strictly ascending and
/// < `max_value`, and that the encoding ends exactly at `bytes.end()`.
/// On success fills `*out` (cleared first).
Status DecodeRRMembersChecked(std::span<const uint8_t> bytes,
                              uint32_t max_value, std::vector<NodeId>* out);

}  // namespace opim
