#include "rrset/triggering.h"

namespace opim {

uint64_t IcTriggering::SampleTriggeringSet(NodeId v, Rng& rng,
                                           std::vector<NodeId>* out) const {
  auto nbrs = graph_.InNeighbors(v);
  auto probs = graph_.InProbs(v);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (rng.Bernoulli(probs[i])) out->push_back(nbrs[i]);
  }
  return nbrs.size();
}

LtTriggering::LtTriggering(const Graph& g)
    : graph_(g), in_alias_(g.num_nodes()) {
  OPIM_CHECK_MSG(g.MaxInWeightSum() <= 1.0 + 1e-9,
                 "LT requires per-node incoming weights to sum to <= 1");
  std::vector<double> weights;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto probs = g.InProbs(v);
    weights.assign(probs.begin(), probs.end());
    in_alias_[v].Build(weights);
  }
}

uint64_t LtTriggering::SampleTriggeringSet(NodeId v, Rng& rng,
                                           std::vector<NodeId>* out) const {
  const double stay = graph_.InWeightSum(v);
  if (stay > 0.0 && !in_alias_[v].empty() && rng.UniformDouble() < stay) {
    out->push_back(graph_.InNeighbors(v)[in_alias_[v].Sample(rng)]);
  }
  return graph_.InDegree(v);
}

uint32_t SimulateTriggeringCascade(const TriggeringDistribution& dist,
                                   std::span<const NodeId> seeds, Rng& rng,
                                   std::vector<NodeId>* activated) {
  const Graph& g = dist.graph();
  const uint32_t n = g.num_nodes();
  if (activated != nullptr) activated->clear();

  // Live-edge view: draw T_v lazily for every node the frontier touches;
  // v activates when a frontier member is in T_v. Equivalent to forward
  // diffusion by the standard coupling argument.
  std::vector<char> active(n, 0);
  std::vector<char> drawn(n, 0);
  // trigger_of[v] holds T_v once drawn.
  std::vector<std::vector<NodeId>> trigger_of(n);
  std::vector<NodeId> frontier, next;

  uint32_t count = 0;
  for (NodeId s : seeds) {
    OPIM_CHECK_LT(s, n);
    if (active[s]) continue;
    active[s] = 1;
    frontier.push_back(s);
    if (activated != nullptr) activated->push_back(s);
    ++count;
  }
  while (!frontier.empty()) {
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.OutNeighbors(u)) {
        if (active[v]) continue;
        if (!drawn[v]) {
          drawn[v] = 1;
          dist.SampleTriggeringSet(v, rng, &trigger_of[v]);
        }
        bool triggered = false;
        for (NodeId w : trigger_of[v]) {
          if (w == u) {
            triggered = true;
            break;
          }
        }
        if (!triggered) continue;
        active[v] = 1;
        next.push_back(v);
        if (activated != nullptr) activated->push_back(v);
        ++count;
      }
    }
    frontier.swap(next);
  }
  return count;
}

TriggeringRRSampler::TriggeringRRSampler(
    std::shared_ptr<TriggeringDistribution> dist)
    : dist_(std::move(dist)),
      visited_epoch_(dist_->graph().num_nodes(), 0) {
  OPIM_CHECK(dist_ != nullptr);
  OPIM_CHECK_GT(dist_->graph().num_nodes(), 0u);
}

uint64_t TriggeringRRSampler::SampleInto(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }
  const Graph& g = dist_->graph();
  NodeId root = rng.UniformBelow(g.num_nodes());
  visited_epoch_[root] = epoch_;
  out->push_back(root);
  queue_.clear();
  queue_.push_back(root);
  uint64_t edges_examined = 0;

  for (size_t head = 0; head < queue_.size(); ++head) {
    NodeId u = queue_[head];
    trigger_scratch_.clear();
    edges_examined += dist_->SampleTriggeringSet(u, rng, &trigger_scratch_);
    for (NodeId w : trigger_scratch_) {
      if (visited_epoch_[w] == epoch_) continue;
      visited_epoch_[w] = epoch_;
      out->push_back(w);
      queue_.push_back(w);
    }
  }
  return edges_examined;
}

}  // namespace opim
