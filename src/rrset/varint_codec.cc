#include "rrset/varint_codec.h"

namespace opim {

namespace {

/// Payload byte length (1..4) of one group-varint value.
inline uint32_t PayloadLen(uint32_t v) {
  if (v < (1u << 8)) return 1;
  if (v < (1u << 16)) return 2;
  if (v < (1u << 24)) return 3;
  return 4;
}

void AppendVarint32(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80u) {
    out->push_back(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

size_t Varint32Size(uint32_t v) {
  size_t bytes = 1;
  while (v >= 0x80u) {
    v >>= 7;
    ++bytes;
  }
  return bytes;
}

/// The i-th stored value: the first id raw, then gap-minus-one deltas.
inline uint32_t StoredValue(std::span<const NodeId> sorted, size_t i) {
  return i == 0 ? sorted[0] : sorted[i] - sorted[i - 1] - 1;
}

}  // namespace

size_t EncodeRRMembers(std::span<const NodeId> sorted,
                       std::vector<uint8_t>* out) {
  const size_t start = out->size();
  const size_t n = sorted.size();
  AppendVarint32(static_cast<uint32_t>(n), out);
  size_t i = 0;
  while (i < n) {
    const size_t group = n - i < 4 ? n - i : 4;
    const size_t ctrl_pos = out->size();
    out->push_back(0);
    uint8_t ctrl = 0;
    for (size_t j = 0; j < group; ++j) {
      const uint32_t d = StoredValue(sorted, i + j);
      const uint32_t len = PayloadLen(d);
      ctrl |= static_cast<uint8_t>((len - 1) << (2 * j));
      for (uint32_t b = 0; b < len; ++b) {
        out->push_back(static_cast<uint8_t>(d >> (8 * b)));
      }
    }
    (*out)[ctrl_pos] = ctrl;
    i += group;
  }
  return out->size() - start;
}

size_t EncodedRRMembersSize(std::span<const NodeId> sorted) {
  const size_t n = sorted.size();
  size_t bytes = Varint32Size(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; i += 4) {
    ++bytes;  // control byte
    const size_t group = n - i < 4 ? n - i : 4;
    for (size_t j = 0; j < group; ++j) {
      bytes += PayloadLen(StoredValue(sorted, i + j));
    }
  }
  return bytes;
}

Status DecodeRRMembersChecked(std::span<const uint8_t> bytes,
                              uint32_t max_value, std::vector<NodeId>* out) {
  out->clear();
  const uint8_t* p = bytes.data();
  const uint8_t* end = p + bytes.size();

  // Count header: LEB128 with explicit bounds and overflow checks.
  uint64_t count = 0;
  unsigned shift = 0;
  while (true) {
    if (p == end) return Status::InvalidArgument("varint: truncated count");
    const uint8_t byte = *p++;
    if (shift >= 32 || (shift == 28 && (byte & 0x7Fu) > 0x0Fu)) {
      return Status::InvalidArgument("varint: count overflows uint32");
    }
    count |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) break;
    shift += 7;
  }
  if (count > max_value) {
    // Members are distinct ids < max_value, so more than max_value of
    // them cannot round-trip; reject before reserving absurd memory.
    return Status::InvalidArgument("varint: count exceeds id universe");
  }

  out->reserve(static_cast<size_t>(count));
  uint64_t remaining = count;
  uint32_t x = 0;
  bool first = true;
  while (remaining > 0) {
    const uint32_t group = remaining < 4 ? static_cast<uint32_t>(remaining) : 4;
    if (p == end) return Status::InvalidArgument("varint: truncated group");
    const uint8_t ctrl = *p++;
    for (uint32_t i = 0; i < group; ++i) {
      const uint32_t len = ((ctrl >> (2 * i)) & 3u) + 1;
      if (static_cast<size_t>(end - p) < len) {
        return Status::InvalidArgument("varint: truncated payload");
      }
      uint32_t d = 0;
      for (uint32_t b = 0; b < len; ++b) {
        d |= static_cast<uint32_t>(p[b]) << (8 * b);
      }
      p += len;
      if (first) {
        x = d;
        first = false;
      } else {
        const uint64_t next = static_cast<uint64_t>(x) + d + 1;
        if (next > 0xFFFFFFFFull) {
          return Status::InvalidArgument("varint: id overflows uint32");
        }
        x = static_cast<uint32_t>(next);
      }
      if (x >= max_value) {
        return Status::InvalidArgument("varint: id out of range");
      }
      out->push_back(static_cast<NodeId>(x));
    }
    remaining -= group;
  }
  if (p != end) {
    return Status::InvalidArgument("varint: trailing bytes after encoding");
  }
  return Status::OK();
}

}  // namespace opim
