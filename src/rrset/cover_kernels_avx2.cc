// AVX2 coverage-counting kernels. This translation unit is the only one
// compiled with -mavx2 -mpopcnt (see src/rrset/CMakeLists.txt); it is
// added to the build only when OPIM_SIMD is ON and the target is x86-64,
// and callers reach it strictly through the runtime dispatch in
// cover_bitset.cc, so the rest of the binary stays baseline-ISA clean.
//
// Both kernels must be bit-identical to their scalar counterparts —
// tests/rrset/cover_bitset_test.cc pins that on randomized inputs.

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <span>

namespace opim {

using RRId = uint32_t;

uint64_t CountUncoveredIdsAvx2(std::span<const RRId> ids,
                               const uint64_t* words) {
  const size_t n = ids.size();
  const RRId* p = ids.data();
  size_t i = 0;
  uint64_t covered = 0;
  __m256i acc = _mm256_setzero_si256();
  const __m128i low6 = _mm_set1_epi32(63);
  const __m256i one = _mm256_set1_epi64x(1);
  for (; i + 4 <= n; i += 4) {
    const __m128i id4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    // Gather the four bitset words the ids land in, shift each word so
    // the id's bit is at position 0, and accumulate the covered bits.
    const __m128i widx = _mm_srli_epi32(id4, 6);
    const __m256i w = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(words), widx, 8);
    const __m256i bitpos = _mm256_cvtepu32_epi64(_mm_and_si128(id4, low6));
    acc = _mm256_add_epi64(acc,
                           _mm256_and_si256(_mm256_srlv_epi64(w, bitpos), one));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  covered = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  uint64_t uncovered = (i - covered);
  for (; i < n; ++i) {
    uncovered += ((words[p[i] >> 6] >> (p[i] & 63)) & 1u) ^ 1u;
  }
  return uncovered;
}

uint64_t CountUncoveredBlocksAvx2(std::span<const uint32_t> block_words,
                                  std::span<const uint64_t> block_masks,
                                  const uint64_t* words) {
  const size_t n = block_words.size();
  const uint32_t* wi = block_words.data();
  const uint64_t* mk = block_masks.data();
  size_t i = 0;
  uint64_t uncovered = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wi + i));
    const __m256i w = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(words), idx, 8);
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mk + i));
    // fresh = mask & ~word; AVX2 has no 64-bit popcount, so the four
    // lanes take the (fast) scalar POPCNT each.
    const __m256i fresh = _mm256_andnot_si256(w, m);
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), fresh);
    uncovered += std::popcount(lanes[0]) + std::popcount(lanes[1]) +
                 std::popcount(lanes[2]) + std::popcount(lanes[3]);
  }
  for (; i < n; ++i) {
    uncovered += std::popcount(mk[i] & ~words[wi[i]]);
  }
  return uncovered;
}

}  // namespace opim
