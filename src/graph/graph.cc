#include "graph/graph.h"

#include <algorithm>

#include "support/random.h"

namespace opim {

double Graph::MaxInWeightSum() const {
  double mx = 0.0;
  for (double s : in_weight_sum_) mx = std::max(mx, s);
  return mx;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double p) {
  OPIM_CHECK_LT(u, num_nodes_);
  OPIM_CHECK_LT(v, num_nodes_);
  OPIM_CHECK_MSG(p == kUnsetProb || (p >= 0.0 && p <= 1.0),
                 "edge probability must be in [0, 1]");
  from_.push_back(u);
  to_.push_back(v);
  prob_.push_back(p);
}

Graph GraphBuilder::Build(WeightScheme scheme, double constant_p,
                          uint64_t seed) {
  const uint64_t m = from_.size();
  const uint32_t n = num_nodes_;
  Graph g;
  g.num_nodes_ = n;

  // Counting sort into CSR, both directions.
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (uint64_t e = 0; e < m; ++e) {
    ++g.out_offsets_[from_[e] + 1];
    ++g.in_offsets_[to_[e] + 1];
  }
  for (uint32_t v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  // Assign probabilities to unset edges. Weighted cascade needs in-degrees,
  // which the offsets now provide.
  Rng rng(seed, /*stream=*/0x67726170);  // "grap"
  for (uint64_t e = 0; e < m; ++e) {
    if (prob_[e] != kUnsetProb) continue;
    switch (scheme) {
      case WeightScheme::kWeightedCascade: {
        uint64_t indeg = g.in_offsets_[to_[e] + 1] - g.in_offsets_[to_[e]];
        prob_[e] = 1.0 / static_cast<double>(indeg);
        break;
      }
      case WeightScheme::kConstant:
        prob_[e] = constant_p;
        break;
      case WeightScheme::kTrivalency: {
        static constexpr double kTri[3] = {0.1, 0.01, 0.001};
        prob_[e] = kTri[rng.UniformBelow(3)];
        break;
      }
      case WeightScheme::kUniformRandom:
        prob_[e] = rng.UniformDouble() * constant_p;
        break;
    }
  }

  g.out_neighbors_.resize(m);
  g.out_probs_.resize(m);
  g.in_neighbors_.resize(m);
  g.in_probs_.resize(m);
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t oi = out_cursor[from_[e]]++;
    g.out_neighbors_[oi] = to_[e];
    g.out_probs_[oi] = prob_[e];
    uint64_t ii = in_cursor[to_[e]]++;
    g.in_neighbors_[ii] = from_[e];
    g.in_probs_[ii] = prob_[e];
  }

  g.in_weight_sum_.assign(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    double s = 0.0;
    for (uint64_t i = g.in_offsets_[v]; i < g.in_offsets_[v + 1]; ++i) {
      s += g.in_probs_[i];
    }
    g.in_weight_sum_[v] = s;
  }

  from_.clear();
  to_.clear();
  prob_.clear();
  from_.shrink_to_fit();
  to_.shrink_to_fit();
  prob_.shrink_to_fit();
  return g;
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.average_degree = g.average_degree();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t od = g.OutDegree(v);
    uint64_t id = g.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    if (id == 0) ++s.num_sources;
    if (od == 0) ++s.num_sinks;
  }
  return s;
}

}  // namespace opim
