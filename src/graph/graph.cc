#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "support/mmap_arena.h"
#include "support/random.h"

namespace opim {

void Graph::BindOwned() {
  out_offsets_ = own_out_offsets_;
  out_neighbors_ = own_out_neighbors_;
  out_probs_ = own_out_probs_;
  in_offsets_ = own_in_offsets_;
  in_neighbors_ = own_in_neighbors_;
  in_probs_ = own_in_probs_;
  in_weight_sum_ = own_in_weight_sum_;
}

Graph::Graph(const Graph& other)
    : num_nodes_(other.num_nodes_),
      own_out_offsets_(other.own_out_offsets_),
      own_out_neighbors_(other.own_out_neighbors_),
      own_out_probs_(other.own_out_probs_),
      own_in_offsets_(other.own_in_offsets_),
      own_in_neighbors_(other.own_in_neighbors_),
      own_in_probs_(other.own_in_probs_),
      own_in_weight_sum_(other.own_in_weight_sum_),
      arena_(other.arena_) {
  if (arena_ != nullptr) {
    // Arena-backed: the copy shares the mapping, so the source's spans
    // stay valid in the copy.
    out_offsets_ = other.out_offsets_;
    out_neighbors_ = other.out_neighbors_;
    out_probs_ = other.out_probs_;
    in_offsets_ = other.in_offsets_;
    in_neighbors_ = other.in_neighbors_;
    in_probs_ = other.in_probs_;
    in_weight_sum_ = other.in_weight_sum_;
  } else {
    BindOwned();
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) *this = Graph(other);
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : num_nodes_(other.num_nodes_),
      out_offsets_(other.out_offsets_),
      out_neighbors_(other.out_neighbors_),
      out_probs_(other.out_probs_),
      in_offsets_(other.in_offsets_),
      in_neighbors_(other.in_neighbors_),
      in_probs_(other.in_probs_),
      in_weight_sum_(other.in_weight_sum_),
      own_out_offsets_(std::move(other.own_out_offsets_)),
      own_out_neighbors_(std::move(other.own_out_neighbors_)),
      own_out_probs_(std::move(other.own_out_probs_)),
      own_in_offsets_(std::move(other.own_in_offsets_)),
      own_in_neighbors_(std::move(other.own_in_neighbors_)),
      own_in_probs_(std::move(other.own_in_probs_)),
      own_in_weight_sum_(std::move(other.own_in_weight_sum_)),
      arena_(std::move(other.arena_)) {
  // Vector moves keep data pointers stable, so the copied spans still
  // point at live storage. Reset the source to the empty graph.
  other.num_nodes_ = 0;
  other.out_offsets_ = {};
  other.out_neighbors_ = {};
  other.out_probs_ = {};
  other.in_offsets_ = {};
  other.in_neighbors_ = {};
  other.in_probs_ = {};
  other.in_weight_sum_ = {};
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    Graph tmp(std::move(other));
    num_nodes_ = tmp.num_nodes_;
    out_offsets_ = tmp.out_offsets_;
    out_neighbors_ = tmp.out_neighbors_;
    out_probs_ = tmp.out_probs_;
    in_offsets_ = tmp.in_offsets_;
    in_neighbors_ = tmp.in_neighbors_;
    in_probs_ = tmp.in_probs_;
    in_weight_sum_ = tmp.in_weight_sum_;
    own_out_offsets_ = std::move(tmp.own_out_offsets_);
    own_out_neighbors_ = std::move(tmp.own_out_neighbors_);
    own_out_probs_ = std::move(tmp.own_out_probs_);
    own_in_offsets_ = std::move(tmp.own_in_offsets_);
    own_in_neighbors_ = std::move(tmp.own_in_neighbors_);
    own_in_probs_ = std::move(tmp.own_in_probs_);
    own_in_weight_sum_ = std::move(tmp.own_in_weight_sum_);
    arena_ = std::move(tmp.arena_);
  }
  return *this;
}

Graph Graph::WrapStorage(uint32_t num_nodes, const GraphStorageView& view,
                         std::shared_ptr<MmapArena> arena) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_ = view.out_offsets;
  g.out_neighbors_ = view.out_neighbors;
  g.out_probs_ = view.out_probs;
  g.in_offsets_ = view.in_offsets;
  g.in_neighbors_ = view.in_neighbors;
  g.in_probs_ = view.in_probs;
  g.in_weight_sum_ = view.in_weight_sum;
  g.arena_ = std::move(arena);
  return g;
}

Graph Graph::AdoptStorage(uint32_t num_nodes,
                          std::vector<uint64_t> out_offsets,
                          std::vector<NodeId> out_neighbors,
                          std::vector<double> out_probs,
                          std::vector<uint64_t> in_offsets,
                          std::vector<NodeId> in_neighbors,
                          std::vector<double> in_probs,
                          std::vector<double> in_weight_sum) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.own_out_offsets_ = std::move(out_offsets);
  g.own_out_neighbors_ = std::move(out_neighbors);
  g.own_out_probs_ = std::move(out_probs);
  g.own_in_offsets_ = std::move(in_offsets);
  g.own_in_neighbors_ = std::move(in_neighbors);
  g.own_in_probs_ = std::move(in_probs);
  g.own_in_weight_sum_ = std::move(in_weight_sum);
  g.BindOwned();
  return g;
}

double Graph::MaxInWeightSum() const {
  double mx = 0.0;
  for (double s : in_weight_sum_) mx = std::max(mx, s);
  return mx;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double p) {
  OPIM_CHECK_LT(u, num_nodes_);
  OPIM_CHECK_LT(v, num_nodes_);
  OPIM_CHECK_MSG(p == kUnsetProb || (p >= 0.0 && p <= 1.0),
                 "edge probability must be in [0, 1]");
  from_.push_back(u);
  to_.push_back(v);
  prob_.push_back(p);
}

Graph GraphBuilder::Build(WeightScheme scheme, double constant_p,
                          uint64_t seed) {
  const uint64_t m = from_.size();
  const uint32_t n = num_nodes_;
  Graph g;
  g.num_nodes_ = n;

  // Counting sort into CSR, both directions.
  g.own_out_offsets_.assign(n + 1, 0);
  g.own_in_offsets_.assign(n + 1, 0);
  for (uint64_t e = 0; e < m; ++e) {
    ++g.own_out_offsets_[from_[e] + 1];
    ++g.own_in_offsets_[to_[e] + 1];
  }
  for (uint32_t v = 0; v < n; ++v) {
    g.own_out_offsets_[v + 1] += g.own_out_offsets_[v];
    g.own_in_offsets_[v + 1] += g.own_in_offsets_[v];
  }

  // Assign probabilities to unset edges. Weighted cascade needs in-degrees,
  // which the offsets now provide.
  Rng rng(seed, /*stream=*/0x67726170);  // "grap"
  for (uint64_t e = 0; e < m; ++e) {
    if (prob_[e] != kUnsetProb) continue;
    switch (scheme) {
      case WeightScheme::kWeightedCascade: {
        uint64_t indeg =
            g.own_in_offsets_[to_[e] + 1] - g.own_in_offsets_[to_[e]];
        prob_[e] = 1.0 / static_cast<double>(indeg);
        break;
      }
      case WeightScheme::kConstant:
        prob_[e] = constant_p;
        break;
      case WeightScheme::kTrivalency: {
        static constexpr double kTri[3] = {0.1, 0.01, 0.001};
        prob_[e] = kTri[rng.UniformBelow(3)];
        break;
      }
      case WeightScheme::kUniformRandom:
        prob_[e] = rng.UniformDouble() * constant_p;
        break;
    }
  }

  g.own_out_neighbors_.resize(m);
  g.own_out_probs_.resize(m);
  g.own_in_neighbors_.resize(m);
  g.own_in_probs_.resize(m);
  std::vector<uint64_t> out_cursor(g.own_out_offsets_.begin(),
                                   g.own_out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.own_in_offsets_.begin(),
                                  g.own_in_offsets_.end() - 1);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t oi = out_cursor[from_[e]]++;
    g.own_out_neighbors_[oi] = to_[e];
    g.own_out_probs_[oi] = prob_[e];
    uint64_t ii = in_cursor[to_[e]]++;
    g.own_in_neighbors_[ii] = from_[e];
    g.own_in_probs_[ii] = prob_[e];
  }

  g.own_in_weight_sum_.assign(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    double s = 0.0;
    for (uint64_t i = g.own_in_offsets_[v]; i < g.own_in_offsets_[v + 1]; ++i) {
      s += g.own_in_probs_[i];
    }
    g.own_in_weight_sum_[v] = s;
  }

  from_.clear();
  to_.clear();
  prob_.clear();
  from_.shrink_to_fit();
  to_.shrink_to_fit();
  prob_.shrink_to_fit();
  g.BindOwned();
  return g;
}

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.average_degree = g.average_degree();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t od = g.OutDegree(v);
    uint64_t id = g.InDegree(v);
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    if (id == 0) ++s.num_sources;
    if (od == 0) ++s.num_sinks;
  }
  return s;
}

}  // namespace opim
