// Immutable directed influence graph in CSR form.
//
// The graph stores both forward (out-neighbor) and reverse (in-neighbor)
// adjacency: forward adjacency drives the IC/LT cascade simulators, reverse
// adjacency drives reverse-reachable (RR) set sampling (paper §3.1 and
// Appendix A). Every edge <u, v> carries its propagation probability
// p(u, v) in both directions of the CSR.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/macros.h"

namespace opim {

/// Node identifier; nodes are densely numbered [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class GraphBuilder;

/// Immutable directed graph with per-edge propagation probabilities.
/// Construct via GraphBuilder; copy is allowed but deliberate (the CSR can
/// be large), and all queries are O(1) or O(degree).
class Graph {
 public:
  Graph() = default;

  /// Number of nodes n.
  uint32_t num_nodes() const { return num_nodes_; }
  /// Number of directed edges m.
  uint64_t num_edges() const { return out_neighbors_.size(); }
  /// Average out-degree m/n (0 for the empty graph).
  double average_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_nodes_;
  }

  /// Out-neighbors of u (targets of edges u -> ·).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return {out_neighbors_.data() + out_offsets_[u],
            out_neighbors_.data() + out_offsets_[u + 1]};
  }
  /// Probabilities aligned with OutNeighbors(u): p(u, v_i).
  std::span<const double> OutProbs(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return {out_probs_.data() + out_offsets_[u],
            out_probs_.data() + out_offsets_[u + 1]};
  }
  /// In-neighbors of v (sources of edges · -> v).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }
  /// Probabilities aligned with InNeighbors(v): p(w_i, v).
  std::span<const double> InProbs(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return {in_probs_.data() + in_offsets_[v],
            in_probs_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint64_t InDegree(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of incoming propagation probabilities of v. The LT model requires
  /// this to be <= 1 (paper §2.1); samplers OPIM_CHECK it.
  double InWeightSum(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return in_weight_sum_[v];
  }

  /// Largest InWeightSum over all nodes (0 for the empty graph).
  double MaxInWeightSum() const;

 private:
  friend class GraphBuilder;

  uint32_t num_nodes_ = 0;
  std::vector<uint64_t> out_offsets_;  // n + 1
  std::vector<NodeId> out_neighbors_;  // m
  std::vector<double> out_probs_;      // m
  std::vector<uint64_t> in_offsets_;   // n + 1
  std::vector<NodeId> in_neighbors_;   // m
  std::vector<double> in_probs_;       // m
  std::vector<double> in_weight_sum_;  // n
};

/// Edge-weighting schemes applied at build time when edges were added
/// without explicit probabilities.
enum class WeightScheme {
  /// Weighted-cascade: p(u, v) = 1 / in-degree(v). The setting used by the
  /// paper's experiments (§8.1) and most of the IM literature. Always
  /// LT-feasible (incoming probabilities sum to exactly 1).
  kWeightedCascade,
  /// Every edge gets the same constant probability.
  kConstant,
  /// Trivalency: each edge uniformly one of {0.1, 0.01, 0.001}.
  kTrivalency,
  /// Each edge probability uniform in (0, constant]. Scaled per node to
  /// stay LT-feasible is NOT applied; intended for IC experiments.
  kUniformRandom,
};

/// Mutable edge accumulator that produces an immutable Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `num_nodes` nodes.
  explicit GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a directed edge u -> v with explicit probability p in [0, 1].
  void AddEdge(NodeId u, NodeId v, double p);

  /// Adds a directed edge whose probability will be assigned by the
  /// WeightScheme passed to Build().
  void AddEdge(NodeId u, NodeId v) { AddEdge(u, v, kUnsetProb); }

  /// Adds both u -> v and v -> u (for undirected source data, e.g. Orkut).
  void AddUndirectedEdge(NodeId u, NodeId v) {
    AddEdge(u, v);
    AddEdge(v, u);
  }

  /// Number of edges added so far.
  uint64_t num_edges() const { return from_.size(); }

  /// Builds the CSR graph. Edges added without probabilities get weights
  /// from `scheme`. `constant_p` parameterizes kConstant/kUniformRandom;
  /// `seed` parameterizes the randomized schemes. Duplicate edges are kept
  /// as parallel edges (they are rare in the generators and harmless to
  /// the samplers). The builder is left empty afterwards.
  Graph Build(WeightScheme scheme = WeightScheme::kWeightedCascade,
              double constant_p = 0.1, uint64_t seed = 1);

 private:
  static constexpr double kUnsetProb = -1.0;

  uint32_t num_nodes_;
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<double> prob_;
};

/// Summary statistics for a graph; reproduces the columns of the paper's
/// Table 2 plus degree extrema.
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double average_degree = 0.0;
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint32_t num_sources = 0;  // nodes with in-degree 0
  uint32_t num_sinks = 0;    // nodes with out-degree 0
};

/// Computes GraphStats in O(n + m).
GraphStats ComputeStats(const Graph& g);

}  // namespace opim
