// Immutable directed influence graph in CSR form.
//
// The graph stores both forward (out-neighbor) and reverse (in-neighbor)
// adjacency: forward adjacency drives the IC/LT cascade simulators, reverse
// adjacency drives reverse-reachable (RR) set sampling (paper §3.1 and
// Appendix A). Every edge <u, v> carries its propagation probability
// p(u, v) in both directions of the CSR.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/macros.h"

namespace opim {

/// Node identifier; nodes are densely numbered [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class GraphBuilder;
class MmapArena;

/// Read-only view of a graph's seven CSR arrays. The `.opimg` codec
/// serializes exactly these arrays in this order; WrapStorage rebuilds a
/// Graph over them without copying (the mmap load path).
struct GraphStorageView {
  std::span<const uint64_t> out_offsets;  // n + 1
  std::span<const NodeId> out_neighbors;  // m
  std::span<const double> out_probs;      // m
  std::span<const uint64_t> in_offsets;   // n + 1
  std::span<const NodeId> in_neighbors;   // m
  std::span<const double> in_probs;       // m
  std::span<const double> in_weight_sum;  // n
};

/// Immutable directed graph with per-edge propagation probabilities.
/// Construct via GraphBuilder; copy is allowed but deliberate (the CSR can
/// be large), and all queries are O(1) or O(degree).
///
/// Storage is span-based: the spans bind either to heap vectors owned by
/// this Graph (builder / text-parse path) or to a shared read-only
/// MmapArena (`.opimg` load path), so the engine above never sees the
/// difference. Copying an arena-backed graph shares the mapping; copying
/// a vector-backed graph deep-copies the CSR.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Wraps externally owned storage (typically sections of a mapped
  /// `.opimg` payload) without copying. `arena` keeps the backing pages
  /// alive; spans in `view` must point into it (or outlive the graph).
  /// Performs no validation — callers (the codec) validate first.
  static Graph WrapStorage(uint32_t num_nodes, const GraphStorageView& view,
                           std::shared_ptr<MmapArena> arena);

  /// Takes ownership of seven pre-built CSR arrays (the codec's
  /// heap-fallback path when mapping fails). Performs no validation.
  static Graph AdoptStorage(uint32_t num_nodes,
                            std::vector<uint64_t> out_offsets,
                            std::vector<NodeId> out_neighbors,
                            std::vector<double> out_probs,
                            std::vector<uint64_t> in_offsets,
                            std::vector<NodeId> in_neighbors,
                            std::vector<double> in_probs,
                            std::vector<double> in_weight_sum);

  /// Read-only view of the seven CSR arrays (the `.opimg` writer's
  /// input).
  GraphStorageView storage_view() const {
    return {out_offsets_, out_neighbors_, out_probs_,    in_offsets_,
            in_neighbors_, in_probs_,     in_weight_sum_};
  }

  /// True when the CSR lives in a mapped arena rather than heap vectors.
  bool arena_backed() const { return arena_ != nullptr; }

  /// Number of nodes n.
  uint32_t num_nodes() const { return num_nodes_; }
  /// Number of directed edges m.
  uint64_t num_edges() const { return out_neighbors_.size(); }
  /// Average out-degree m/n (0 for the empty graph).
  double average_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_nodes_;
  }

  /// Out-neighbors of u (targets of edges u -> ·).
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return {out_neighbors_.data() + out_offsets_[u],
            out_neighbors_.data() + out_offsets_[u + 1]};
  }
  /// Probabilities aligned with OutNeighbors(u): p(u, v_i).
  std::span<const double> OutProbs(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return {out_probs_.data() + out_offsets_[u],
            out_probs_.data() + out_offsets_[u + 1]};
  }
  /// In-neighbors of v (sources of edges · -> v).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }
  /// Probabilities aligned with InNeighbors(v): p(w_i, v).
  std::span<const double> InProbs(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return {in_probs_.data() + in_offsets_[v],
            in_probs_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(NodeId u) const {
    OPIM_CHECK_LT(u, num_nodes_);
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  uint64_t InDegree(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of incoming propagation probabilities of v. The LT model requires
  /// this to be <= 1 (paper §2.1); samplers OPIM_CHECK it.
  double InWeightSum(NodeId v) const {
    OPIM_CHECK_LT(v, num_nodes_);
    return in_weight_sum_[v];
  }

  /// Largest InWeightSum over all nodes (0 for the empty graph).
  double MaxInWeightSum() const;

 private:
  friend class GraphBuilder;

  /// Rebinds the span members to the own_* vectors (heap-backed state).
  void BindOwned();

  uint32_t num_nodes_ = 0;

  // Active views; bound to own_* (heap) or into arena_ (mapped).
  std::span<const uint64_t> out_offsets_;  // n + 1
  std::span<const NodeId> out_neighbors_;  // m
  std::span<const double> out_probs_;      // m
  std::span<const uint64_t> in_offsets_;   // n + 1
  std::span<const NodeId> in_neighbors_;   // m
  std::span<const double> in_probs_;       // m
  std::span<const double> in_weight_sum_;  // n

  // Heap storage; empty when arena-backed.
  std::vector<uint64_t> own_out_offsets_;
  std::vector<NodeId> own_out_neighbors_;
  std::vector<double> own_out_probs_;
  std::vector<uint64_t> own_in_offsets_;
  std::vector<NodeId> own_in_neighbors_;
  std::vector<double> own_in_probs_;
  std::vector<double> own_in_weight_sum_;

  // Keeps mapped pages alive for arena-backed graphs; null otherwise.
  std::shared_ptr<MmapArena> arena_;
};

/// Edge-weighting schemes applied at build time when edges were added
/// without explicit probabilities.
enum class WeightScheme {
  /// Weighted-cascade: p(u, v) = 1 / in-degree(v). The setting used by the
  /// paper's experiments (§8.1) and most of the IM literature. Always
  /// LT-feasible (incoming probabilities sum to exactly 1).
  kWeightedCascade,
  /// Every edge gets the same constant probability.
  kConstant,
  /// Trivalency: each edge uniformly one of {0.1, 0.01, 0.001}.
  kTrivalency,
  /// Each edge probability uniform in (0, constant]. Scaled per node to
  /// stay LT-feasible is NOT applied; intended for IC experiments.
  kUniformRandom,
};

/// Mutable edge accumulator that produces an immutable Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `num_nodes` nodes.
  explicit GraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a directed edge u -> v with explicit probability p in [0, 1].
  void AddEdge(NodeId u, NodeId v, double p);

  /// Adds a directed edge whose probability will be assigned by the
  /// WeightScheme passed to Build().
  void AddEdge(NodeId u, NodeId v) { AddEdge(u, v, kUnsetProb); }

  /// Adds both u -> v and v -> u (for undirected source data, e.g. Orkut).
  void AddUndirectedEdge(NodeId u, NodeId v) {
    AddEdge(u, v);
    AddEdge(v, u);
  }

  /// Number of edges added so far.
  uint64_t num_edges() const { return from_.size(); }

  /// Builds the CSR graph. Edges added without probabilities get weights
  /// from `scheme`. `constant_p` parameterizes kConstant/kUniformRandom;
  /// `seed` parameterizes the randomized schemes. Duplicate edges are kept
  /// as parallel edges (they are rare in the generators and harmless to
  /// the samplers). The builder is left empty afterwards.
  Graph Build(WeightScheme scheme = WeightScheme::kWeightedCascade,
              double constant_p = 0.1, uint64_t seed = 1);

 private:
  static constexpr double kUnsetProb = -1.0;

  uint32_t num_nodes_;
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<double> prob_;
};

/// Summary statistics for a graph; reproduces the columns of the paper's
/// Table 2 plus degree extrema.
struct GraphStats {
  uint32_t num_nodes = 0;
  uint64_t num_edges = 0;
  double average_degree = 0.0;
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint32_t num_sources = 0;  // nodes with in-degree 0
  uint32_t num_sinks = 0;    // nodes with out-degree 0
};

/// Computes GraphStats in O(n + m).
GraphStats ComputeStats(const Graph& g);

}  // namespace opim
