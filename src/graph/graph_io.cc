#include "graph/graph_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace opim {

namespace {

struct RawEdge {
  uint64_t u, v;
  double p;  // < 0 means unset
};

/// Parses the edge lines out of `text`. Returns raw (uncompacted) edges.
Status ParseLines(const std::string& text, std::vector<RawEdge>* edges) {
  std::istringstream in(text);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip leading whitespace; skip blank lines and '#' comments.
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    std::istringstream ls(line.substr(pos));
    RawEdge e{0, 0, -1.0};
    if (!(ls >> e.u >> e.v)) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(lineno) + ": '" + line +
                                     "'");
    }
    double p;
    if (ls >> p) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("probability out of [0,1] at line " +
                                       std::to_string(lineno));
      }
      e.p = p;
    }
    edges->push_back(e);
  }
  return Status::OK();
}

Result<Graph> BuildFromRaw(const std::vector<RawEdge>& raw,
                           const EdgeListOptions& options) {
  // Compact sparse ids to [0, n) in first-appearance order.
  std::unordered_map<uint64_t, NodeId> remap;
  remap.reserve(raw.size() * 2);
  auto intern = [&](uint64_t id) {
    auto [it, inserted] = remap.emplace(id, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::vector<std::pair<NodeId, NodeId>> compact;
  compact.reserve(raw.size());
  for (const RawEdge& e : raw) {
    // Sequence the interning calls: argument evaluation order is
    // unspecified, and first-appearance numbering must see u before v.
    NodeId u = intern(e.u);
    NodeId v = intern(e.v);
    compact.emplace_back(u, v);
  }
  if (remap.size() > static_cast<uint64_t>(kInvalidNode)) {
    return Status::OutOfRange("more than 2^32-1 distinct node ids");
  }

  GraphBuilder builder(static_cast<uint32_t>(remap.size()));
  for (size_t i = 0; i < raw.size(); ++i) {
    auto [u, v] = compact[i];
    if (raw[i].p >= 0.0) {
      builder.AddEdge(u, v, raw[i].p);
      if (options.undirected) builder.AddEdge(v, u, raw[i].p);
    } else {
      builder.AddEdge(u, v);
      if (options.undirected) builder.AddEdge(v, u);
    }
  }
  return builder.Build(options.scheme, options.constant_p, options.seed);
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::vector<RawEdge> raw;
  Status st = ParseLines(text, &raw);
  if (!st.ok()) return st;
  return BuildFromRaw(raw, options);
}

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  return ParseEdgeList(buf.str(), options);
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for writing: " + path);
  f << "# opim edge list: u v p\n";
  f << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto probs = g.OutProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%u %u %.12g\n", u, nbrs[i], probs[i]);
      f << buf;
    }
  }
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace opim
