#include "graph/graph_io.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace opim {

namespace {

struct RawEdge {
  uint64_t u, v;
  double p;  // < 0 means unset
};

Status LineError(uint64_t lineno, const std::string& what,
                 std::string_view line) {
  return Status::InvalidArgument(what + " at line " + std::to_string(lineno) +
                                 ": '" + std::string(line) + "'");
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Splits `line` into whitespace-separated tokens, at most `max_tokens + 1`
/// (the extra slot lets the caller detect trailing junk without scanning
/// the rest of a pathological line).
void Tokenize(std::string_view line, size_t max_tokens,
              std::vector<std::string_view>* out) {
  out->clear();
  size_t i = 0;
  while (i < line.size() && out->size() <= max_tokens) {
    while (i < line.size() && IsSpace(line[i])) ++i;
    if (i >= line.size()) break;
    size_t start = i;
    while (i < line.size() && !IsSpace(line[i])) ++i;
    out->push_back(line.substr(start, i - start));
  }
}

/// Strict node-id parse: every character a digit (so "-1", "+2", "3a" and
/// empty all fail) and the value fits uint64 (ERANGE rejected).
bool ParseNodeId(std::string_view tok, uint64_t* out) {
  if (tok.empty()) return false;
  for (char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  std::string buf(tok);
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

/// Strict probability parse: strtod must consume the whole token and the
/// value must be finite (no "nan"/"inf") and in [0, 1].
bool ParseProb(std::string_view tok, double* out) {
  if (tok.empty()) return false;
  std::string buf(tok);
  errno = 0;
  char* end = nullptr;
  double p = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(p) || p < 0.0 || p > 1.0) return false;
  *out = p;
  return true;
}

/// Parses the edge lines out of `text`. Returns raw (uncompacted) edges.
///
/// Strict by design (see tests/graph/loader_robustness_test.cc): every
/// non-comment line must be exactly "u v" or "u v p" — truncated lines,
/// negative or non-numeric ids, id overflow, NaN/inf/out-of-range
/// probabilities, and trailing junk are all InvalidArgument with the line
/// number, never a crash or a silently mis-parsed edge. '\r' is treated as
/// whitespace so CRLF files load unchanged, and '#' starts a comment
/// anywhere on a line.
Status ParseLines(const std::string& text, std::vector<RawEdge>* edges) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string_view> tokens;
  uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view body(line);
    size_t hash = body.find('#');
    if (hash != std::string_view::npos) body = body.substr(0, hash);
    Tokenize(body, /*max_tokens=*/3, &tokens);
    if (tokens.empty()) continue;  // blank or comment-only line
    if (tokens.size() < 2) {
      return LineError(lineno, "truncated edge (need 'u v' or 'u v p')",
                       line);
    }
    if (tokens.size() > 3) {
      return LineError(lineno, "trailing junk after edge", line);
    }
    RawEdge e{0, 0, -1.0};
    if (!ParseNodeId(tokens[0], &e.u) || !ParseNodeId(tokens[1], &e.v)) {
      return LineError(lineno, "malformed node id", line);
    }
    if (tokens.size() == 3 && !ParseProb(tokens[2], &e.p)) {
      return LineError(lineno, "malformed probability (need finite [0,1])",
                       line);
    }
    edges->push_back(e);
  }
  return Status::OK();
}

Result<Graph> BuildFromRaw(const std::vector<RawEdge>& raw,
                           const EdgeListOptions& options) {
  // Compact sparse ids to [0, n) in first-appearance order.
  std::unordered_map<uint64_t, NodeId> remap;
  remap.reserve(raw.size() * 2);
  auto intern = [&](uint64_t id) {
    auto [it, inserted] = remap.emplace(id, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  std::vector<std::pair<NodeId, NodeId>> compact;
  compact.reserve(raw.size());
  for (const RawEdge& e : raw) {
    // Sequence the interning calls: argument evaluation order is
    // unspecified, and first-appearance numbering must see u before v.
    NodeId u = intern(e.u);
    NodeId v = intern(e.v);
    compact.emplace_back(u, v);
  }
  if (remap.size() > static_cast<uint64_t>(kInvalidNode)) {
    return Status::OutOfRange("more than 2^32-1 distinct node ids");
  }

  GraphBuilder builder(static_cast<uint32_t>(remap.size()));
  for (size_t i = 0; i < raw.size(); ++i) {
    auto [u, v] = compact[i];
    if (raw[i].p >= 0.0) {
      builder.AddEdge(u, v, raw[i].p);
      if (options.undirected) builder.AddEdge(v, u, raw[i].p);
    } else {
      builder.AddEdge(u, v);
      if (options.undirected) builder.AddEdge(v, u);
    }
  }
  return builder.Build(options.scheme, options.constant_p, options.seed);
}

}  // namespace

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::vector<RawEdge> raw;
  Status st = ParseLines(text, &raw);
  if (!st.ok()) return st;
  return BuildFromRaw(raw, options);
}

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  return ParseEdgeList(buf.str(), options);
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for writing: " + path);
  f << "# opim edge list: u v p\n";
  f << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto probs = g.OutProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%u %u %.12g\n", u, nbrs[i], probs[i]);
      f << buf;
    }
  }
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace opim
