#include "graph/graph_binary.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace opim {

namespace {

constexpr char kMagic[8] = {'O', 'P', 'I', 'M', 'G', 'R', 'B', '1'};

template <typename T>
void WritePod(std::ofstream& f, const T& value) {
  f.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVec(std::ofstream& f, const std::vector<T>& v) {
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* value) {
  f.read(reinterpret_cast<char*>(value), sizeof(T));
  return f.gcount() == sizeof(T);
}

template <typename T>
bool ReadVec(std::ifstream& f, std::vector<T>* v, uint64_t count) {
  v->resize(count);
  const std::streamsize bytes =
      static_cast<std::streamsize>(count * sizeof(T));
  f.read(reinterpret_cast<char*>(v->data()), bytes);
  return f.gcount() == bytes;
}

}  // namespace

Status SaveBinaryGraph(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for writing: " + path);

  f.write(kMagic, sizeof(kMagic));
  WritePod(f, g.num_nodes());
  WritePod(f, g.num_edges());

  std::vector<NodeId> from, to;
  std::vector<double> prob;
  from.reserve(g.num_edges());
  to.reserve(g.num_edges());
  prob.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto probs = g.OutProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      from.push_back(u);
      to.push_back(nbrs[i]);
      prob.push_back(probs[i]);
    }
  }
  WriteVec(f, from);
  WriteVec(f, to);
  WriteVec(f, prob);
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Graph> LoadBinaryGraph(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open: " + path);

  char magic[8];
  f.read(magic, sizeof(magic));
  if (f.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an OPIMGRB1 file: " + path);
  }
  uint32_t n = 0;
  uint64_t m = 0;
  if (!ReadPod(f, &n) || !ReadPod(f, &m)) {
    return Status::IOError("truncated header: " + path);
  }
  // Validate the claimed edge count against the actual file size before
  // allocating anything: a corrupt header must not drive resize().
  constexpr uint64_t kHeaderBytes = 8 + sizeof(uint32_t) + sizeof(uint64_t);
  constexpr uint64_t kBytesPerEdge =
      2 * sizeof(NodeId) + sizeof(double);
  const std::streampos data_start = f.tellg();
  f.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(f.tellg());
  f.seekg(data_start);
  if (file_bytes < kHeaderBytes ||
      (file_bytes - kHeaderBytes) / kBytesPerEdge < m) {
    return Status::IOError("truncated edge data (header claims " +
                           std::to_string(m) + " edges): " + path);
  }
  std::vector<NodeId> from, to;
  std::vector<double> prob;
  if (!ReadVec(f, &from, m) || !ReadVec(f, &to, m) || !ReadVec(f, &prob, m)) {
    return Status::IOError("truncated edge data: " + path);
  }

  GraphBuilder builder(n);
  for (uint64_t e = 0; e < m; ++e) {
    if (from[e] >= n || to[e] >= n) {
      return Status::InvalidArgument("edge endpoint out of range: " + path);
    }
    if (prob[e] < 0.0 || prob[e] > 1.0) {
      return Status::InvalidArgument("edge probability out of range: " +
                                     path);
    }
    builder.AddEdge(from[e], to[e], prob[e]);
  }
  return builder.Build();
}

}  // namespace opim
