#include "graph/sampling_view.h"

#include <cstring>
#include <functional>
#include <utility>

#include "support/mmap_arena.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Runs `fn(lo, hi)` over node ranges covering [0, n), chunked across the
/// pool when one is supplied and the graph is big enough to pay for the
/// dispatch. Ranges are disjoint, so parallel construction writes each
/// output slot exactly once and the result is identical for any worker
/// count.
void ForEachNodeRange(uint32_t n, ThreadPool* pool,
                      const std::function<void(NodeId, NodeId)>& fn) {
  constexpr uint32_t kChunk = 4096;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2 * kChunk) {
    fn(0, n);
    return;
  }
  const uint64_t chunks = (n + kChunk - 1) / kChunk;
  pool->ParallelFor(chunks, [&](uint64_t c) {
    const NodeId lo = static_cast<NodeId>(c * kChunk);
    const NodeId hi = static_cast<NodeId>(
        std::min<uint64_t>(n, c * kChunk + kChunk));
    fn(lo, hi);
  });
}

}  // namespace

SamplingView::SamplingView(const Graph& g, Parts parts, ThreadPool* pool,
                           const SamplingViewOptions& options)
    : graph_(&g) {
  OPIM_CHECK_GT(g.num_nodes(), 0u);
  // The packed per-node records keep edge offsets and in-degrees in 32
  // bits (one 8-byte load per member in the kernels); a 32-bit NodeId
  // graph this size limit would reject does not arise in practice.
  OPIM_CHECK_LE(g.num_edges(), 0xffffffffULL);
  const auto bits = static_cast<uint8_t>(parts);
  if (bits & static_cast<uint8_t>(Parts::kIc)) BuildIc(pool);
  if (bits & static_cast<uint8_t>(Parts::kLt)) BuildLt(pool);
  BindOwned();
  if (options.seal_arena) SealArena();
}

void SamplingView::BindOwned() {
  ic_meta_ = own_ic_meta_;
  ic_edges_ = own_ic_edges_;
  ic_skip_inv_log_ = own_ic_skip_inv_log_;
  lt_meta_ = own_lt_meta_;
  lt_buckets_ = own_lt_buckets_;
}

void SamplingView::SealArena() {
  // Pack the five arrays into one mapping, each section on an
  // MmapArena::kAlignment boundary. The arena replaces five independent
  // heap blocks (and their growth slack) with one contiguous hinted
  // region; span contents are bit-identical, so the sampled RR streams
  // cannot change.
  uint64_t pos = 0;
  auto place = [&pos](uint64_t bytes) {
    uint64_t at = pos;
    pos = MmapArena::AlignUp(pos + bytes);
    return at;
  };
  const uint64_t at_ic_meta = place(ic_meta_.size_bytes());
  const uint64_t at_ic_edges = place(ic_edges_.size_bytes());
  const uint64_t at_ic_skip = place(ic_skip_inv_log_.size_bytes());
  const uint64_t at_lt_meta = place(lt_meta_.size_bytes());
  const uint64_t at_lt_buckets = place(lt_buckets_.size_bytes());

  auto allocated = MmapArena::Allocate(pos);
  if (!allocated.ok()) return;  // Heap-backed is always a valid state.
  arena_ = std::move(allocated).ValueOrDie();
  arena_size_ = pos;
  uint8_t* base = arena_->mutable_data();
  auto seal = [base](auto& span, auto& vec, uint64_t at) {
    using T = typename std::remove_reference_t<decltype(vec)>::value_type;
    if (!span.empty()) {
      std::memcpy(base + at, span.data(), span.size_bytes());
    }
    span = {reinterpret_cast<const T*>(base + at), span.size()};
    vec = {};  // Release the heap copy.
  };
  seal(ic_meta_, own_ic_meta_, at_ic_meta);
  seal(ic_edges_, own_ic_edges_, at_ic_edges);
  seal(ic_skip_inv_log_, own_ic_skip_inv_log_, at_ic_skip);
  seal(lt_meta_, own_lt_meta_, at_lt_meta);
  seal(lt_buckets_, own_lt_buckets_, at_lt_buckets);
  arena_->Advise(0, pos, MmapArena::Advice::kWillNeed);
}

void SamplingView::BuildIc(ThreadPool* pool) {
  const Graph& g = *graph_;
  const uint32_t n = g.num_nodes();
  own_ic_meta_.assign(n + 1, IcNodeMeta{0, 0});
  own_ic_skip_inv_log_.assign(n, 0.0);

  // Pass 1: count positive-probability in-edges per node (p <= 0 edges are
  // exactly never live, so the kernel never needs to look at them).
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    for (NodeId v = lo; v < hi; ++v) {
      uint32_t kept = 0;
      for (double p : g.InProbs(v)) kept += p > 0.0;
      own_ic_meta_[v + 1].offset = kept;
    }
  });
  for (uint32_t v = 0; v < n; ++v) own_ic_meta_[v + 1].offset += own_ic_meta_[v].offset;
  own_ic_edges_.resize(own_ic_meta_[n].offset);

  // Pass 2: place interleaved {neighbor, reject} pairs, classify nodes,
  // and pack `indeg << 2 | kind` next to the offset so one 8-byte load
  // serves the kernel's whole per-member dispatch.
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    for (NodeId v = lo; v < hi; ++v) {
      const auto probs = g.InProbs(v);
      const auto nbrs = g.InNeighbors(v);
      uint32_t w = own_ic_meta_[v].offset;
      double first = -1.0;
      bool uniform = true;
      for (size_t i = 0; i < probs.size(); ++i) {
        if (probs[i] <= 0.0) continue;
        if (first < 0.0) {
          first = probs[i];
        } else {
          uniform &= probs[i] == first;
        }
        own_ic_edges_[w] = IcEdge{nbrs[i], QuantizeRejectThreshold(probs[i])};
        ++w;
      }
      const uint32_t kept = w - own_ic_meta_[v].offset;
      IcNodeKind kind = IcNodeKind::kEmpty;
      if (kept > 0) {
        if (uniform && first >= 1.0) {
          kind = IcNodeKind::kKeepAll;
        } else if (uniform && kept >= kSkipMinDegree &&
                   first <= kSkipMaxProb) {
          kind = IcNodeKind::kSkip;
          own_ic_skip_inv_log_[v] = 1.0 / std::log1p(-first);
        } else {
          kind = IcNodeKind::kPerEdge;
        }
      }
      own_ic_meta_[v].indeg_kind =
          (static_cast<uint32_t>(probs.size()) << 2) |
          static_cast<uint32_t>(kind);
    }
  });
}

void SamplingView::BuildLt(ThreadPool* pool) {
  const Graph& g = *graph_;
  OPIM_CHECK_MSG(g.MaxInWeightSum() <= 1.0 + 1e-9,
                 "LT requires per-node incoming weights to sum to <= 1");
  const uint32_t n = g.num_nodes();
  own_lt_meta_.assign(n + 1, LtNodeMeta{0, kAlwaysReject});
  for (uint32_t v = 0; v < n; ++v) {
    own_lt_meta_[v + 1].offset =
        own_lt_meta_[v].offset + static_cast<uint32_t>(g.InDegree(v));
  }
  own_lt_buckets_.assign(own_lt_meta_[n].offset, LtBucket{kAlwaysReject, 0, 0});

  // One Vose alias build per node, written straight into the shared arena
  // slice [offset(v), offset(v+1)) — with both bucket outcomes stored as
  // *resolved node ids*, so a walk step never needs the Graph adjacency.
  // Scratch lives per range: workers never contend and nodes never alias
  // each other's buckets.
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    std::vector<double> scaled;
    std::vector<uint32_t> small, large;
    for (NodeId v = lo; v < hi; ++v) {
      const auto probs = g.InProbs(v);
      const auto nbrs = g.InNeighbors(v);
      const size_t d = probs.size();
      if (d == 0) continue;  // stop threshold stays kAlwaysReject
      const double stay = g.InWeightSum(v);
      if (stay <= 0.0) continue;  // zero mass: the walk always stops at v
      own_lt_meta_[v].stop_rej = QuantizeRejectThreshold(stay);

      scaled.assign(probs.begin(), probs.end());
      for (double& s : scaled) s *= static_cast<double>(d) / stay;
      small.clear();
      large.clear();
      for (size_t i = 0; i < d; ++i) {
        (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
      }
      const uint64_t off = own_lt_meta_[v].offset;
      while (!small.empty() && !large.empty()) {
        const uint32_t s = small.back();
        small.pop_back();
        const uint32_t l = large.back();
        large.pop_back();
        own_lt_buckets_[off + s] =
            LtBucket{QuantizeRejectThreshold(scaled[s]), nbrs[s], nbrs[l]};
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
      }
      // Remaining buckets are (numerically) exactly full: they keep their
      // own neighbor with certainty, which the kernel reads off rej == 0
      // without spending a draw.
      for (const uint32_t l : large) {
        own_lt_buckets_[off + l] = LtBucket{0, nbrs[l], nbrs[l]};
      }
      for (const uint32_t s : small) {
        own_lt_buckets_[off + s] = LtBucket{0, nbrs[s], nbrs[s]};
      }
    }
  });
}

}  // namespace opim
