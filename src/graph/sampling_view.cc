#include "graph/sampling_view.h"

#include <functional>
#include <utility>

#include "support/thread_pool.h"

namespace opim {

namespace {

/// Runs `fn(lo, hi)` over node ranges covering [0, n), chunked across the
/// pool when one is supplied and the graph is big enough to pay for the
/// dispatch. Ranges are disjoint, so parallel construction writes each
/// output slot exactly once and the result is identical for any worker
/// count.
void ForEachNodeRange(uint32_t n, ThreadPool* pool,
                      const std::function<void(NodeId, NodeId)>& fn) {
  constexpr uint32_t kChunk = 4096;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2 * kChunk) {
    fn(0, n);
    return;
  }
  const uint64_t chunks = (n + kChunk - 1) / kChunk;
  pool->ParallelFor(chunks, [&](uint64_t c) {
    const NodeId lo = static_cast<NodeId>(c * kChunk);
    const NodeId hi = static_cast<NodeId>(
        std::min<uint64_t>(n, c * kChunk + kChunk));
    fn(lo, hi);
  });
}

}  // namespace

SamplingView::SamplingView(const Graph& g, Parts parts, ThreadPool* pool)
    : graph_(&g) {
  OPIM_CHECK_GT(g.num_nodes(), 0u);
  // The packed per-node records keep edge offsets and in-degrees in 32
  // bits (one 8-byte load per member in the kernels); a 32-bit NodeId
  // graph this size limit would reject does not arise in practice.
  OPIM_CHECK_LE(g.num_edges(), 0xffffffffULL);
  const auto bits = static_cast<uint8_t>(parts);
  if (bits & static_cast<uint8_t>(Parts::kIc)) BuildIc(pool);
  if (bits & static_cast<uint8_t>(Parts::kLt)) BuildLt(pool);
}

void SamplingView::BuildIc(ThreadPool* pool) {
  const Graph& g = *graph_;
  const uint32_t n = g.num_nodes();
  ic_meta_.assign(n + 1, IcNodeMeta{0, 0});
  ic_skip_inv_log_.assign(n, 0.0);

  // Pass 1: count positive-probability in-edges per node (p <= 0 edges are
  // exactly never live, so the kernel never needs to look at them).
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    for (NodeId v = lo; v < hi; ++v) {
      uint32_t kept = 0;
      for (double p : g.InProbs(v)) kept += p > 0.0;
      ic_meta_[v + 1].offset = kept;
    }
  });
  for (uint32_t v = 0; v < n; ++v) ic_meta_[v + 1].offset += ic_meta_[v].offset;
  ic_edges_.resize(ic_meta_[n].offset);

  // Pass 2: place interleaved {neighbor, reject} pairs, classify nodes,
  // and pack `indeg << 2 | kind` next to the offset so one 8-byte load
  // serves the kernel's whole per-member dispatch.
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    for (NodeId v = lo; v < hi; ++v) {
      const auto probs = g.InProbs(v);
      const auto nbrs = g.InNeighbors(v);
      uint32_t w = ic_meta_[v].offset;
      double first = -1.0;
      bool uniform = true;
      for (size_t i = 0; i < probs.size(); ++i) {
        if (probs[i] <= 0.0) continue;
        if (first < 0.0) {
          first = probs[i];
        } else {
          uniform &= probs[i] == first;
        }
        ic_edges_[w] = IcEdge{nbrs[i], QuantizeRejectThreshold(probs[i])};
        ++w;
      }
      const uint32_t kept = w - ic_meta_[v].offset;
      IcNodeKind kind = IcNodeKind::kEmpty;
      if (kept > 0) {
        if (uniform && first >= 1.0) {
          kind = IcNodeKind::kKeepAll;
        } else if (uniform && kept >= kSkipMinDegree &&
                   first <= kSkipMaxProb) {
          kind = IcNodeKind::kSkip;
          ic_skip_inv_log_[v] = 1.0 / std::log1p(-first);
        } else {
          kind = IcNodeKind::kPerEdge;
        }
      }
      ic_meta_[v].indeg_kind =
          (static_cast<uint32_t>(probs.size()) << 2) |
          static_cast<uint32_t>(kind);
    }
  });
}

void SamplingView::BuildLt(ThreadPool* pool) {
  const Graph& g = *graph_;
  OPIM_CHECK_MSG(g.MaxInWeightSum() <= 1.0 + 1e-9,
                 "LT requires per-node incoming weights to sum to <= 1");
  const uint32_t n = g.num_nodes();
  lt_meta_.assign(n + 1, LtNodeMeta{0, kAlwaysReject});
  for (uint32_t v = 0; v < n; ++v) {
    lt_meta_[v + 1].offset =
        lt_meta_[v].offset + static_cast<uint32_t>(g.InDegree(v));
  }
  lt_buckets_.assign(lt_meta_[n].offset, LtBucket{kAlwaysReject, 0, 0});

  // One Vose alias build per node, written straight into the shared arena
  // slice [offset(v), offset(v+1)) — with both bucket outcomes stored as
  // *resolved node ids*, so a walk step never needs the Graph adjacency.
  // Scratch lives per range: workers never contend and nodes never alias
  // each other's buckets.
  ForEachNodeRange(n, pool, [&](NodeId lo, NodeId hi) {
    std::vector<double> scaled;
    std::vector<uint32_t> small, large;
    for (NodeId v = lo; v < hi; ++v) {
      const auto probs = g.InProbs(v);
      const auto nbrs = g.InNeighbors(v);
      const size_t d = probs.size();
      if (d == 0) continue;  // stop threshold stays kAlwaysReject
      const double stay = g.InWeightSum(v);
      if (stay <= 0.0) continue;  // zero mass: the walk always stops at v
      lt_meta_[v].stop_rej = QuantizeRejectThreshold(stay);

      scaled.assign(probs.begin(), probs.end());
      for (double& s : scaled) s *= static_cast<double>(d) / stay;
      small.clear();
      large.clear();
      for (size_t i = 0; i < d; ++i) {
        (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
      }
      const uint64_t off = lt_meta_[v].offset;
      while (!small.empty() && !large.empty()) {
        const uint32_t s = small.back();
        small.pop_back();
        const uint32_t l = large.back();
        large.pop_back();
        lt_buckets_[off + s] =
            LtBucket{QuantizeRejectThreshold(scaled[s]), nbrs[s], nbrs[l]};
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
      }
      // Remaining buckets are (numerically) exactly full: they keep their
      // own neighbor with certainty, which the kernel reads off rej == 0
      // without spending a draw.
      for (const uint32_t l : large) {
        lt_buckets_[off + l] = LtBucket{0, nbrs[l], nbrs[l]};
      }
      for (const uint32_t s : small) {
        lt_buckets_[off + s] = LtBucket{0, nbrs[s], nbrs[s]};
      }
    }
  });
}

}  // namespace opim
