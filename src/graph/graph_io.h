// Text I/O for graphs: SNAP-style edge lists with optional per-edge
// probabilities. Lets users load the real Pokec/Orkut/LiveJournal/Twitter
// files from snap.stanford.edu when available; our experiments use the
// synthetic stand-ins from gen/ (see DESIGN.md §3).

#pragma once

#include <string>

#include "graph/graph.h"
#include "support/status.h"

namespace opim {

/// Options for LoadEdgeList.
struct EdgeListOptions {
  /// If true, each input line "u v" adds both directions (undirected data,
  /// e.g. Orkut).
  bool undirected = false;
  /// Weighting applied to edges without an explicit third column.
  WeightScheme scheme = WeightScheme::kWeightedCascade;
  /// Constant probability for WeightScheme::kConstant / kUniformRandom.
  double constant_p = 0.1;
  /// Seed for randomized weight schemes.
  uint64_t seed = 1;
};

/// Loads a SNAP-style edge list: one "u v" or "u v p" per line, `#` starts
/// a comment (full-line or trailing), arbitrary whitespace separation, CRLF
/// accepted. Node ids may be sparse; they are compacted to [0, n)
/// preserving first-appearance order. Parsing is strict: truncated lines,
/// negative/non-numeric/overflowing ids, non-finite or out-of-[0,1]
/// probabilities, and trailing junk return InvalidArgument with the
/// offending line number rather than mis-parsing.
Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

/// Parses an edge list from an in-memory string (same format as
/// LoadEdgeList). Useful for tests and docs.
Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options = {});

/// Writes `g` as "u v p" lines with a `#` header. Inverse of LoadEdgeList
/// with explicit probabilities.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace opim
