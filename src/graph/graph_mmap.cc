#include "graph/graph_mmap.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "support/mmap_arena.h"

namespace opim {

namespace {

constexpr char kOpimgMagic[8] = {'O', 'P', 'I', 'M', 'G', '\0', 'v', '1'};
constexpr uint32_t kOpimgVersion = 1;

#pragma pack(push, 1)
struct OpimgHeader {
  char magic[8];
  uint32_t version;
  uint32_t header_bytes;
  uint32_t num_nodes;
  uint32_t flags;
  uint64_t num_edges;
  uint64_t payload_bytes;
  uint64_t payload_checksum;
  uint64_t reserved[2];
};
#pragma pack(pop)
static_assert(sizeof(OpimgHeader) == 64, ".opimg header must be 64 bytes");

/// Byte offsets (relative to the payload base) and total size of the
/// seven aligned sections for a graph with n nodes and m edges.
struct SectionLayout {
  uint64_t out_offsets;
  uint64_t out_neighbors;
  uint64_t out_probs;
  uint64_t in_offsets;
  uint64_t in_neighbors;
  uint64_t in_probs;
  uint64_t in_weight_sum;
  uint64_t total;
};

SectionLayout LayoutFor(uint64_t n, uint64_t m) {
  SectionLayout s;
  uint64_t pos = 0;
  auto place = [&pos](uint64_t bytes) {
    uint64_t at = pos;
    pos = MmapArena::AlignUp(pos + bytes);
    return at;
  };
  s.out_offsets = place((n + 1) * sizeof(uint64_t));
  s.out_neighbors = place(m * sizeof(NodeId));
  s.out_probs = place(m * sizeof(double));
  s.in_offsets = place((n + 1) * sizeof(uint64_t));
  s.in_neighbors = place(m * sizeof(NodeId));
  s.in_probs = place(m * sizeof(double));
  s.in_weight_sum = place(n * sizeof(double));
  s.total = pos;
  return s;
}

/// Validates the CSR invariants over the decoded sections. Shared by
/// the mapped and heap paths so both reject identical corruption with
/// identical messages.
Status ValidateStructure(const std::string& path, uint32_t n, uint64_t m,
                         const GraphStorageView& v) {
  auto check_offsets = [&](std::span<const uint64_t> off, const char* dir) {
    if (off[0] != 0 || off[n] != m) {
      return Status::InvalidArgument(
          path + ": corrupt " + dir + " offsets (do not span [0, " +
          std::to_string(m) + "])");
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (off[i] > off[i + 1]) {
        return Status::InvalidArgument(path + ": corrupt " + dir +
                                       " offsets (not monotone at node " +
                                       std::to_string(i) + ")");
      }
    }
    return Status::OK();
  };
  OPIM_RETURN_NOT_OK(check_offsets(v.out_offsets, "out"));
  OPIM_RETURN_NOT_OK(check_offsets(v.in_offsets, "in"));
  auto check_edges = [&](std::span<const NodeId> nbr,
                         std::span<const double> prob, const char* dir) {
    for (uint64_t e = 0; e < m; ++e) {
      if (nbr[e] >= n) {
        return Status::InvalidArgument(
            path + ": " + dir + " neighbor id " + std::to_string(nbr[e]) +
            " out of range at edge " + std::to_string(e));
      }
      if (!(prob[e] >= 0.0 && prob[e] <= 1.0)) {
        return Status::InvalidArgument(path + ": " + dir +
                                       " probability out of [0, 1] at edge " +
                                       std::to_string(e));
      }
    }
    return Status::OK();
  };
  OPIM_RETURN_NOT_OK(check_edges(v.out_neighbors, v.out_probs, "out"));
  OPIM_RETURN_NOT_OK(check_edges(v.in_neighbors, v.in_probs, "in"));
  return Status::OK();
}

/// Binds the seven section spans over a contiguous payload.
GraphStorageView ViewOver(const uint8_t* payload, uint32_t n, uint64_t m,
                          const SectionLayout& s) {
  GraphStorageView v;
  v.out_offsets = {
      reinterpret_cast<const uint64_t*>(payload + s.out_offsets), n + 1};
  v.out_neighbors = {
      reinterpret_cast<const NodeId*>(payload + s.out_neighbors), m};
  v.out_probs = {reinterpret_cast<const double*>(payload + s.out_probs), m};
  v.in_offsets = {
      reinterpret_cast<const uint64_t*>(payload + s.in_offsets), n + 1};
  v.in_neighbors = {
      reinterpret_cast<const NodeId*>(payload + s.in_neighbors), m};
  v.in_probs = {reinterpret_cast<const double*>(payload + s.in_probs), m};
  v.in_weight_sum = {
      reinterpret_cast<const double*>(payload + s.in_weight_sum), n};
  return v;
}

Status ValidateHeader(const std::string& path, const OpimgHeader& h,
                      uint64_t file_size) {
  if (std::memcmp(h.magic, kOpimgMagic, sizeof(kOpimgMagic)) != 0) {
    return Status::InvalidArgument(path + ": not an OPIMG file (bad magic)");
  }
  if (h.version != kOpimgVersion) {
    return Status::InvalidArgument(
        path + ": unsupported OPIMG version " + std::to_string(h.version) +
        " (this build reads version " + std::to_string(kOpimgVersion) + ")");
  }
  if (h.header_bytes != sizeof(OpimgHeader) || h.flags != 0 ||
      h.reserved[0] != 0 || h.reserved[1] != 0) {
    return Status::InvalidArgument(path +
                                   ": corrupt OPIMG header "
                                   "(unexpected header size or flags)");
  }
  const SectionLayout layout = LayoutFor(h.num_nodes, h.num_edges);
  if (h.payload_bytes != layout.total) {
    return Status::InvalidArgument(
        path + ": payload size mismatch (header claims " +
        std::to_string(h.payload_bytes) + " bytes, " +
        std::to_string(h.num_nodes) + " nodes / " +
        std::to_string(h.num_edges) + " edges need " +
        std::to_string(layout.total) + ")");
  }
  if (file_size < sizeof(OpimgHeader) + h.payload_bytes) {
    return Status::InvalidArgument(
        path + ": truncated payload (header claims " +
        std::to_string(h.payload_bytes) + " bytes, file has " +
        std::to_string(file_size - sizeof(OpimgHeader)) + ")");
  }
  return Status::OK();
}

}  // namespace

uint64_t OpimgChecksum(const void* data, uint64_t size) {
  // FNV-1a with 8-byte steps: same constants as the byte-wise variant,
  // but folding a whole word per multiply so the checksum scan keeps up
  // with the page-in rate instead of bottlenecking the 20x load win.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = kOffset ^ size;
  uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kPrime;
  }
  if (i < size) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, size - i);
    h = (h ^ word) * kPrime;
  }
  return h;
}

Status SaveOpimg(const Graph& g, const std::string& path) {
  const uint32_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  const SectionLayout layout = LayoutFor(n, m);
  const GraphStorageView v = g.storage_view();

  // Assemble the payload in memory so the checksum covers exactly the
  // bytes written (including the zeroed alignment gaps).
  std::vector<uint8_t> payload(layout.total, 0);
  auto put = [&payload](uint64_t at, const void* src, uint64_t bytes) {
    if (bytes > 0) std::memcpy(payload.data() + at, src, bytes);
  };
  put(layout.out_offsets, v.out_offsets.data(),
      v.out_offsets.size_bytes());
  put(layout.out_neighbors, v.out_neighbors.data(),
      v.out_neighbors.size_bytes());
  put(layout.out_probs, v.out_probs.data(), v.out_probs.size_bytes());
  put(layout.in_offsets, v.in_offsets.data(), v.in_offsets.size_bytes());
  put(layout.in_neighbors, v.in_neighbors.data(),
      v.in_neighbors.size_bytes());
  put(layout.in_probs, v.in_probs.data(), v.in_probs.size_bytes());
  put(layout.in_weight_sum, v.in_weight_sum.data(),
      v.in_weight_sum.size_bytes());

  OpimgHeader h;
  std::memset(&h, 0, sizeof(h));
  std::memcpy(h.magic, kOpimgMagic, sizeof(kOpimgMagic));
  h.version = kOpimgVersion;
  h.header_bytes = sizeof(OpimgHeader);
  h.num_nodes = n;
  h.num_edges = m;
  h.payload_bytes = layout.total;
  h.payload_checksum = OpimgChecksum(payload.data(), payload.size());

  std::ofstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  f.close();
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Graph> LoadOpimg(const std::string& path,
                        const OpimgLoadOptions& options) {
  std::shared_ptr<MmapArena> arena;
  if (!options.force_heap) {
    auto mapped = MmapArena::MapFile(path, MmapArena::Advice::kRandom);
    if (mapped.ok()) arena = std::move(mapped).ValueOrDie();
    // Mapping failure (ENODEV filesystems, injected io.mmap_fail, ...)
    // degrades to the heap read below — same bytes, same validation.
  }
  std::vector<uint8_t> heap_bytes;
  const uint8_t* base = nullptr;
  uint64_t file_size = 0;
  if (arena != nullptr) {
    base = arena->data();
    file_size = arena->size();
  } else {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f.is_open()) return Status::IOError("cannot open " + path);
    file_size = static_cast<uint64_t>(f.tellg());
    f.seekg(0);
    heap_bytes.resize(file_size);
    f.read(reinterpret_cast<char*>(heap_bytes.data()),
           static_cast<std::streamsize>(file_size));
    if (f.gcount() != static_cast<std::streamsize>(file_size)) {
      return Status::IOError("read failed: " + path);
    }
    base = heap_bytes.data();
  }

  if (file_size < sizeof(OpimgHeader)) {
    return Status::InvalidArgument(
        path + ": truncated OPIMG header (" + std::to_string(file_size) +
        " of " + std::to_string(sizeof(OpimgHeader)) + " bytes)");
  }
  OpimgHeader h;
  std::memcpy(&h, base, sizeof(h));
  OPIM_RETURN_NOT_OK(ValidateHeader(path, h, file_size));

  const uint8_t* payload = base + sizeof(OpimgHeader);
  if (options.verify_checksum) {
    if (arena != nullptr) {
      arena->Advise(sizeof(OpimgHeader), h.payload_bytes,
                    MmapArena::Advice::kSequential);
    }
    const uint64_t got = OpimgChecksum(payload, h.payload_bytes);
    if (got != h.payload_checksum) {
      return Status::InvalidArgument(
          path + ": payload checksum mismatch (file corrupt?)");
    }
    if (arena != nullptr) {
      arena->Advise(sizeof(OpimgHeader), h.payload_bytes,
                    MmapArena::Advice::kRandom);
    }
  }

  const SectionLayout layout = LayoutFor(h.num_nodes, h.num_edges);
  const GraphStorageView v =
      ViewOver(payload, h.num_nodes, h.num_edges, layout);
  if (options.validate_structure) {
    OPIM_RETURN_NOT_OK(ValidateStructure(path, h.num_nodes, h.num_edges, v));
  }

  if (arena != nullptr) {
    return Graph::WrapStorage(h.num_nodes, v, std::move(arena));
  }
  // Heap fallback: copy the sections out of the read buffer into owned
  // vectors so the Graph is self-contained.
  return Graph::AdoptStorage(
      h.num_nodes,
      {v.out_offsets.begin(), v.out_offsets.end()},
      {v.out_neighbors.begin(), v.out_neighbors.end()},
      {v.out_probs.begin(), v.out_probs.end()},
      {v.in_offsets.begin(), v.in_offsets.end()},
      {v.in_neighbors.begin(), v.in_neighbors.end()},
      {v.in_probs.begin(), v.in_probs.end()},
      {v.in_weight_sum.begin(), v.in_weight_sum.end()});
}

}  // namespace opim
