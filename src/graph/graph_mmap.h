// Memory-mappable graph container (`.opimg`): the repo's fast load
// path. Where the text loader parses and the OPIMGRB1 container
// re-sorts an edge list into CSR on every load, an `.opimg` file stores
// the seven CSR arrays exactly as Graph holds them in memory, 64-byte
// aligned, behind a checksummed header — so loading is mmap(2) plus
// validation, and the kernel pages the adjacency in on first touch.
//
// Layout (all fields little-endian, the only byte order the project's
// binary formats target):
//
//   OpimgHeader (64 bytes)
//     magic[8]        "OPIMG\0v1"
//     version         u32, currently 1
//     header_bytes    u32, sizeof(OpimgHeader)
//     num_nodes       u32
//     flags           u32, reserved (must be 0)
//     num_edges       u64
//     payload_bytes   u64, total bytes after the header
//     payload_checksum u64, word-wise FNV-1a over the payload
//     reserved[2]     u64, must be 0
//   payload — seven sections, each starting on a 64-byte boundary from
//   the payload base (the header is 64 bytes, so sections are also
//   64-byte aligned in the file, matching MmapArena::kAlignment):
//     out_offsets   (n+1) x u64
//     out_neighbors m x u32
//     out_probs     m x f64
//     in_offsets    (n+1) x u64
//     in_neighbors  m x u32
//     in_probs      m x f64
//     in_weight_sum n x f64
//
// Loading follows the strict-parsing contract of graph_io: every
// rejection is a Status naming the file and the specific defect
// (truncated header, wrong magic, unsupported version, truncated or
// oversized payload, checksum mismatch, corrupt CSR offsets,
// out-of-range endpoints or probabilities) — corrupt inputs never
// OPIM_CHECK-abort. When mmap itself fails (or the io.mmap_fail site
// fires), LoadOpimg degrades to reading the file into heap vectors: the
// result is bit-identical, just without shared pages.

#pragma once

#include <string>

#include "graph/graph.h"
#include "support/status.h"

namespace opim {

/// Load-time options for LoadOpimg.
struct OpimgLoadOptions {
  /// Verify the payload checksum before wrapping the graph. Costs one
  /// sequential scan over the file; disable only for benchmarking the
  /// pure page-table path.
  bool verify_checksum = true;
  /// Validate CSR structure (offset monotonicity, endpoint and
  /// probability ranges). Same cost shape as the checksum scan.
  bool validate_structure = true;
  /// Skip mmap and read into heap vectors (the fallback path, forced).
  /// For tests and for callers that will mutate-free the file.
  bool force_heap = false;
};

/// Writes `g` as an `.opimg` file. Overwrites `path`.
Status SaveOpimg(const Graph& g, const std::string& path);

/// Loads an `.opimg` file, mmap-backed when possible (see file comment
/// for the fallback and validation contract).
Result<Graph> LoadOpimg(const std::string& path,
                        const OpimgLoadOptions& options = {});

/// Word-wise FNV-1a over `size` bytes: the `.opimg` payload checksum.
/// Consumes 8 bytes per step (tail bytes zero-padded), trading the
/// byte-wise FNV dependency chain for scan speed; only this format
/// uses it, so the variant is private to the codec but exposed for
/// tests to corrupt files deliberately.
uint64_t OpimgChecksum(const void* data, uint64_t size);

}  // namespace opim
