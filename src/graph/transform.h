// Graph transformations used when preparing real datasets: IM papers
// (including this one's SNAP inputs) conventionally work on the largest
// weakly-connected component, sometimes on induced subgraphs, and RIS
// itself is a computation on the reverse graph.

#pragma once

#include <vector>

#include "graph/graph.h"

namespace opim {

/// The transpose: every edge u -> v (p) becomes v -> u (p).
Graph ReverseGraph(const Graph& g);

/// The subgraph induced by `nodes` (deduplicated): kept nodes are
/// renumbered 0..|nodes|-1 in the given first-appearance order, edges
/// keep their probabilities. `old_to_new` (optional) receives the mapping
/// (kInvalidNode for dropped nodes).
Graph InducedSubgraph(const Graph& g, std::span<const NodeId> nodes,
                      std::vector<NodeId>* old_to_new = nullptr);

/// Weakly-connected component id per node (0-based, ids dense but in no
/// particular order), via union-find.
std::vector<uint32_t> WeaklyConnectedComponents(const Graph& g,
                                                uint32_t* num_components);

/// The subgraph induced by the largest weakly-connected component
/// (smallest component id wins ties). Nodes renumbered ascending by old
/// id; `old_to_new` as for InducedSubgraph.
Graph LargestWeaklyConnectedComponent(const Graph& g,
                                      std::vector<NodeId>* old_to_new =
                                          nullptr);

}  // namespace opim
