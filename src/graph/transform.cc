#include "graph/transform.h"

#include <algorithm>
#include <numeric>

namespace opim {

Graph ReverseGraph(const Graph& g) {
  GraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto probs = g.OutProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      builder.AddEdge(nbrs[i], u, probs[i]);
    }
  }
  return builder.Build();
}

Graph InducedSubgraph(const Graph& g, std::span<const NodeId> nodes,
                      std::vector<NodeId>* old_to_new) {
  std::vector<NodeId> mapping(g.num_nodes(), kInvalidNode);
  uint32_t next = 0;
  for (NodeId v : nodes) {
    OPIM_CHECK_LT(v, g.num_nodes());
    if (mapping[v] == kInvalidNode) mapping[v] = next++;
  }

  GraphBuilder builder(next);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (mapping[u] == kInvalidNode) continue;
    auto nbrs = g.OutNeighbors(u);
    auto probs = g.OutProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (mapping[nbrs[i]] == kInvalidNode) continue;
      builder.AddEdge(mapping[u], mapping[nbrs[i]], probs[i]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return builder.Build();
}

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

std::vector<uint32_t> WeaklyConnectedComponents(const Graph& g,
                                                uint32_t* num_components) {
  const uint32_t n = g.num_nodes();
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  std::vector<uint32_t> component(n, 0);
  std::vector<uint32_t> root_to_id(n, static_cast<uint32_t>(-1));
  uint32_t count = 0;
  for (NodeId v = 0; v < n; ++v) {
    uint32_t root = uf.Find(v);
    if (root_to_id[root] == static_cast<uint32_t>(-1)) {
      root_to_id[root] = count++;
    }
    component[v] = root_to_id[root];
  }
  if (num_components != nullptr) *num_components = count;
  return component;
}

Graph LargestWeaklyConnectedComponent(const Graph& g,
                                      std::vector<NodeId>* old_to_new) {
  uint32_t num_components = 0;
  std::vector<uint32_t> component = WeaklyConnectedComponents(
      g, &num_components);
  if (num_components == 0) {
    if (old_to_new != nullptr) old_to_new->clear();
    return Graph();
  }
  std::vector<uint32_t> sizes(num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  const uint32_t largest = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> keep;
  keep.reserve(sizes[largest]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (component[v] == largest) keep.push_back(v);
  }
  return InducedSubgraph(g, keep, old_to_new);
}

}  // namespace opim
