// Sampling-oriented view of the reverse graph.
//
// The RR-set samplers spend nearly all their time deciding, edge by edge,
// whether a reverse-CSR in-edge is live. Graph stores probabilities as
// doubles, so the natural kernel is `rng.UniformDouble() < p` — a 64-bit
// draw, an int→double conversion, and a double compare per edge.
// SamplingView precomputes, once per graph, everything that lets the
// kernels consume the RNG stream 32 bits at a time:
//
//   * IC: per-edge *reject* thresholds quantized to uint32_t — an edge is
//     rejected iff `rng.NextU32() < rej`, with per-edge error <= 2^-32 and
//     p >= 1 kept *exactly* (rej == 0). Edges with p <= 0 are dropped from
//     the view entirely (exactly never live; traversal cost still charges
//     the full in-degree, which the view carries per node). Each node is
//     classified: uniform-probability nodes — true by construction for
//     kWeightedCascade and kConstant weights — with enough in-edges
//     additionally precompute 1/log1p(-p), so the kernel can jump
//     Geometric(p) edges ahead (Rng::GeometricSkip) instead of flipping a
//     coin per in-neighbor: expected RNG draws drop from deg to p·deg + 1.
//   * LT: one flattened Walker/Vose alias arena — single bucket array
//     indexed by the reverse-CSR offsets — instead of n independently
//     allocated per-node tables, plus a quantized per-node stop threshold
//     (the walk continues with probability Σ_w p(w, v)).
//
// The storage layout is chosen for the memory-latency profile of real RR
// sampling: at typical scales a sample touches a handful of *random*
// nodes, so cache lines per member — not arithmetic — bound throughput.
// Per-node state is packed into one 8-byte record (edge offset + full
// in-degree + kind for IC; edge offset + stop threshold for LT), and
// per-edge state is interleaved ({neighbor, reject} pairs for IC; fully
// resolved {reject, keep, alias} buckets for LT — the LT walk never
// touches the Graph arrays at all). One random load per member where the
// split-array layout took three or four.
//
// A view is immutable after construction and shared read-only across
// worker threads; ParallelGenerate builds one per call (or accepts a
// caller-cached one) instead of letting every shard re-derive per-node
// state. Construction parallelizes over nodes on an optional ThreadPool
// and is deterministic for any worker count.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace opim {

class MmapArena;
class ThreadPool;

/// Construction options for SamplingView.
struct SamplingViewOptions {
  /// Seal the built kernel state into one anonymous madvise-hinted
  /// MmapArena: the five arrays are packed 64-byte aligned into a single
  /// mapping (dropping the vectors' slack capacity) and hinted
  /// MADV_WILLNEED so the kernels never stall on lazy first-touch
  /// faults. Purely a storage move — the sampled RR streams are
  /// byte-identical to the heap-backed layout. When the kernel refuses
  /// the mapping the view silently stays heap-backed.
  bool seal_arena = false;
};

/// Quantizes a keep-probability into the 32-bit reject threshold used by
/// the sampling kernels: a trial is *rejected* iff `rng.NextU32() < rej`,
/// so `rej = round((1 - p)·2^32)`. The kept probability is within 2^-32
/// of p, and p >= 1 maps to rej == 0: certain edges are kept exactly.
/// p <= 0 maps to SamplingView::kAlwaysReject; callers that must reject
/// *exactly* (not merely with probability 1 - 2^-32) test for the
/// sentinel explicitly.
inline uint32_t QuantizeRejectThreshold(double keep_prob) {
  if (keep_prob >= 1.0) return 0;
  if (keep_prob <= 0.0) return std::numeric_limits<uint32_t>::max();
  const double r = std::nearbyint((1.0 - keep_prob) * 0x1.0p32);
  if (r >= 4294967295.0) return std::numeric_limits<uint32_t>::max();
  return static_cast<uint32_t>(r);
}

/// Read-only, shareable sampling state derived from a Graph. Build once,
/// hand `const SamplingView&` to every sampler/worker.
class SamplingView {
 public:
  /// Which kernels' state to precompute.
  enum class Parts : uint8_t { kIc = 1, kLt = 2, kBoth = 3 };

  /// Reject threshold meaning "certain rejection" (up to 2^-32); also the
  /// sentinel for degenerate LT nodes (no in-edges, or zero stay mass)
  /// where the kernel must stop unconditionally.
  static constexpr uint32_t kAlwaysReject =
      std::numeric_limits<uint32_t>::max();

  /// How the IC kernel traverses a node's (positive-probability) in-edges.
  enum class IcNodeKind : uint8_t {
    kEmpty,    ///< no in-edge with p > 0: nothing to traverse
    kKeepAll,  ///< uniform p >= 1: every in-edge is live, no RNG at all
    kSkip,     ///< uniform p, degree >= kSkipMinDegree: geometric skipping
    kPerEdge,  ///< one quantized threshold compare per in-edge
  };

  /// One interleaved IC edge: kept in-neighbor plus its quantized reject
  /// threshold, adjacent so a single cache line serves both.
  struct IcEdge {
    NodeId nbr;
    uint32_t rej;
  };

  /// Packed per-node IC record: offset of the node's first kept edge in
  /// the interleaved edge array, plus the *full* in-degree (for the cost
  /// contract) and the IcNodeKind packed as `indeg << 2 | kind`. One
  /// 8-byte load gives the kernel everything about a member but the edges.
  struct IcNodeMeta {
    uint32_t offset;
    uint32_t indeg_kind;
  };

  /// One resolved LT alias bucket: the draw *deviates to `alias`* iff
  /// `rng.NextU32() < rej` (0 = full bucket, keeps `keep` with no draw);
  /// both outcomes are stored as node ids, so a walk step never reads the
  /// Graph adjacency arrays.
  struct LtBucket {
    uint32_t rej;
    NodeId keep;
    NodeId alias;
  };

  /// Packed per-node LT record: offset of the node's first bucket (the
  /// arena is aligned with the full reverse CSR, so in-degree is the
  /// offset delta) plus the quantized stop threshold.
  struct LtNodeMeta {
    uint32_t offset;
    uint32_t stop_rej;
  };

  /// Uniform nodes switch from per-edge compares to geometric skipping at
  /// this in-degree (and only for p <= kSkipMaxProb): a Geometric(p) draw
  /// costs several threshold compares, so skipping pays off once the
  /// expected p·deg + 1 draws undercut deg compares with room to spare.
  static constexpr uint64_t kSkipMinDegree = 16;
  static constexpr double kSkipMaxProb = 0.125;

  /// Builds the requested parts. `pool` (optional) parallelizes
  /// construction; the result is identical for any worker count. The LT
  /// part requires per-node in-weights summing to <= 1 (checked).
  explicit SamplingView(const Graph& g, Parts parts = Parts::kBoth,
                        ThreadPool* pool = nullptr,
                        const SamplingViewOptions& options = {});

  OPIM_DISALLOW_COPY(SamplingView);

  const Graph& graph() const { return *graph_; }
  bool has_ic() const { return !ic_meta_.empty(); }
  bool has_lt() const { return !lt_meta_.empty(); }

  /// Footprint of the precomputed kernel state in bytes: the sealed
  /// arena's size when arena-backed, else the heap vectors'
  /// capacity-based sum. Counted against RunControl memory budgets
  /// together with RRCollection::MemoryUsage().
  uint64_t MemoryFootprintBytes() const {
    if (arena_ != nullptr) return arena_size_;
    return own_ic_meta_.capacity() * sizeof(IcNodeMeta) +
           own_ic_edges_.capacity() * sizeof(IcEdge) +
           own_ic_skip_inv_log_.capacity() * sizeof(double) +
           own_lt_meta_.capacity() * sizeof(LtNodeMeta) +
           own_lt_buckets_.capacity() * sizeof(LtBucket);
  }

  /// True when the kernel state was sealed into an MmapArena.
  bool arena_backed() const { return arena_ != nullptr; }

  // --- IC part -----------------------------------------------------------

  IcNodeKind ic_kind(NodeId v) const {
    return static_cast<IcNodeKind>(ic_meta_[v].indeg_kind & 3u);
  }

  /// Full in-degree of v (including dropped p <= 0 edges): the traversal
  /// cost the sampler charges per member.
  uint32_t IcFullInDegree(NodeId v) const {
    return ic_meta_[v].indeg_kind >> 2;
  }

  /// Kept (p > 0) in-edges of v in reverse-CSR order, each a
  /// {neighbor, reject threshold} pair.
  std::span<const IcEdge> IcEdges(NodeId v) const {
    return {ic_edges_.data() + ic_meta_[v].offset,
            ic_edges_.data() + ic_meta_[v + 1].offset};
  }

  /// 1/log1p(-p) for kSkip nodes (meaningless otherwise).
  double IcSkipInvLog(NodeId v) const { return ic_skip_inv_log_[v]; }

  /// Raw array access for the sampling kernels (size n + 1 / total kept).
  const IcNodeMeta* IcMetaData() const { return ic_meta_.data(); }
  const IcEdge* IcEdgeData() const { return ic_edges_.data(); }

  // --- LT part -----------------------------------------------------------

  /// Quantized stop threshold: the walk at v stops iff
  /// `rng.NextU32() < LtStopReject(v)`; kAlwaysReject means stop
  /// unconditionally (no in-edges or no stay mass). Exactly 0 for
  /// LT-saturated nodes (Σ p = 1, e.g. weighted cascade): no draw needed.
  uint32_t LtStopReject(NodeId v) const { return lt_meta_[v].stop_rej; }

  /// First alias bucket of v; bucket j corresponds to in-edge j of v.
  uint64_t LtOffset(NodeId v) const { return lt_meta_[v].offset; }

  /// Bucket contents; see LtBucket.
  const LtBucket& LtBucketAt(uint64_t bucket) const {
    return lt_buckets_[bucket];
  }

  /// Raw array access for the sampling kernels (size n + 1 / m).
  const LtNodeMeta* LtMetaData() const { return lt_meta_.data(); }
  const LtBucket* LtBucketData() const { return lt_buckets_.data(); }

 private:
  void BuildIc(ThreadPool* pool);
  void BuildLt(ThreadPool* pool);

  /// Rebinds the span members to the own_* vectors (heap-backed state).
  void BindOwned();

  /// Packs the built arrays into one anonymous arena and rebinds the
  /// spans into it; no-op (heap stays) when the mapping is refused.
  void SealArena();

  const Graph* graph_;

  // Active views; bound to own_* (heap) or into arena_ (sealed).
  std::span<const IcNodeMeta> ic_meta_;      // n + 1 (last: end offset)
  std::span<const IcEdge> ic_edges_;         // m' <= m
  std::span<const double> ic_skip_inv_log_;  // n (kSkip nodes only)
  std::span<const LtNodeMeta> lt_meta_;      // n + 1 (last: end offset)
  std::span<const LtBucket> lt_buckets_;     // m

  // IC: compacted reverse CSR over positive-probability edges.
  std::vector<IcNodeMeta> own_ic_meta_;
  std::vector<IcEdge> own_ic_edges_;
  std::vector<double> own_ic_skip_inv_log_;

  // LT: flattened alias arena aligned with the full reverse CSR.
  std::vector<LtNodeMeta> own_lt_meta_;
  std::vector<LtBucket> own_lt_buckets_;

  // Sealed storage; null while heap-backed.
  std::shared_ptr<MmapArena> arena_;
  uint64_t arena_size_ = 0;
};

}  // namespace opim
