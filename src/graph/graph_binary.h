// Binary graph serialization: a compact columnar edge dump that loads an
// order of magnitude faster than text edge lists for multi-million-edge
// graphs (no parsing, no id interning). Format (little-endian):
//
//   magic "OPIMGRB1" (8 bytes)
//   u32 num_nodes, u64 num_edges
//   u32 from[num_edges], u32 to[num_edges], f64 prob[num_edges]
//
// Node ids are already compact, so loading rebuilds the CSR directly.

#pragma once

#include <string>

#include "graph/graph.h"
#include "support/status.h"

namespace opim {

/// Writes `g` to `path` in the OPIMGRB1 format.
Status SaveBinaryGraph(const Graph& g, const std::string& path);

/// Loads an OPIMGRB1 file. Rejects wrong magic, truncated files, and
/// inconsistent counts.
Result<Graph> LoadBinaryGraph(const std::string& path);

}  // namespace opim
