#include "core/online_maximizer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/parallel_generate.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Engine pools never answer SetCost (only aggregate γ via
/// total_edges_examined), so they drop the 8 bytes/set cost column on
/// top of the compressed member storage.
constexpr RRStoreOptions kEngineStore{.retain_set_costs = false};

}  // namespace

OnlineMaximizer::OnlineMaximizer(const Graph& g, DiffusionModel model,
                                 uint32_t k, double delta, uint64_t seed)
    : graph_(g),
      model_(model),
      k_(k),
      delta_(delta),
      scale_(g.num_nodes()),
      sampling_view_(g, SamplingViewPartsFor(model)),
      sampler_(MakeRRSampler(sampling_view_, model)),
      rng_(seed, 0x6f70696dULL),  // "opim"
      r1_(g.num_nodes(), kEngineStore),
      r2_(g.num_nodes(), kEngineStore) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, g.num_nodes());
  OPIM_CHECK(delta > 0.0 && delta < 1.0);
}

OnlineMaximizer::OnlineMaximizer(const Graph& g, DiffusionModel model,
                                 uint32_t k, double delta,
                                 std::span<const double> node_weights,
                                 uint64_t seed)
    : graph_(g),
      model_(model),
      k_(k),
      delta_(delta),
      scale_(0.0),
      node_weights_(node_weights.begin(), node_weights.end()),
      sampling_view_(g, SamplingViewPartsFor(model)),
      root_sampler_(node_weights_),
      sampler_(MakeRRSampler(sampling_view_, model, &root_sampler_)),
      rng_(seed, 0x6f70696dULL),
      r1_(g.num_nodes(), kEngineStore),
      r2_(g.num_nodes(), kEngineStore) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, g.num_nodes());
  OPIM_CHECK(delta > 0.0 && delta < 1.0);
  OPIM_CHECK_EQ(node_weights.size(), g.num_nodes());
  for (double w : node_weights) {
    OPIM_CHECK_GE(w, 0.0);
    scale_ += w;
  }
  OPIM_CHECK_MSG(scale_ > 0.0, "node weights must not all be zero");
}

void OnlineMaximizer::AdvanceParallel(uint64_t count,
                                      unsigned num_threads) {
  OPIM_TR_SPAN1("advance", "online", "count", count);
  OPIM_TM_SCOPED_TIMER("opim.online.advance_us");
  const uint64_t to_r1 = (count + next_to_r1_) / 2;
  const uint64_t to_r2 = count - to_r1;
  // Batch seeds derive from the shared RNG so successive calls stay
  // decorrelated and the whole sequence remains reproducible.
  const uint64_t seed1 = rng_.NextU64();
  const uint64_t seed2 = rng_.NextU64();
  num_threads = ThreadPool::ResolveThreadCount(num_threads);
  const unsigned shards1 = GenerateShardCount(to_r1, num_threads);
  const unsigned shards2 = GenerateShardCount(to_r2, num_threads);

  // Both batches are staged onto ONE pool instead of two back-to-back
  // ParallelGenerate calls: their shards interleave on the same workers
  // (a straggler shard of one batch no longer idles threads the other
  // could use) and both ingestions reuse the pool for the index merge.
  // The RR streams are unchanged from the sequential schedule — per-batch
  // seeds and shard counts are identical; only scheduling overlaps.
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && shards1 + shards2 > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }
  const uint64_t base_bytes =
      control_ != nullptr ? r1_.MemoryUsage() + r2_.MemoryUsage() : 0;
  const AliasSampler* const root =
      root_sampler_.empty() ? nullptr : &root_sampler_;
  std::optional<StagedGeneration> stage1, stage2;
  if (to_r1 > 0) {
    stage1.emplace(sampling_view_, model_, to_r1, seed1, shards1, root,
                   control_, base_bytes, /*speculative=*/false);
  }
  if (to_r2 > 0) {
    stage2.emplace(sampling_view_, model_, to_r2, seed2, shards2, root,
                   control_, base_bytes, /*speculative=*/false);
  }
  // Worker-failure contract matches ParallelGenerate: degrade under a
  // control (keeping every completed staged shard), propagate without one.
  try {
    if (pool == nullptr) {
      if (stage1) stage1->RunShard(0);
      if (stage2) stage2->RunShard(0);
    } else {
      for (StagedGeneration* stage : {stage1 ? &*stage1 : nullptr,
                                      stage2 ? &*stage2 : nullptr}) {
        if (stage == nullptr) continue;
        for (unsigned s = 0; s < stage->shards(); ++s) {
          pool->Submit([stage, s] { stage->RunShard(s); });
        }
      }
      pool->Wait();
    }
  } catch (...) {
    if (control_ == nullptr) throw;
    control_->TripWorkerFailure();
  }
  if (stage1) IngestStaged(&*stage1, &r1_, pool.get());
  if (stage2) IngestStaged(&*stage2, &r2_, pool.get());
  OPIM_TM_STMT({
    if (pool != nullptr) {
      const ThreadPoolStats stats = pool->Stats();
      OPIM_TM_COUNTER_ADD("opim.pool.tasks_run", stats.tasks_run);
      OPIM_TM_COUNTER_ADD("opim.pool.queue_wait_us", stats.queue_wait_us);
      OPIM_TM_COUNTER_ADD("opim.pool.idle_wait_us", stats.idle_wait_us);
    }
  });
  if (count % 2 == 1) next_to_r1_ = !next_to_r1_;
  // Anytime floor: a trip before/during the first batch can leave a pool
  // empty, and Query needs one set per pool. Uncontrolled single-set
  // generates keep every pause point answerable; untripped runs never get
  // here with an empty pool (count >= 2 fills both).
  if (control_ != nullptr && control_->Stopped()) {
    if (r1_.num_sets() == 0 && to_r1 > 0) {
      ParallelGenerate(graph_, model_, &r1_, 1, seed1, num_threads,
                       node_weights_, /*pool=*/nullptr, &sampling_view_);
    }
    if (r2_.num_sets() == 0 && count - to_r1 > 0) {
      ParallelGenerate(graph_, model_, &r2_, 1, seed2, num_threads,
                       node_weights_, /*pool=*/nullptr, &sampling_view_);
    }
  }
}

void OnlineMaximizer::Advance(uint64_t count) {
  OPIM_TR_SPAN1("advance", "online", "count", count);
  OPIM_TM_SCOPED_TIMER("opim.online.advance_us");
  const uint64_t alias_before = sampler_->alias_draws();
  uint64_t generated = 0;
  uint64_t nodes_total = 0;
  uint64_t edges_total = 0;
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < count; ++i) {
    // Poll once per stride with the exact footprint (capacities only, so
    // the check is O(1)); stop early when tripped, but never before both
    // pools can answer a Query (the anytime floor).
    if (control_ != nullptr && i % kControlPollStride == 0 &&
        control_->Poll(r1_.MemoryUsage() + r2_.MemoryUsage() +
                       sampling_view_.MemoryFootprintBytes()) &&
        r1_.num_sets() > 0 && r2_.num_sets() > 0) {
      break;
    }
    uint64_t cost = sampler_->SampleInto(rng_, &scratch);
    nodes_total += scratch.size();
    edges_total += cost;
    (next_to_r1_ ? r1_ : r2_).AddSet(scratch, cost);
    next_to_r1_ = !next_to_r1_;
    ++generated;
  }
  OPIM_TM_COUNTER_ADD("opim.rrset.sets_generated", generated);
  OPIM_TM_COUNTER_ADD("opim.rrset.nodes_total", nodes_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.edges_examined", edges_total);
  OPIM_TM_COUNTER_ADD("opim.rrset.alias_draws",
                      sampler_->alias_draws() - alias_before);
}

OnlineSnapshot OnlineMaximizer::Query(BoundKind kind) const {
  // δ1 = δ2 = δ/2 (near-optimal by Lemma 4.4).
  return QueryWithDelta(kind, delta_ / 2.0);
}

OnlineSnapshot OnlineMaximizer::QuerySequential(BoundKind kind) {
  ++sequential_queries_;
  // The i-th query gets failure budget δ/2^i, split evenly between the
  // two bounds, so Σ_i δ/2^i <= δ covers the whole sequence.
  const double budget = delta_ / std::pow(2.0, sequential_queries_);
  return QueryWithDelta(kind, budget / 2.0);
}

OnlineSnapshot OnlineMaximizer::QueryWithDelta(BoundKind kind,
                                               double delta_each) const {
  OPIM_TR_SPAN1("query", "online", "theta1", r1_.num_sets());
  OPIM_TM_SCOPED_TIMER("opim.online.query_us");
  OPIM_TM_COUNTER_ADD("opim.online.queries", 1);
  OPIM_CHECK_MSG(r1_.num_sets() > 0 && r2_.num_sets() > 0,
                 "Query before any RR sets were generated; call Advance()");
  const double delta1 = delta_each;
  const double delta2 = delta_each;

  const bool needs_trace = kind != BoundKind::kBasic;
  // CELF with persistent selection state: across the Advance/Query cadence
  // only the new shards' postings are folded into the initial gains
  // (bit-identical to SelectGreedy — the differential test pins it).
  CelfOptions celf_options;
  celf_options.state = &select_state_;
  GreedyResult greedy = SelectGreedyCelf(r1_, k_, needs_trace, celf_options);

  OnlineSnapshot snap;
  snap.theta1 = r1_.num_sets();
  snap.theta2 = r2_.num_sets();
  snap.lambda1 = greedy.coverage;
  snap.lambda2 = r2_.CoverageOf(greedy.seeds);
  snap.sigma_lower =
      SigmaLower(snap.lambda2, snap.theta2, scale_, delta2);
  snap.sigma_upper =
      SigmaUpper(kind, greedy, snap.theta1, scale_, delta1);
  snap.alpha = ApproxRatio(snap.sigma_lower, snap.sigma_upper);
  snap.seeds = std::move(greedy.seeds);
  return snap;
}

OnlineSnapshot OnlineMaximizer::RunUntilTarget(BoundKind kind,
                                               double target_alpha,
                                               uint64_t batch,
                                               uint64_t max_rr_sets) {
  OPIM_CHECK_GE(batch, 1u);
  for (;;) {
    uint64_t step = batch;
    if (max_rr_sets != 0) {
      OPIM_CHECK_GE(max_rr_sets, 2u);
      if (num_rr_sets() >= max_rr_sets) break;
      step = std::min<uint64_t>(step, max_rr_sets - num_rr_sets());
    }
    Advance(step);
    // A tripped guardrail ends the drive loop at this pause point; the
    // final Query below reports (S*, α) on the RR sets that exist.
    if (control_ != nullptr && control_->Stopped()) break;
    if (Query(kind).alpha >= target_alpha) break;
  }
  return Query(kind);
}

OnlineSnapshotAll OnlineMaximizer::QueryAll() const {
  OPIM_TR_SPAN1("query", "online", "theta1", r1_.num_sets());
  OPIM_TM_SCOPED_TIMER("opim.online.query_us");
  OPIM_TM_COUNTER_ADD("opim.online.queries", 1);
  OPIM_CHECK_MSG(r1_.num_sets() > 0 && r2_.num_sets() > 0,
                 "QueryAll before any RR sets were generated; call Advance()");
  const double delta1 = delta_ / 2.0;
  const double delta2 = delta_ / 2.0;
  const double n = scale_;

  CelfOptions celf_options;
  celf_options.state = &select_state_;
  GreedyResult greedy =
      SelectGreedyCelf(r1_, k_, /*with_trace=*/true, celf_options);

  OnlineSnapshotAll snap;
  snap.theta_total = num_rr_sets();
  uint64_t lambda2 = r2_.CoverageOf(greedy.seeds);
  snap.sigma_lower = SigmaLower(lambda2, r2_.num_sets(), n, delta2);
  snap.alpha_basic = ApproxRatio(
      snap.sigma_lower,
      SigmaUpper(BoundKind::kBasic, greedy, r1_.num_sets(), n, delta1));
  snap.alpha_improved = ApproxRatio(
      snap.sigma_lower,
      SigmaUpper(BoundKind::kImproved, greedy, r1_.num_sets(), n, delta1));
  snap.alpha_leskovec = ApproxRatio(
      snap.sigma_lower,
      SigmaUpper(BoundKind::kLeskovec, greedy, r1_.num_sets(), n, delta1));
  snap.seeds = std::move(greedy.seeds);
  return snap;
}

}  // namespace opim
