// OPIM-C (Algorithm 2): the paper's extension of OPIM to conventional
// influence maximization (§6).
//
// Given (G, model, k, ε, δ), OPIM-C returns a size-k seed set that is a
// (1 - 1/e - ε)-approximation with probability >= 1 - δ, in
// O((k ln n + ln(1/δ))(n + m) ε⁻²) expected time (Theorem 6.4) — matching
// IMM's guarantees while generating far fewer RR sets in practice.
//
// Structure: start both pools at θ0 (Eq. 17) RR sets; each iteration runs
// greedy on R1, computes σ_l from R2 and the σ-upper bound from R1 with
// δ1 = δ2 = δ/(3·i_max), and stops as soon as
// α = σ_l/σ_upper >= 1 - 1/e - ε; otherwise both pools double, up to
// i_max = ceil(log2(θ_max/θ0)) iterations with θ_max from Eq. (16).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bounds/bounds.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "support/run_control.h"

namespace opim {

struct RRPoolSnapshot;  // rrset/snapshot.h

/// Tuning knobs for OpimC.
struct OpimCOptions {
  /// Which σ(S°) upper bound drives the stopping rule: kImproved is the
  /// published OPIM-C⁺ default; kBasic / kLeskovec give OPIM-C⁰ / OPIM-C′.
  BoundKind bound = BoundKind::kImproved;
  /// RNG seed for the RR-set stream.
  uint64_t seed = 1;
  /// Worker threads for RR-set generation (1 = serial; 0 = hardware
  /// default). Results are deterministic in (seed, num_threads).
  unsigned num_threads = 1;
  /// Pipelined doubling loop: while CELF and the bounds run on the frozen
  /// pools, background workers speculatively sample the next doubling's
  /// batches into compressed staging buffers; if the iteration does not
  /// converge they are merged as the doubling (shard-order, seeds derived
  /// exactly as the serial schedule's), otherwise discarded. Output is
  /// byte-identical to `pipeline = false` for the same (seed,
  /// num_threads); only wall-clock differs. Inert when num_threads == 1
  /// (speculation needs pool workers).
  bool pipeline = true;
  /// Optional node weights (one per node, non-negative, not all zero):
  /// switches the objective to the weighted spread σ_w (see IcRRSampler).
  /// The guarantee becomes (1 - 1/e - ε) w.r.t. the weighted optimum.
  std::vector<double> node_weights;
  /// Directory for the out-of-core RR spill tier (empty = spilling off).
  /// When set, both pools arm an unlinked spill file there; once the
  /// exact iteration-boundary footprint crosses half of an armed
  /// RunControl memory budget, cold compressed chunks are written out
  /// until each pool keeps at most a quarter of its member bytes
  /// resident (a sticky target that later fault-ins respect), and the
  /// run continues instead of stopping. CELF recounts fault spilled chunks
  /// back in on demand, so seed sets and α are bit-identical to the
  /// fully-resident run. A spill I/O failure trips the control with the
  /// distinct StopReason::kSpillFailure and degrades like a
  /// memory-budget stop. Ignored without a control or budget.
  std::string spill_dir;
  /// Seal the SamplingView kernel state into one anonymous
  /// madvise-hinted arena (SamplingViewOptions::seal_arena). Storage
  /// move only: RR streams, seeds, and α are byte-identical.
  bool view_arena = false;
  /// Optional run guardrails (deadline / memory budget / cancellation),
  /// non-owning; must outlive the call. When the control trips, the run
  /// exits at the next safe point, finishes the judge-pool bound
  /// evaluation on whatever RR sets exist, and returns normally with
  /// OpimCResult::guardrails.stop_reason set — the anytime contract of
  /// §4 applied to OPIM-C (see docs/robustness.md). nullptr = no
  /// guardrails (byte-identical behavior to previous releases).
  RunControl* control = nullptr;
  /// Crash-safe checkpointing (empty = off): the engine atomically
  /// rewrites `<checkpoint_dir>/opimc.opimss` (rrset/snapshot.h;
  /// write-to-temp + fsync + rename, so the last durable snapshot
  /// always survives a kill -9 mid-write) at the top of every
  /// `checkpoint_every_iters`-th doubling iteration, and once more on a
  /// deadline / memory-budget / cancellation trip. A checkpoint failure
  /// is logged and counted but never stops a healthy run. Resuming from
  /// a boundary checkpoint reproduces the uninterrupted run bit-for-bit
  /// (tests/core/checkpoint_resume_test.cc).
  std::string checkpoint_dir;
  uint32_t checkpoint_every_iters = 1;
  /// Resume state loaded by LoadSnapshot (non-owning; pools are moved
  /// out of it). The snapshot's parameters are authoritative: the
  /// engine OPIM_CHECKs that (k, ε, δ, seed, threads, bound, model,
  /// graph fingerprint, weights) match the call — the CLI validates the
  /// same facts first with a clean error. nullptr = fresh run.
  RRPoolSnapshot* resume = nullptr;
  /// Prefix query sizes: for each k' here (1 <= k' <= k, validated),
  /// the run also answers the k'-seed query — seeds, σ_l, σ_upper, α —
  /// from the final iteration's prefix-complete SeedTrace, with zero
  /// extra selection or pool scans (OpimCResult::queries). Greedy
  /// prefix-consistency makes each answer identical to what a fresh
  /// selection + bound evaluation at k' over the same final pools would
  /// produce. Empty = no queries (no trace matrix is recorded).
  std::vector<uint32_t> query_ks;
  /// Incremental cross-iteration selection (default on): CELF warm-starts
  /// each doubling from a persistent SelectionState — exact initial
  /// gains synced in O(n) from the pools' incrementally maintained
  /// membership counts instead of a full O(Σ|R|) recount, and a covered
  /// bitset arena reused across iterations. Output is bit-identical
  /// either way (differential tests pin it); `false` keeps the
  /// from-scratch path as the oracle for tests and benchmarks.
  bool incremental_selection = true;
};

/// Per-iteration record, for tests and diagnostics. The *_seconds phase
/// breakdown attributes wall time to the iteration that consumed it: RR-set
/// generation (including the initial θ0 fill and the doubling at the end of
/// the previous iteration), greedy selection on R1, and the bound
/// computations (Λ2 coverage + σ_l/σ_u/α). Timings are diagnostic only —
/// they never influence the algorithm and are not deterministic.
struct OpimCIteration {
  uint64_t theta1 = 0;       // |R1| this iteration
  double alpha = 0.0;        // guarantee computed this iteration
  double sigma_lower = 0.0;
  double sigma_upper = 0.0;
  double generate_seconds = 0.0;
  double greedy_seconds = 0.0;
  double bounds_seconds = 0.0;
  /// RR-pool heap footprint when this iteration's bounds were evaluated:
  /// both collections' MemoryUsage() plus the SamplingView. Since the
  /// pools store members group-varint compressed (rrset/varint_codec.h),
  /// this is the *compressed* footprint — the exact quantity a RunControl
  /// memory budget is checked against at the iteration boundary.
  uint64_t rr_bytes = 0;
  /// Bytes of both pools' compressed member encodings alone (the
  /// telemetry gauge opim.rrset.compressed_bytes at this boundary).
  uint64_t rr_compressed_bytes = 0;
};

/// Guardrail outcome of a run (all zeros/converged when no RunControl was
/// supplied). The result as a whole stays a valid anytime answer for every
/// stop reason: seeds is a size-k set and alpha its Eq. (5)/(13)
/// certificate on the RR sets that existed at the stop point.
struct OpimCGuardrails {
  /// Why the run stopped. kConverged covers both the α >= target exit and
  /// the i_max exhaustion exit (Lemma 6.1); every other value means a
  /// guardrail tripped and the run degraded gracefully.
  StopReason stop_reason = StopReason::kConverged;
  /// Whether a deadline was armed, and the wall-clock slack remaining at
  /// the end of the run (negative = overshoot past the deadline).
  bool had_deadline = false;
  double deadline_slack_seconds = 0.0;
  /// Peak RR-pool footprint the control observed, and the armed budget
  /// (0 = unlimited).
  uint64_t peak_rr_bytes = 0;
  uint64_t memory_budget_bytes = 0;
  /// Trip-to-return latency: wall seconds between the control tripping and
  /// the run finishing its degraded finalization (0 when never tripped).
  double stop_latency_seconds = 0.0;
};

/// One answered prefix query (OpimCOptions::query_ks): the size-k' seed
/// prefix with its own Eq. (5) / upper-bound certificate, evaluated at
/// the run's final pools with the same per-iteration failure budget.
struct OpimCQueryAnswer {
  uint32_t k = 0;
  double alpha = 0.0;
  double sigma_lower = 0.0;
  double sigma_upper = 0.0;
  std::vector<NodeId> seeds;
};

/// Output of OpimC.
struct OpimCResult {
  /// The returned size-k seed set.
  std::vector<NodeId> seeds;
  /// Guarantee α at the stopping iteration (>= 1 - 1/e - ε unless the
  /// algorithm exhausted i_max, which Lemma 6.1 covers instead).
  double alpha = 0.0;
  /// Total RR sets generated across both pools.
  uint64_t num_rr_sets = 0;
  /// Total RR-set nodes generated, Σ|R| (the memory/time driver).
  uint64_t total_rr_size = 0;
  /// Final compressed member-pool bytes across both collections, and the
  /// raw uint32 bytes those members would occupy uncompressed
  /// (total_rr_size · 4). Their quotient is the storage compression
  /// ratio the CLI reports next to peak_rr_bytes.
  uint64_t rr_compressed_bytes = 0;
  uint64_t rr_raw_member_bytes = 0;
  /// Iterations executed (1-based; <= i_max).
  uint32_t iterations = 0;
  /// Speculation accounting (pipelined runs only): RR sets sampled ahead
  /// of need that were merged as a doubling, and sets discarded because
  /// the loop converged (or tripped) first — only the final iteration's
  /// staged work is ever discarded. Mirrors the telemetry counters
  /// opim.rrset.speculative_sets_used / _discarded.
  uint64_t speculative_sets_used = 0;
  uint64_t speculative_sets_discarded = 0;
  /// Out-of-core spill accounting across both pools (all zero when
  /// OpimCOptions::spill_dir was empty or the tier never engaged):
  /// chunks written to the spill file, chunks faulted back for CELF
  /// recounts, and compressed bytes still on disk (not resident) at
  /// exit. Mirror the telemetry counters opim.rrset.spill_chunks_*.
  uint64_t spill_chunks_spilled = 0;
  uint64_t spill_chunks_faulted = 0;
  uint64_t spilled_bytes = 0;
  /// Checkpoint/resume accounting (all zero for fresh, uncheckpointed
  /// runs): the iteration a resumed run re-entered at (0 = fresh), and
  /// the snapshots written / bytes / wall seconds this run spent
  /// checkpointing. Mirror the telemetry counters opim.snapshot.*.
  uint32_t resumed_from_iteration = 0;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes_written = 0;
  double checkpoint_write_seconds = 0.0;
  /// The i_max bound computed from Eqs. (16)/(17).
  uint32_t i_max = 0;
  /// The thread count actually used (OpimCOptions::num_threads with 0
  /// resolved to the hardware default).
  unsigned num_threads = 1;
  /// Trace of every executed iteration.
  std::vector<OpimCIteration> trace;
  /// Per-k' answers for OpimCOptions::query_ks, in the order requested
  /// (empty when no queries were asked).
  std::vector<OpimCQueryAnswer> queries;
  /// Guardrail outcome (see OpimCGuardrails); defaulted when
  /// OpimCOptions::control was null.
  OpimCGuardrails guardrails;
};

/// Snapshots a RunControl's outcome into the guardrail record (also used
/// by the CLI's online session, which drives OnlineMaximizer directly).
OpimCGuardrails SummarizeGuardrails(const RunControl& control);

/// θ_max of Eq. (16): worst-case RR sets needed for the final iteration's
/// unconditional Lemma 6.1 guarantee at failure budget δ/3.
double OpimCThetaMax(uint32_t n, uint32_t k, double eps, double delta);

/// θ0 of Eq. (17): the starting pool size, θ_max · ε²k/n.
double OpimCTheta0(uint32_t n, uint32_t k, double eps, double delta);

/// Runs OPIM-C on `g`. Requires 1 <= k <= n, ε ∈ (0, 1), δ ∈ (0, 1).
OpimCResult RunOpimC(const Graph& g, DiffusionModel model, uint32_t k,
                     double eps, double delta, const OpimCOptions& options = {});

}  // namespace opim
