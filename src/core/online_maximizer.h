// OnlineMaximizer: the paper's OPIM algorithm (§4, §5).
//
// The maximizer streams random RR sets into two disjoint, evenly sized
// pools R1 (nominators) and R2 (judges). At any pause point, Query() runs
// greedy max-coverage on R1 to nominate a seed set S*, judges it with R2,
// and reports the instance-specific approximation guarantee
//
//     α = σ_l(S*) / σ_upper(S°)          (valid w.p. >= 1 - δ)
//
// with δ split as δ1 = δ2 = δ/2 (near-optimal by Lemma 4.4). The three
// published variants OPIM⁰ / OPIM⁺ / OPIM′ differ only in the upper bound
// (BoundKind); QueryAll() evaluates all three on one greedy run, which is
// what the Figure 2–5 experiments need.
//
// The usage pattern mirrors online query processing: interleave Advance()
// (give the algorithm more time) with Query() (pause and inspect), and stop
// whenever the reported α satisfies you.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bounds/bounds.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "select/selection_state.h"
#include "support/random.h"
#include "support/run_control.h"

namespace opim {

/// Result of pausing the online algorithm and asking for a solution.
struct OnlineSnapshot {
  /// The nominated size-k seed set S*.
  std::vector<NodeId> seeds;
  /// Reported approximation guarantee α ∈ [0, 1].
  double alpha = 0.0;
  /// High-probability lower bound on σ(S*) (Eq. 5).
  double sigma_lower = 0.0;
  /// High-probability upper bound on σ(S°) for the chosen BoundKind.
  double sigma_upper = 0.0;
  /// Coverage of S* in R1 / R2.
  uint64_t lambda1 = 0;
  uint64_t lambda2 = 0;
  /// Pool sizes at query time.
  uint64_t theta1 = 0;
  uint64_t theta2 = 0;
};

/// One greedy run judged under all three bound variants (for experiments
/// that compare OPIM⁰ / OPIM⁺ / OPIM′ on identical RR sets).
struct OnlineSnapshotAll {
  std::vector<NodeId> seeds;
  double sigma_lower = 0.0;
  double alpha_basic = 0.0;     // OPIM⁰
  double alpha_improved = 0.0;  // OPIM⁺
  double alpha_leskovec = 0.0;  // OPIM′
  uint64_t theta_total = 0;     // θ1 + θ2
};

/// Streaming OPIM processor over one graph + diffusion model.
class OnlineMaximizer {
 public:
  /// `delta` is the per-query failure probability (paper default 1/n).
  /// `seed` makes the RR-set stream reproducible.
  OnlineMaximizer(const Graph& g, DiffusionModel model, uint32_t k,
                  double delta, uint64_t seed = 1);

  /// Weighted variant: maximizes the weighted spread
  /// σ_w(S) = Σ_v w_v·Pr[S activates v] via importance-weighted RR roots.
  /// `node_weights` holds one non-negative weight per node (not all
  /// zero); every reported σ/α refers to the weighted objective.
  OnlineMaximizer(const Graph& g, DiffusionModel model, uint32_t k,
                  double delta, std::span<const double> node_weights,
                  uint64_t seed);

  OPIM_DISALLOW_COPY(OnlineMaximizer);

  /// Attaches run guardrails (non-owning, may be nullptr to detach; must
  /// outlive the maximizer while attached). Advance/AdvanceParallel poll
  /// the control every kControlPollStride samples and stop early once it
  /// trips; RunUntilTarget then returns the current snapshot instead of
  /// continuing — the natural anytime pause point of §4. Query() stays
  /// valid on whatever RR sets exist (it requires one set per pool, which
  /// the first Advance provides even when pre-tripped).
  void set_run_control(RunControl* control) { control_ = control; }
  RunControl* run_control() const { return control_; }

  /// Generates `count` additional RR sets, alternating between R1 and R2
  /// so the pools stay evenly sized (§4.1).
  void Advance(uint64_t count);

  /// Multithreaded Advance: generates ceil(count/2) sets into R1 and the
  /// rest into R2 using `num_threads` workers (0 = hardware default).
  /// Deterministic in (constructor seed, call sequence, num_threads) but
  /// produces a *different* stream than serial Advance — don't mix
  /// expectations across the two within one experiment.
  void AdvanceParallel(uint64_t count, unsigned num_threads = 0);

  /// Pauses and derives (S*, α) under the given bound variant.
  /// Requires at least one RR set in each pool.
  OnlineSnapshot Query(BoundKind kind) const;

  /// Like Query(), but for a *sequence* of pause points whose guarantees
  /// must all hold simultaneously: the i-th sequential query spends
  /// failure budget δ/2^i, so by the union bound every returned α is
  /// simultaneously valid with probability >= 1 - δ (the variation
  /// described in §4's Discussions). Each call consumes one step of the
  /// budget; mixing with plain Query() is fine (plain queries don't
  /// consume budget but only carry per-query validity).
  OnlineSnapshot QuerySequential(BoundKind kind);

  /// Sequential queries issued so far via QuerySequential().
  uint32_t sequential_queries_issued() const { return sequential_queries_; }

  /// Pauses and derives S* once, with α under all three bound variants.
  OnlineSnapshotAll QueryAll() const;

  /// Convenience driver: alternates Advance(batch) and Query(kind) until
  /// the reported α reaches `target_alpha` or the total RR-set count
  /// reaches `max_rr_sets` (0 = unbounded — only sensible with an
  /// achievable target). Returns the final snapshot.
  OnlineSnapshot RunUntilTarget(BoundKind kind, double target_alpha,
                                uint64_t batch = 10000,
                                uint64_t max_rr_sets = 0);

  /// Total RR sets generated so far (|R1| + |R2|).
  uint64_t num_rr_sets() const {
    return static_cast<uint64_t>(r1_.num_sets()) + r2_.num_sets();
  }

  /// Total traversal cost γ paid so far (drives the Borgs baseline too).
  uint64_t edges_examined() const {
    return r1_.total_edges_examined() + r2_.total_edges_examined();
  }

  const RRCollection& r1() const { return r1_; }
  const RRCollection& r2() const { return r2_; }
  uint32_t k() const { return k_; }
  double delta() const { return delta_; }

 private:
  const Graph& graph_;
  DiffusionModel model_;
  uint32_t k_;
  double delta_;
  double scale_;  // n, or Σ w_v for the weighted objective
  std::vector<double> node_weights_;  // empty = unit weights
  /// Shared kernel state: built once, borrowed by the serial sampler and
  /// by every AdvanceParallel shard.
  SamplingView sampling_view_;
  AliasSampler root_sampler_;  // weighted roots; empty => uniform
  std::unique_ptr<RRSampler> sampler_;
  Rng rng_;
  /// Shared implementation of Query/QuerySequential at a given per-side
  /// failure budget.
  OnlineSnapshot QueryWithDelta(BoundKind kind, double delta_each) const;

  RRCollection r1_;
  RRCollection r2_;
  /// Persistent selection state across queries: repeated Query() calls
  /// over a growing R1 warm-start CELF from the pool's incrementally
  /// maintained membership counts instead of recounting every posting
  /// (select/selection_state.h). Mutable: queries are logically const —
  /// the state is an execution cache with bit-identical output.
  mutable SelectionState select_state_;
  RunControl* control_ = nullptr;  // non-owning guardrails; see setter
  bool next_to_r1_ = true;     // alternation cursor
  uint32_t sequential_queries_ = 0;
};

}  // namespace opim
