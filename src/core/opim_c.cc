#include "core/opim_c.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "graph/sampling_view.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_sampler.h"
#include "rrset/rr_collection.h"
#include "rrset/snapshot.h"
#include "select/greedy.h"
#include "select/seed_trace.h"
#include "select/selection_state.h"
#include "support/alias_sampler.h"
#include "support/math_util.h"
#include "support/random.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace opim {

double OpimCThetaMax(uint32_t n, uint32_t k, double eps, double delta) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);
  const double ln6d = std::log(6.0 / delta);
  const double lognk = LogBinomial(n, k);
  const double inner = kOneMinusInvE * std::sqrt(ln6d) +
                       std::sqrt(kOneMinusInvE * (lognk + ln6d));
  return 2.0 * n * inner * inner / (eps * eps * k);
}

double OpimCTheta0(uint32_t n, uint32_t k, double eps, double delta) {
  return OpimCThetaMax(n, k, eps, delta) * eps * eps * k / n;
}

OpimCGuardrails SummarizeGuardrails(const RunControl& control) {
  OpimCGuardrails gr;
  gr.stop_reason =
      control.Stopped() ? control.reason() : StopReason::kConverged;
  gr.had_deadline = control.has_deadline();
  if (gr.had_deadline) {
    gr.deadline_slack_seconds = control.deadline_slack_seconds();
  }
  gr.peak_rr_bytes = control.peak_bytes();
  gr.memory_budget_bytes = control.memory_budget_bytes();
  if (control.Stopped()) {
    gr.stop_latency_seconds = control.seconds_since_trip();
  }
  return gr;
}

OpimCResult RunOpimC(const Graph& g, DiffusionModel model, uint32_t k,
                     double eps, double delta, const OpimCOptions& options) {
  const uint32_t n = g.num_nodes();
  OPIM_CHECK_GE(n, 1u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, n);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);

  // Weighted objective: scale W = Σ w_v replaces n, and the trivial
  // optimum lower bound becomes the top-k weight sum (each seed at least
  // activates itself) instead of k. Unit weights recover Eqs. (16)/(17).
  double scale = n;
  double opt_lb = k;
  const bool weighted = !options.node_weights.empty();
  if (weighted) {
    OPIM_CHECK_EQ(options.node_weights.size(), n);
    scale = 0.0;
    for (double w : options.node_weights) {
      OPIM_CHECK_GE(w, 0.0);
      scale += w;
    }
    OPIM_CHECK_MSG(scale > 0.0, "node weights must not all be zero");
    std::vector<double> sorted = options.node_weights;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end(),
                     std::greater<double>());
    opt_lb = 0.0;
    for (uint32_t i = 0; i < k; ++i) opt_lb += sorted[i];
    OPIM_CHECK_MSG(opt_lb > 0.0, "top-k node weights must be positive");
  }
  const double ln6d = std::log(6.0 / delta);
  const double lm_inner = kOneMinusInvE * std::sqrt(ln6d) +
                          std::sqrt(kOneMinusInvE * (LogBinomial(n, k) + ln6d));
  const double theta_max =
      2.0 * scale * lm_inner * lm_inner / (eps * eps * opt_lb);
  const uint64_t theta0 = std::max<uint64_t>(
      1, CeilToU64(theta_max * eps * eps * opt_lb / scale));
  const uint32_t i_max = std::max<uint32_t>(
      1, CeilLog2(CeilToU64(theta_max / static_cast<double>(theta0))));
  const double delta_iter = delta / (3.0 * i_max);  // δ1 = δ2 = δ/(3·i_max)
  const double target = 1.0 - 1.0 / std::exp(1.0) - eps;

  const unsigned num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);
  OPIM_TM_COUNTER_ADD("opim.opimc.runs", 1);
  OPIM_LOG(kInfo) << "opim-c: n=" << n << " k=" << k << " eps=" << eps
                  << " delta=" << delta << " theta0=" << theta0
                  << " i_max=" << i_max << " threads=" << num_threads;

  // One pool for the whole run: every generate call and every ingestion
  // batch's index rebuild reuses the same workers instead of spawning and
  // joining a fresh pool per doubling. Serial runs skip the pool entirely.
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  // One sampling view for the whole run: every doubling of both pools
  // borrows the same precomputed kernel state (quantized thresholds /
  // alias arena) instead of rebuilding it per generate call.
  const SamplingView sampling_view(g, SamplingViewPartsFor(model), pool.get(),
                                   {.seal_arena = options.view_arena});

  // Generation goes through ParallelGenerate even in the serial case so
  // the RR stream depends only on (seed, num_threads); each batch gets a
  // distinct derived seed. The speculative path below *peeks* the next two
  // batch seeds without consuming them, and bumps the counter only when a
  // staged doubling is actually merged — so the RR stream stays
  // byte-identical whether a batch was sampled eagerly or speculatively.
  // `pending_generate_seconds` accumulates the wall time of every
  // generate() since the last iteration record, so the θ0 fill and each
  // doubling land on the iteration that consumes them.
  uint64_t batch_counter = 0;
  double pending_generate_seconds = 0.0;
  auto batch_seed = [&options](uint64_t counter) {
    uint64_t state = options.seed ^ (0x6f70634bULL + counter);
    return SplitMix64(state);
  };
  auto generate = [&](RRCollection* rr, uint64_t count, RunControl* ctl) {
    OPIM_TR_SPAN1("generate", "opimc", "count", count);
    Stopwatch watch;
    ParallelGenerate(g, model, rr, count, batch_seed(++batch_counter),
                     num_threads, options.node_weights, pool.get(),
                     &sampling_view, ctl);
    pending_generate_seconds += watch.ElapsedSeconds();
  };
  // Weighted roots for the speculative samplers: built once per run
  // (eager generate calls build their own inside ParallelGenerate).
  AliasSampler spec_root;
  if (weighted) spec_root.Build(options.node_weights);
  const AliasSampler* const spec_root_ptr =
      spec_root.empty() ? nullptr : &spec_root;
  const bool pipelined = options.pipeline && pool != nullptr;
  RunControl* const control = options.control;
  // Engine pools never answer SetCost (only aggregate γ), so they drop
  // the 8 bytes/set cost column on top of the compressed member storage.
  const RRStoreOptions store{.retain_set_costs = false};
  RRCollection r1(n, store), r2(n, store);

  // Resume: adopt the snapshot's pools and loop position. The RR stream
  // is a pure function of (seed, num_threads, batch_counter), and CELF
  // / the bounds / the index rebuild are deterministic, so continuing
  // from an iteration-boundary snapshot is bit-identical to never
  // having stopped. A parameter mismatch would silently change the
  // algorithm the certificate describes — refuse loudly instead (the
  // CLI pre-validates the same facts with a clean error message).
  uint32_t start_iter = 1;
  uint32_t resumed_from = 0;
  if (options.resume != nullptr) {
    RRPoolSnapshot& snap = *options.resume;
    OPIM_CHECK_MSG(snap.run.graph_nodes == n && snap.run.graph_edges == g.num_edges(),
                   "resume snapshot was written for a different graph");
    OPIM_CHECK_MSG(snap.run.weights_checksum ==
                       SnapshotWeightsChecksum(options.node_weights),
                   "resume snapshot was written with different node weights");
    OPIM_CHECK_MSG(snap.run.run_seed == options.seed &&
                       snap.run.num_threads == num_threads,
                   "resume snapshot was written with a different RR stream "
                   "identity (seed, threads)");
    OPIM_CHECK_MSG(snap.run.k == k && snap.run.eps == eps &&
                       snap.run.delta == delta,
                   "resume snapshot was written with different (k, eps, delta)");
    OPIM_CHECK_MSG(snap.run.bound == static_cast<uint32_t>(options.bound) &&
                       snap.run.model == static_cast<uint32_t>(model),
                   "resume snapshot was written with a different bound/model");
    OPIM_CHECK_EQ(snap.r1.num_nodes(), n);
    OPIM_CHECK_EQ(snap.r2.num_nodes(), n);
    r1 = std::move(snap.r1);
    r2 = std::move(snap.r2);
    batch_counter = snap.run.batch_counter;
    start_iter = std::clamp<uint32_t>(snap.run.next_iteration, 1, i_max);
    resumed_from = start_iter;
    if (control != nullptr) control->RecordPeakBytes(snap.run.peak_rr_bytes);
    OPIM_TM_COUNTER_ADD("opim.snapshot.resumes", 1);
    OPIM_LOG(kInfo) << "opim-c: resumed from snapshot at iteration "
                    << start_iter << " (theta1=" << r1.num_sets()
                    << ", batch_counter=" << batch_counter << ")";
  }
  if (!options.spill_dir.empty()) {
    for (RRCollection* rr : {&r1, &r2}) {
      const Status armed = rr->EnableSpill({.dir = options.spill_dir});
      if (!armed.ok()) {
        // Fully-resident is always a valid state: the run proceeds and a
        // memory budget (if armed) stops it the classic way instead.
        OPIM_LOG(kWarn) << "opim-c: spill tier unavailable: "
                        << armed.ToString();
        break;
      }
    }
  }
  // Out-of-core policy, checked at iteration boundaries where the exact
  // footprint is known: once the pools cross half of an armed memory
  // budget, write cold compressed chunks to the spill file until each
  // pool keeps at most a quarter of its member bytes resident. The
  // target scales with the pool — not the budget — so eviction bites
  // even when the unspillable index dominates the footprint, and the
  // sticky target keeps CELF's fault-ins from re-accumulating the whole
  // pool. CELF's recount phase faults chunks back in on demand, so the
  // seed stream is untouched. A spill I/O failure trips the control
  // with the distinct kSpillFailure reason; the run then degrades
  // exactly like a memory-budget stop.
  auto maybe_spill = [&] {
    if (control == nullptr || control->Stopped()) return;
    const uint64_t budget = control->memory_budget_bytes();
    if (budget == 0) return;
    if (r1.MemoryUsage() + r2.MemoryUsage() <= budget / 2) return;
    for (RRCollection* rr : {&r1, &r2}) {
      if (!rr->spill_enabled()) continue;
      const Result<uint64_t> spilled =
          rr->SpillColdChunks(rr->CompressedMemberBytes() / 4);
      if (!spilled.ok()) {
        OPIM_LOG(kError) << "opim-c: spill failed: "
                         << spilled.status().ToString();
        control->TripSpillFailure();
        return;
      }
    }
  };
  if (options.resume == nullptr) {
    generate(&r1, theta0, control);
    generate(&r2, theta0, control);
  } else {
    // Resumed pools carry no index (the snapshot stores only the
    // canonical chunk runs); rebuild it eagerly on the run pool so the
    // first CELF pass starts from the same state a live run would have.
    r1.EnsureIndex(pool.get());
    r2.EnsureIndex(pool.get());
  }

  // Anytime floor: if a guardrail tripped before (or during) the θ0 fill
  // and left a pool empty, the bound machinery below has nothing to
  // evaluate. One uncontrolled RR set per empty pool keeps every exit path
  // on the normal Eq. (5)/(13) certificate — greedy pads to k seeds and
  // both σ estimates stay finite. Untripped runs never enter this branch,
  // so they remain byte-identical to control == nullptr.
  if (control != nullptr && control->Stopped()) {
    for (RRCollection* rr : {&r1, &r2}) {
      if (rr->num_sets() == 0) generate(rr, 1, nullptr);
    }
  }

  OpimCResult result;
  result.i_max = i_max;
  result.num_threads = num_threads;
  result.resumed_from_iteration = resumed_from;
  const bool query_mode = !options.query_ks.empty();
  for (uint32_t k_prime : options.query_ks) {
    OPIM_CHECK_MSG(k_prime >= 1 && k_prime <= k,
                   "query_ks entries must satisfy 1 <= k' <= k");
  }
  // The Eq. (10) trace is needed for the improved/Leskovec bounds, and —
  // prefix-complete — for any query answering.
  const bool needs_trace = options.bound != BoundKind::kBasic || query_mode;

  // Persistent cross-iteration selection state: CELF warm-starts every
  // doubling (and a resumed run's first selection rebuilds it from the
  // restored pools) with bit-identical output; see selection_state.h.
  // The SeedTrace is re-armed per traced selection, so the one the
  // exiting iteration recorded is the one queries are answered from.
  SelectionState select_state;
  SeedTrace seed_trace;

  // Periodic checkpointing: `write_checkpoint(next, clean)` captures
  // the pools plus the exact loop position needed to re-enter iteration
  // `next` — the batch counter (the whole sampler state) and the run
  // identity — and publishes it atomically, so the file at
  // `checkpoint_dir` is always the last *durable* snapshot no matter
  // when the process dies. `clean` records whether the state is an
  // exact iteration boundary (periodic writes, boundary-poll trips) or
  // was captured after a trip interrupted generation mid-doubling —
  // resume is deterministic either way, but only clean snapshots are
  // guaranteed bit-identical to the uninterrupted schedule.
  const bool checkpointing = !options.checkpoint_dir.empty();
  const uint32_t checkpoint_every =
      std::max<uint32_t>(1, options.checkpoint_every_iters);
  const std::string checkpoint_path =
      options.checkpoint_dir + "/opimc.opimss";
  auto write_checkpoint = [&](uint32_t next_iteration, bool clean) {
    OPIM_TR_SPAN1("checkpoint", "opimc", "iter", next_iteration);
    Stopwatch watch;
    SnapshotRunState rs;
    rs.run_seed = options.seed;
    rs.batch_counter = batch_counter;
    rs.peak_rr_bytes = control != nullptr ? control->peak_bytes() : 0;
    rs.graph_nodes = n;
    rs.graph_edges = g.num_edges();
    rs.weights_checksum = SnapshotWeightsChecksum(options.node_weights);
    rs.eps = eps;
    rs.delta = delta;
    rs.next_iteration = next_iteration;
    rs.num_threads = num_threads;
    rs.k = k;
    rs.bound = static_cast<uint32_t>(options.bound);
    rs.model = static_cast<uint32_t>(model);
    rs.clean_boundary = clean ? 1 : 0;
    const Result<uint64_t> written =
        SaveSnapshot(rs, r1, r2, checkpoint_path);
    const double seconds = watch.ElapsedSeconds();
    if (!written.ok()) {
      // Best-effort by contract: a failing checkpoint device must not
      // take down a healthy run — the operator just loses resumability.
      OPIM_LOG(kWarn) << "opim-c: checkpoint write failed: "
                      << written.status().ToString();
      OPIM_TM_COUNTER_ADD("opim.snapshot.write_failures", 1);
      return;
    }
    ++result.checkpoints_written;
    result.checkpoint_bytes_written += written.ValueOrDie();
    result.checkpoint_write_seconds += seconds;
    OPIM_TM_COUNTER_ADD("opim.snapshot.writes", 1);
    OPIM_TM_COUNTER_ADD("opim.snapshot.bytes_written", written.ValueOrDie());
    OPIM_TM_HISTOGRAM_RECORD("opim.snapshot.write_us", seconds * 1e6);
  };

  for (uint32_t i = start_iter; i <= i_max; ++i) {
    OPIM_TR_SPAN2("iteration", "opimc", "iter", i, "theta1", r1.num_sets());
    OPIM_TM_COUNTER_ADD("opim.opimc.iterations", 1);
    // Top-of-iteration checkpoint: the pools hold complete doublings and
    // the batch counter is consistent, so this is the clean boundary the
    // resume bit-identity guarantee is stated for. Skipped when a trip
    // already happened mid-generation (the pools may hold a partial
    // doubling; the on-trip write below captures that state instead) and
    // at a resumed run's own re-entry iteration (that snapshot is
    // already on disk).
    if (checkpointing && (i - start_iter) % checkpoint_every == 0 &&
        i != resumed_from && !(control != nullptr && control->Stopped())) {
      write_checkpoint(i, /*clean=*/true);
    }
    // Footprint peaks right after a doubling lands — shed cold chunks
    // before CELF touches the pools, not after.
    maybe_spill();
    Stopwatch phase_watch;

    // Pipelined schedule: CELF parallelizes its initial marginal-gain pass
    // on the run pool, and — right after that pass, the last pool use
    // inside selection — launches the *next* doubling's two batches as
    // speculative staging work on the same workers. The serial recount
    // phase of CELF, Λ2, and the bounds then overlap with sampling. The
    // staged batches use exactly the seeds the eager schedule would derive
    // (batch_counter + 1, + 2, consumed only on merge), so the RR stream
    // is byte-identical; only the final iteration's speculation is wasted.
    // Declaration order matters: spec_group's destructor joins the group's
    // tasks, so it must precede the stages it samples into on unwind.
    std::unique_ptr<StagedGeneration> spec1, spec2;
    std::unique_ptr<TaskGroup> spec_group;
    CelfOptions celf_options;
    celf_options.pool = pool.get();
    if (options.incremental_selection) celf_options.state = &select_state;
    if (query_mode) celf_options.seed_trace = &seed_trace;
    if (pipelined && i < i_max &&
        !(control != nullptr && control->Stopped())) {
      celf_options.after_initial_gains = [&] {
        // Guardrail metering: each stage polls with both frozen pools
        // plus its own compressed staging bytes (published in RunShard) —
        // the same running-estimate contract as eager generation.
        const uint64_t spec_base =
            control != nullptr ? r1.MemoryUsage() + r2.MemoryUsage() : 0;
        const uint64_t c1 = r1.num_sets();
        const uint64_t c2 = r2.num_sets();
        spec1 = std::make_unique<StagedGeneration>(
            sampling_view, model, c1, batch_seed(batch_counter + 1),
            GenerateShardCount(c1, num_threads), spec_root_ptr, control,
            spec_base, /*speculative=*/true);
        spec2 = std::make_unique<StagedGeneration>(
            sampling_view, model, c2, batch_seed(batch_counter + 2),
            GenerateShardCount(c2, num_threads), spec_root_ptr, control,
            spec_base, /*speculative=*/true);
        // A TaskGroup (not the pool's global barrier) tracks the
        // speculative tasks: their completion — and any exception they
        // raise — stays out of foreground Wait()/ParallelFor calls that
        // CoverBitset kernels or the index merge may issue meanwhile.
        spec_group = std::make_unique<TaskGroup>(pool.get());
        for (unsigned s = 0; s < spec1->shards(); ++s) {
          spec_group->Submit([&stage = *spec1, s] { stage.RunShard(s); });
        }
        for (unsigned s = 0; s < spec2->shards(); ++s) {
          spec_group->Submit([&stage = *spec2, s] { stage.RunShard(s); });
        }
      };
    }
    GreedyResult greedy = SelectGreedyCelf(r1, k, needs_trace, celf_options);
    const double greedy_seconds = phase_watch.ElapsedSeconds();

    phase_watch.Restart();
    const uint64_t lambda2 = r2.CoverageOf(greedy.seeds);

    OpimCIteration iter;
    iter.theta1 = r1.num_sets();
    iter.sigma_lower =
        SigmaLower(lambda2, r2.num_sets(), scale, delta_iter);
    iter.sigma_upper =
        SigmaUpper(options.bound, greedy, r1.num_sets(), scale, delta_iter);
    iter.alpha = ApproxRatio(iter.sigma_lower, iter.sigma_upper);
    iter.generate_seconds = pending_generate_seconds;
    pending_generate_seconds = 0.0;
    iter.greedy_seconds = greedy_seconds;
    iter.bounds_seconds = phase_watch.ElapsedSeconds();
    iter.rr_bytes = r1.MemoryUsage() + r2.MemoryUsage() +
                    sampling_view.MemoryFootprintBytes();
    iter.rr_compressed_bytes =
        r1.CompressedMemberBytes() + r2.CompressedMemberBytes();
    OPIM_TM_HISTOGRAM_RECORD("opim.opimc.phase.generate_us",
                             iter.generate_seconds * 1e6);
    OPIM_TM_HISTOGRAM_RECORD("opim.opimc.phase.greedy_us",
                             iter.greedy_seconds * 1e6);
    OPIM_TM_HISTOGRAM_RECORD("opim.opimc.phase.bounds_us",
                             iter.bounds_seconds * 1e6);
    OPIM_LOG(kDebug) << "opim-c: iter=" << i << " theta1=" << iter.theta1
                     << " alpha=" << iter.alpha
                     << " sigma_l=" << iter.sigma_lower
                     << " sigma_u=" << iter.sigma_upper;
    result.trace.push_back(iter);
    result.iterations = i;

    // Iteration-boundary guardrail check with the *exact* RR footprint
    // (generation polls only see a running estimate). A trip here — or one
    // carried out of the preceding generate calls — finalizes with this
    // iteration's seeds and α: the bounds were just evaluated on whatever
    // RR sets exist, so the certificate is valid at this pause point.
    const bool stopped_pre_boundary = control != nullptr && control->Stopped();
    const bool stopped = control != nullptr && control->Poll(iter.rr_bytes);
    const bool exiting = iter.alpha >= target || i == i_max || stopped;

    const bool speculated = spec_group != nullptr;
    if (speculated) {
      if (exiting) {
        // The eager schedule would never have sampled these batches, so
        // their outcome — including a speculative worker exception — must
        // not affect the result: abort, join, swallow, count the waste.
        OPIM_TR_SPAN1("speculate_discard", "opimc", "iter", i);
        spec1->Abort();
        spec2->Abort();
        try {
          spec_group->Wait();
        } catch (...) {
        }
        const uint64_t discarded = spec1->TotalSets() + spec2->TotalSets();
        result.speculative_sets_discarded += discarded;
        OPIM_TM_COUNTER_ADD("opim.rrset.speculative_sets_discarded",
                            discarded);
      } else {
        // The staged batches *are* the doubling (Line 9 of Algorithm 2):
        // consume their two peeked seeds and ingest. A speculative failure
        // here is exactly a generate failure on the eager schedule —
        // degrade under a control, propagate without one.
        OPIM_TR_SPAN1("speculate_merge", "opimc", "iter", i);
        Stopwatch merge_watch;
        try {
          spec_group->Wait();
        } catch (...) {
          if (control == nullptr) throw;
          control->TripWorkerFailure();
        }
        batch_counter += 2;
        const uint64_t used = spec1->TotalSets() + spec2->TotalSets();
        result.speculative_sets_used += used;
        OPIM_TM_COUNTER_ADD("opim.rrset.speculative_sets_used", used);
        IngestStaged(spec1.get(), &r1, pool.get());
        IngestStaged(spec2.get(), &r2, pool.get());
        pending_generate_seconds += merge_watch.ElapsedSeconds();
      }
      spec_group.reset();
      spec1.reset();
      spec2.reset();
    }

    if (exiting) {
      // Checkpoint-on-trip: a deadline / memory-budget / SIGINT stop is
      // exactly the case where the operator wants to continue later, so
      // capture the pause point before finalizing. A trip at the
      // boundary poll itself leaves clean iteration-boundary state; one
      // carried out of the preceding generation may leave a partial
      // doubling (still resumable and deterministic, flagged
      // clean_boundary=0). Worker/spill failures are not checkpointed —
      // their pool state reflects the failure being reported.
      if (checkpointing && stopped) {
        const StopReason why = control->reason();
        if (why == StopReason::kDeadline || why == StopReason::kMemoryBudget ||
            why == StopReason::kCancelled) {
          write_checkpoint(i, /*clean=*/!stopped_pre_boundary);
        }
      }
      if (query_mode) {
        // Answer every requested k' from the exiting iteration's
        // prefix-complete trace: one incremental judge-coverage pass,
        // then pure bound arithmetic per query — no re-selection, no
        // further pool scans. Evaluated at the final pools with the same
        // δ_iter the run's own certificate used, so the k' = k answer
        // reproduces iter.alpha exactly.
        OPIM_TR_SPAN1("query_answers", "opimc", "count",
                      options.query_ks.size());
        seed_trace.SetBoundParams(r1.num_sets(), r2.num_sets(), scale,
                                  delta_iter, delta_iter);
        seed_trace.AttributeJudgeCoverage(r2);
        result.queries.reserve(options.query_ks.size());
        for (uint32_t k_prime : options.query_ks) {
          const TraceQueryBounds qb =
              BoundsAt(seed_trace, options.bound, k_prime);
          OpimCQueryAnswer answer;
          answer.k = k_prime;
          answer.alpha = qb.alpha;
          answer.sigma_lower = qb.sigma_lower;
          answer.sigma_upper = qb.sigma_upper;
          const std::span<const NodeId> prefix = seed_trace.SeedsAt(k_prime);
          answer.seeds.assign(prefix.begin(), prefix.end());
          result.queries.push_back(std::move(answer));
        }
      }
      result.seeds = std::move(greedy.seeds);
      result.alpha = iter.alpha;
      break;
    }
    if (!speculated) {
      // Eager doubling of both pools (Line 9 of Algorithm 2) — the only
      // path on serial runs, and the fallback when no speculation was
      // launched this iteration.
      generate(&r1, r1.num_sets(), control);
      generate(&r2, r2.num_sets(), control);
    }
  }

  result.num_rr_sets =
      static_cast<uint64_t>(r1.num_sets()) + r2.num_sets();
  result.total_rr_size = r1.total_size() + r2.total_size();
  result.rr_compressed_bytes =
      r1.CompressedMemberBytes() + r2.CompressedMemberBytes();
  result.rr_raw_member_bytes = r1.RawMemberBytes() + r2.RawMemberBytes();
  const RRSpillStats spill1 = r1.SpillStats();
  const RRSpillStats spill2 = r2.SpillStats();
  result.spill_chunks_spilled =
      spill1.chunks_spilled + spill2.chunks_spilled;
  result.spill_chunks_faulted =
      spill1.chunks_faulted + spill2.chunks_faulted;
  result.spilled_bytes = r1.SpilledBytes() + r2.SpilledBytes();
  if (control != nullptr) {
    result.guardrails = SummarizeGuardrails(*control);
    const OpimCGuardrails& gr = result.guardrails;
    if (control->Stopped()) {
      OPIM_LOG(kInfo) << "opim-c: guardrail stop reason="
                      << StopReasonName(gr.stop_reason)
                      << " latency_s=" << gr.stop_latency_seconds;
    }
    // The telemetry counter macro caches a handle per literal name, so the
    // reason -> name mapping must be spelled out per case.
    switch (gr.stop_reason) {
      case StopReason::kConverged:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.converged", 1);
        break;
      case StopReason::kDeadline:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.deadline", 1);
        break;
      case StopReason::kMemoryBudget:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.memory_budget", 1);
        break;
      case StopReason::kCancelled:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.cancelled", 1);
        break;
      case StopReason::kWorkerFailure:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.worker_failure", 1);
        break;
      case StopReason::kSpillFailure:
        OPIM_TM_COUNTER_ADD("opim.runctl.stop.spill_failure", 1);
        break;
    }
  }
  OPIM_TM_STMT({
    // Lifetime stats of the run-owned pool, reported once: tasks_run
    // growing across doublings under a single pool is the observable
    // signature of worker reuse (no per-call pool churn).
    if (pool != nullptr) {
      const ThreadPoolStats stats = pool->Stats();
      OPIM_TM_COUNTER_ADD("opim.pool.tasks_run", stats.tasks_run);
      OPIM_TM_COUNTER_ADD("opim.pool.queue_wait_us", stats.queue_wait_us);
      OPIM_TM_COUNTER_ADD("opim.pool.idle_wait_us", stats.idle_wait_us);
    }
  });
  OPIM_LOG(kInfo) << "opim-c: done alpha=" << result.alpha
                  << " iterations=" << result.iterations
                  << " rr_sets=" << result.num_rr_sets;
  return result;
}

}  // namespace opim
