#include "select/selection_state.h"

#include <stdexcept>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "support/fault_inject.h"

namespace opim {

void SelectionState::SyncGains(const RRCollection& collection,
                               std::vector<uint64_t>* gains) {
  OPIM_TM_SCOPED_TIMER("opim.select.warm_sync_us");
  OPIM_TR_SPAN2("warm_sync", "select", "theta", collection.num_sets(), "warm",
                WarmFor(collection) ? 1 : 0);
  const bool warm = WarmFor(collection);
  if (!warm && OPIM_FAULT_POINT("select.state_rebuild_throw")) {
    throw std::runtime_error(
        "injected fault: selection-state rebuild failure "
        "(select.state_rebuild_throw)");
  }
  if (warm) {
    OPIM_TM_COUNTER_ADD("opim.select.warm_start_hits", 1);
    OPIM_TM_COUNTER_ADD("opim.select.postings_delta_ingested",
                        collection.total_size() - mass_accounted_);
  }
  // The counts are exact memberships (sets are de-duplicated at encode
  // time), so this is the same vector the cold CoveringCount pass would
  // produce — just obtained in O(n) plus whatever delta the collection
  // still had to fold, instead of O(Σ|R|) every iteration.
  const std::span<const uint64_t> counts = collection.MemberCounts();
  gains->assign(counts.begin(), counts.end());
  collection_ = &collection;
  sets_accounted_ = collection.num_sets();
  mass_accounted_ = collection.total_size();
}

CoverBitset* SelectionState::PrepareCovered(uint64_t num_bits) {
  if (num_bits < covered_.num_bits()) {
    // A smaller pool means a different collection (pools only grow);
    // Reset still reuses the arena's capacity.
    covered_.Reset(num_bits);
  } else {
    covered_.Extend(num_bits);
    covered_.ClearAll();
  }
  return &covered_;
}

void SelectionState::Invalidate() {
  collection_ = nullptr;
  sets_accounted_ = 0;
  mass_accounted_ = 0;
}

}  // namespace opim
