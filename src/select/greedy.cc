#include "select/greedy.h"

#include <algorithm>
#include <queue>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/cover_bitset.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Below this much total posting mass the parallel initial-gain pass
/// loses to fan-out overhead.
constexpr uint64_t kParallelInitMinWork = 1u << 16;

/// Fills `gains[v] = CoveringCount(v)` for every node, over node ranges
/// on `pool` when the posting mass warrants it; per-node results are
/// independent, so the output is identical for any worker count. Runs
/// `after` (if set) once the pass — the only pool use in CELF — is done.
void InitialGains(const RRCollection& collection, const CelfOptions& options,
                  std::vector<uint64_t>* gains) {
  OPIM_TR_SPAN1("celf_init", "select", "n", collection.num_nodes());
  OPIM_TM_SCOPED_TIMER("opim.select.celf_init_us");
  const uint32_t n = collection.num_nodes();
  gains->resize(n);
  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->num_threads() > 1 && n > 0 &&
      collection.total_size() >= kParallelInitMinWork) {
    // One serial touch first: Covering() lazily rebuilds a stale index,
    // which must not race across workers.
    (*gains)[0] = collection.CoveringCount(0);
    const uint32_t ranges = std::min<uint32_t>(n, pool->num_threads() * 4);
    pool->ParallelFor(ranges, [&](uint64_t r) {
      const uint32_t lo =
          std::max<uint32_t>(1, static_cast<uint32_t>(uint64_t{n} * r / ranges));
      const uint32_t hi =
          static_cast<uint32_t>(uint64_t{n} * (r + 1) / ranges);
      for (NodeId v = lo; v < hi; ++v) {
        (*gains)[v] = collection.CoveringCount(v);
      }
    });
  } else {
    for (NodeId v = 0; v < n; ++v) {
      (*gains)[v] = collection.CoveringCount(v);
    }
  }
  if (options.after_initial_gains) options.after_initial_gains();
}

/// Sum of the k largest values of `scratch` (consumed: partially sorted).
/// Zeros never contribute, so callers pass only nonzero entries.
uint64_t TopKSumOf(std::vector<uint64_t>* scratch, uint32_t k) {
  if (k == 0 || scratch->empty()) return 0;
  uint64_t total = 0;
  if (k >= scratch->size()) {
    for (uint64_t c : *scratch) total += c;
    return total;
  }
  std::nth_element(scratch->begin(), scratch->begin() + (k - 1),
                   scratch->end(), std::greater<uint64_t>());
  for (uint32_t i = 0; i < k; ++i) total += (*scratch)[i];
  return total;
}

/// Sum of the k largest values in `counts`: copies only the nonzero
/// entries into `scratch` (partial copy — the pre-rework version copied
/// the whole n-sized vector per pick) and partial-sorts those.
uint64_t TopKSum(const std::vector<uint64_t>& counts, uint32_t k,
                 std::vector<uint64_t>* scratch) {
  if (k == 0 || counts.empty()) return 0;
  scratch->clear();
  for (uint64_t c : counts) {
    if (c > 0) scratch->push_back(c);
  }
  return TopKSumOf(scratch, k);
}

/// Appends the smallest-id nodes not yet selected until `seeds` has k
/// entries (used when coverage saturates before k picks).
void FillWithUnselected(uint32_t n, uint32_t k,
                        const std::vector<char>& selected,
                        std::vector<NodeId>* seeds) {
  for (NodeId v = 0; v < n && seeds->size() < k; ++v) {
    if (!selected[v]) seeds->push_back(v);
  }
}

/// Lazy-forward queue entry: a (possibly stale) upper bound on a node's
/// marginal gain. Smaller node id wins ties so CELF's pick order matches
/// SelectGreedy's smallest-id-argmax rule exactly.
struct CelfEntry {
  uint64_t gain;
  NodeId node;
  uint32_t round;  // selection round the gain was computed in
  bool operator<(const CelfEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return node > other.node;
  }
};

/// Marks every RR set containing `v` covered and calls `fn(RRId)` once
/// for each set that was not already covered (ascending ids — identical
/// traversal order for both posting representations).
template <typename Fn>
void MarkCoveredBy(const RRCollection& collection, NodeId v,
                   CoverBitset* covered, Fn&& fn) {
  const RRCollection::CoverPostings p = collection.Covering(v);
  ForEachNewlyCoveredIds(p.ids, covered->words(), fn);
  ForEachNewlyCoveredBlocks(p.words, p.masks, covered->words(), fn);
}

}  // namespace

GreedyResult SelectGreedy(const RRCollection& collection, uint32_t k,
                          bool with_trace) {
  OPIM_TR_SPAN2("greedy", "select", "theta", collection.num_sets(), "k", k);
  OPIM_TM_SCOPED_TIMER("opim.select.greedy_us");
  OPIM_TM_COUNTER_ADD("opim.select.greedy_runs", 1);
  const uint32_t n = collection.num_nodes();
  const uint32_t theta = collection.num_sets();
  k = std::min(k, n);

  GreedyResult result;
  result.seeds.reserve(k);

  std::vector<uint64_t> counts(n, 0);  // Λ(v | S_i*) for the current prefix
  for (NodeId v = 0; v < n; ++v) {
    counts[v] = collection.CoveringCount(v);
  }
  CoverBitset covered;
  covered.Reset(theta);
  std::vector<char> selected(n, 0);
  std::vector<uint64_t> scratch;

  if (with_trace) {
    result.coverage_at.reserve(k + 1);
    result.topk_marginal_at.reserve(k + 1);
  }

  uint64_t coverage = 0;
  uint64_t cover_updates = 0;  // decrements applied to `counts`
  for (uint32_t i = 0; i < k; ++i) {
    if (with_trace) {
      result.coverage_at.push_back(coverage);
      result.topk_marginal_at.push_back(TopKSum(counts, k, &scratch));
    }

    // Argmax of marginal coverage; smallest id wins ties (determinism).
    NodeId best = kInvalidNode;
    uint64_t best_count = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!selected[v] && counts[v] > best_count) {
        best = v;
        best_count = counts[v];
      }
    }
    if (best == kInvalidNode) break;  // all RR sets covered

    selected[best] = 1;
    result.seeds.push_back(best);
    coverage += best_count;
    // Mark newly covered sets; every co-member loses one unit of marginal.
    MarkCoveredBy(collection, best, &covered, [&](RRId id) {
      collection.ForEachMember(id, [&](NodeId w) {
        ++cover_updates;
        --counts[w];
      });
    });
    OPIM_DCHECK_EQ(counts[best], 0u);
  }

  if (with_trace) {
    // Record the state after the final pick too (prefix i = |seeds|); pad
    // to k + 1 entries if selection stopped early (coverage saturated:
    // marginals are all zero from here on).
    result.coverage_at.push_back(coverage);
    result.topk_marginal_at.push_back(TopKSum(counts, k, &scratch));
    while (result.coverage_at.size() < static_cast<size_t>(k) + 1) {
      result.coverage_at.push_back(coverage);
      result.topk_marginal_at.push_back(0);
    }
  }

  OPIM_TM_COUNTER_ADD("opim.select.cover_updates", cover_updates);
  FillWithUnselected(n, k, selected, &result.seeds);
  result.coverage = coverage;
  return result;
}

GreedyResult SelectGreedyCelf(const RRCollection& collection, uint32_t k,
                              bool with_trace, const CelfOptions& options) {
  OPIM_TR_SPAN2("celf", "select", "theta", collection.num_sets(), "k", k);
  OPIM_TM_SCOPED_TIMER("opim.select.celf_us");
  OPIM_TM_COUNTER_ADD("opim.select.celf_runs", 1);
  OPIM_TM_GAUGE_SET("opim.select.simd_dispatch",
                    EffectiveCoverageSimd() == SimdMode::kAvx2 ? 2 : 1);
  const uint32_t n = collection.num_nodes();
  const uint32_t theta = collection.num_sets();
  k = std::min(k, n);

  GreedyResult result;
  result.seeds.reserve(k);
  CoverBitset covered;
  covered.Reset(theta);
  std::vector<char> selected(n, 0);

  uint64_t coverage = 0;
  uint32_t round = 0;
  uint64_t pops = 0;
  uint64_t rescans = 0;
  uint64_t words_scanned = 0;  // bitset words the counting kernels touched

  // Initial marginal gains Λ({v}) for every node — parallel over node
  // ranges when options.pool is set (see InitialGains); everything after
  // this pass is serial and bit-identical to the pool-less path.
  std::vector<uint64_t> gains;
  InitialGains(collection, options, &gains);

  if (!with_trace) {
    // Classic CELF: no marginal bookkeeping at all — a stale entry's gain
    // is recomputed on demand by intersecting the node's postings with
    // the uncovered bitset (whole 64-bit words; AVX2 when dispatched).
    // O(n) heap build (make_heap via the container ctor) instead of n
    // pushes; pop order — and therefore the seed set — only depends on
    // the comparator, not the heap's internal layout.
    std::vector<CelfEntry> entries;
    entries.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      entries.push_back({gains[v], v, 0});
    }
    std::priority_queue<CelfEntry> queue(std::less<CelfEntry>{},
                                         std::move(entries));
    auto fresh_gain = [&](NodeId v) {
      const RRCollection::CoverPostings p = collection.Covering(v);
      words_scanned += p.ids.size() + p.words.size();
      return CountUncoveredIds(p.ids, covered.words()) +
             CountUncoveredBlocks(p.words, p.masks, covered.words());
    };
    while (result.seeds.size() < k && !queue.empty()) {
      CelfEntry top = queue.top();
      queue.pop();
      ++pops;
      if (selected[top.node]) continue;
      if (top.round != round) {
        // Stale: recompute (submodularity guarantees it only shrinks).
        top.gain = fresh_gain(top.node);
        top.round = round;
        queue.push(top);
        ++rescans;
        continue;
      }
      if (top.gain == 0) break;  // coverage saturated
      selected[top.node] = 1;
      result.seeds.push_back(top.node);
      coverage += top.gain;
      MarkCoveredBy(collection, top.node, &covered, [](RRId) {});
      ++round;
    }
    OPIM_TM_COUNTER_ADD("opim.select.celf_pops", pops);
    OPIM_TM_COUNTER_ADD("opim.select.celf_rescans", rescans);
    OPIM_TM_COUNTER_ADD("opim.select.words_scanned", words_scanned);
    FillWithUnselected(n, k, selected, &result.seeds);
    result.coverage = coverage;
    return result;
  }

  // Trace mode (what OPIM⁺'s Eq. (10) bound consumes): maintain the exact
  // marginals Λ(v | S_i*) like SelectGreedy — a stale queue entry then
  // refreshes with an O(1) lookup — plus a bucket histogram over the
  // marginal values. Every update is a decrement, so it moves one node
  // down one bucket in O(1), and each prefix's top-k marginal sum is a
  // walk down the histogram from the current maximum: the only sum the
  // bound needs is Σ value·|bucket| over the k largest entries, so no
  // per-pick O(n) scan, copy, or nth_element happens at all.
  std::vector<uint64_t> counts = std::move(gains);
  uint64_t max_count = 0;
  std::vector<CelfEntry> entries;  // heapified in one O(n) make_heap below
  entries.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t g = counts[v];
    if (g > 0) entries.push_back({g, v, 0});
    max_count = std::max(max_count, g);
  }
  std::priority_queue<CelfEntry> queue(std::less<CelfEntry>{},
                                       std::move(entries));
  std::vector<uint32_t> hist(max_count + 1, 0);  // hist[c] = #nodes, c > 0
  for (NodeId v = 0; v < n; ++v) {
    if (counts[v] > 0) ++hist[counts[v]];
  }
  uint64_t cover_updates = 0;

  auto record_prefix = [&] {
    result.coverage_at.push_back(coverage);
    // The maximum only decreases (all updates are decrements), so the
    // cursor moves monotonically: O(initial max) total over the whole run.
    while (max_count > 0 && hist[max_count] == 0) --max_count;
    uint64_t sum = 0;
    uint64_t taken = 0;
    for (uint64_t value = max_count; value > 0 && taken < k; --value) {
      const uint64_t take = std::min<uint64_t>(hist[value], k - taken);
      sum += value * take;
      taken += take;
    }
    result.topk_marginal_at.push_back(sum);
  };

  result.coverage_at.reserve(k + 1);
  result.topk_marginal_at.reserve(k + 1);
  for (uint32_t i = 0; i < k; ++i) {
    record_prefix();

    NodeId best = kInvalidNode;
    uint64_t best_gain = 0;
    while (!queue.empty()) {
      CelfEntry top = queue.top();
      queue.pop();
      ++pops;
      if (selected[top.node]) continue;
      if (top.round != round) {
        top.gain = counts[top.node];
        top.round = round;
        ++rescans;
        if (top.gain > 0) queue.push(top);
        continue;
      }
      best = top.node;
      best_gain = top.gain;
      break;
    }
    if (best == kInvalidNode) break;  // all RR sets covered

    selected[best] = 1;
    result.seeds.push_back(best);
    coverage += best_gain;
    MarkCoveredBy(collection, best, &covered, [&](RRId id) {
      collection.ForEachMember(id, [&](NodeId w) {
        // w belongs to a set that was uncovered, so counts[w] >= 1 here.
        ++cover_updates;
        const uint64_t c = counts[w]--;
        --hist[c];
        if (c > 1) ++hist[c - 1];
      });
    });
    OPIM_DCHECK_EQ(counts[best], 0u);
    ++round;
  }
  record_prefix();
  while (result.coverage_at.size() < static_cast<size_t>(k) + 1) {
    result.coverage_at.push_back(coverage);
    result.topk_marginal_at.push_back(0);
  }

  OPIM_TM_COUNTER_ADD("opim.select.celf_pops", pops);
  OPIM_TM_COUNTER_ADD("opim.select.celf_rescans", rescans);
  OPIM_TM_COUNTER_ADD("opim.select.cover_updates", cover_updates);
  OPIM_TM_COUNTER_ADD("opim.select.words_scanned", words_scanned);
  FillWithUnselected(n, k, selected, &result.seeds);
  result.coverage = coverage;
  return result;
}

}  // namespace opim
