#include "select/greedy.h"

#include <algorithm>
#include <queue>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/cover_bitset.h"
#include "select/greedy_core.h"
#include "select/seed_trace.h"
#include "select/selection_state.h"
#include "support/thread_pool.h"

namespace opim {

GreedyResult SelectGreedy(const RRCollection& collection, uint32_t k,
                          bool with_trace) {
  OPIM_TR_SPAN2("greedy", "select", "theta", collection.num_sets(), "k", k);
  OPIM_TM_SCOPED_TIMER("opim.select.greedy_us");
  OPIM_TM_COUNTER_ADD("opim.select.greedy_runs", 1);
  const uint32_t n = collection.num_nodes();
  const uint32_t theta = collection.num_sets();
  k = std::min(k, n);

  GreedyResult result;
  result.seeds.reserve(k);

  // Λ(v | S_i*) for the current prefix; the initial pass is the shared
  // cold one (serial: no options), so oracle and CELF start from the
  // same numbers by construction.
  std::vector<uint64_t> counts;
  InitialGains(collection, CelfOptions{}, &counts);
  CoverBitset covered;
  covered.Reset(theta);
  std::vector<char> selected(n, 0);
  std::vector<uint64_t> scratch;

  if (with_trace) {
    result.coverage_at.reserve(k + 1);
    result.topk_marginal_at.reserve(k + 1);
  }

  uint64_t coverage = 0;
  uint64_t cover_updates = 0;  // decrements applied to `counts`
  for (uint32_t i = 0; i < k; ++i) {
    if (with_trace) {
      result.coverage_at.push_back(coverage);
      result.topk_marginal_at.push_back(TopKSum(counts, k, &scratch));
    }

    // Argmax of marginal coverage under the shared ordering rule; the
    // counts[v] > 0 guard keeps zero-gain nodes out (they are appended
    // by FillWithUnselected below, not selected).
    NodeId best = kInvalidNode;
    uint64_t best_count = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!selected[v] && counts[v] > 0 &&
          BetterCandidate(counts[v], v, best_count, best)) {
        best = v;
        best_count = counts[v];
      }
    }
    if (best == kInvalidNode) break;  // all RR sets covered

    selected[best] = 1;
    result.seeds.push_back(best);
    coverage += best_count;
    // Mark newly covered sets; every co-member loses one unit of marginal.
    MarkCoveredBy(collection, best, &covered, [&](RRId id) {
      collection.ForEachMember(id, [&](NodeId w) {
        ++cover_updates;
        --counts[w];
      });
    });
    OPIM_DCHECK_EQ(counts[best], 0u);
  }

  if (with_trace) {
    // Record the state after the final pick too (prefix i = |seeds|); pad
    // to k + 1 entries if selection stopped early (coverage saturated:
    // marginals are all zero from here on).
    result.coverage_at.push_back(coverage);
    result.topk_marginal_at.push_back(TopKSum(counts, k, &scratch));
    while (result.coverage_at.size() < static_cast<size_t>(k) + 1) {
      result.coverage_at.push_back(coverage);
      result.topk_marginal_at.push_back(0);
    }
  }

  OPIM_TM_COUNTER_ADD("opim.select.cover_updates", cover_updates);
  FillWithUnselected(n, k, selected, &result.seeds);
  result.coverage = coverage;
  return result;
}

GreedyResult SelectGreedyCelf(const RRCollection& collection, uint32_t k,
                              bool with_trace, const CelfOptions& options) {
  OPIM_TR_SPAN2("celf", "select", "theta", collection.num_sets(), "k", k);
  OPIM_TM_SCOPED_TIMER("opim.select.celf_us");
  OPIM_TM_COUNTER_ADD("opim.select.celf_runs", 1);
  OPIM_TM_GAUGE_SET("opim.select.simd_dispatch",
                    EffectiveCoverageSimd() == SimdMode::kAvx2 ? 2 : 1);
  const uint32_t n = collection.num_nodes();
  const uint32_t theta = collection.num_sets();
  k = std::min(k, n);

  GreedyResult result;
  result.seeds.reserve(k);
  // The covered bitset comes from the persistent state when one is
  // given: its word arena survives across doublings (extended, cleared)
  // instead of being reallocated per selection. Same bits either way.
  CoverBitset local_covered;
  CoverBitset* covered_bits;
  if (options.state != nullptr) {
    covered_bits = options.state->PrepareCovered(theta);
  } else {
    local_covered.Reset(theta);
    covered_bits = &local_covered;
  }
  CoverBitset& covered = *covered_bits;
  std::vector<char> selected(n, 0);

  uint64_t coverage = 0;
  uint32_t round = 0;
  uint64_t pops = 0;
  uint64_t rescans = 0;
  uint64_t words_scanned = 0;  // bitset words the counting kernels touched

  // Initial marginal gains Λ({v}) for every node — warm-synced from the
  // persistent state when options.state is set, else the cold pass
  // (parallel over node ranges when options.pool is set). Identical
  // values either way; everything after is serial and bit-identical.
  std::vector<uint64_t> gains;
  AcquireInitialGains(collection, options, &gains);

  // After a successful warm sync the collection's nonzero-membership
  // node list is current, and only those nodes can hold a positive gain:
  // the heap / histogram builds below iterate it instead of all n nodes.
  // At the doubling loop's early iterations the pool touches a small
  // fraction of n, so this removes the remaining O(n) passes from the
  // warm path. Output is unaffected by the iteration order or by the
  // absent zero-gain entries: the CELF comparator is a strict total
  // order, and a zero-gain entry can never be selected (it either
  // re-enqueues at zero and breaks the pop loop, or the queue simply
  // drains — the seeds are identical either way, which the warm-vs-cold
  // differential tests pin).
  std::span<const NodeId> nonzero;
  const bool use_nonzero =
      options.state != nullptr && options.state->WarmFor(collection);
  if (use_nonzero) nonzero = collection.MemberNonzero();

  if (!with_trace) {
    // Classic CELF: no marginal bookkeeping at all — a stale entry's gain
    // is recomputed on demand by intersecting the node's postings with
    // the uncovered bitset (whole 64-bit words; AVX2 when dispatched).
    // O(n) heap build (make_heap via the container ctor) instead of n
    // pushes; pop order — and therefore the seed set — only depends on
    // the comparator, not the heap's internal layout.
    std::vector<CelfEntry> entries;
    if (use_nonzero) {
      entries.reserve(nonzero.size());
      for (NodeId v : nonzero) entries.push_back({gains[v], v, 0});
    } else {
      entries.reserve(n);
      for (NodeId v = 0; v < n; ++v) entries.push_back({gains[v], v, 0});
    }
    std::priority_queue<CelfEntry> queue(std::less<CelfEntry>{},
                                         std::move(entries));
    auto fresh_gain = [&](NodeId v) {
      const RRCollection::CoverPostings p = collection.Covering(v);
      words_scanned += p.ids.size() + p.words.size();
      return CountUncoveredIds(p.ids, covered.words()) +
             CountUncoveredBlocks(p.words, p.masks, covered.words());
    };
    while (result.seeds.size() < k && !queue.empty()) {
      CelfEntry top = queue.top();
      queue.pop();
      ++pops;
      if (selected[top.node]) continue;
      if (top.round != round) {
        // Stale: recompute (submodularity guarantees it only shrinks).
        top.gain = fresh_gain(top.node);
        top.round = round;
        queue.push(top);
        ++rescans;
        continue;
      }
      if (top.gain == 0) break;  // coverage saturated
      selected[top.node] = 1;
      result.seeds.push_back(top.node);
      coverage += top.gain;
      MarkCoveredBy(collection, top.node, &covered, [](RRId) {});
      ++round;
    }
    OPIM_TM_COUNTER_ADD("opim.select.celf_pops", pops);
    OPIM_TM_COUNTER_ADD("opim.select.celf_rescans", rescans);
    OPIM_TM_COUNTER_ADD("opim.select.words_scanned", words_scanned);
    FillWithUnselected(n, k, selected, &result.seeds);
    result.coverage = coverage;
    return result;
  }

  // Trace mode (what OPIM⁺'s Eq. (10) bound consumes): maintain the exact
  // marginals Λ(v | S_i*) like SelectGreedy — a stale queue entry then
  // refreshes with an O(1) lookup — plus a bucket histogram over the
  // marginal values. Every update is a decrement, so it moves one node
  // down one bucket in O(1), and each prefix's top-k marginal sum is a
  // walk down the histogram from the current maximum: the only sum the
  // bound needs is Σ value·|bucket| over the k largest entries, so no
  // per-pick O(n) scan, copy, or nth_element happens at all. When a
  // SeedTrace is attached, the same walk also writes the prefix's full
  // top-j sums (j = 1..k) into its matrix row — the per-prefix Eq. (10)
  // summands any later k' <= k query needs — at O(k) extra per prefix.
  SeedTrace* strace = options.seed_trace;
  if (strace != nullptr) strace->Begin(k);
  std::vector<uint64_t> counts = std::move(gains);
  uint64_t max_count = 0;
  std::vector<CelfEntry> entries;  // heapified in one O(n) make_heap below
  if (use_nonzero) {
    entries.reserve(nonzero.size());
    for (NodeId v : nonzero) {
      const uint64_t g = counts[v];  // >= 1: membership never decreases
      entries.push_back({g, v, 0});
      max_count = std::max(max_count, g);
    }
  } else {
    entries.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      const uint64_t g = counts[v];
      if (g > 0) entries.push_back({g, v, 0});
      max_count = std::max(max_count, g);
    }
  }
  std::priority_queue<CelfEntry> queue(std::less<CelfEntry>{},
                                       std::move(entries));
  std::vector<uint32_t> hist(max_count + 1, 0);  // hist[c] = #nodes, c > 0
  if (use_nonzero) {
    for (NodeId v : nonzero) ++hist[counts[v]];
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (counts[v] > 0) ++hist[counts[v]];
    }
  }
  uint64_t cover_updates = 0;

  auto record_prefix = [&] {
    const uint32_t prefix = static_cast<uint32_t>(result.coverage_at.size());
    result.coverage_at.push_back(coverage);
    if (strace != nullptr) strace->RecordCoverage(prefix, coverage);
    // The maximum only decreases (all updates are decrements), so the
    // cursor moves monotonically: O(initial max) total over the whole run.
    while (max_count > 0 && hist[max_count] == 0) --max_count;
    uint64_t* row = strace != nullptr ? strace->PrefixRow(prefix) : nullptr;
    uint64_t sum = 0;
    uint64_t taken = 0;
    for (uint64_t value = max_count; value > 0 && taken < k; --value) {
      const uint64_t take = std::min<uint64_t>(hist[value], k - taken);
      if (row != nullptr) {
        for (uint64_t t = 1; t <= take; ++t) row[taken + t] = sum + value * t;
      }
      sum += value * take;
      taken += take;
    }
    if (row != nullptr) {
      // Fewer than j nonzero marginals means the top-j sum is the total.
      for (uint64_t j = taken + 1; j <= k; ++j) row[j] = sum;
    }
    result.topk_marginal_at.push_back(sum);
  };

  result.coverage_at.reserve(k + 1);
  result.topk_marginal_at.reserve(k + 1);
  for (uint32_t i = 0; i < k; ++i) {
    record_prefix();

    NodeId best = kInvalidNode;
    uint64_t best_gain = 0;
    while (!queue.empty()) {
      CelfEntry top = queue.top();
      queue.pop();
      ++pops;
      if (selected[top.node]) continue;
      if (top.round != round) {
        top.gain = counts[top.node];
        top.round = round;
        ++rescans;
        if (top.gain > 0) queue.push(top);
        continue;
      }
      best = top.node;
      best_gain = top.gain;
      break;
    }
    if (best == kInvalidNode) break;  // all RR sets covered

    selected[best] = 1;
    result.seeds.push_back(best);
    coverage += best_gain;
    MarkCoveredBy(collection, best, &covered, [&](RRId id) {
      collection.ForEachMember(id, [&](NodeId w) {
        // w belongs to a set that was uncovered, so counts[w] >= 1 here.
        ++cover_updates;
        const uint64_t c = counts[w]--;
        --hist[c];
        if (c > 1) ++hist[c - 1];
      });
    });
    OPIM_DCHECK_EQ(counts[best], 0u);
    ++round;
  }
  record_prefix();
  while (result.coverage_at.size() < static_cast<size_t>(k) + 1) {
    if (strace != nullptr) {
      strace->RecordCoverage(static_cast<uint32_t>(result.coverage_at.size()),
                             coverage);
    }
    result.coverage_at.push_back(coverage);
    result.topk_marginal_at.push_back(0);
  }

  OPIM_TM_COUNTER_ADD("opim.select.celf_pops", pops);
  OPIM_TM_COUNTER_ADD("opim.select.celf_rescans", rescans);
  OPIM_TM_COUNTER_ADD("opim.select.cover_updates", cover_updates);
  OPIM_TM_COUNTER_ADD("opim.select.words_scanned", words_scanned);
  FillWithUnselected(n, k, selected, &result.seeds);
  result.coverage = coverage;
  if (strace != nullptr) strace->RecordSeeds(result.seeds);
  return result;
}

}  // namespace opim
