// Prefix-complete record of one greedy selection — everything needed to
// answer any k' <= k seed query, with its σ_l / σ_u / σ̂_u bounds, in
// O(k) arithmetic and zero pool scans.
//
// The Eq. (10) trace the selectors already produce (GreedyResult's
// coverage_at / topk_marginal_at) fixes the query size at the k the
// selection ran with: topk_marginal_at[i] is the top-k marginal sum at
// prefix i, which is the wrong summand for a k' < k query. SeedTrace
// generalizes it: for every prefix i = 0..k it stores the full top-j
// marginal prefix sums for j = 0..k (one (k+1)×(k+1) matrix, filled
// during the same O(k) histogram walk CELF's trace mode already does per
// pick), the prefix coverages Λ1(S_i*), the chosen seeds, and — after
// AttributeJudgeCoverage — the judge coverages Λ2(S_i*). Because greedy
// selection is prefix-consistent (the first k' picks of a k-run ARE the
// k'-run, tie-breaks included), a query at k' reads row k' (and the
// Eq. (10) minimum over rows 0..k') and reproduces exactly what a fresh
// selection + bound evaluation at k' over the same pools would compute;
// tests/select pins this per prefix.
//
// The bound parameters (θ1, θ2, n-scale, δ1, δ2) are attached by the
// engine so the trace is self-contained: bounds/bounds.h's BoundsAt
// needs only the trace and a BoundKind. Layering: select/ must not
// depend on bounds/ (the link direction is bounds -> select), so the
// bound arithmetic itself lives there, not here.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rrset/rr_collection.h"

namespace opim {

/// Value type recording one greedy selection prefix-completely. Begin()
/// re-arms it for reuse across doublings without reallocating.
class SeedTrace {
 public:
  SeedTrace() = default;

  /// Arms the trace for a selection of `k` seeds: sizes the per-prefix
  /// arrays and zero-fills them (zero rows are exactly the saturation
  /// padding — once coverage saturates, every marginal is zero).
  void Begin(uint32_t k);

  /// Query size k the trace was armed for (0 before Begin).
  uint32_t k() const { return k_; }

  /// True once Begin has armed the trace.
  bool armed() const { return armed_; }

  // --- Recording (SelectGreedyCelf trace mode) -------------------------

  /// Row i of the top-j marginal matrix: row[j] = Σ of the j largest
  /// marginal gains Λ1(v | S_i*), for j = 0..k (row[0] == 0). The
  /// selector fills entries 1..taken during its histogram walk and pads
  /// the tail with the all-nonzero total.
  uint64_t* PrefixRow(uint32_t i);

  /// Records Λ1(S_i*) for prefix i.
  void RecordCoverage(uint32_t i, uint64_t coverage);

  /// Records the final (padded) seed sequence, length min(k, n).
  void RecordSeeds(std::vector<NodeId> seeds);

  // --- Engine attachment ----------------------------------------------

  /// Judge-pool pass: fills Λ2(S_i*) for every prefix i with one
  /// incremental coverage walk over `r2` (each seed's postings marked
  /// once). Λ2 at the full prefix equals r2.CoverageOf(seeds()).
  void AttributeJudgeCoverage(const RRCollection& r2);

  /// Attaches the bound parameters of the run that produced the pools.
  void SetBoundParams(uint64_t theta1, uint64_t theta2, double scale,
                      double delta1, double delta2);

  // --- Queries ---------------------------------------------------------

  /// The full seed sequence (selection order, padded to min(k, n)).
  std::span<const NodeId> seeds() const { return seeds_; }

  /// First min(k', n) seeds — identical to what a fresh selection at
  /// k' over the same pool returns. Requires k' <= k().
  std::span<const NodeId> SeedsAt(uint32_t k_prime) const;

  /// Λ1(S_i*) for prefix i <= k.
  uint64_t CoverageAt(uint32_t i) const;

  /// Λ2(S_i*) for prefix i <= k (requires AttributeJudgeCoverage).
  uint64_t Lambda2At(uint32_t i) const;

  /// Top-j marginal sum at prefix i (the Eq. (10) summand for a size-j
  /// query); i, j <= k.
  uint64_t TopMarginalAt(uint32_t i, uint32_t j) const;

  uint64_t theta1() const { return theta1_; }
  uint64_t theta2() const { return theta2_; }
  double scale() const { return scale_; }
  double delta1() const { return delta1_; }
  double delta2() const { return delta2_; }

 private:
  uint32_t k_ = 0;
  bool armed_ = false;
  bool judged_ = false;
  std::vector<NodeId> seeds_;
  std::vector<uint64_t> coverage_at_;  // k+1
  std::vector<uint64_t> lambda2_at_;   // k+1, after AttributeJudgeCoverage
  std::vector<uint64_t> topj_;         // (k+1)*(k+1), row-major by prefix
  uint64_t theta1_ = 0;
  uint64_t theta2_ = 0;
  double scale_ = 1.0;
  double delta1_ = 0.0;
  double delta2_ = 0.0;
};

}  // namespace opim
