// Shared internals of the two greedy selectors (select/greedy.h).
//
// SelectGreedy (the differential oracle) and SelectGreedyCelf must agree
// on every output bit — seeds, tie-breaks, trace arrays — so the pieces
// that define those bits live here, in exactly one translation unit:
// the candidate ordering (BetterCandidate / CelfEntry), the initial
// marginal-gain pass (cold and warm-started), the top-k marginal
// machinery of the Eq. (10) trace, and the covered-bitset marking walk.
// The differential tests in tests/select/ then exercise one
// implementation of the invariants instead of two copies that could
// drift apart.
//
// Everything here is an implementation detail of select/: the header is
// included by greedy.cc and the selection tests, not installed API.

#pragma once

#include <cstdint>
#include <vector>

#include "rrset/cover_bitset.h"
#include "rrset/rr_collection.h"
#include "select/greedy.h"

namespace opim {

/// The one candidate-ordering rule both selectors share: a candidate
/// (gain, node) beats the incumbent (best_gain, best_node) iff its gain
/// is strictly larger, or equal with a smaller node id. Smallest id wins
/// ties so CELF's pop order matches SelectGreedy's ascending argmax scan
/// exactly.
inline bool BetterCandidate(uint64_t gain, NodeId node, uint64_t best_gain,
                            NodeId best_node) {
  if (gain != best_gain) return gain > best_gain;
  return node < best_node;
}

/// Lazy-forward queue entry: a (possibly stale) upper bound on a node's
/// marginal gain. The heap comparator is BetterCandidate, so the queue
/// pops candidates in exactly the oracle's argmax order.
struct CelfEntry {
  uint64_t gain;
  NodeId node;
  uint32_t round;  // selection round the gain was computed in
  bool operator<(const CelfEntry& other) const {
    return BetterCandidate(other.gain, other.node, gain, node);
  }
};

/// Fills `gains[v] = CoveringCount(v)` for every node, over node ranges
/// on `options.pool` when the posting mass warrants it; per-node results
/// are independent, so the output is identical for any worker count.
/// Runs `options.after_initial_gains` (if set) once the pass — the only
/// pool use in CELF — is done.
void InitialGains(const RRCollection& collection, const CelfOptions& options,
                  std::vector<uint64_t>* gains);

/// Initial-gain acquisition with the incremental fast path: when
/// `options.state` is set, syncs the persistent SelectionState against
/// `collection` (an O(n) copy of the collection's incrementally
/// maintained membership counts instead of an O(Σ|R|) recount) and falls
/// back to the cold InitialGains pass — invalidating the state — if the
/// sync throws. Either way the resulting gains are bit-identical and
/// `options.after_initial_gains` fires exactly once, at the same
/// schedule point, so the pipelined engine's speculative RR streams are
/// unaffected by which path ran.
void AcquireInitialGains(const RRCollection& collection,
                         const CelfOptions& options,
                         std::vector<uint64_t>* gains);

/// Sum of the k largest values of `scratch` (consumed: partially sorted).
/// Zeros never contribute, so callers pass only nonzero entries.
uint64_t TopKSumOf(std::vector<uint64_t>* scratch, uint32_t k);

/// Sum of the k largest values in `counts`: copies only the nonzero
/// entries into `scratch` (partial copy — the pre-rework version copied
/// the whole n-sized vector per pick) and partial-sorts those.
uint64_t TopKSum(const std::vector<uint64_t>& counts, uint32_t k,
                 std::vector<uint64_t>* scratch);

/// Appends the smallest-id nodes not yet selected until `seeds` has k
/// entries (used when coverage saturates before k picks).
void FillWithUnselected(uint32_t n, uint32_t k,
                        const std::vector<char>& selected,
                        std::vector<NodeId>* seeds);

/// Marks every RR set containing `v` covered and calls `fn(RRId)` once
/// for each set that was not already covered (ascending ids — identical
/// traversal order for both posting representations).
template <typename Fn>
void MarkCoveredBy(const RRCollection& collection, NodeId v,
                   CoverBitset* covered, Fn&& fn) {
  const RRCollection::CoverPostings p = collection.Covering(v);
  ForEachNewlyCoveredIds(p.ids, covered->words(), fn);
  ForEachNewlyCoveredBlocks(p.words, p.masks, covered->words(), fn);
}

}  // namespace opim
