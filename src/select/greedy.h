// Greedy maximum-coverage seed selection over an RRCollection
// (Algorithm 1 of the paper), in two interchangeable implementations:
//
//  * SelectGreedy — the classic destructive cover-count greedy. Maintains
//    the marginal coverage Λ(v | S_i*) of every node while it selects, so
//    it can also capture the *greedy trace* that the improved bound of §5
//    consumes: Λ1(S_i*) and Σ_{v ∈ maxMC(S_i*, k)} Λ1(v | S_i*) for every
//    prefix i = 0..k (Eq. 10), in O(kn + Σ|R|) total. Kept as the
//    reference oracle for differential tests.
//  * SelectGreedyCelf — CELF lazy-forward greedy (Leskovec et al. 2007),
//    the selection path RunOpimC uses. Identical output to SelectGreedy
//    (including tie-breaking and the trace arrays; the differential test
//    in tests/select/ pins this). In trace mode it maintains exact
//    marginals like SelectGreedy but replaces the O(n) argmax scan with
//    the lazy queue and tracks a bucket histogram of the marginal values,
//    so each prefix's top-k marginal sum is a walk down the histogram
//    from the current maximum — no n-sized copy or sort per pick.
//
// Both return seed sets of exactly min(k, n) nodes; once every RR set is
// covered, remaining slots are filled with the smallest-id unused nodes
// (zero marginal gain), keeping results deterministic.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rrset/rr_collection.h"

namespace opim {

class SeedTrace;
class SelectionState;
class ThreadPool;

/// Output of greedy selection, including the per-prefix trace used by the
/// Λ1ᵘ(S°) bound of Eq. (10).
struct GreedyResult {
  /// Selected seeds in selection order; size min(k, n).
  std::vector<NodeId> seeds;

  /// Final coverage Λ(S*) of the seed set in the collection.
  uint64_t coverage = 0;

  /// coverage_at[i] = Λ(S_i*) for i = 0..k (coverage_at[0] == 0).
  /// Empty unless the trace was requested.
  std::vector<uint64_t> coverage_at;

  /// topk_marginal_at[i] = Σ_{v ∈ maxMC(S_i*, k)} Λ(v | S_i*) for i = 0..k.
  /// Empty unless the trace was requested.
  std::vector<uint64_t> topk_marginal_at;
};

/// Destructive cover-count greedy. If `with_trace`, also fills coverage_at
/// and topk_marginal_at (adds O(kn) work, per the paper's §5 analysis).
GreedyResult SelectGreedy(const RRCollection& collection, uint32_t k,
                          bool with_trace = false);

/// Execution options for SelectGreedyCelf. None changes any output bit:
/// `pool` only parallelizes the initial marginal-gain pass (one
/// CoveringCount per node — the dominant CELF cost at large n) over node
/// ranges; every recount stays serial. `after_initial_gains`, when set,
/// runs on the calling thread right after that pass — the last pool use —
/// and before the serial heap phase: the pipelined engine uses it to
/// launch speculative sampling that overlaps the rest of selection.
/// `state`, when set, replaces the initial-gain pass with the persistent
/// SelectionState's incremental sync (select/selection_state.h) — exact
/// gains, bit-identical output, warm across doublings; a failed sync
/// falls back to the cold pass transparently. `seed_trace`, when set
/// together with `with_trace`, additionally records the prefix-complete
/// trace (select/seed_trace.h) that answers k' <= k queries without
/// re-selection.
struct CelfOptions {
  ThreadPool* pool = nullptr;
  std::function<void()> after_initial_gains;
  SelectionState* state = nullptr;
  SeedTrace* seed_trace = nullptr;
};

/// CELF lazy-forward greedy; identical output to SelectGreedy (seeds,
/// coverage, and — with `with_trace` — the trace arrays), usually much
/// faster. This is the engine selection path.
GreedyResult SelectGreedyCelf(const RRCollection& collection, uint32_t k,
                              bool with_trace = false,
                              const CelfOptions& options = {});

}  // namespace opim
