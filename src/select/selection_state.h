// Persistent cross-iteration selection state for the OPIM-C doubling
// loop (and OnlineMaximizer's repeated queries).
//
// Every doubling re-runs CELF greedy over a pool that is a strict
// superset of the previous iteration's, yet the from-scratch path pays
// the full initial-gain pass — one CoveringCount per node, O(Σ|R|)
// posting mass — again each time. SelectionState makes that pass
// incremental: it tracks which prefix of a specific RRCollection its
// owner has already selected over, and on the next selection pulls the
// collection's incrementally maintained per-node membership counts
// (RRCollection::MemberCounts — updated in O(n) per ingested shard from
// the shards' own posting offsets, never re-decoding stored sets) as the
// exact initial gains. It also keeps the covered-RR-set bitset's word
// arena alive across selections, so each doubling extends and clears it
// instead of reallocating.
//
// The state is an execution accelerator only: SelectGreedyCelf with a
// state produces bit-identical output to the stateless path (the warm
// gains are exact, not approximate — see the validity argument in
// greedy_core.cc), and any failure to sync simply invalidates the state
// and falls back to the cold pass.

#pragma once

#include <cstdint>
#include <vector>

#include "rrset/cover_bitset.h"
#include "rrset/rr_collection.h"

namespace opim {

/// Reusable selection state bound to (at most) one RRCollection at a
/// time. Owned by the engine run / OnlineMaximizer; not thread-safe.
class SelectionState {
 public:
  SelectionState() = default;

  /// Fills `*gains` with the exact initial marginal gains Λ({v}) for
  /// every node of `collection`, using the collection's incremental
  /// membership counts. Telemetry: counts a warm-start hit and the
  /// posting mass newly ingested since the last sync when `collection`
  /// is the one previously synced; a first sync (or a different
  /// collection, e.g. after --resume restored fresh pools) is the state
  /// rebuild, which fault site "select.state_rebuild_throw" can fail —
  /// the caller (AcquireInitialGains) then invalidates the state and
  /// recovers on the cold path. Throws std::runtime_error only from
  /// that site.
  void SyncGains(const RRCollection& collection, std::vector<uint64_t>* gains);

  /// The persistent covered-set bitset, extended to `num_bits` with every
  /// bit clear. The word arena is kept across calls — a doubling run
  /// grows it monotonically instead of reallocating per iteration.
  CoverBitset* PrepareCovered(uint64_t num_bits);

  /// Forgets the bound collection (the bitset arena is kept). The next
  /// SyncGains is a rebuild, not a warm hit.
  void Invalidate();

  /// True when the next SyncGains against `collection` would be a warm
  /// hit (same collection, already synced at least once).
  bool WarmFor(const RRCollection& collection) const {
    return collection_ == &collection && sets_accounted_ > 0;
  }

  /// Sets folded in by the last sync (0 after Invalidate).
  uint64_t sets_accounted() const { return sets_accounted_; }

 private:
  const RRCollection* collection_ = nullptr;  // identity only, never read
  uint64_t sets_accounted_ = 0;
  uint64_t mass_accounted_ = 0;
  CoverBitset covered_;
};

}  // namespace opim
