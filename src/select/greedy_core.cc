#include "select/greedy_core.h"

#include <algorithm>
#include <exception>
#include <functional>

#include "obs/log.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "select/selection_state.h"
#include "support/thread_pool.h"

namespace opim {

namespace {

/// Below this much total posting mass the parallel initial-gain pass
/// loses to fan-out overhead.
constexpr uint64_t kParallelInitMinWork = 1u << 16;

}  // namespace

void InitialGains(const RRCollection& collection, const CelfOptions& options,
                  std::vector<uint64_t>* gains) {
  OPIM_TR_SPAN1("celf_init", "select", "n", collection.num_nodes());
  OPIM_TM_SCOPED_TIMER("opim.select.celf_init_us");
  const uint32_t n = collection.num_nodes();
  gains->resize(n);
  ThreadPool* pool = options.pool;
  if (pool != nullptr && pool->num_threads() > 1 && n > 0 &&
      collection.total_size() >= kParallelInitMinWork) {
    // One serial touch first: Covering() lazily rebuilds a stale index,
    // which must not race across workers.
    (*gains)[0] = collection.CoveringCount(0);
    const uint32_t ranges = std::min<uint32_t>(n, pool->num_threads() * 4);
    pool->ParallelFor(ranges, [&](uint64_t r) {
      const uint32_t lo =
          std::max<uint32_t>(1, static_cast<uint32_t>(uint64_t{n} * r / ranges));
      const uint32_t hi =
          static_cast<uint32_t>(uint64_t{n} * (r + 1) / ranges);
      for (NodeId v = lo; v < hi; ++v) {
        (*gains)[v] = collection.CoveringCount(v);
      }
    });
  } else {
    for (NodeId v = 0; v < n; ++v) {
      (*gains)[v] = collection.CoveringCount(v);
    }
  }
  if (options.after_initial_gains) options.after_initial_gains();
}

// WARM-START VALIDITY. The pool is append-only, so iteration i's pool is
// iteration i-1's pool plus the new sets, and for every node v
//
//   Λ_i({v}) = Λ_{i-1}({v}) + d_v,
//
// where d_v is v's membership count among the NEW sets only. The synced
// counts are therefore the EXACT singleton coverages on the grown pool —
// not an approximation — because RRCollection::MemberCounts maintains
// Σ-membership per node exactly across ingests (the shard posting
// offsets it folds are computed from the same encoded sets the index is
// built from). Seeding CELF's heap with exact Λ_i({v}) is precisely what
// the cold pass does, so the heap contents, every pop, every tie-break,
// and hence the seed sequence and all trace arrays are bit-identical to
// a from-scratch run (the differential tests in tests/select pin this).
// Note the subtlety this design avoids: warm-starting from iteration
// i-1's FINAL marginals Λ_{i-1}(v | S*) — tempting, since they are
// smaller — would be unsound as CELF initial entries: a node's marginal
// against the previous run's seed set is not an upper bound on its
// marginal against this run's (different) prefix, and even corrected by
// d_v it would perturb pop order. Exact singleton gains cost the same
// O(n) and carry no such caveat.
void AcquireInitialGains(const RRCollection& collection,
                         const CelfOptions& options,
                         std::vector<uint64_t>* gains) {
  if (options.state != nullptr) {
    try {
      options.state->SyncGains(collection, gains);
      // Same schedule point as the cold pass (InitialGains fires it at
      // its end): the pipelined engine's speculative sampling launches
      // here, so the RR streams it produces are byte-identical no matter
      // which gain path ran.
      if (options.after_initial_gains) options.after_initial_gains();
      return;
    } catch (const std::exception& e) {
      options.state->Invalidate();
      OPIM_TM_COUNTER_ADD("opim.select.warm_start_fallbacks", 1);
      OPIM_LOG(kWarn) << "selection-state sync failed (" << e.what()
                      << "); falling back to from-scratch initial gains";
    }
  }
  InitialGains(collection, options, gains);
}

uint64_t TopKSumOf(std::vector<uint64_t>* scratch, uint32_t k) {
  if (k == 0 || scratch->empty()) return 0;
  uint64_t total = 0;
  if (k >= scratch->size()) {
    for (uint64_t c : *scratch) total += c;
    return total;
  }
  std::nth_element(scratch->begin(), scratch->begin() + (k - 1),
                   scratch->end(), std::greater<uint64_t>());
  for (uint32_t i = 0; i < k; ++i) total += (*scratch)[i];
  return total;
}

uint64_t TopKSum(const std::vector<uint64_t>& counts, uint32_t k,
                 std::vector<uint64_t>* scratch) {
  if (k == 0 || counts.empty()) return 0;
  scratch->clear();
  for (uint64_t c : counts) {
    if (c > 0) scratch->push_back(c);
  }
  return TopKSumOf(scratch, k);
}

void FillWithUnselected(uint32_t n, uint32_t k,
                        const std::vector<char>& selected,
                        std::vector<NodeId>* seeds) {
  for (NodeId v = 0; v < n && seeds->size() < k; ++v) {
    if (!selected[v]) seeds->push_back(v);
  }
}

}  // namespace opim
