#include "select/seed_trace.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rrset/cover_bitset.h"
#include "support/macros.h"

namespace opim {

void SeedTrace::Begin(uint32_t k) {
  k_ = k;
  armed_ = true;
  judged_ = false;
  seeds_.clear();
  coverage_at_.assign(uint64_t{k} + 1, 0);
  lambda2_at_.clear();
  topj_.assign((uint64_t{k} + 1) * (uint64_t{k} + 1), 0);
}

uint64_t* SeedTrace::PrefixRow(uint32_t i) {
  OPIM_DCHECK(armed_);
  OPIM_DCHECK_LE(i, k_);
  return topj_.data() + uint64_t{i} * (uint64_t{k_} + 1);
}

void SeedTrace::RecordCoverage(uint32_t i, uint64_t coverage) {
  OPIM_DCHECK(armed_);
  OPIM_DCHECK_LE(i, k_);
  coverage_at_[i] = coverage;
}

void SeedTrace::RecordSeeds(std::vector<NodeId> seeds) {
  OPIM_DCHECK(armed_);
  seeds_ = std::move(seeds);
}

void SeedTrace::AttributeJudgeCoverage(const RRCollection& r2) {
  OPIM_DCHECK(armed_);
  OPIM_TR_SPAN1("judge_attrib", "select", "k", seeds_.size());
  OPIM_TM_SCOPED_TIMER("opim.select.judge_attrib_us");
  lambda2_at_.assign(coverage_at_.size(), 0);
  CoverBitset covered;
  covered.Reset(r2.num_sets());
  uint64_t* words = covered.words();
  uint64_t cov = 0;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    const RRCollection::CoverPostings p = r2.Covering(seeds_[i]);
    ForEachNewlyCoveredIds(p.ids, words, [&](RRId) { ++cov; });
    for (size_t b = 0; b < p.words.size(); ++b) {
      const uint64_t fresh = p.masks[b] & ~words[p.words[b]];
      cov += std::popcount(fresh);
      words[p.words[b]] |= fresh;
    }
    lambda2_at_[i + 1] = cov;
  }
  // When n < k there are fewer real seeds than prefixes; Λ2 is flat from
  // the last one (no further node exists to cover anything).
  for (size_t i = seeds_.size() + 1; i < lambda2_at_.size(); ++i) {
    lambda2_at_[i] = cov;
  }
  judged_ = true;
}

void SeedTrace::SetBoundParams(uint64_t theta1, uint64_t theta2, double scale,
                               double delta1, double delta2) {
  theta1_ = theta1;
  theta2_ = theta2;
  scale_ = scale;
  delta1_ = delta1;
  delta2_ = delta2;
}

std::span<const NodeId> SeedTrace::SeedsAt(uint32_t k_prime) const {
  OPIM_CHECK_LE(k_prime, k_);
  // seeds_ has min(k, n) entries: when n < k' there simply are no more
  // nodes, mirroring the truncated result a fresh k'-selection returns.
  return std::span<const NodeId>(
      seeds_.data(), std::min<size_t>(k_prime, seeds_.size()));
}

uint64_t SeedTrace::CoverageAt(uint32_t i) const {
  OPIM_CHECK_LE(i, k_);
  return coverage_at_[i];
}

uint64_t SeedTrace::Lambda2At(uint32_t i) const {
  OPIM_CHECK_MSG(judged_, "Lambda2At requires AttributeJudgeCoverage");
  OPIM_CHECK_LE(i, k_);
  return lambda2_at_[i];
}

uint64_t SeedTrace::TopMarginalAt(uint32_t i, uint32_t j) const {
  OPIM_CHECK_LE(i, k_);
  OPIM_CHECK_LE(j, k_);
  return topj_[uint64_t{i} * (uint64_t{k_} + 1) + j];
}

}  // namespace opim
