// Deterministic synthetic graph generators.
//
// The paper evaluates on SNAP datasets (Pokec, Orkut, LiveJournal, Twitter;
// Table 2) that are not shipped with this repository. OPIM is a pure
// sampling algorithm whose measured quantities depend on coverage
// statistics of RR sets, which in turn are driven by degree distribution
// shape and average degree — so the experiments use synthetic stand-ins
// from these generators, parameterized to match each dataset's degree
// character (see DESIGN.md §3 and harness/datasets.h). Every generator is
// deterministic given its seed.

#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace opim {

/// Options shared by all generators.
struct GenOptions {
  /// RNG seed; the same seed always yields the same graph.
  uint64_t seed = 1;
  /// Weighting applied to the generated edges.
  WeightScheme scheme = WeightScheme::kWeightedCascade;
  /// Constant probability for kConstant / kUniformRandom schemes.
  double constant_p = 0.1;
};

/// Erdős–Rényi G(n, m): m directed edges drawn uniformly (self-loops
/// excluded, parallel edges possible but rare for sparse m).
Graph GenerateErdosRenyi(uint32_t n, uint64_t m, const GenOptions& opt = {});

/// Barabási–Albert preferential attachment. Nodes arrive one at a time and
/// attach `edges_per_node` out-edges to existing nodes chosen with
/// probability proportional to (in-degree + 1). Yields a power-law
/// in-degree tail, the character of social follow graphs.
/// If `undirected`, each attachment adds both directions (Orkut-like).
Graph GenerateBarabasiAlbert(uint32_t n, uint32_t edges_per_node,
                             bool undirected = false,
                             const GenOptions& opt = {});

/// Watts–Strogatz small world: ring lattice of even degree `k_neighbors`
/// with each edge rewired independently with probability `rewire_prob`.
/// Directed (each lattice edge becomes one directed edge each way).
Graph GenerateWattsStrogatz(uint32_t n, uint32_t k_neighbors,
                            double rewire_prob, const GenOptions& opt = {});

/// Directed configuration model with Zipf(exponent) in- and out-degrees,
/// scaled so the average degree is `avg_degree`, stubs matched uniformly
/// at random. Degree cap `max_degree` (0 = n). LiveJournal-like.
Graph GeneratePowerLawConfiguration(uint32_t n, double exponent,
                                    double avg_degree,
                                    uint32_t max_degree = 0,
                                    const GenOptions& opt = {});

/// R-MAT (recursive matrix) generator: n = 2^scale nodes, `m` directed
/// edges placed by recursive quadrant selection with probabilities
/// (a, b, c, d), a + b + c + d = 1. Skewed a > d gives the heavy-tailed,
/// scale-free character of the Twitter follow graph.
Graph GenerateRmat(uint32_t scale, uint64_t m, double a = 0.57,
                   double b = 0.19, double c = 0.19, double d = 0.05,
                   const GenOptions& opt = {});

/// `rows` x `cols` grid with directed edges both ways between lattice
/// neighbors. Deterministic topology; useful for tests with computable
/// spreads.
Graph GenerateGrid2D(uint32_t rows, uint32_t cols, const GenOptions& opt = {});

/// Complete directed graph K_n (all ordered pairs, no self-loops).
Graph GenerateComplete(uint32_t n, const GenOptions& opt = {});

/// Star: node 0 has edges to all others (and none back).
Graph GenerateStar(uint32_t n, const GenOptions& opt = {});

/// Directed path 0 -> 1 -> … -> n-1.
Graph GeneratePath(uint32_t n, const GenOptions& opt = {});

/// Directed cycle 0 -> 1 -> … -> n-1 -> 0.
Graph GenerateCycle(uint32_t n, const GenOptions& opt = {});

}  // namespace opim
