#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/alias_sampler.h"
#include "support/random.h"

namespace opim {

namespace {

Graph BuildWith(GraphBuilder& builder, const GenOptions& opt) {
  return builder.Build(opt.scheme, opt.constant_p, opt.seed ^ 0x77656967);
}

}  // namespace

Graph GenerateErdosRenyi(uint32_t n, uint64_t m, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  Rng rng(opt.seed, 0x4552);  // "ER"
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < m; ++e) {
    NodeId u = rng.UniformBelow(n);
    NodeId v = rng.UniformBelow(n - 1);
    if (v >= u) ++v;  // skip self-loop without rejection
    builder.AddEdge(u, v);
  }
  return BuildWith(builder, opt);
}

Graph GenerateBarabasiAlbert(uint32_t n, uint32_t edges_per_node,
                             bool undirected, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GE(edges_per_node, 1u);
  Rng rng(opt.seed, 0x4241);  // "BA"
  GraphBuilder builder(n);

  // `targets` holds one entry per unit of (in-degree + 1) mass; drawing a
  // uniform element implements preferential attachment exactly.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(n) * (edges_per_node + 1));
  targets.push_back(0);  // node 0's +1 smoothing mass
  for (NodeId v = 1; v < n; ++v) {
    uint32_t fanout = std::min<uint32_t>(edges_per_node, v);
    for (uint32_t j = 0; j < fanout; ++j) {
      NodeId t = targets[rng.UniformBelow(static_cast<uint32_t>(
          targets.size()))];
      if (t == v) t = rng.UniformBelow(v);  // avoid self-loop
      if (undirected) {
        builder.AddUndirectedEdge(v, t);
      } else {
        builder.AddEdge(v, t);
      }
      targets.push_back(t);  // t gained one in-edge
    }
    targets.push_back(v);  // v's +1 smoothing mass
  }
  return BuildWith(builder, opt);
}

Graph GenerateWattsStrogatz(uint32_t n, uint32_t k_neighbors,
                            double rewire_prob, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 3u);
  OPIM_CHECK_MSG(k_neighbors % 2 == 0, "k_neighbors must be even");
  OPIM_CHECK_LT(k_neighbors, n);
  OPIM_CHECK(rewire_prob >= 0.0 && rewire_prob <= 1.0);
  Rng rng(opt.seed, 0x5753);  // "WS"
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k_neighbors / 2; ++j) {
      NodeId v = (u + j) % n;
      if (rng.Bernoulli(rewire_prob)) {
        v = rng.UniformBelow(n - 1);
        if (v >= u) ++v;
      }
      builder.AddEdge(u, v);
      builder.AddEdge(v, u);
    }
  }
  return BuildWith(builder, opt);
}

Graph GeneratePowerLawConfiguration(uint32_t n, double exponent,
                                    double avg_degree, uint32_t max_degree,
                                    const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GT(exponent, 1.0);
  OPIM_CHECK_GT(avg_degree, 0.0);
  if (max_degree == 0) max_degree = n;
  Rng rng(opt.seed, 0x504c);  // "PL"

  // Zipf weights over degrees 1..max via the alias method; then scale the
  // realized mean to avg_degree by thinning/duplicating stubs.
  uint32_t dmax = std::min<uint32_t>(max_degree, n - 1);
  std::vector<double> zipf(dmax);
  for (uint32_t d = 1; d <= dmax; ++d) {
    zipf[d - 1] = std::pow(static_cast<double>(d), -exponent);
  }
  AliasSampler deg_sampler(zipf);

  auto sample_degrees = [&](std::vector<uint32_t>* degs) {
    std::vector<double> zipf_draw(n);
    for (uint32_t i = 0; i < n; ++i) {
      zipf_draw[i] = static_cast<double>(deg_sampler.Sample(rng) + 1);
    }
    // Choose the multiplicative scale s so that the mean of
    // min(round(z_i * s), dmax) hits avg_degree; capping the tail removes
    // mass, so solve for s by bisection (the capped mean is monotone in s).
    auto capped_mean = [&](double s) {
      double sum = 0.0;
      for (uint32_t i = 0; i < n; ++i) {
        sum += std::min(zipf_draw[i] * s, static_cast<double>(dmax));
      }
      return sum / n;
    };
    double lo = 0.0, hi = 1.0;
    while (capped_mean(hi) < avg_degree && hi < 1e9) hi *= 2.0;
    for (int it = 0; it < 50; ++it) {
      double mid = 0.5 * (lo + hi);
      (capped_mean(mid) < avg_degree ? lo : hi) = mid;
    }
    const double scale = 0.5 * (lo + hi);
    degs->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      double target = std::min(zipf_draw[i] * scale,
                               static_cast<double>(dmax));
      uint32_t floor_deg = static_cast<uint32_t>(target);
      (*degs)[i] = floor_deg + (rng.UniformDouble() < target - floor_deg);
      (*degs)[i] = std::min((*degs)[i], dmax);
    }
  };

  std::vector<uint32_t> out_deg, in_deg;
  sample_degrees(&out_deg);
  sample_degrees(&in_deg);

  std::vector<NodeId> out_stubs, in_stubs;
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t j = 0; j < out_deg[v]; ++j) out_stubs.push_back(v);
    for (uint32_t j = 0; j < in_deg[v]; ++j) in_stubs.push_back(v);
  }
  // Shuffle in-stubs; pair with out-stubs positionally.
  for (size_t i = in_stubs.size(); i > 1; --i) {
    std::swap(in_stubs[i - 1],
              in_stubs[rng.UniformBelow(static_cast<uint32_t>(i))]);
  }
  size_t pairs = std::min(out_stubs.size(), in_stubs.size());
  GraphBuilder builder(n);
  for (size_t i = 0; i < pairs; ++i) {
    if (out_stubs[i] == in_stubs[i]) continue;  // drop self-loops
    builder.AddEdge(out_stubs[i], in_stubs[i]);
  }
  return BuildWith(builder, opt);
}

Graph GenerateRmat(uint32_t scale, uint64_t m, double a, double b, double c,
                   double d, const GenOptions& opt) {
  OPIM_CHECK_GE(scale, 1u);
  OPIM_CHECK_LE(scale, 31u);
  OPIM_CHECK_MSG(std::abs(a + b + c + d - 1.0) < 1e-9,
                 "R-MAT quadrant probabilities must sum to 1");
  const uint32_t n = 1u << scale;
  Rng rng(opt.seed, 0x524d);  // "RM"
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < m; ++e) {
    uint32_t u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.UniformDouble();
      // Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
      uint32_t ubit = (r >= a + b);
      uint32_t vbit = (r >= a && r < a + b) || (r >= a + b + c);
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    if (u == v) continue;  // drop self-loops
    builder.AddEdge(u, v);
  }
  return BuildWith(builder, opt);
}

Graph GenerateGrid2D(uint32_t rows, uint32_t cols, const GenOptions& opt) {
  OPIM_CHECK_GE(rows, 1u);
  OPIM_CHECK_GE(cols, 1u);
  const uint64_t n64 = static_cast<uint64_t>(rows) * cols;
  OPIM_CHECK_LE(n64, static_cast<uint64_t>(kInvalidNode));
  GraphBuilder builder(static_cast<uint32_t>(n64));
  auto id = [cols](uint32_t r, uint32_t col) { return r * cols + col; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t col = 0; col < cols; ++col) {
      if (col + 1 < cols) {
        builder.AddEdge(id(r, col), id(r, col + 1));
        builder.AddEdge(id(r, col + 1), id(r, col));
      }
      if (r + 1 < rows) {
        builder.AddEdge(id(r, col), id(r + 1, col));
        builder.AddEdge(id(r + 1, col), id(r, col));
      }
    }
  }
  return BuildWith(builder, opt);
}

Graph GenerateComplete(uint32_t n, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  return BuildWith(builder, opt);
}

Graph GenerateStar(uint32_t n, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v);
  return BuildWith(builder, opt);
}

Graph GeneratePath(uint32_t n, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 2u);
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return BuildWith(builder, opt);
}

Graph GenerateCycle(uint32_t n, const GenOptions& opt) {
  OPIM_CHECK_GE(n, 3u);
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return BuildWith(builder, opt);
}

}  // namespace opim
