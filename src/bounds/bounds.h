// Instance-specific spread bounds — the paper's core contribution (§4, §5).
//
// Given disjoint RR-set pools R1 (nominators: greedy picked S* from them)
// and R2 (judges: independent of S*), the paper derives, each holding with
// probability >= 1 - δ_i:
//
//   σ_l(S*)   lower bound on σ(S*) from Λ2(S*)                    Eq. (5)
//   σ_u(S°)   upper bound on σ(S°) from Λ1(S*)/(1-1/e)            Eq. (8)
//   σ̂_u(S°)   tighter upper bound from the greedy-trace bound
//             Λ1ᵘ(S°) of Eq. (10)                                 Eq. (13)
//   σ⋄(S°)    Leskovec-style upper bound from Λ1⋄(S°)             Eq. (15)
//
// The reported approximation guarantee is α = σ_l(S*) / σ_upper(S°), valid
// with probability >= 1 - δ1 - δ2. OPIM⁰ / OPIM⁺ / OPIM′ differ only in
// which upper bound they use (BoundKind).
//
// The Λ coverage counts these bounds consume come from the bitset
// coverage engine: Λ2(S*) is RRCollection::CoverageOf (seed postings
// marked into a 64-bit-word scratch bitset, popcounted whole words at a
// time), and the Λ1 trace values arrive in GreedyResult from the CELF
// selection over the same bitset representation (select/greedy.cc). The
// functions here are pure arithmetic on those counts.
//
// Also here: Borgs et al.'s purely input-size-based guarantee (§3.2) for
// the baseline, and the Lemma 4.4 f/g machinery behind Figure 1.

#pragma once

#include <cstdint>

#include "select/greedy.h"
#include "select/seed_trace.h"

namespace opim {

/// Which upper bound on σ(S°) an OPIM variant uses.
enum class BoundKind {
  /// Eq. (8): Λ1(S*)/(1-1/e). The vanilla bound — OPIM⁰.
  kBasic,
  /// Eq. (13): greedy-trace bound Λ1ᵘ(S°), never worse than kBasic
  /// (Lemma 5.2) — OPIM⁺.
  kImproved,
  /// Eq. (15): Leskovec-style bound Λ1⋄(S°) at the final greedy prefix
  /// only; can be looser than kBasic — OPIM′.
  kLeskovec,
};

/// Returns "OPIM0" / "OPIM+" / "OPIM'" style short names.
const char* BoundKindName(BoundKind kind);

/// σ_l(S*) of Eq. (5): high-probability lower bound on σ(S*) from its
/// coverage `lambda2` in the θ2 judge sets. Clamped at >= 0.
double SigmaLower(uint64_t lambda2, uint64_t theta2, double scale,
                  double delta2);

/// Shared kernel of Eqs. (8)/(13)/(15):
/// (sqrt(λᵘ + a/2) + sqrt(a/2))² · n/θ1 with a = ln(1/δ1), where λᵘ is an
/// upper bound on Λ1(S°).
double SigmaUpperFromLambda(double lambda_upper, uint64_t theta1, double scale,
                            double delta1);

/// σ_u(S°) of Eq. (8), using λᵘ = Λ1(S*)/(1 - 1/e).
double SigmaUpperBasic(uint64_t lambda1, uint64_t theta1, double scale,
                       double delta1);

/// Λ1ᵘ(S°) of Eq. (10): min over greedy prefixes i = 0..k of
/// Λ1(S_i*) + Σ_{v ∈ maxMC(S_i*, k)} Λ1(v | S_i*). Requires a GreedyResult
/// produced with with_trace = true.
uint64_t LambdaUpperFromTrace(const GreedyResult& greedy);

/// Λ1⋄(S°) of §5 ("Comparison with Previous Work"): the Eq. (10) summand
/// evaluated at the final prefix i = k only.
uint64_t LambdaUpperLeskovec(const GreedyResult& greedy);

/// σ upper bound per `kind`, assembled from a traced GreedyResult.
double SigmaUpper(BoundKind kind, const GreedyResult& greedy, uint64_t theta1,
                  double scale, double delta1);

/// α = σ_l / σ_upper clamped to [0, 1] (0 when the upper bound is 0).
double ApproxRatio(double sigma_lower, double sigma_upper);

/// The σ_l / σ_upper / α triple answered for one k' <= k query from a
/// prefix-complete SeedTrace (select/seed_trace.h) — pure arithmetic,
/// zero pool scans.
struct TraceQueryBounds {
  double sigma_lower = 0.0;
  double sigma_upper = 0.0;
  double alpha = 0.0;
};

/// λᵘ at query size k' for the trace-shaped bounds: kImproved is
/// Eq. (10) restricted to the k'-prefix — min over i = 0..k' of
/// Λ1(S_i*) + (top-k' marginal sum at prefix i) — and kLeskovec is that
/// summand at i = k' only. Greedy prefix-consistency makes both equal
/// what LambdaUpperFromTrace / LambdaUpperLeskovec would return for a
/// fresh k'-selection over the same pool. kBasic has no integer λᵘ
/// (its λᵘ = Λ1/(1 - 1/e) is fractional) and is rejected with a check.
uint64_t LambdaUpperAt(const SeedTrace& trace, BoundKind kind,
                       uint32_t k_prime);

/// σ_l(S_{k'}*), σ_upper per `kind`, and α for query size k' <= trace.k(),
/// using the θ1/θ2/scale/δ1/δ2 parameters recorded in the trace. Equals
/// the bound triple a from-scratch selection + bound evaluation at k'
/// over the same pools would produce (tests/select pins this). Requires
/// AttributeJudgeCoverage to have run.
TraceQueryBounds BoundsAt(const SeedTrace& trace, BoundKind kind,
                          uint32_t k_prime);

/// Borgs et al.'s guarantee (§3.2): min{1/4, γ / (1492992 (n+m) ln n)}
/// where γ is the number of edges examined during RR-set construction.
double BorgsApproxGuarantee(uint64_t gamma, uint32_t n, uint64_t m);

/// Lemma 4.4's f(x) (decreasing in x): the Eq. (5) numerator shape as a
/// function of a = x, at coverage `lambda2`.
double LemmaF(double lambda2, double x);

/// Lemma 4.4's g(x) (increasing in x): the Eq. (8) shape with
/// λᵘ = lambda1 / (1 - 1/e).
double LemmaG(double lambda1, double x);

/// The Figure 1 quantity f(ln 2/δ)·g(ln 1/δ) / (f(ln 1/δ)·g(ln 2/δ)):
/// how close the δ1 = δ2 = δ/2 split is to the optimal split.
double DeltaSplitRatio(double lambda1, double lambda2, double delta);

}  // namespace opim
