#include "bounds/bounds.h"

#include <algorithm>
#include <cmath>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "support/math_util.h"

namespace opim {

const char* BoundKindName(BoundKind kind) {
  switch (kind) {
    case BoundKind::kBasic:
      return "OPIM0";
    case BoundKind::kImproved:
      return "OPIM+";
    case BoundKind::kLeskovec:
      return "OPIM'";
  }
  return "?";
}

double SigmaLower(uint64_t lambda2, uint64_t theta2, double scale,
                  double delta2) {
  OPIM_TR_SPAN1("sigma_lower", "bounds", "theta2", theta2);
  OPIM_TM_COUNTER_ADD("opim.bounds.eval_lower", 1);
  OPIM_CHECK_GT(theta2, 0u);
  OPIM_CHECK(delta2 > 0.0 && delta2 < 1.0);
  const double a = std::log(1.0 / delta2);
  // ((sqrt(Λ2 + 2a/9) - sqrt(a/2))² - a/18) · scale/θ2, clamped at >= 0.
  // `scale` is n for the unit-weight problem, Σ_v w_v for weighted IM.
  const double inner = SquaredSqrtDiffClamped(
                           static_cast<double>(lambda2) + 2.0 * a / 9.0,
                           a / 2.0) -
                       a / 18.0;
  return std::max(inner, 0.0) * scale / static_cast<double>(theta2);
}

double SigmaUpperFromLambda(double lambda_upper, uint64_t theta1, double scale,
                            double delta1) {
  OPIM_CHECK_GT(theta1, 0u);
  OPIM_CHECK(delta1 > 0.0 && delta1 < 1.0);
  OPIM_CHECK_GE(lambda_upper, 0.0);
  const double a = std::log(1.0 / delta1);
  return SquaredSqrtSum(lambda_upper + a / 2.0, a / 2.0) * scale /
         static_cast<double>(theta1);
}

double SigmaUpperBasic(uint64_t lambda1, uint64_t theta1, double scale,
                       double delta1) {
  return SigmaUpperFromLambda(
      static_cast<double>(lambda1) / kOneMinusInvE, theta1, scale, delta1);
}

uint64_t LambdaUpperFromTrace(const GreedyResult& greedy) {
  OPIM_CHECK_MSG(!greedy.coverage_at.empty(),
                 "LambdaUpperFromTrace needs a GreedyResult with trace");
  OPIM_CHECK_EQ(greedy.coverage_at.size(), greedy.topk_marginal_at.size());
  uint64_t best = UINT64_MAX;
  for (size_t i = 0; i < greedy.coverage_at.size(); ++i) {
    best = std::min(best, greedy.coverage_at[i] + greedy.topk_marginal_at[i]);
  }
  return best;
}

uint64_t LambdaUpperLeskovec(const GreedyResult& greedy) {
  OPIM_CHECK_MSG(!greedy.coverage_at.empty(),
                 "LambdaUpperLeskovec needs a GreedyResult with trace");
  return greedy.coverage_at.back() + greedy.topk_marginal_at.back();
}

double SigmaUpper(BoundKind kind, const GreedyResult& greedy, uint64_t theta1,
                  double scale, double delta1) {
  OPIM_TR_SPAN1("sigma_upper", "bounds", "theta1", theta1);
  switch (kind) {
    case BoundKind::kBasic:
      OPIM_TM_COUNTER_ADD("opim.bounds.eval_basic", 1);
      return SigmaUpperBasic(greedy.coverage, theta1, scale, delta1);
    case BoundKind::kImproved:
      OPIM_TM_COUNTER_ADD("opim.bounds.eval_improved", 1);
      return SigmaUpperFromLambda(
          static_cast<double>(LambdaUpperFromTrace(greedy)), theta1, scale,
          delta1);
    case BoundKind::kLeskovec:
      OPIM_TM_COUNTER_ADD("opim.bounds.eval_leskovec", 1);
      return SigmaUpperFromLambda(
          static_cast<double>(LambdaUpperLeskovec(greedy)), theta1, scale,
          delta1);
  }
  return 0.0;
}

double ApproxRatio(double sigma_lower, double sigma_upper) {
  if (sigma_upper <= 0.0) return 0.0;
  return std::clamp(sigma_lower / sigma_upper, 0.0, 1.0);
}

uint64_t LambdaUpperAt(const SeedTrace& trace, BoundKind kind,
                       uint32_t k_prime) {
  OPIM_CHECK_LE(k_prime, trace.k());
  switch (kind) {
    case BoundKind::kBasic:
      OPIM_CHECK_MSG(false, "kBasic has no integer lambda-upper; use BoundsAt");
      return 0;
    case BoundKind::kImproved: {
      // Eq. (10) over the k'-prefix: row i's top-k' column is exactly the
      // summand the fresh k'-selection's topk_marginal_at[i] would hold.
      uint64_t best = UINT64_MAX;
      for (uint32_t i = 0; i <= k_prime; ++i) {
        best = std::min(best, trace.CoverageAt(i) +
                                  trace.TopMarginalAt(i, k_prime));
      }
      return best;
    }
    case BoundKind::kLeskovec:
      return trace.CoverageAt(k_prime) + trace.TopMarginalAt(k_prime, k_prime);
  }
  return 0;
}

TraceQueryBounds BoundsAt(const SeedTrace& trace, BoundKind kind,
                          uint32_t k_prime) {
  OPIM_TR_SPAN2("bounds_at", "bounds", "k_prime", k_prime, "theta1",
                trace.theta1());
  OPIM_TM_COUNTER_ADD("opim.bounds.eval_trace_query", 1);
  OPIM_CHECK_LE(k_prime, trace.k());
  TraceQueryBounds out;
  out.sigma_lower = SigmaLower(trace.Lambda2At(k_prime), trace.theta2(),
                               trace.scale(), trace.delta2());
  switch (kind) {
    case BoundKind::kBasic:
      out.sigma_upper = SigmaUpperBasic(trace.CoverageAt(k_prime),
                                        trace.theta1(), trace.scale(),
                                        trace.delta1());
      break;
    case BoundKind::kImproved:
    case BoundKind::kLeskovec:
      out.sigma_upper = SigmaUpperFromLambda(
          static_cast<double>(LambdaUpperAt(trace, kind, k_prime)),
          trace.theta1(), trace.scale(), trace.delta1());
      break;
  }
  out.alpha = ApproxRatio(out.sigma_lower, out.sigma_upper);
  return out;
}

double BorgsApproxGuarantee(uint64_t gamma, uint32_t n, uint64_t m) {
  if (n < 2) return 0.0;
  const double beta = static_cast<double>(gamma) /
                      (1492992.0 * static_cast<double>(n + m) * std::log(n));
  return std::min(0.25, beta);
}

double LemmaF(double lambda2, double x) {
  return SquaredSqrtDiffClamped(lambda2 + 2.0 * x / 9.0, x / 2.0) - x / 18.0;
}

double LemmaG(double lambda1, double x) {
  return SquaredSqrtSum(lambda1 / kOneMinusInvE + x / 2.0, x / 2.0);
}

double DeltaSplitRatio(double lambda1, double lambda2, double delta) {
  OPIM_CHECK(delta > 0.0 && delta < 1.0);
  const double half = std::log(2.0 / delta);
  const double full = std::log(1.0 / delta);
  const double denom = LemmaF(lambda2, full) * LemmaG(lambda1, half);
  if (denom <= 0.0) return 0.0;
  return LemmaF(lambda2, half) * LemmaG(lambda1, full) / denom;
}

}  // namespace opim
