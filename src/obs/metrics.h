// Low-overhead metrics primitives for the telemetry subsystem.
//
// A MetricsRegistry owns named Counters, Gauges and Histograms. Hot paths
// hold raw pointers obtained once via FindOrCreate* (metric objects are
// never deallocated while their registry lives, so cached pointers stay
// valid) and record with relaxed atomics:
//
//   * Counter — monotonically increasing u64, sharded across cache lines
//     by thread so concurrent increments never contend; shards are summed
//     on read.
//   * Gauge — a plain signed value (Set/Add), for "last observed" numbers
//     like the resolved thread count.
//   * Histogram — power-of-two buckets (bucket b counts values with
//     bit_width b, i.e. [2^(b-1), 2^b - 1]), plus a running sum. Used for
//     latency distributions in microseconds.
//
// Snapshot() copies everything into a plain MetricsSnapshot, so readers
// never block writers and a captured snapshot is immune to later updates.
// A registry constructed disabled (MetricsRegistry::Null()) hands out
// shared sink metrics and reports an empty snapshot — the "null registry"
// runtime gate; compile-time gating is in obs/telemetry.h.
//
// Metrics are observe-only by contract: nothing in the library may read a
// metric to make an algorithmic decision, which keeps fixed-seed runs
// byte-identical with telemetry on or off.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/macros.h"

namespace opim {

class JsonWriter;

/// Monotonic counter with per-thread shard striping. Add() is safe from
/// any thread and wait-free; Value() sums the shards (approximate only
/// while writers are mid-flight, exact once they are quiesced).
class Counter {
 public:
  static constexpr unsigned kNumShards = 16;

  Counter() = default;
  OPIM_DISALLOW_COPY(Counter);

  /// Adds `delta` to this thread's shard.
  void Add(uint64_t delta = 1) noexcept {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (test/benchmark support; not atomic vs writers).
  void Reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Stable per-thread shard slot: threads take round-robin slots on first
  /// use, so up to kNumShards concurrent writers never share a cache line.
  static unsigned ShardIndex() noexcept {
    static std::atomic<unsigned> next_slot{0};
    thread_local const unsigned slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
    return slot;
  }

  std::array<Shard, kNumShards> shards_;
};

/// Last-observed signed value. Single atomic; gauges are written rarely.
class Gauge {
 public:
  Gauge() = default;
  OPIM_DISALLOW_COPY(Gauge);

  void Set(int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two-bucket histogram over uint64 samples. Record() is two
/// relaxed atomic adds; bucket b (0..64) holds values whose bit_width is
/// b, i.e. bucket 0 = {0} and bucket b = [2^(b-1), 2^b - 1].
class Histogram {
 public:
  static constexpr unsigned kNumBuckets = 65;

  Histogram() = default;
  OPIM_DISALLOW_COPY(Histogram);

  void Record(uint64_t value) noexcept {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket a value falls into: its bit width.
  static unsigned BucketIndex(uint64_t value) noexcept {
    return static_cast<unsigned>(std::bit_width(value));
  }
  /// Inclusive [lower, upper] range of bucket `b`.
  static uint64_t BucketLower(unsigned b) noexcept {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t BucketUpper(unsigned b) noexcept {
    return b >= 64 ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
  }

  uint64_t Count() const noexcept {
    uint64_t c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }
  uint64_t Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t BucketCount(unsigned b) const noexcept {
    OPIM_CHECK_LT(b, kNumBuckets);
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// One counter in a snapshot.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

/// One gauge in a snapshot.
struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

/// One histogram in a snapshot; only non-empty buckets are kept.
struct HistogramSample {
  struct Bucket {
    uint64_t lower = 0;   // inclusive
    uint64_t upper = 0;   // inclusive
    uint64_t count = 0;
  };
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<Bucket> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t ApproxPercentile(double p) const;
};

/// Point-in-time copy of a registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers for tests and report assembly; nullptr when absent.
  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;

  /// Serializes as a JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} (see docs/observability.md for the schema).
  std::string ToJson() const;

  /// Writes the same object into an in-progress document (after a Key()
  /// or as an array/top-level value).
  void AppendTo(JsonWriter& w) const;
};

/// Owner of named metrics. Registration (FindOrCreate*) takes a mutex and
/// is expected to happen once per call site (cache the pointer); recording
/// through the returned objects is lock-free. Metric objects live as long
/// as the registry.
class MetricsRegistry {
 public:
  /// `enabled` = false builds a null registry: FindOrCreate* hands out
  /// shared sink metrics and Snapshot() is empty.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}
  OPIM_DISALLOW_COPY(MetricsRegistry);

  /// The process-wide registry all OPIM_TM_* instrumentation records to.
  static MetricsRegistry& Default();
  /// A shared always-disabled registry (runtime off switch for callers
  /// that thread a registry through explicitly).
  static MetricsRegistry& Null();

  Counter* FindOrCreateCounter(std::string_view name);
  Gauge* FindOrCreateGauge(std::string_view name);
  Histogram* FindOrCreateHistogram(std::string_view name);

  /// Copies every metric into a plain snapshot (empty when disabled).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric in place. Previously handed-out
  /// pointers stay valid — this resets values, not identities.
  void ResetValues();

  bool enabled() const { return enabled_; }

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  // Node-based maps: insertion never moves existing metric objects.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  // Sinks handed out by a disabled registry.
  Counter null_counter_;
  Gauge null_gauge_;
  Histogram null_histogram_;
};

}  // namespace opim
