#include "obs/json_reader.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "support/macros.h"

namespace opim {

bool JsonValue::AsBool() const {
  OPIM_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsNumber() const {
  OPIM_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  OPIM_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  OPIM_CHECK(is_array());
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  OPIM_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    OPIM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kJsonMaxDepth) {
      return Error("nesting deeper than " + std::to_string(kJsonMaxDepth));
    }
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        OPIM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      OPIM_ASSIGN_OR_RETURN(std::string key, ParseString());
      for (const auto& [k, v] : members) {
        if (k == key) return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      ++pos_;
      SkipWhitespace();
      OPIM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return JsonValue::MakeObject(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(items));
    }
    for (;;) {
      SkipWhitespace();
      OPIM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return JsonValue::MakeArray(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (AtEnd()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          OPIM_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            OPIM_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') { ++pos_; ++n; }
      return n;
    };
    if (!AtEnd() && Peek() == '0') {
      ++pos_;  // a leading zero must stand alone
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Error("leading zero in number");
      }
    } else if (digits() == 0) {
      return Error("invalid number");
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (digits() == 0) return Error("missing digits after decimal point");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (digits() == 0) return Error("missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Error("number out of range: " + token);
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open: " + path);
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read failed: " + path);
  }
  Result<JsonValue> parsed = ParseJson(content);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace opim
