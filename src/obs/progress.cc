#include "obs/progress.h"

#include <unistd.h>

#include <cstdio>

#include "obs/metrics.h"
#include "support/resource_usage.h"
#include "support/run_control.h"

namespace opim {

namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Default().FindOrCreateCounter(name)->Value();
}

}  // namespace

ProgressHeartbeat::ProgressHeartbeat(const RunControl* control)
    : ProgressHeartbeat(control, Options()) {}

ProgressHeartbeat::ProgressHeartbeat(const RunControl* control,
                                     const Options& options)
    : control_(control),
      options_(options),
      start_(std::chrono::steady_clock::now()),
      base_iterations_(CounterValue("opim.opimc.iterations")),
      base_rr_sets_(CounterValue("opim.rrset.sets_generated")) {
  OPIM_CHECK_GT(options_.interval_seconds, 0.0);
  thread_ = std::thread([this] { Loop(); });
}

ProgressHeartbeat::~ProgressHeartbeat() { Stop(); }

void ProgressHeartbeat::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

uint64_t ProgressHeartbeat::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

size_t ProgressHeartbeat::FormatLine(char* buf, size_t buf_size) const {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const uint64_t iters =
      CounterValue("opim.opimc.iterations") - base_iterations_;
  const uint64_t rr_sets =
      CounterValue("opim.rrset.sets_generated") - base_rr_sets_;

  int len = std::snprintf(buf, buf_size,
                          "opim: progress t=%.0fs iter=%llu rr_sets=%llu",
                          elapsed, static_cast<unsigned long long>(iters),
                          static_cast<unsigned long long>(rr_sets));
  if (len < 0) return 0;
  size_t pos = static_cast<size_t>(len) < buf_size
                   ? static_cast<size_t>(len)
                   : buf_size - 1;
  auto append = [&](const char* fmt, auto... args) {
    if (pos >= buf_size - 1) return;
    const int n = std::snprintf(buf + pos, buf_size - pos, fmt, args...);
    if (n > 0) {
      pos += static_cast<size_t>(n) < buf_size - pos
                 ? static_cast<size_t>(n)
                 : buf_size - pos - 1;
    }
  };
  if (control_ != nullptr) {
    append(" peak_rr_mb=%.1f",
           static_cast<double>(control_->peak_bytes()) / (1024.0 * 1024.0));
    if (control_->has_deadline()) {
      append(" deadline_slack_s=%.1f", control_->deadline_slack_seconds());
    }
    if (control_->Stopped()) {
      append(" stopping=%s", StopReasonName(control_->reason()));
    }
  }
  // Process residency next to the pool accounting: rss is the kernel's
  // view, and the major-fault delta exposes disk traffic (cold mmap
  // loads, spill fault-ins) the byte counters can't see.
  const ResourceUsage ru = ReadResourceUsage();
  append(" rss_mb=%.1f maj_flt=%llu min_flt=%llu",
         static_cast<double>(ru.peak_rss_bytes) / (1024.0 * 1024.0),
         static_cast<unsigned long long>(ru.major_page_faults),
         static_cast<unsigned long long>(ru.minor_page_faults));
  append("\n");
  return pos;
}

void ProgressHeartbeat::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.interval_seconds));
  char line[320];
  for (;;) {
    bool last = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock, interval, [this] { return stopping_; });
      last = stopping_;
    }
    const size_t len = FormatLine(line, sizeof(line));
    if (len > 0) {
      // One short write(2) per line: async-signal-safe and unbuffered, so
      // a signal-tripped process never leaves a half-flushed stdio stream.
      ssize_t written [[maybe_unused]] = write(options_.fd, line, len);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lines_written_;
    }
    if (last) return;
  }
}

}  // namespace opim
