#include "obs/run_report.h"

#include <cstdio>

#include "obs/json.h"

namespace opim {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("opim.run_report.v1");

  w.Key("info").BeginObject();
  for (const auto& [key, value] : info_) w.Key(key).Value(value);
  w.EndObject();

  w.Key("results").BeginObject();
  for (const auto& [key, value] : results_) w.Key(key).Value(value);
  w.EndObject();

  w.Key("iterations").BeginArray();
  for (const Row& row : iterations_) {
    w.BeginObject();
    for (const auto& [column, value] : row.values) w.Key(column).Value(value);
    w.EndObject();
  }
  w.EndArray();

  // Optional section: present exactly when the run answered --query-ks
  // questions, so pre-existing reports (and their consumers) are
  // untouched.
  if (!queries_.empty()) {
    w.Key("queries").BeginArray();
    for (const QueryAnswer& q : queries_) {
      w.BeginObject();
      w.Key("k").Value(static_cast<double>(q.k));
      w.Key("alpha").Value(q.alpha);
      w.Key("sigma_lower").Value(q.sigma_lower);
      w.Key("sigma_upper").Value(q.sigma_upper);
      w.Key("seeds").BeginArray();
      for (uint32_t v : q.seeds) w.Value(static_cast<double>(v));
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }

  w.Key("metrics");
  metrics_.AppendTo(w);

  w.EndObject();
  return w.str();
}

std::string RunReport::CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';  // RFC 4180: double embedded quotes
    out += c;
  }
  out += '"';
  return out;
}

std::string RunReport::IterationsToCsv() const {
  std::string out;
  if (iterations_.empty()) return out;
  const Row& first = iterations_.front();
  for (size_t i = 0; i < first.values.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(first.values[i].first);
  }
  out += '\n';
  char buf[40];
  for (const Row& row : iterations_) {
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%.17g", row.values[i].second);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Status RunReport::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

Status RunReport::WriteIterationsCsv(const std::string& path) const {
  return WriteFile(path, IterationsToCsv());
}

}  // namespace opim
