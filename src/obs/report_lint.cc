#include "obs/report_lint.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

namespace opim {

namespace {

void Add(std::vector<std::string>* out, std::string msg) {
  out->push_back(std::move(msg));
}

/// Checks that `doc` has a string member `schema` equal to `expected`.
void CheckSchemaTag(const JsonValue& doc, const std::string& expected,
                    std::vector<std::string>* out) {
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr) {
    Add(out, "missing \"schema\" version tag");
  } else if (!schema->is_string()) {
    Add(out, "\"schema\" is not a string");
  } else if (schema->AsString() != expected) {
    Add(out, "unknown schema version \"" + schema->AsString() +
                 "\" (expected \"" + expected + "\")");
  }
}

/// All members of `obj` must be numbers; `where` names it in messages.
void CheckNumericObject(const JsonValue& obj, const std::string& where,
                        std::vector<std::string>* out) {
  for (const auto& [key, value] : obj.AsObject()) {
    if (!value.is_number()) {
      Add(out, where + "." + key + " is not a number");
    } else if (!std::isfinite(value.AsNumber())) {
      Add(out, where + "." + key + " is not finite");
    }
  }
}

}  // namespace

std::vector<std::string> LintRunReportJson(const JsonValue& doc) {
  std::vector<std::string> out;
  if (!doc.is_object()) {
    Add(&out, "run report is not a JSON object");
    return out;
  }
  CheckSchemaTag(doc, "opim.run_report.v1", &out);

  const JsonValue* info = doc.Find("info");
  if (info == nullptr || !info->is_object()) {
    Add(&out, "missing or non-object \"info\" section");
  } else {
    for (const auto& [key, value] : info->AsObject()) {
      if (!value.is_string()) Add(&out, "info." + key + " is not a string");
    }
  }

  const JsonValue* results = doc.Find("results");
  if (results == nullptr || !results->is_object()) {
    Add(&out, "missing or non-object \"results\" section");
  } else {
    CheckNumericObject(*results, "results", &out);
    // Resource accounting, when present, must be plausible: a live
    // process always has a positive peak RSS, and fault counters cannot
    // be negative. (Absence is fine — older reports predate the fields.)
    const JsonValue* rss = results->Find("peak_rss_bytes");
    if (rss != nullptr && rss->is_number() && !(rss->AsNumber() > 0.0)) {
      Add(&out, "results.peak_rss_bytes is not positive");
    }
    for (const char* key : {"major_page_faults", "minor_page_faults"}) {
      const JsonValue* flt = results->Find(key);
      if (flt != nullptr && flt->is_number() && flt->AsNumber() < 0.0) {
        Add(&out, std::string("results.") + key + " is negative");
      }
    }
  }

  const JsonValue* iterations = doc.Find("iterations");
  if (iterations == nullptr || !iterations->is_array()) {
    Add(&out, "missing or non-array \"iterations\" section");
  } else {
    const auto& rows = iterations->AsArray();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!rows[i].is_object()) {
        Add(&out, "iterations[" + std::to_string(i) + "] is not an object");
        continue;
      }
      CheckNumericObject(rows[i], "iterations[" + std::to_string(i) + "]",
                         &out);
      // Every row must repeat the first row's columns in order — the CSV
      // view assumes it, so the JSON must already satisfy it.
      if (i > 0 && rows[i].AsObject().size() != rows[0].AsObject().size()) {
        Add(&out, "iterations[" + std::to_string(i) +
                      "] has a different column count than iterations[0]");
      }
    }
  }

  // "queries" is optional (present iff the run used --query-ks). When it
  // exists it must be a non-empty array of per-k' answer rows: a positive
  // integer k, finite sigma bounds with sigma_lower <= sigma_upper,
  // alpha in [0, 1], and 1..k numeric seed ids (fewer than k only when
  // the graph has fewer than k nodes). Rows must be in strictly
  // increasing k order — the CLI sorts the requested sizes.
  const JsonValue* queries = doc.Find("queries");
  if (queries != nullptr) {
    if (!queries->is_array()) {
      Add(&out, "\"queries\" is not an array");
    } else if (queries->AsArray().empty()) {
      Add(&out, "\"queries\" is present but empty");
    } else {
      const auto& rows = queries->AsArray();
      double prev_k = 0.0;
      for (size_t i = 0; i < rows.size(); ++i) {
        const std::string at = "queries[" + std::to_string(i) + "]";
        if (!rows[i].is_object()) {
          Add(&out, at + " is not an object");
          continue;
        }
        double k_value = 0.0;
        const JsonValue* k_field = rows[i].Find("k");
        if (k_field == nullptr || !k_field->is_number() ||
            k_field->AsNumber() < 1.0 ||
            k_field->AsNumber() != std::floor(k_field->AsNumber())) {
          Add(&out, at + ".k is not a positive integer");
        } else {
          k_value = k_field->AsNumber();
          if (k_value <= prev_k) {
            Add(&out, at + ".k is not strictly increasing");
          }
          prev_k = k_value;
        }
        for (const char* key : {"alpha", "sigma_lower", "sigma_upper"}) {
          const JsonValue* field = rows[i].Find(key);
          if (field == nullptr || !field->is_number() ||
              !std::isfinite(field->AsNumber())) {
            Add(&out, at + "." + key + " is not a finite number");
          }
        }
        const JsonValue* alpha = rows[i].Find("alpha");
        if (alpha != nullptr && alpha->is_number() &&
            (alpha->AsNumber() < 0.0 || alpha->AsNumber() > 1.0)) {
          Add(&out, at + ".alpha is outside [0, 1]");
        }
        const JsonValue* lo = rows[i].Find("sigma_lower");
        const JsonValue* hi = rows[i].Find("sigma_upper");
        if (lo != nullptr && hi != nullptr && lo->is_number() &&
            hi->is_number() && lo->AsNumber() > hi->AsNumber()) {
          Add(&out, at + ".sigma_lower exceeds sigma_upper");
        }
        const JsonValue* seeds = rows[i].Find("seeds");
        if (seeds == nullptr || !seeds->is_array()) {
          Add(&out, at + ".seeds is missing or not an array");
        } else {
          const auto& ids = seeds->AsArray();
          if (ids.empty() ||
              (k_value > 0.0 && static_cast<double>(ids.size()) > k_value)) {
            Add(&out, at + ".seeds has " + std::to_string(ids.size()) +
                          " entries, expected 1..k = " +
                          std::to_string(static_cast<uint64_t>(k_value)));
          }
          for (size_t j = 0; j < ids.size(); ++j) {
            if (!ids[j].is_number() || ids[j].AsNumber() < 0.0 ||
                ids[j].AsNumber() != std::floor(ids[j].AsNumber())) {
              Add(&out, at + ".seeds[" + std::to_string(j) +
                            "] is not a non-negative integer");
            }
          }
        }
      }
    }
  }

  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    Add(&out, "missing or non-object \"metrics\" section");
  } else {
    for (const char* section : {"counters", "gauges", "histograms"}) {
      const JsonValue* sub = metrics->Find(section);
      if (sub == nullptr || !sub->is_object()) {
        Add(&out, std::string("metrics.") + section +
                      " is missing or not an object");
      }
    }
    const JsonValue* counters = metrics->Find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->AsObject()) {
        if (!value.is_number() || value.AsNumber() < 0.0) {
          Add(&out, "metrics.counters." + key +
                        " is not a non-negative number");
        }
      }
    }
  }
  return out;
}

std::vector<std::string> LintTraceJson(const JsonValue& doc) {
  std::vector<std::string> out;
  if (!doc.is_object()) {
    Add(&out, "trace is not a JSON object");
    return out;
  }
  CheckSchemaTag(doc, "opim.trace.v1", &out);

  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    Add(&out, "missing or non-array \"traceEvents\"");
    return out;
  }

  // Per-tid timeline state for the ordering and nesting checks.
  struct TidState {
    double last_ts = -1.0;
    std::vector<std::pair<double, double>> open;  // [begin, end) stack
  };
  std::map<int64_t, TidState> tids;

  const auto& items = events->AsArray();
  for (size_t i = 0; i < items.size(); ++i) {
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    const JsonValue& ev = items[i];
    if (!ev.is_object()) {
      Add(&out, at + " is not an object");
      continue;
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      Add(&out, at + " has no string \"ph\"");
      continue;
    }
    const JsonValue* name = ev.Find("name");
    if (name == nullptr || !name->is_string() || name->AsString().empty()) {
      Add(&out, at + " has no non-empty string \"name\"");
    }
    const JsonValue* tid = ev.Find("tid");
    if (tid == nullptr || !tid->is_number()) {
      Add(&out, at + " has no numeric \"tid\"");
      continue;
    }
    const std::string& phase = ph->AsString();
    if (phase == "M") continue;  // metadata events carry no timestamps
    if (phase != "X") {
      Add(&out, at + " has unsupported phase \"" + phase + "\"");
      continue;
    }
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* dur = ev.Find("dur");
    if (ts == nullptr || !ts->is_number()) {
      Add(&out, at + " (\"ph\":\"X\") has no numeric \"ts\"");
      continue;
    }
    if (dur == nullptr || !dur->is_number()) {
      Add(&out, at + " (\"ph\":\"X\") has no numeric \"dur\"");
      continue;
    }
    const double begin = ts->AsNumber();
    const double duration = dur->AsNumber();
    if (begin < 0.0) {
      Add(&out, at + " has negative timestamp");
      continue;
    }
    if (duration < 0.0) {
      Add(&out, at + " has negative duration");
      continue;
    }
    TidState& state = tids[static_cast<int64_t>(tid->AsNumber())];
    if (begin < state.last_ts) {
      Add(&out, at + " breaks per-thread timestamp monotonicity (ts=" +
                    std::to_string(begin) + " after ts=" +
                    std::to_string(state.last_ts) + ")");
    }
    state.last_ts = std::max(state.last_ts, begin);
    // Nesting: pop finished spans, then the new span must fit inside the
    // enclosing one (same-thread spans either nest or are disjoint).
    const double end = begin + duration;
    while (!state.open.empty() && state.open.back().second <= begin) {
      state.open.pop_back();
    }
    if (!state.open.empty() && end > state.open.back().second) {
      Add(&out, at + " overlaps the enclosing span without nesting ([" +
                    std::to_string(begin) + ", " + std::to_string(end) +
                    ") vs enclosing end " +
                    std::to_string(state.open.back().second) + ")");
    }
    state.open.emplace_back(begin, end);
  }

  // otherData bookkeeping, when present, must be consistent with the
  // document (recorded_events counts "ph":"X" events).
  const JsonValue* other = doc.Find("otherData");
  if (other != nullptr && other->is_object()) {
    const JsonValue* dropped = other->Find("dropped_events");
    if (dropped != nullptr &&
        (!dropped->is_number() || dropped->AsNumber() < 0.0)) {
      Add(&out, "otherData.dropped_events is not a non-negative number");
    }
    const JsonValue* recorded = other->Find("recorded_events");
    if (recorded != nullptr && recorded->is_number()) {
      uint64_t x_events = 0;
      for (const JsonValue& ev : items) {
        const JsonValue* ph = ev.is_object() ? ev.Find("ph") : nullptr;
        if (ph != nullptr && ph->is_string() && ph->AsString() == "X") {
          ++x_events;
        }
      }
      if (static_cast<double>(x_events) != recorded->AsNumber()) {
        Add(&out, "otherData.recorded_events (" +
                      std::to_string(recorded->AsNumber()) +
                      ") does not match the " + std::to_string(x_events) +
                      " \"ph\":\"X\" events in the file");
      }
    }
  }
  return out;
}

}  // namespace opim
