// Scoped and phase timers built on support/Stopwatch, feeding Histograms.
//
//   * ScopedTimer — RAII: records the scope's wall time, in microseconds,
//     into a Histogram on destruction (nullptr histogram = measure only).
//   * PhaseTimer — a run-scoped accumulator of named, non-overlapping
//     phases ("generate", "greedy", "bounds", ...): Start(p) closes the
//     current phase and opens p; per-phase totals come back in first-use
//     order and can be published into a registry as histograms.
//
// Timers observe, never steer: elapsed times must not influence any
// algorithmic choice (see obs/metrics.h).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "support/stopwatch.h"

namespace opim {

/// Records the lifetime of a scope into `histogram` (in microseconds).
class ScopedTimer {
 public:
  /// `histogram` may be nullptr to time without recording.
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }
  OPIM_DISALLOW_COPY(ScopedTimer);

  /// Microseconds since construction (monotone non-decreasing).
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(watch_.ElapsedSeconds() * 1e6);
  }
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
};

/// Wall-time accumulator over a sequence of named phases.
class PhaseTimer {
 public:
  /// Closes the current phase (if any) and starts accumulating `phase`.
  /// Re-entering a name resumes its running total.
  void Start(std::string_view phase);

  /// Closes the current phase; further time is unattributed until the
  /// next Start().
  void Stop();

  /// Accumulated seconds for `phase` (0 for an unknown name). Includes
  /// the in-flight segment if `phase` is currently open.
  double Seconds(std::string_view phase) const;

  /// (phase, seconds) in first-start order; excludes any in-flight
  /// segment (call Stop() first for final numbers).
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  /// Sum over all closed phases.
  double TotalSeconds() const;

  /// Records each phase total into `registry` as a histogram named
  /// "<prefix><phase>_us", one sample per phase, in microseconds.
  void PublishTo(MetricsRegistry& registry, std::string_view prefix) const;

 private:
  /// Returns the index of `phase` in phases_, appending it if new.
  size_t FindOrAdd(std::string_view phase);

  std::vector<std::pair<std::string, double>> phases_;
  Stopwatch watch_;
  // Index of the open phase in phases_, or npos when stopped.
  size_t current_ = kNone;
  static constexpr size_t kNone = static_cast<size_t>(-1);
};

}  // namespace opim
