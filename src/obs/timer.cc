#include "obs/timer.h"

#include <algorithm>

namespace opim {

size_t PhaseTimer::FindOrAdd(std::string_view phase) {
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].first == phase) return i;
  }
  phases_.emplace_back(std::string(phase), 0.0);
  return phases_.size() - 1;
}

void PhaseTimer::Start(std::string_view phase) {
  Stop();
  current_ = FindOrAdd(phase);
  watch_.Restart();
}

void PhaseTimer::Stop() {
  if (current_ == kNone) return;
  phases_[current_].second += watch_.ElapsedSeconds();
  current_ = kNone;
}

double PhaseTimer::Seconds(std::string_view phase) const {
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].first == phase) {
      double total = phases_[i].second;
      if (i == current_) total += watch_.ElapsedSeconds();
      return total;
    }
  }
  return 0.0;
}

double PhaseTimer::TotalSeconds() const {
  double total = 0.0;
  for (const auto& [name, seconds] : phases_) total += seconds;
  return total;
}

void PhaseTimer::PublishTo(MetricsRegistry& registry,
                           std::string_view prefix) const {
  for (const auto& [name, seconds] : phases_) {
    std::string metric;
    metric.reserve(prefix.size() + name.size() + 3);
    metric.append(prefix).append(name).append("_us");
    registry.FindOrCreateHistogram(metric)->Record(
        static_cast<uint64_t>(seconds * 1e6));
  }
}

}  // namespace opim
