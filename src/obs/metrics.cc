#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace opim {

namespace {

template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         std::string_view name) {
  // Snapshots are sorted by name (map iteration order), so binary search.
  auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& s, std::string_view n) { return s.name < n; });
  if (it == samples.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

uint64_t HistogramSample::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen > rank || seen == count) return b.upper;
  }
  return buckets.empty() ? 0 : buckets.back().upper;
}

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const {
  return FindByName(counters, name);
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  return FindByName(gauges, name);
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  return FindByName(histograms, name);
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  AppendTo(w);
  return w.str();
}

void MetricsSnapshot::AppendTo(JsonWriter& w) const {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const CounterSample& c : counters) w.Key(c.name).Value(c.value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const GaugeSample& g : gauges) w.Key(g.name).Value(g.value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const HistogramSample& h : histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("mean").Value(h.Mean());
    w.Key("p50").Value(h.ApproxPercentile(0.5));
    w.Key("p99").Value(h.ApproxPercentile(0.99));
    w.Key("buckets").BeginArray();
    for (const HistogramSample::Bucket& b : h.buckets) {
      w.BeginObject();
      w.Key("lower").Value(b.lower);
      w.Key("upper").Value(b.upper);
      w.Key("count").Value(b.count);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry(true);
  return *registry;
}

MetricsRegistry& MetricsRegistry::Null() {
  static MetricsRegistry* const registry = new MetricsRegistry(false);
  return *registry;
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name) {
  if (!enabled_) return &null_counter_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name) {
  if (!enabled_) return &null_gauge_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(std::string_view name) {
  if (!enabled_) return &null_histogram_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  if (!enabled_) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.sum = hist->Sum();
    for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t c = hist->BucketCount(b);
      if (c == 0) continue;
      sample.count += c;
      sample.buckets.push_back(
          {Histogram::BucketLower(b), Histogram::BucketUpper(b), c});
    }
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void MetricsRegistry::ResetValues() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace opim
