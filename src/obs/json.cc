#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "support/macros.h"

namespace opim {

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the separating comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  OPIM_CHECK_MSG(!has_element_.empty() && !pending_key_,
                 "EndObject with no open container or a dangling key");
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  OPIM_CHECK_MSG(!has_element_.empty() && !pending_key_,
                 "EndArray with no open container or a dangling key");
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  OPIM_CHECK_MSG(!has_element_.empty() && !pending_key_,
                 "Key outside an object or after another key");
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace opim
