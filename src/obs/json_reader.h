// Checked JSON reader for the telemetry artifacts opim emits.
//
// obs/json.h is a writer only; this is the matching reader, used by
// tools/report_lint to machine-check that emitted run reports and trace
// files are well-formed. It is a strict RFC 8259 recursive-descent parser:
//
//   * every syntax error is a Status carrying the byte offset, never a
//     crash or a partially-filled value,
//   * nesting depth is bounded (kMaxDepth) so adversarial input cannot
//     overflow the stack,
//   * \u escapes are decoded to UTF-8, including surrogate pairs,
//   * object members preserve document order (run reports and traces are
//     checked for ordering invariants, so a map would lose information);
//     duplicate keys are rejected.
//
// Numbers are held as double (sufficient for the integer ranges the
// telemetry schemas emit: timestamps and counters fit in 2^53) with the
// original token kept for error messages.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace opim {

/// One parsed JSON value. A tree of these is cheap enough for the file
/// sizes report_lint handles (reports and traces are a few MB at most).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors check the kind (OPIM_CHECK); use the predicates first.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  static JsonValue MakeNull();
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Errors are InvalidArgument with a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Reads `path` and parses it (IOError on read failure).
Result<JsonValue> ParseJsonFile(const std::string& path);

/// Maximum container nesting ParseJson accepts.
inline constexpr int kJsonMaxDepth = 64;

}  // namespace opim
