// Minimal streaming JSON writer for the telemetry run reports.
//
// Emits syntactically valid RFC 8259 JSON: string escaping, comma
// placement and nesting are handled here so call sites only state
// structure. Non-finite doubles serialize as null (JSON has no NaN/Inf).
// This is a writer only — the library never parses JSON.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace opim {

/// Streaming writer: BeginObject/Key/Value/EndObject calls append to an
/// internal buffer, retrieved with str(). Misnesting is a programming
/// error and trips OPIM_CHECK.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The document so far. Valid JSON once every Begin has been Ended.
  const std::string& str() const { return out_; }

  /// Escapes `s` for inclusion in a JSON string literal (no quotes added).
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: whether it already holds an element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace opim
