// Leveled diagnostic logging with compile-time and runtime filtering.
//
//   OPIM_LOG(kInfo) << "generated " << n << " RR sets";
//
// Severity below OPIM_LOG_MIN_LEVEL (an integer macro, default 0 = debug)
// compiles to nothing — the stream operands are never evaluated. At
// runtime, messages below the level set with SetLogLevel() are skipped
// (operands unevaluated there too, via the short-circuiting macro). The
// default runtime level is kWarn so library instrumentation stays silent
// unless a caller (e.g. opim_cli --log-level=debug) opts in.
//
// Output goes to stderr as one line per message:
//   [opim I 12.345 file.cc:42] message
// so stdout (tables, machine-parsed results) is never polluted.

#pragma once

#include <sstream>
#include <string_view>

namespace opim {

/// Message severities, ordered; kOff disables everything at runtime.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Short uppercase name ("DEBUG", "INFO", ...); "OFF" for kOff.
const char* LogLevelName(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Returns false (and leaves *out untouched) for anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Runtime threshold: messages with severity < level are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when `severity` passes the runtime filter.
bool LogLevelEnabled(LogLevel severity);

namespace internal {

/// Collects one message and writes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel severity, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Makes the macro's ternary arms agree on type void (glog's trick).
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace opim

/// Compile-time floor: severities below this integer (LogLevel values)
/// are removed entirely. Define e.g. -DOPIM_LOG_MIN_LEVEL=2 to compile
/// out debug and info logging.
#ifndef OPIM_LOG_MIN_LEVEL
#define OPIM_LOG_MIN_LEVEL 0
#endif

/// Streams a message at `severity` (one of kDebug/kInfo/kWarn/kError).
/// Operands are evaluated only when the message passes both filters.
#define OPIM_LOG(severity)                                                  \
  (static_cast<int>(::opim::LogLevel::severity) < (OPIM_LOG_MIN_LEVEL) ||   \
   !::opim::LogLevelEnabled(::opim::LogLevel::severity))                    \
      ? (void)0                                                             \
      : ::opim::internal::LogVoidify() &                                    \
            ::opim::internal::LogMessage(::opim::LogLevel::severity,        \
                                         __FILE__, __LINE__)                \
                .stream()
