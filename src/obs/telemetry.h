// Compile-time gate for all hot-path instrumentation.
//
// The build defines OPIM_TELEMETRY_ENABLED (1/0) from the CMake option
// OPIM_TELEMETRY (default ON). With the gate off, every OPIM_TM_* macro
// expands to a no-op that only name-uses its arguments — the counters,
// histograms and timers vanish from the binary, which is what
// scripts/check_telemetry_overhead.sh verifies.
//
// All macros record into MetricsRegistry::Default(). The metric handle is
// resolved once per call site (function-local static) so the steady-state
// cost of OPIM_TM_COUNTER_ADD is a single relaxed fetch_add on a
// thread-private cache line.
//
// Argument expressions must be free of side effects: the disabled
// expansions evaluate them as `(void)(expr)` (so locals that exist only
// to feed telemetry do not trip -Wunused), relying on the optimizer to
// discard the dead computation.

#pragma once

#ifndef OPIM_TELEMETRY_ENABLED
#define OPIM_TELEMETRY_ENABLED 1
#endif

#if OPIM_TELEMETRY_ENABLED

#include "obs/metrics.h"
#include "obs/timer.h"

#define OPIM_TM_CONCAT_INNER(a, b) a##b
#define OPIM_TM_CONCAT(a, b) OPIM_TM_CONCAT_INNER(a, b)

/// Adds `delta` to the counter named `name` in the default registry.
#define OPIM_TM_COUNTER_ADD(name, delta)                                  \
  do {                                                                    \
    static ::opim::Counter* const opim_tm_counter =                       \
        ::opim::MetricsRegistry::Default().FindOrCreateCounter(name);     \
    opim_tm_counter->Add(static_cast<uint64_t>(delta));                   \
  } while (0)

/// Records `value` into the histogram named `name`.
#define OPIM_TM_HISTOGRAM_RECORD(name, value)                             \
  do {                                                                    \
    static ::opim::Histogram* const opim_tm_hist =                        \
        ::opim::MetricsRegistry::Default().FindOrCreateHistogram(name);   \
    opim_tm_hist->Record(static_cast<uint64_t>(value));                   \
  } while (0)

/// Sets the gauge named `name` to `value`.
#define OPIM_TM_GAUGE_SET(name, value)                                    \
  do {                                                                    \
    static ::opim::Gauge* const opim_tm_gauge =                           \
        ::opim::MetricsRegistry::Default().FindOrCreateGauge(name);       \
    opim_tm_gauge->Set(static_cast<int64_t>(value));                      \
  } while (0)

/// Declares a ScopedTimer recording this scope's wall time, in
/// microseconds, into the histogram named `name`.
#define OPIM_TM_SCOPED_TIMER(name)                                        \
  ::opim::ScopedTimer OPIM_TM_CONCAT(opim_tm_scoped_timer_, __LINE__)(    \
      []() -> ::opim::Histogram* {                                        \
        static ::opim::Histogram* const h =                               \
            ::opim::MetricsRegistry::Default().FindOrCreateHistogram(     \
                name);                                                    \
        return h;                                                         \
      }())

/// Executes `stmt` only in telemetry builds.
#define OPIM_TM_STMT(stmt) \
  do {                     \
    stmt;                  \
  } while (0)

#else  // !OPIM_TELEMETRY_ENABLED

#define OPIM_TM_COUNTER_ADD(name, delta) \
  do {                                   \
    (void)(name);                        \
    (void)(delta);                       \
  } while (0)
#define OPIM_TM_HISTOGRAM_RECORD(name, value) \
  do {                                        \
    (void)(name);                             \
    (void)(value);                            \
  } while (0)
#define OPIM_TM_GAUGE_SET(name, value) \
  do {                                 \
    (void)(name);                      \
    (void)(value);                     \
  } while (0)
#define OPIM_TM_SCOPED_TIMER(name) ((void)(name))
#define OPIM_TM_STMT(stmt) \
  do {                     \
  } while (0)

#endif  // OPIM_TELEMETRY_ENABLED
