#include "obs/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/stopwatch.h"

namespace opim {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

/// Seconds since the first logging call (process-relative timestamps).
double ElapsedSinceStart() {
  static const Stopwatch* const start = new Stopwatch();
  return start->ElapsedSeconds();
}

/// The path's basename, so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel severity) {
  return static_cast<int>(severity) >=
         g_log_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel severity, const char* file, int line) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[opim %c %9.3f %s:%d] ",
                LogLevelName(severity)[0], ElapsedSinceStart(),
                Basename(file), line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  stream_ << '\n';
  // One fputs per message keeps concurrent lines whole.
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace opim
