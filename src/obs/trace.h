// Execution tracing: per-thread span recording flushed as Chrome-trace
// JSON (chrome://tracing / Perfetto "traceEvents" format).
//
// The metrics layer (obs/metrics.h) answers *how much* work a run did;
// this file answers *when* and *on which thread*. A TraceRecorder owns one
// fixed-capacity event buffer per recording thread:
//
//   * recording is lock-free on the hot path — the owning thread writes
//     the next slot and publishes it with one release store; a mutex is
//     taken only the first time a thread records in a session,
//   * memory is bounded — a full buffer drops new events and counts them
//     (`opim.obs.trace_events_dropped`), it never corrupts earlier spans,
//   * flushing (ToChromeJson / WriteChromeJson) reads only published
//     slots, so it is safe to call while writers are still running, and
//     complete once they are quiesced.
//
// Spans carry {name, category, tid, begin_us, dur_us, args}: name and
// category MUST be string literals (or otherwise outlive the recorder) —
// events store the pointers, never copies. begin_us is relative to the
// session epoch (StartSession). Up to two named uint64 args per span.
//
// The OPIM_TR_* macros are the instrumentation call sites, gated by the
// same OPIM_TELEMETRY CMake switch as the metrics macros and bound by the
// same three contracts (docs/observability.md): observe-only (a trace
// session must not change any algorithmic output), zero cost when the
// gate is OFF (call sites compile out), and <= 3% overhead when ON with a
// session active (scripts/check_telemetry_overhead.sh measures the
// tracing-enabled configuration too). With the gate ON but no session
// active, a span costs one relaxed atomic load.
//
// Thread-pool task spans: support/ must not depend on obs/, so
// ThreadPool exposes a raw function-pointer hook
// (ThreadPool::SetTaskSpanHook) that StartSession installs and
// StopSession removes; the hook forwards each executed task's wall-clock
// interval into the recorder from the worker thread itself.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/macros.h"
#include "support/status.h"

namespace opim {

/// One named uint64 span argument. `key == nullptr` means "unset"; keys
/// must be string literals (stored by pointer).
struct TraceArg {
  const char* key = nullptr;
  uint64_t value = 0;
};

/// One completed span. `name`/`category` are unowned static strings;
/// `begin_us` is microseconds since the session epoch.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t begin_us = 0;
  uint64_t dur_us = 0;
  TraceArg arg0;
  TraceArg arg1;
};

/// Options for one recording session.
struct TraceOptions {
  /// Per-thread ring capacity in events (~48 bytes each). A thread that
  /// fills its buffer drops further events (counted, never corrupting).
  size_t events_per_thread = 1 << 16;
};

/// Point-in-time copy of everything recorded this session.
struct TraceSnapshot {
  struct ThreadEvents {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;  // per-thread publish (end-time) order
  };
  std::vector<ThreadEvents> threads;  // ascending tid
  uint64_t dropped_events = 0;
  uint64_t recorded_events = 0;
};

/// Owner of the per-thread buffers. Default() is the process-wide
/// instance every OPIM_TR_* call site records to.
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  TraceRecorder() = default;
  OPIM_DISALLOW_COPY(TraceRecorder);

  static TraceRecorder& Default();

  /// Begins a session: clears previously recorded events, re-arms every
  /// buffer at the new capacity, sets the epoch, installs the thread-pool
  /// task hook (on the Default() recorder), and enables recording.
  /// Must not race with in-flight recording (start before the run).
  void StartSession(const TraceOptions& options = {});

  /// Disables recording (open spans ending after this are discarded) and
  /// removes the thread-pool hook. Recorded events stay readable until
  /// the next StartSession.
  void StopSession();

  /// True while a session is recording. One relaxed atomic load.
  bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Records a completed span with explicit endpoints taken from Clock.
  /// No-op (uncounted) when no session is active; counted as dropped when
  /// this thread's buffer is full.
  void RecordComplete(const char* name, const char* category,
                      Clock::time_point begin, Clock::time_point end,
                      TraceArg arg0 = {}, TraceArg arg1 = {});

  /// Events dropped to full buffers this session.
  uint64_t dropped_events() const;
  /// Events successfully recorded this session (published slots).
  uint64_t recorded_events() const;

  /// Copies every published event (see class comment for the mid-run
  /// caveat).
  TraceSnapshot Snapshot() const;

  /// The full session as a Chrome-trace JSON document: top-level keys
  /// `schema` ("opim.trace.v1"), `displayTimeUnit`, `otherData`
  /// (dropped/recorded/thread counts) and `traceEvents` — one "M"
  /// thread_name metadata event per thread plus one "ph":"X" complete
  /// event per span, per-thread in ascending begin_us order (ties: wider
  /// span first, so parents precede children). Loads directly in
  /// chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer;

  /// The calling thread's buffer for the current session, registering it
  /// (mutex) on first use. nullptr when no session is active.
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> session_{0};  // bumped by StartSession
  Clock::time_point epoch_{};
  size_t events_per_thread_ = TraceOptions{}.events_per_thread;

  mutable std::mutex mu_;  // guards buffers_ registration and snapshots
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: captures the begin time on construction and records a
/// completed event on destruction. Does nothing (and reads the clock
/// zero times) when no session is active at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category,
                     TraceArg arg0 = {}, TraceArg arg1 = {})
      : name_(name), category_(category), arg0_(arg0), arg1_(arg1),
        recording_(TraceRecorder::Default().active()) {
    if (recording_) begin_ = TraceRecorder::Clock::now();
  }
  ~TraceSpan() {
    if (recording_) {
      TraceRecorder::Default().RecordComplete(
          name_, category_, begin_, TraceRecorder::Clock::now(), arg0_,
          arg1_);
    }
  }
  OPIM_DISALLOW_COPY(TraceSpan);

 private:
  const char* name_;
  const char* category_;
  TraceArg arg0_;
  TraceArg arg1_;
  TraceRecorder::Clock::time_point begin_{};
  bool recording_;
};

}  // namespace opim

// --- Instrumentation macros (compile-time gated like obs/telemetry.h) ---
//
// Arguments must be side-effect free: disabled expansions evaluate them
// as `(void)(expr)` and rely on the optimizer to discard the result.
// Names, categories and arg keys must be string literals.

#ifndef OPIM_TELEMETRY_ENABLED
#define OPIM_TELEMETRY_ENABLED 1
#endif

#define OPIM_TR_CONCAT_INNER(a, b) a##b
#define OPIM_TR_CONCAT(a, b) OPIM_TR_CONCAT_INNER(a, b)

#if OPIM_TELEMETRY_ENABLED

/// Declares a scoped span named `name` under `category`.
#define OPIM_TR_SPAN(name, category)                             \
  ::opim::TraceSpan OPIM_TR_CONCAT(opim_tr_span_, __LINE__)(     \
      (name), (category))

/// Scoped span with one named uint64 argument.
#define OPIM_TR_SPAN1(name, category, key0, value0)              \
  ::opim::TraceSpan OPIM_TR_CONCAT(opim_tr_span_, __LINE__)(     \
      (name), (category),                                        \
      ::opim::TraceArg{(key0), static_cast<uint64_t>(value0)})

/// Scoped span with two named uint64 arguments.
#define OPIM_TR_SPAN2(name, category, key0, value0, key1, value1) \
  ::opim::TraceSpan OPIM_TR_CONCAT(opim_tr_span_, __LINE__)(      \
      (name), (category),                                         \
      ::opim::TraceArg{(key0), static_cast<uint64_t>(value0)},    \
      ::opim::TraceArg{(key1), static_cast<uint64_t>(value1)})

#else  // !OPIM_TELEMETRY_ENABLED

#define OPIM_TR_SPAN(name, category) \
  ((void)(name), (void)(category))
#define OPIM_TR_SPAN1(name, category, key0, value0) \
  ((void)(name), (void)(category), (void)(key0), (void)(value0))
#define OPIM_TR_SPAN2(name, category, key0, value0, key1, value1)     \
  ((void)(name), (void)(category), (void)(key0), (void)(value0),      \
   (void)(key1), (void)(value1))

#endif  // OPIM_TELEMETRY_ENABLED
