// RunReport: the machine-readable record of one algorithm run, emitted by
// `opim_cli run/online --metrics-json <path>` and consumable by the
// BENCH_*.json trajectory tooling.
//
// A report has four sections (docs/observability.md documents the schema
// and how each key maps to a paper quantity):
//
//   info        string key/values (algorithm, model, graph, seed, ...)
//   results     numeric outcomes (alpha, rr_sets, time_seconds, ...)
//   iterations  one row per doubling iteration / online round with the
//               per-phase wall times (generate/greedy/bounds)
//   queries     (optional; present iff the run used --query-ks) one row
//               per requested seed-set size k': the k'-prefix answer
//               (seeds, σ_l, σ_upper, α) read off the prefix-complete
//               selection trace of the final iteration
//   metrics     a MetricsSnapshot of the default registry
//
// Serialization: ToJson() (schema "opim.run_report.v1"), plus a CSV view
// of the iteration rows for spreadsheet-style regression tracking.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "support/status.h"

namespace opim {

/// Assembles and serializes one run's telemetry record.
class RunReport {
 public:
  /// One iteration/round row: ordered (column, value) pairs. Every row in
  /// a report should use the same columns in the same order.
  struct Row {
    std::vector<std::pair<std::string, double>> values;

    Row& Set(std::string column, double value) {
      values.emplace_back(std::move(column), value);
      return *this;
    }
  };

  /// One --query-ks answer row. Seeds are plain node ids (uint32_t keeps
  /// obs/ free of graph-layer headers).
  struct QueryAnswer {
    uint32_t k = 0;
    double alpha = 0.0;
    double sigma_lower = 0.0;
    double sigma_upper = 0.0;
    std::vector<uint32_t> seeds;
  };

  void AddInfo(std::string key, std::string value) {
    info_.emplace_back(std::move(key), std::move(value));
  }
  void AddResult(std::string key, double value) {
    results_.emplace_back(std::move(key), value);
  }
  /// Appends an empty iteration row; fill it with Row::Set.
  Row& AddIteration() { return iterations_.emplace_back(); }
  void AddQuery(QueryAnswer answer) { queries_.push_back(std::move(answer)); }
  void SetMetrics(MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
  }

  const std::vector<std::pair<std::string, std::string>>& info() const {
    return info_;
  }
  const std::vector<std::pair<std::string, double>>& results() const {
    return results_;
  }
  const std::vector<Row>& iterations() const { return iterations_; }
  const std::vector<QueryAnswer>& queries() const { return queries_; }
  const MetricsSnapshot& metrics() const { return metrics_; }

  /// The full report as a JSON document.
  std::string ToJson() const;

  /// The iteration rows as CSV (header from the first row's columns).
  /// Header fields are RFC 4180-quoted, so column names containing
  /// commas, quotes or newlines survive a strict CSV parser round-trip.
  std::string IterationsToCsv() const;

  /// RFC 4180 field escaping: returns `field` unchanged when it is safe
  /// to emit bare, otherwise wrapped in quotes with embedded quotes
  /// doubled. Exposed for tests and other CSV emitters.
  static std::string CsvEscape(const std::string& field);

  /// Writes ToJson() / IterationsToCsv() to `path`.
  Status WriteJson(const std::string& path) const;
  Status WriteIterationsCsv(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<Row> iterations_;
  std::vector<QueryAnswer> queries_;
  MetricsSnapshot metrics_;
};

}  // namespace opim
