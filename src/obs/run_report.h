// RunReport: the machine-readable record of one algorithm run, emitted by
// `opim_cli run/online --metrics-json <path>` and consumable by the
// BENCH_*.json trajectory tooling.
//
// A report has four sections (docs/observability.md documents the schema
// and how each key maps to a paper quantity):
//
//   info        string key/values (algorithm, model, graph, seed, ...)
//   results     numeric outcomes (alpha, rr_sets, time_seconds, ...)
//   iterations  one row per doubling iteration / online round with the
//               per-phase wall times (generate/greedy/bounds)
//   metrics     a MetricsSnapshot of the default registry
//
// Serialization: ToJson() (schema "opim.run_report.v1"), plus a CSV view
// of the iteration rows for spreadsheet-style regression tracking.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "support/status.h"

namespace opim {

/// Assembles and serializes one run's telemetry record.
class RunReport {
 public:
  /// One iteration/round row: ordered (column, value) pairs. Every row in
  /// a report should use the same columns in the same order.
  struct Row {
    std::vector<std::pair<std::string, double>> values;

    Row& Set(std::string column, double value) {
      values.emplace_back(std::move(column), value);
      return *this;
    }
  };

  void AddInfo(std::string key, std::string value) {
    info_.emplace_back(std::move(key), std::move(value));
  }
  void AddResult(std::string key, double value) {
    results_.emplace_back(std::move(key), value);
  }
  /// Appends an empty iteration row; fill it with Row::Set.
  Row& AddIteration() { return iterations_.emplace_back(); }
  void SetMetrics(MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
  }

  const std::vector<std::pair<std::string, std::string>>& info() const {
    return info_;
  }
  const std::vector<std::pair<std::string, double>>& results() const {
    return results_;
  }
  const std::vector<Row>& iterations() const { return iterations_; }
  const MetricsSnapshot& metrics() const { return metrics_; }

  /// The full report as a JSON document.
  std::string ToJson() const;

  /// The iteration rows as CSV (header from the first row's columns).
  /// Header fields are RFC 4180-quoted, so column names containing
  /// commas, quotes or newlines survive a strict CSV parser round-trip.
  std::string IterationsToCsv() const;

  /// RFC 4180 field escaping: returns `field` unchanged when it is safe
  /// to emit bare, otherwise wrapped in quotes with embedded quotes
  /// doubled. Exposed for tests and other CSV emitters.
  static std::string CsvEscape(const std::string& field);

  /// Writes ToJson() / IterationsToCsv() to `path`.
  Status WriteJson(const std::string& path) const;
  Status WriteIterationsCsv(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<Row> iterations_;
  MetricsSnapshot metrics_;
};

}  // namespace opim
