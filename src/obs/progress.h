// Live progress heartbeat for long runs (`opim_cli ... --progress`).
//
// A ProgressHeartbeat owns one background thread that wakes about once a
// second and writes a single status line to stderr: elapsed wall clock,
// doubling iterations and RR sets so far (counter deltas against the
// registry state captured at construction), peak RR-pool footprint, — when
// the bound RunControl has a deadline — the remaining slack, and the
// process's peak resident set plus major/minor page-fault counters
// (support/resource_usage.h), which surface the disk traffic of cold
// .opimg loads and RR spill fault-ins. Once a guardrail trips, the line is
// suffixed with the stop reason so an operator watching a ^C'd run sees
// the engine draining to its pause point.
//
// Output goes through snprintf into a stack buffer followed by one
// write(2) — the async-signal-safe output primitive — so heartbeat lines
// cannot corrupt the stream state of stdio even when a SignalGuard-bridged
// SIGINT/SIGTERM arrives mid-line; each line is a single short write.
//
// The heartbeat is observe-only: it reads counters, gauges, and the
// RunControl; it never writes anything the algorithms read. It works in
// telemetry-OFF builds too, degraded to wall-clock/guardrail information
// (the counters it reads simply stay zero).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "support/macros.h"

namespace opim {

class RunControl;

/// RAII heartbeat: starts its thread on construction, joins it on
/// destruction (or an explicit Stop()).
class ProgressHeartbeat {
 public:
  struct Options {
    /// Seconds between status lines.
    double interval_seconds = 1.0;
    /// Destination file descriptor (stderr by default).
    int fd = 2;
  };

  /// `control` may be nullptr (no guardrail columns) and must outlive the
  /// heartbeat otherwise. (Two overloads because a nested class's default
  /// member initializers cannot seed a default argument in the enclosing
  /// class.)
  explicit ProgressHeartbeat(const RunControl* control = nullptr);
  ProgressHeartbeat(const RunControl* control, const Options& options);
  ~ProgressHeartbeat();

  OPIM_DISALLOW_COPY(ProgressHeartbeat);

  /// Joins the heartbeat thread after emitting one final status line, so
  /// the last line reflects the finished run. Idempotent.
  void Stop();

  /// Lines written so far (test support).
  uint64_t lines_written() const;

  /// Renders one status line into `buf` (no trailing newline added by the
  /// caller — the line includes it). Exposed for tests; returns the line
  /// length, truncated to the buffer.
  size_t FormatLine(char* buf, size_t buf_size) const;

 private:
  void Loop();

  const RunControl* const control_;
  const Options options_;
  const std::chrono::steady_clock::time_point start_;
  // Counter baselines captured at construction; the line shows deltas so
  // back-to-back runs in one process don't inherit earlier totals.
  uint64_t base_iterations_ = 0;
  uint64_t base_rr_sets_ = 0;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  uint64_t lines_written_ = 0;
  std::thread thread_;
};

}  // namespace opim
