// Schema lint for the telemetry artifacts opim emits: run reports
// (`--metrics-json`, schema "opim.run_report.v1") and Chrome-trace files
// (`--trace-json`, schema "opim.trace.v1").
//
// Each Lint* function takes an already-parsed document (obs/json_reader.h)
// and returns every violation it finds as a human-readable string — an
// empty vector means the document is well-formed. tools/report_lint wraps
// these in a CLI whose exit code CI can gate on; keeping the checks here
// makes them unit-testable without process spawning.
//
// The trace checks are the interesting ones: beyond shape and version
// tags, they enforce the timeline invariants the recorder promises —
// per-thread "ph":"X" events appear with non-decreasing begin timestamps,
// durations are non-negative, and spans on one thread nest (a span that
// starts inside another must end inside it too).

#pragma once

#include <string>
#include <vector>

#include "obs/json_reader.h"

namespace opim {

/// Violations found in a "--metrics-json" run report document.
std::vector<std::string> LintRunReportJson(const JsonValue& doc);

/// Violations found in a "--trace-json" Chrome-trace document.
std::vector<std::string> LintTraceJson(const JsonValue& doc);

}  // namespace opim
