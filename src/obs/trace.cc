#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "obs/telemetry.h"
#include "support/thread_pool.h"

namespace opim {

/// One recording thread's fixed-capacity event arena. Single writer (the
/// owning thread); `size` is the publish index — the flusher reads it
/// with acquire and only touches slots below it.
struct TraceRecorder::ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  const uint32_t tid;
  std::vector<TraceEvent> events;
  std::atomic<size_t> size{0};
  std::atomic<uint64_t> dropped{0};
};

namespace {

/// The calling thread's cached registration: valid while the session id
/// matches (StartSession bumps it, invalidating every cached slot). Held
/// as void* because ThreadBuffer is private to TraceRecorder.
thread_local uint64_t tls_session = 0;
thread_local void* tls_buffer = nullptr;

/// Thread-pool task hook, installed for the Default() recorder's session
/// lifetime: forwards each executed task's interval as a "task" span.
void RecordPoolTaskSpan(std::chrono::steady_clock::time_point begin,
                        std::chrono::steady_clock::time_point end) {
  TraceRecorder::Default().RecordComplete("task", "pool", begin, end);
}

Status WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::StartSession(const TraceOptions& options) {
  OPIM_CHECK_GE(options.events_per_thread, size_t{1});
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();  // drops the previous session's events and tids
  events_per_thread_ = options.events_per_thread;
  epoch_ = Clock::now();
  // Bumping the session id invalidates every thread's cached buffer
  // pointer before recording is re-enabled.
  session_.fetch_add(1, std::memory_order_release);
  active_.store(true, std::memory_order_release);
  if (this == &Default()) {
    ThreadPool::SetTaskSpanHook(&RecordPoolTaskSpan);
  }
}

void TraceRecorder::StopSession() {
  active_.store(false, std::memory_order_release);
  if (this == &Default()) {
    ThreadPool::SetTaskSpanHook(nullptr);
  }
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  const uint64_t session = session_.load(std::memory_order_acquire);
  // Default()-only cache: a second recorder instance (tests) would alias
  // the slot, so non-default instances always take the registration path.
  if (this == &Default() && tls_session == session &&
      tls_buffer != nullptr) {
    return static_cast<ThreadBuffer*>(tls_buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return nullptr;
  const uint32_t tid = static_cast<uint32_t>(buffers_.size() + 1);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(tid, events_per_thread_));
  ThreadBuffer* buffer = buffers_.back().get();
  if (this == &Default()) {
    tls_session = session;
    tls_buffer = buffer;
  }
  return buffer;
}

void TraceRecorder::RecordComplete(const char* name, const char* category,
                                   Clock::time_point begin,
                                   Clock::time_point end, TraceArg arg0,
                                   TraceArg arg1) {
  if (!active_.load(std::memory_order_relaxed)) return;
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer == nullptr) return;  // session stopped during registration
  const size_t n = buffer->size.load(std::memory_order_relaxed);
  if (n >= buffer->events.size()) {
    // Bounded memory: full buffers drop new events, never old ones.
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    OPIM_TM_COUNTER_ADD("opim.obs.trace_events_dropped", 1);
    return;
  }
  TraceEvent& ev = buffer->events[n];
  ev.name = name;
  ev.category = category;
  // Both endpoints are floored against the epoch and the duration derived
  // from the floored values: flooring begin and duration independently
  // could round a child span to a wider interval than its parent, breaking
  // the per-thread nesting invariant report_lint checks.
  const uint64_t begin_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(begin - epoch_)
          .count());
  const uint64_t end_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - epoch_)
          .count());
  ev.begin_us = begin_us;
  ev.dur_us = end_us - begin_us;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  // Publish: the flusher acquire-loads `size` and reads only below it.
  buffer->size.store(n + 1, std::memory_order_release);
  OPIM_TM_COUNTER_ADD("opim.obs.trace_events_recorded", 1);
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& b : buffers_) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceRecorder::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& b : buffers_) {
    total += b->size.load(std::memory_order_acquire);
  }
  return total;
}

TraceSnapshot TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot snap;
  snap.threads.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    const size_t published = b->size.load(std::memory_order_acquire);
    TraceSnapshot::ThreadEvents t;
    t.tid = b->tid;
    t.events.assign(b->events.begin(),
                    b->events.begin() + static_cast<ptrdiff_t>(published));
    snap.threads.push_back(std::move(t));
    snap.dropped_events += b->dropped.load(std::memory_order_relaxed);
    snap.recorded_events += published;
  }
  return snap;
}

std::string TraceRecorder::ToChromeJson() const {
  TraceSnapshot snap = Snapshot();

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("opim.trace.v1");
  w.Key("displayTimeUnit").Value("ms");
  w.Key("otherData").BeginObject();
  w.Key("recorded_events").Value(snap.recorded_events);
  w.Key("dropped_events").Value(snap.dropped_events);
  w.Key("threads").Value(static_cast<uint64_t>(snap.threads.size()));
  w.EndObject();

  w.Key("traceEvents").BeginArray();
  char label[32];
  for (TraceSnapshot::ThreadEvents& t : snap.threads) {
    // Thread-name metadata so Perfetto labels the tracks.
    std::snprintf(label, sizeof(label), "opim-thread-%u", t.tid);
    w.BeginObject();
    w.Key("name").Value("thread_name");
    w.Key("ph").Value("M");
    w.Key("pid").Value(uint64_t{1});
    w.Key("tid").Value(static_cast<uint64_t>(t.tid));
    w.Key("args").BeginObject();
    w.Key("name").Value(label);
    w.EndObject();
    w.EndObject();

    // Events were published in span-end order; re-sort by begin (ties:
    // wider span first) so parents precede children and per-thread
    // timestamps are monotone — the order tools/report_lint checks.
    std::stable_sort(t.events.begin(), t.events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.begin_us != b.begin_us) {
                         return a.begin_us < b.begin_us;
                       }
                       return a.dur_us > b.dur_us;
                     });
    for (const TraceEvent& ev : t.events) {
      w.BeginObject();
      w.Key("name").Value(ev.name);
      w.Key("cat").Value(ev.category);
      w.Key("ph").Value("X");
      w.Key("pid").Value(uint64_t{1});
      w.Key("tid").Value(static_cast<uint64_t>(t.tid));
      w.Key("ts").Value(ev.begin_us);
      w.Key("dur").Value(ev.dur_us);
      if (ev.arg0.key != nullptr || ev.arg1.key != nullptr) {
        w.Key("args").BeginObject();
        if (ev.arg0.key != nullptr) w.Key(ev.arg0.key).Value(ev.arg0.value);
        if (ev.arg1.key != nullptr) w.Key(ev.arg1.key).Value(ev.arg1.value);
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

}  // namespace opim
