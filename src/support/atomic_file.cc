#include "support/atomic_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <stdlib.h>
#include <unistd.h>

#include <vector>

#include "support/fault_inject.h"
#include "support/io_util.h"

namespace opim {
namespace {

Status ErrnoError(const std::string& what, int err) {
  return Status::IOError(what + ": " + ::strerror(err));
}

// fsync the directory containing `path` so the rename itself is
// durable. Best-effort on filesystems that refuse O_RDONLY dir fsync.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::span<const uint8_t> data) {
  // Temp lives next to the target: rename(2) is atomic only within one
  // filesystem, and a crash leaves at worst a stray .tmp sibling.
  std::string tmp = path + ".tmp.XXXXXX";
  std::vector<char> tmpl(tmp.begin(), tmp.end());
  tmpl.push_back('\0');
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    return ErrnoError("mkstemp for " + path, errno);
  }
  tmp.assign(tmpl.data());

  auto fail = [&](Status status) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };

  if (OPIM_FAULT_POINT("snapshot.short_write")) {
    return fail(Status::IOError("injected fault: snapshot.short_write"));
  }
  if (Status w = io::WriteFull(fd, data.data(), data.size()); !w.ok()) {
    return fail(std::move(w));
  }
  if (::fsync(fd) != 0) {
    return fail(ErrnoError("fsync " + tmp, errno));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoError("close " + tmp, errno);
  }
  if (OPIM_FAULT_POINT("snapshot.rename_fail")) {
    ::unlink(tmp.c_str());
    return Status::IOError("injected fault: snapshot.rename_fail");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return ErrnoError("rename " + tmp + " -> " + path, err);
  }
  FsyncParentDir(path);
  return Status::OK();
}

}  // namespace opim
