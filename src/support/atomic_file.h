// Crash-atomic whole-file writes.
//
// WriteFileAtomic publishes `data` at `path` with the classic
// write-to-temp + fsync + rename(2) + fsync-the-directory sequence, so
// a reader (or a process restarted after a crash at any instant) sees
// either the complete previous file or the complete new one — never a
// prefix. The temp file is created with mkstemp(3) in the target's own
// directory (rename is only atomic within a filesystem) and unlinked on
// every failure path.
//
// Transient write(2) failures (EINTR/EAGAIN/short writes) are retried
// with bounded backoff by support/io_util.h; durable failures surface
// as IOError naming the step that failed.
//
// Fault-injection sites (build-fi only, see fault_inject.h):
//   snapshot.short_write  fails the data write before any byte lands.
//   snapshot.rename_fail  fails the rename after the temp is durable.
// Both leave the previous file at `path` untouched.

#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "support/status.h"

namespace opim {

/// Atomically replaces the file at `path` with `data`. On any non-OK
/// return the previous contents of `path` (or its absence) are intact.
Status WriteFileAtomic(const std::string& path, std::span<const uint8_t> data);

}  // namespace opim
