// Status / Result error handling, in the style of Arrow and RocksDB.
//
// Functions whose failure is an expected runtime outcome (file I/O, text
// parsing, user-supplied parameters) return Status or Result<T> rather than
// throwing. Internal invariant violations use OPIM_CHECK (macros.h).

#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/macros.h"

namespace opim {

/// Error categories for Status. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome with a message. Cheap to move; OK status
/// carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status outcome, in the style of arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    OPIM_CHECK_MSG(!std::get<Status>(repr_).ok(),
                   "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    OPIM_CHECK_MSG(ok(), "Result::ValueOrDie on error Result");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    OPIM_CHECK_MSG(ok(), "Result::ValueOrDie on error Result");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    OPIM_CHECK_MSG(ok(), "Result::ValueOrDie on error Result");
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace opim

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define OPIM_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::opim::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
/// The temporary's name goes through a two-level concat so __LINE__
/// expands, letting multiple uses share one scope.
#define OPIM_STATUS_CONCAT_INNER(a, b) a##b
#define OPIM_STATUS_CONCAT(a, b) OPIM_STATUS_CONCAT_INNER(a, b)
#define OPIM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()
#define OPIM_ASSIGN_OR_RETURN(lhs, rexpr) \
  OPIM_ASSIGN_OR_RETURN_IMPL(OPIM_STATUS_CONCAT(_res_, __LINE__), lhs, rexpr)
