#include "support/fault_inject.h"

#if OPIM_FAULT_INJECT_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace opim::fault {

namespace {

struct SiteState {
  uint64_t fire_on_hit = 0;  // 0 = not armed
  uint64_t hits = 0;
  bool fired = false;
};

// Number of armed sites. Sites sit on per-sample hot paths, so the
// dormant case (nothing armed — every run outside a fault test) must
// cost one relaxed load, not a mutex + map lookup; the overhead script
// holds an unarmed ON build to the same <3% bound as telemetry.
std::atomic<uint64_t> g_armed_sites{0};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& Registry() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

}  // namespace

void Arm(const char* site, uint64_t fire_on_hit) {
  std::lock_guard<std::mutex> lock(Mutex());
  SiteState& s = Registry()[site];
  if (s.fire_on_hit == 0 && fire_on_hit > 0) {
    g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  s.fire_on_hit = fire_on_hit;
  s.hits = 0;
  s.fired = false;
}

void Reset() {
  std::lock_guard<std::mutex> lock(Mutex());
  Registry().clear();
  g_armed_sites.store(0, std::memory_order_relaxed);
}

uint64_t Hits(const char* site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

bool ShouldFire(const char* site) {
  if (g_armed_sites.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(Mutex());
  SiteState& s = Registry()[site];
  ++s.hits;
  if (s.fire_on_hit == 0 || s.fired || s.hits < s.fire_on_hit) return false;
  s.fired = true;
  return true;
}

void ArmFromEnv() {
  const char* spec = std::getenv("OPIM_FAULT_INJECT");
  if (spec == nullptr) return;
  std::string s(spec);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    const std::string entry = s.substr(pos, end - pos);
    pos = end + 1;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    char* parse_end = nullptr;
    const unsigned long long hit =
        std::strtoull(entry.c_str() + eq + 1, &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0' || hit == 0) continue;
    Arm(entry.substr(0, eq).c_str(), hit);
  }
}

}  // namespace opim::fault

#endif  // OPIM_FAULT_INJECT_ENABLED
