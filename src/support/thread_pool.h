// Minimal fixed-size thread pool, used by the Monte-Carlo spread estimator
// to parallelize the (embarrassingly parallel) forward simulations.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/macros.h"

namespace opim {

/// Lifetime counters for a ThreadPool. `queue_wait_us` / `idle_wait_us` are
/// only maintained when the build compiles telemetry in
/// (OPIM_TELEMETRY_ENABLED); `tasks_run` is always exact.
struct ThreadPoolStats {
  /// Tasks dequeued and executed by workers.
  uint64_t tasks_run = 0;
  /// Total microseconds tasks spent queued before a worker picked them up.
  uint64_t queue_wait_us = 0;
  /// Total microseconds workers spent blocked waiting for work.
  uint64_t idle_wait_us = 0;
};

/// Fixed-size worker pool executing std::function<void()> tasks.
/// Submit work with Submit(); Wait() blocks until all submitted tasks have
/// finished. Destruction waits for outstanding tasks.
///
/// Exception safety: a throwing task no longer escapes through the bare
/// std::function call (which used to land in std::terminate). The first
/// exception is captured; queued tasks submitted before the failure is
/// consumed are drained without running (so a poisoned batch ends
/// promptly); Wait() rethrows the captured exception and leaves the pool
/// fully reusable for subsequent batches. An unconsumed exception is
/// discarded by the destructor.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  OPIM_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed (or was drained
  /// after a failure). Rethrows the first exception any task threw since
  /// the last Wait(); the pool stays usable afterwards.
  void Wait();

  /// Number of worker threads.
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// A reasonable default: hardware concurrency, at least 1.
  static unsigned DefaultThreadCount();

  /// Canonical "0 means auto" thread-count resolution shared by OPIM-C, the
  /// parallel RR generator, and the CLI: 0 -> DefaultThreadCount(), anything
  /// else is taken literally.
  static unsigned ResolveThreadCount(unsigned requested);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. `fn` must be
  /// safe to invoke concurrently for distinct i.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

  /// Snapshot of lifetime counters (consistent under the pool mutex).
  ThreadPoolStats Stats() const;

  /// Observer invoked from the worker thread after each executed task with
  /// the task's wall-clock interval.
  using TaskSpanHook = void (*)(std::chrono::steady_clock::time_point begin,
                                std::chrono::steady_clock::time_point end);

  /// Installs (or, with nullptr, removes) the process-wide task-span hook.
  /// support/ must not depend on obs/, so the trace recorder registers
  /// itself through this raw function pointer. The hook must be
  /// thread-safe and observe-only; it is only invoked in builds compiled
  /// with OPIM_TELEMETRY_ENABLED.
  static void SetTaskSpanHook(TaskSpanHook hook);

 private:
  struct QueuedTask {
    std::function<void()> fn;
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
    std::chrono::steady_clock::time_point enqueued;
#endif
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last Wait(); guarded by
  /// mu_. While set, dequeued tasks are drained without running.
  std::exception_ptr failure_;
  ThreadPoolStats stats_;
};

/// Completion tracking for a subset of a pool's tasks, independent of the
/// pool-global Wait(): each submission is wrapped so the group keeps its
/// own pending count and captures its own first exception — a throwing
/// group task never reaches the pool's failure slot, so it cannot poison
/// an unrelated Wait() or cause queued foreground tasks to be drained.
/// The pipelined engine uses this to overlap speculative sampling with
/// serial selection and join only the speculative tasks at the merge
/// point. Note the asymmetry: the pool-global Wait() still counts group
/// tasks (callers must join the group before pool-wide barriers), while
/// group Wait() never counts foreground tasks.
///
/// The group must outlive its tasks; Wait() — or destruction, which joins
/// and discards any unconsumed exception — must complete before the pool
/// is destroyed.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  OPIM_DISALLOW_COPY(TaskGroup);

  /// Enqueues a task on the pool, tracked by this group.
  void Submit(std::function<void()> task);

  /// Blocks until every group task has completed; rethrows the group's
  /// first exception since the last Wait(). The group stays reusable.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_;
  uint64_t pending_ = 0;
  /// First exception thrown by a group task since the last Wait();
  /// guarded by mu_.
  std::exception_ptr failure_;
};

}  // namespace opim
