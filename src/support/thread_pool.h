// Minimal fixed-size thread pool, used by the Monte-Carlo spread estimator
// to parallelize the (embarrassingly parallel) forward simulations.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/macros.h"

namespace opim {

/// Fixed-size worker pool executing std::function<void()> tasks.
/// Submit work with Submit(); Wait() blocks until all submitted tasks have
/// finished. Destruction waits for outstanding tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  OPIM_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Number of worker threads.
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// A reasonable default: hardware concurrency, at least 1.
  static unsigned DefaultThreadCount();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. `fn` must be
  /// safe to invoke concurrently for distinct i.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace opim
