#include "support/status.h"

namespace opim {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace opim
