// Deterministic fault-injection sites for the run-guardrail paths.
//
// The CMake option OPIM_FAULT_INJECT (default OFF) defines
// OPIM_FAULT_INJECT_ENABLED. With it OFF — the shipping configuration —
// OPIM_FAULT_POINT(site) is the literal constant `false`, so every site
// folds away at compile time and the release binary carries zero
// overhead (scripts/check_guardrail_overhead.sh verifies this the same
// way check_telemetry_overhead.sh verifies the telemetry gate).
//
// With it ON, each site is a named counter in a process-wide registry.
// Tests arm a site to fire on its Nth evaluation (fault::Arm), which makes
// every degradation path — worker exceptions, memory-budget trips, clock
// skew past a deadline — reproducible in CI instead of only in
// production. A site fires exactly once per arming; Reset() clears the
// registry between tests.
//
// Known sites (see docs/robustness.md):
//   rrset.worker_throw   evaluated once per RR sample inside each
//                        ParallelGenerate shard; firing throws from the
//                        worker task (exercises ThreadPool exception
//                        capture and StopReason::kWorkerFailure).
//   rrset.speculation_throw
//                        evaluated once per RR sample inside *speculative*
//                        staged shards only (the pipelined doubling loop's
//                        lookahead sampling; dead on eager paths). Firing
//                        throws from the speculative task: swallowed when
//                        the staged batches are discarded, kWorkerFailure
//                        (or propagation without a control) when they
//                        would have been merged as the doubling.
//   runctl.clock_skew    evaluated once per RunControl::Poll; firing
//                        permanently skews the control's observed clock
//                        far past any deadline (StopReason::kDeadline).
//   runctl.mem_spike     evaluated once per RunControl::Poll; firing
//                        makes every subsequent poll report a footprint
//                        above any finite budget (kMemoryBudget).
//   io.mmap_fail         evaluated once per MmapArena::MapFile; firing
//                        fails the map with IOError before the file is
//                        opened (exercises the .opimg heap-read fallback
//                        and SamplingView's stay-on-heap path).
//   io.short_write       evaluated once per RRCollection::SpillColdChunks
//                        eviction pass, before any chunk is written;
//                        firing fails the spill with IOError and no state
//                        change (the engine trips kSpillFailure).
//   snapshot.short_write evaluated once per atomic-file write
//                        (support/atomic_file.h), before any byte reaches
//                        the temp file; firing fails the snapshot write
//                        with IOError, the temp is unlinked, and any
//                        previous snapshot at the target path survives.
//   snapshot.rename_fail evaluated after the temp file is written and
//                        fsynced, before rename(2); firing fails the
//                        publish step — again leaving the previous
//                        snapshot intact (atomicity is rename-or-nothing).
//   snapshot.corrupt_header
//                        evaluated once per SaveSnapshot; firing flips a
//                        header byte before the write, simulating the
//                        torn/corrupt container that rename atomicity
//                        cannot protect against. The strict loader must
//                        reject the result (checkpoint readers treat a
//                        bad snapshot as "no snapshot", never as state).
//   select.state_rebuild_throw
//                        evaluated once per cold SelectionState sync (the
//                        from-scratch rebuild on a pool not yet accounted
//                        — first selection of a run, or the first after
//                        --resume); firing throws from SyncGains. The
//                        selection must fall back to from-scratch initial
//                        gains (opim.select.warm_start_fallbacks) and the
//                        run's output must be unchanged.
//
// The CLI arms sites from the OPIM_FAULT_INJECT environment variable
// ("site=hit[,site=hit...]") so shell-level smoke tests can exercise the
// same paths; ArmFromEnv is a no-op when the variable is unset.

#pragma once

#ifndef OPIM_FAULT_INJECT_ENABLED
#define OPIM_FAULT_INJECT_ENABLED 0
#endif

#if OPIM_FAULT_INJECT_ENABLED

#include <cstdint>

namespace opim::fault {

/// Arms `site` to fire on its `fire_on_hit`-th evaluation (1-based).
/// Re-arming replaces the previous schedule and clears the hit count.
void Arm(const char* site, uint64_t fire_on_hit);

/// Clears every arming and hit count.
void Reset();

/// Evaluations of `site` so far (armed or not).
uint64_t Hits(const char* site);

/// Registers one evaluation of `site`; true exactly when the armed hit
/// is reached. Unarmed sites count hits and never fire. Thread-safe; the
/// Nth hit fires regardless of which thread lands on it. While NOTHING
/// is armed the call is a single relaxed atomic load and hits are not
/// counted — sites live on per-sample hot paths, so the dormant case
/// must stay within the overhead budget even in ON builds.
bool ShouldFire(const char* site);

/// Arms sites from the OPIM_FAULT_INJECT environment variable, format
/// "site=hit[,site=hit...]". Malformed entries are ignored.
void ArmFromEnv();

}  // namespace opim::fault

#define OPIM_FAULT_POINT(site) (::opim::fault::ShouldFire(site))

#else  // !OPIM_FAULT_INJECT_ENABLED

#define OPIM_FAULT_POINT(site) false

#endif  // OPIM_FAULT_INJECT_ENABLED
