// Retrying full-buffer I/O over POSIX file descriptors.
//
// write(2)/read(2)/pwrite(2)/pread(2) are allowed to transfer fewer
// bytes than asked, to be interrupted by a signal (EINTR), or — on
// descriptors someone marked non-blocking — to fail transiently with
// EAGAIN. Every durable path in the repo (the RR-pool spill tier, the
// snapshot writer) must treat a partial transfer as "keep going", not
// as corruption, so the loop lives here once:
//
//   - EINTR retries immediately (conventional; a signal arriving
//     mid-write is not a fault).
//   - EAGAIN/EWOULDBLOCK and zero-byte progress retry with bounded
//     exponential backoff (1ms doubling to 64ms, at most
//     kMaxStalledRetries stalls) and then fail with an IOError rather
//     than spinning forever on a wedged descriptor.
//   - Any other errno fails immediately with an IOError naming the
//     operation and the errno string.
//
// All helpers either transfer exactly `len` bytes or return a non-OK
// Status; there is no partial-success return.

#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

#include "support/status.h"

namespace opim::io {

/// Stalled-transfer retry budget: after this many EAGAIN/zero-progress
/// rounds (with backoff sleeps totalling ~127ms) the helper gives up.
inline constexpr int kMaxStalledRetries = 8;

/// Writes all `len` bytes to `fd` at the current offset.
Status WriteFull(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes from `fd` at the current offset. EOF
/// before `len` bytes is an IOError (the caller asked for bytes the
/// file does not have).
Status ReadFull(int fd, void* data, size_t len);

/// Positional variants (pwrite(2)/pread(2)); the descriptor's own
/// offset is untouched, so concurrent users of one spill fd are safe.
Status PWriteFull(int fd, const void* data, size_t len, off_t offset);
Status PReadFull(int fd, void* data, size_t len, off_t offset);

}  // namespace opim::io
