// SignalGuard: an async-signal-safe bridge from SIGINT/SIGTERM to the
// cooperative-cancellation flag RunControl polls.
//
// A production OPIM run must survive an operator's Ctrl-C the way the
// paper's online contract promises: pause at the next safe point and
// return the current seed set with its certificate, instead of dying
// mid-doubling. The guard installs handlers for SIGINT and SIGTERM whose
// only action is a store to a lock-free std::atomic<bool> — the complete
// list of things a signal handler may legally do. Bind that flag to a
// RunControl (BindCancelFlag) and the engines drain gracefully.
//
// A *second* signal is the escape hatch: the handler calls
// _exit(128 + sig) — 130 for SIGINT, 143 for SIGTERM — terminating the
// process immediately even if the main thread is blocked in a shutdown
// checkpoint's fsync. No unwinding or flushing happens; crash-atomic
// writers (support/atomic_file.h) make that safe by construction.
//
// At most one guard may be active at a time (checked); the constructor
// saves and the destructor restores the previous handlers, so scoping the
// guard to a CLI command leaves embedding applications untouched.

#pragma once

#include <atomic>
#include <csignal>

#include "support/macros.h"

namespace opim {

/// RAII SIGINT/SIGTERM -> atomic-flag bridge. See file comment.
class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();

  OPIM_DISALLOW_COPY(SignalGuard);

  /// The cancellation flag, suitable for RunControl::BindCancelFlag. Set
  /// to true by the first delivered SIGINT/SIGTERM; never reset while the
  /// guard lives.
  const std::atomic<bool>* flag() const;

  /// True once a signal was delivered.
  bool triggered() const;

  /// The delivered signal number (SIGINT/SIGTERM), or 0 if none yet.
  int signal_number() const;

 private:
  using Handler = void (*)(int);
  Handler prev_int_;
  Handler prev_term_;
};

}  // namespace opim
