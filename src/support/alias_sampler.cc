#include "support/alias_sampler.h"

#include <cstddef>

namespace opim {

void AliasSampler::Build(const std::vector<double>& weights) {
  prob_.clear();
  alias_.clear();
  const size_t n = weights.size();
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    OPIM_CHECK_MSG(w >= 0.0, "AliasSampler weight must be non-negative");
    total += w;
  }
  if (total <= 0.0) return;  // degenerate: leave empty

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled weights: mean 1. Partition into under-full and over-full buckets
  // and pair them greedily (Vose's stable variant of Walker's method).
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) exactly full.
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;
}

}  // namespace opim
