// Deterministic pseudo-random number generation for the opim library.
//
// Everything in opim that consumes randomness takes an explicit Rng&, so
// every experiment, test, and benchmark is reproducible from a single seed.
// The generator is PCG32 (O'Neill 2014): tiny state, excellent statistical
// quality, and much faster than std::mt19937 for the hot RR-set sampling
// loops. Seeding uses SplitMix64 to decorrelate nearby integer seeds.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/macros.h"

namespace opim {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used for seeding and for deriving independent child seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Ziggurat tables for the Exp(1) distribution (Marsaglia & Tsang 2000,
/// 256 layers, 32-bit variant). The common sampling path is one 32-bit
/// draw, one table compare, and one multiply — roughly 3x cheaper than
/// computing -log(U) — and the rejection structure makes the distribution
/// exact, not approximate: the rare wedge/tail paths (~1% of draws) fall
/// back to explicit exp/log evaluation.
struct ExpZigguratTables {
  uint32_t ke[256];
  double we[256];
  double fe[256];

  ExpZigguratTables() {
    constexpr double kM = 4294967296.0;  // 2^32
    double de = 7.697117470131487;       // rightmost layer x-coordinate
    const double ve = 3.949659822581572e-3;  // per-layer area
    const double q = ve / std::exp(-de);
    ke[0] = static_cast<uint32_t>((de / q) * kM);
    ke[1] = 0;
    we[0] = q / kM;
    we[255] = de / kM;
    fe[0] = 1.0;
    fe[255] = std::exp(-de);
    double te = de;
    for (int i = 254; i >= 1; --i) {
      de = -std::log(ve / de + std::exp(-de));
      ke[i + 1] = static_cast<uint32_t>((de / te) * kM);
      te = de;
      we[i] = de / kM;
      fe[i] = std::exp(-de);
    }
  }

  static const ExpZigguratTables& Get() {
    static const ExpZigguratTables tables;
    return tables;
  }
};

/// PCG32 (XSH-RR variant) pseudo-random generator with explicit seeding
/// and cheap stream splitting.
class Rng {
 public:
  using result_type = uint32_t;

  /// Constructs a generator from a seed and an optional stream selector.
  /// Distinct (seed, stream) pairs yield statistically independent streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1) {
    uint64_t sm = seed;
    state_ = 0;
    inc_ = (SplitMix64(sm) ^ stream) << 1 | 1u;
    NextU32();
    state_ += SplitMix64(sm);
    NextU32();
  }

  /// Minimum value returned by operator() (UniformRandomBitGenerator).
  static constexpr result_type min() { return 0; }
  /// Maximum value returned by operator() (UniformRandomBitGenerator).
  static constexpr result_type max() {
    return std::numeric_limits<uint32_t>::max();
  }

  /// UniformRandomBitGenerator interface; equivalent to NextU32().
  result_type operator()() { return NextU32(); }

  /// Returns the next 32 uniformly random bits.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Returns an unbiased uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method.
  uint32_t UniformBelow(uint32_t bound) {
    OPIM_CHECK_GT(bound, 0u);
    uint64_t m = static_cast<uint64_t>(NextU32()) * bound;
    uint32_t lo = static_cast<uint32_t>(m);
    if (lo < bound) {
      uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<uint64_t>(NextU32()) * bound;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in (0, 1] with 53 bits of precision. Safe to
  /// pass to std::log (never returns 0).
  double UniformDoubleOpenClosed() {
    return static_cast<double>((NextU64() >> 11) + 1) * 0x1.0p-53;
  }

  /// Samples Exp(1) exactly via the ziggurat method: usually one 32-bit
  /// draw and one multiply, with exp/log only on the ~1% wedge/tail paths.
  double NextExp() {
    const ExpZigguratTables& z = ExpZigguratTables::Get();
    for (;;) {
      const uint32_t jz = NextU32();
      const uint32_t iz = jz & 255u;
      if (jz < z.ke[iz]) return jz * z.we[iz];
      if (iz == 0) {
        // Tail beyond the rightmost layer: x0 + a fresh Exp(1).
        return 7.697117470131487 - std::log(UniformDoubleOpenClosed());
      }
      const double x = jz * z.we[iz];
      if (z.fe[iz] + UniformDoubleOpenClosed() * (z.fe[iz - 1] - z.fe[iz]) <
          std::exp(-x)) {
        return x;
      }
    }
  }

  /// Samples the number of consecutive failed Bernoulli(p) trials before
  /// the next success — Geometric(p) on {0, 1, 2, ...} — from the
  /// precomputed `inv_log_one_minus_p` = 1/log1p(-p) (negative for
  /// p ∈ (0, 1)). Equivalent to ⌊log(U)/log1p(-p)⌋, but the Exp(1) draw
  /// comes from the ziggurat instead of a log() call. Results past any
  /// realistic array length saturate to UINT64_MAX instead of overflowing
  /// the cast.
  uint64_t GeometricSkip(double inv_log_one_minus_p) {
    const double s = NextExp() * -inv_log_one_minus_p;
    if (s >= 9.0e18) return std::numeric_limits<uint64_t>::max();
    return static_cast<uint64_t>(s);
  }

  /// Returns true with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Derives an independent child generator; deterministic in (this state,
  /// tag). Useful for handing decorrelated streams to worker threads.
  Rng Split(uint64_t tag) {
    uint64_t s = NextU64() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(s, tag + 0x632be59bd9b4e019ULL);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace opim
