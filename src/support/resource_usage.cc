#include "support/resource_usage.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace opim {

namespace {

/// Parses "VmHWM:   12345 kB" out of /proc/self/status. Returns 0 when
/// the file or the field is unavailable (non-Linux platforms).
uint64_t ReadVmHwmBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

ResourceUsage ReadResourceUsage() {
  ResourceUsage usage;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is kilobytes on Linux.
    usage.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;
    usage.major_page_faults = static_cast<uint64_t>(ru.ru_majflt);
    usage.minor_page_faults = static_cast<uint64_t>(ru.ru_minflt);
  }
  const uint64_t hwm = ReadVmHwmBytes();
  if (hwm > usage.peak_rss_bytes) usage.peak_rss_bytes = hwm;
  return usage;
}

}  // namespace opim
