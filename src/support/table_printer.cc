#include "support/table_printer.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "support/macros.h"

namespace opim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OPIM_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OPIM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TablePrinter::Cell(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string TablePrinter::Cell(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string TablePrinter::ToAlignedString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  append_row(out, headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TablePrinter::ToCsvString() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += CsvEscape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  f << ToCsvString();
  if (!f.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace opim
