#include "support/signal_guard.h"

#include <unistd.h>

namespace opim {

namespace {

// File-scope so the handler (which cannot capture) can reach them. Only
// lock-free atomics are touched from signal context.
std::atomic<bool> g_cancel{false};
std::atomic<int> g_last_signal{0};
std::atomic<bool> g_guard_active{false};

static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free atomic<bool>");
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free atomic<int>");

void OnSignal(int sig) {
  if (g_cancel.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the operator insists. Exit NOW with the
    // conventional 128+signal code (130 for SIGINT, 143 for SIGTERM)
    // instead of re-raising: a re-raised signal stays pending until the
    // handler returns, and the interrupted thread may be deep inside a
    // checkpoint fsync — the one wait the operator is trying to skip.
    // _exit(2) is async-signal-safe and terminates every thread without
    // flushing or unwinding; a half-written snapshot temp file is
    // harmless because the atomic writer publishes via rename only.
    ::_exit(128 + sig);
  }
  g_last_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

SignalGuard::SignalGuard() {
  OPIM_CHECK_MSG(!g_guard_active.exchange(true),
                 "only one SignalGuard may be active at a time");
  g_cancel.store(false, std::memory_order_relaxed);
  g_last_signal.store(0, std::memory_order_relaxed);
  prev_int_ = std::signal(SIGINT, &OnSignal);
  prev_term_ = std::signal(SIGTERM, &OnSignal);
}

SignalGuard::~SignalGuard() {
  std::signal(SIGINT, prev_int_ == SIG_ERR ? SIG_DFL : prev_int_);
  std::signal(SIGTERM, prev_term_ == SIG_ERR ? SIG_DFL : prev_term_);
  g_guard_active.store(false, std::memory_order_relaxed);
}

const std::atomic<bool>* SignalGuard::flag() const { return &g_cancel; }

bool SignalGuard::triggered() const {
  return g_cancel.load(std::memory_order_relaxed);
}

int SignalGuard::signal_number() const {
  return g_last_signal.load(std::memory_order_relaxed);
}

}  // namespace opim
