#include "support/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace opim {

double LogFactorial(uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(uint64_t n, uint64_t k) {
  if (k == 0 || k >= n) return 0.0;
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

uint64_t CeilToU64(double x) {
  if (x <= 0.0) return 0;
  double c = std::ceil(x);
  if (c >= static_cast<double>(std::numeric_limits<uint64_t>::max())) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(c);
}

uint32_t CeilLog2(uint64_t x) {
  uint32_t i = 0;
  uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++i;
  }
  return i;
}

double SquaredSqrtSum(double u, double v) {
  double s = std::sqrt(std::max(u, 0.0)) + std::sqrt(std::max(v, 0.0));
  return s * s;
}

double SquaredSqrtDiffClamped(double u, double v) {
  double d = std::sqrt(std::max(u, 0.0)) - std::sqrt(std::max(v, 0.0));
  if (d <= 0.0) return 0.0;
  return d * d;
}

}  // namespace opim
