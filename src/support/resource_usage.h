// Process resource-usage snapshots for reports and the progress
// heartbeat: peak RSS plus major/minor page-fault counters. Page
// faults are the observable cost of the storage tier — a mapped
// `.opimg` load shifts work from parse time to (minor) faults, and
// spill-tier chunk fault-ins show up as reads plus faults — so runs
// record them alongside wall-clock timings.

#pragma once

#include <cstdint>

namespace opim {

/// One snapshot of the process's resource counters. All fields are
/// cumulative since process start.
struct ResourceUsage {
  uint64_t peak_rss_bytes = 0;    // high-water resident set size
  uint64_t major_page_faults = 0; // faults that required I/O
  uint64_t minor_page_faults = 0; // faults served from memory
};

/// Reads the current counters. Peak RSS comes from /proc/self/status
/// (VmHWM) with a getrusage(RUSAGE_SELF) fallback; fault counters come
/// from getrusage. Never fails: fields a platform cannot supply stay 0.
ResourceUsage ReadResourceUsage();

}  // namespace opim
