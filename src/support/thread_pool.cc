#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace opim {

namespace {

/// Process-wide task-span observer (see ThreadPool::SetTaskSpanHook).
std::atomic<ThreadPool::TaskSpanHook> task_span_hook{nullptr};

}  // namespace

void ThreadPool::SetTaskSpanHook(TaskSpanHook hook) {
  task_span_hook.store(hook, std::memory_order_release);
}

#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace
#endif

ThreadPool::ThreadPool(unsigned num_threads) {
  OPIM_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    OPIM_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    QueuedTask queued;
    queued.fn = std::move(task);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
    queued.enqueued = std::chrono::steady_clock::now();
#endif
    tasks_.push(std::move(queued));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (failure_ != nullptr) {
    std::exception_ptr failure = std::exchange(failure_, nullptr);
    lock.unlock();
    std::rethrow_exception(failure);
  }
}

unsigned ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ThreadPool::ResolveThreadCount(unsigned requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  const unsigned shards =
      static_cast<unsigned>(std::min<uint64_t>(n, num_threads()));
  auto next = std::make_shared<std::atomic<uint64_t>>(0);
  for (unsigned s = 0; s < shards; ++s) {
    Submit([next, n, &fn] {
      for (;;) {
        uint64_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    });
  }
  Wait();
}

ThreadPoolStats ThreadPool::Stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    bool drain = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
      const auto idle_start = std::chrono::steady_clock::now();
#endif
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
      stats_.idle_wait_us += MicrosSince(idle_start);
#endif
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      // A captured failure poisons the batch: drain the remaining queued
      // tasks without running them so Wait() can rethrow promptly.
      drain = failure_ != nullptr;
      ++stats_.tasks_run;
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
      stats_.queue_wait_us += MicrosSince(task.enqueued);
#endif
    }
    if (!drain) {
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
      const TaskSpanHook hook = task_span_hook.load(std::memory_order_acquire);
      const auto task_start = hook != nullptr
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
#endif
      try {
        task.fn();
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
      if (hook != nullptr) {
        hook(task_start, std::chrono::steady_clock::now());
      }
#endif
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (failure_ == nullptr) failure_ = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
  if (failure_ != nullptr) {
    std::exception_ptr failure = std::exchange(failure_, nullptr);
    lock.unlock();
    std::rethrow_exception(failure);
  }
}

}  // namespace opim
