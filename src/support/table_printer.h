// Aligned plain-text table and CSV emission for the experiment harness.
// Every bench binary prints one table per paper table/figure through this.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace opim {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (for the console) or as CSV (for plotting).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with %g-style formatting.
  static std::string Cell(double v, int precision = 6);
  static std::string Cell(uint64_t v);
  static std::string Cell(int64_t v);

  /// Renders an aligned table with a header rule.
  std::string ToAlignedString() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsvString() const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opim
