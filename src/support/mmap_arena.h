// Memory-mapped arenas for the storage tier.
//
// An MmapArena owns one contiguous mapping: either a read-only
// file-backed mapping (MapFile — the `.opimg` fast load path, where
// "loading" a graph is a page-table operation and the kernel faults
// pages in on first touch) or an anonymous read-write mapping
// (Allocate — sealed SamplingView arenas and the heap fallback when a
// file cannot be mapped). The arena hands out raw byte views; callers
// bind typed spans over AlignUp-aligned sections.
//
// Advise() forwards access-pattern hints to madvise(2). Hints are
// best-effort by design: a kernel that rejects them changes
// performance, never correctness, so Advise never fails.
//
// Fault-injection site (build-fi only, see fault_inject.h):
//   io.mmap_fail  evaluated once per MapFile; firing makes the map
//                 fail with an IOError before mmap(2) is attempted,
//                 pinning the caller's graceful heap-fallback path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "support/macros.h"
#include "support/status.h"

namespace opim {

/// Owns one mmap(2) region (file-backed read-only or anonymous
/// read-write) and unmaps it on destruction. Shared via shared_ptr so
/// graphs and views copied from a mapped source keep the pages alive.
class MmapArena {
 public:
  /// Section alignment for multi-array payloads carved out of one
  /// arena. 64 bytes = one cache line, and a multiple of every scalar
  /// type the storage tier stores.
  static constexpr size_t kAlignment = 64;

  /// Rounds `n` up to the next kAlignment boundary.
  static constexpr uint64_t AlignUp(uint64_t n) {
    return (n + kAlignment - 1) & ~uint64_t{kAlignment - 1};
  }

  /// Access-pattern hints for Advise(); mapped to madvise(2) flags.
  enum class Advice {
    kNormal,      // MADV_NORMAL
    kSequential,  // MADV_SEQUENTIAL — checksum scans, whole-file reads
    kRandom,      // MADV_RANDOM — CSR adjacency walks
    kWillNeed,    // MADV_WILLNEED — prefetch before first use
  };

  /// Maps `path` read-only in its entirety. Fails with IOError when the
  /// file cannot be opened, stat'd, or mapped (including the armed
  /// io.mmap_fail site). An empty file maps to a valid zero-length
  /// arena. The initial `advice` is applied to the whole mapping.
  static Result<std::shared_ptr<MmapArena>> MapFile(
      const std::string& path, Advice advice = Advice::kNormal);

  /// Creates an anonymous read-write mapping of `bytes` zeroed bytes.
  /// Fails with IOError when the kernel refuses the mapping.
  static Result<std::shared_ptr<MmapArena>> Allocate(uint64_t bytes);

  ~MmapArena();
  OPIM_DISALLOW_COPY(MmapArena);

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }

  /// Writable view; only valid for Allocate()d arenas.
  uint8_t* mutable_data() {
    OPIM_CHECK_MSG(!file_backed_, "mutable_data on a file-backed arena");
    return data_;
  }

  bool file_backed() const { return file_backed_; }

  /// Best-effort madvise over [offset, offset+length). Out-of-range or
  /// kernel-rejected hints are ignored — hints never affect
  /// correctness.
  void Advise(uint64_t offset, uint64_t length, Advice advice) const;

 private:
  MmapArena(uint8_t* data, uint64_t size, bool file_backed)
      : data_(data), size_(size), file_backed_(file_backed) {}

  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool file_backed_ = false;
};

}  // namespace opim
