#include "support/mmap_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/fault_inject.h"

namespace opim {

namespace {

int AdviceFlag(MmapArena::Advice advice) {
  switch (advice) {
    case MmapArena::Advice::kNormal:
      return MADV_NORMAL;
    case MmapArena::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapArena::Advice::kRandom:
      return MADV_RANDOM;
    case MmapArena::Advice::kWillNeed:
      return MADV_WILLNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

Result<std::shared_ptr<MmapArena>> MmapArena::MapFile(const std::string& path,
                                                      Advice advice) {
  if (OPIM_FAULT_POINT("io.mmap_fail")) {
    return Status::IOError("injected mmap failure: " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IOError("cannot stat " + path + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return std::shared_ptr<MmapArena>(new MmapArena(nullptr, 0, true));
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference to the file.
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " +
                           std::strerror(errno));
  }
  auto arena = std::shared_ptr<MmapArena>(
      new MmapArena(static_cast<uint8_t*>(addr), size, true));
  if (advice != Advice::kNormal) arena->Advise(0, size, advice);
  return arena;
}

Result<std::shared_ptr<MmapArena>> MmapArena::Allocate(uint64_t bytes) {
  if (bytes == 0) {
    return std::shared_ptr<MmapArena>(new MmapArena(nullptr, 0, false));
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot allocate anonymous mapping of " +
                           std::to_string(bytes) + " bytes: " +
                           std::strerror(errno));
  }
  return std::shared_ptr<MmapArena>(
      new MmapArena(static_cast<uint8_t*>(addr), bytes, false));
}

MmapArena::~MmapArena() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MmapArena::Advise(uint64_t offset, uint64_t length,
                       Advice advice) const {
  if (data_ == nullptr || offset >= size_) return;
  if (length > size_ - offset) length = size_ - offset;
  // madvise wants page-aligned addresses; round the start down. Failure
  // is deliberately ignored — a rejected hint cannot affect correctness.
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  uint64_t start = offset & ~(page - 1);
  (void)::madvise(data_ + start, length + (offset - start),
                  AdviceFlag(advice));
}

}  // namespace opim
