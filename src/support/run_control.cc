#include "support/run_control.h"

#include <limits>

#include "support/fault_inject.h"

namespace opim {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemoryBudget:
      return "memory_budget";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kWorkerFailure:
      return "worker_failure";
    case StopReason::kSpillFailure:
      return "spill_failure";
  }
  return "unknown";
}

int ExitCodeForStopReason(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return 0;
    case StopReason::kDeadline:
      return 3;
    case StopReason::kMemoryBudget:
      return 4;
    case StopReason::kCancelled:
      return 5;
    case StopReason::kWorkerFailure:
      return 6;
    case StopReason::kSpillFailure:
      return 7;
  }
  return 1;
}

void RunControl::SetDeadline(Clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_ = true;
}

void RunControl::SetDeadlineAfterMillis(int64_t ms) {
  SetDeadline(Clock::now() + std::chrono::milliseconds(ms));
}

void RunControl::SetMemoryBudgetBytes(uint64_t bytes) {
  budget_bytes_ = bytes;
}

void RunControl::BindCancelFlag(const std::atomic<bool>* flag) {
  cancel_flag_ = flag;
}

void RunControl::Trip(StopReason r) {
  int expected = kRunning;
  if (reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                      std::memory_order_acq_rel)) {
    trip_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_release);
  }
}

RunControl::Clock::time_point RunControl::ObservedNow() const {
  if (OPIM_FAULT_POINT("runctl.clock_skew")) {
    clock_skewed_.store(true, std::memory_order_relaxed);
  }
  Clock::time_point now = Clock::now();
  if (clock_skewed_.load(std::memory_order_relaxed)) {
    now += std::chrono::hours(24 * 365);
  }
  return now;
}

bool RunControl::Poll(uint64_t current_bytes) {
  if (Stopped()) return true;

  if (OPIM_FAULT_POINT("runctl.mem_spike")) {
    mem_spiked_.store(true, std::memory_order_relaxed);
  }
  if (current_bytes > 0) {
    uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (current_bytes > peak &&
           !peak_bytes_.compare_exchange_weak(peak, current_bytes,
                                              std::memory_order_relaxed)) {
    }
  }

  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_relaxed)) {
    Trip(StopReason::kCancelled);
    return true;
  }
  if (budget_bytes_ > 0) {
    const uint64_t effective =
        mem_spiked_.load(std::memory_order_relaxed)
            ? std::numeric_limits<uint64_t>::max() / 2
            : current_bytes;
    if (effective >= budget_bytes_) {
      Trip(StopReason::kMemoryBudget);
      return true;
    }
  }
  if (has_deadline_ && ObservedNow() >= deadline_) {
    Trip(StopReason::kDeadline);
    return true;
  }
  return false;
}

double RunControl::deadline_slack_seconds() const {
  if (!has_deadline_) return 0.0;
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

double RunControl::seconds_since_trip() const {
  if (!Stopped()) return 0.0;
  const int64_t trip = trip_ns_.load(std::memory_order_acquire);
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now().time_since_epoch())
                          .count();
  return static_cast<double>(now - trip) * 1e-9;
}

}  // namespace opim
