// Core assertion and utility macros used across the opim library.
//
// Internal invariants use OPIM_CHECK-family macros: they abort with a
// diagnostic on violation (these are programming errors, not recoverable
// conditions). Fallible operations whose failure is an expected runtime
// outcome (I/O, parsing) return Status/Result instead; see status.h.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace opim::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "OPIM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace opim::internal

/// Aborts with a diagnostic if `expr` is false. Enabled in all build types:
/// the costs are trivial next to sampling work, and silent corruption in a
/// randomized algorithm is far worse than an abort.
#define OPIM_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::opim::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                     \
  } while (0)

/// OPIM_CHECK with an explanatory message.
#define OPIM_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::opim::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                     \
  } while (0)

/// Comparison checks that print both operand texts.
#define OPIM_CHECK_LT(a, b) OPIM_CHECK((a) < (b))
#define OPIM_CHECK_LE(a, b) OPIM_CHECK((a) <= (b))
#define OPIM_CHECK_GT(a, b) OPIM_CHECK((a) > (b))
#define OPIM_CHECK_GE(a, b) OPIM_CHECK((a) >= (b))
#define OPIM_CHECK_EQ(a, b) OPIM_CHECK((a) == (b))
#define OPIM_CHECK_NE(a, b) OPIM_CHECK((a) != (b))

/// Debug-only variants for per-element checks on hot paths (per-node range
/// checks in RR-set ingestion and index lookups). These run millions of
/// times per doubling, so release builds (NDEBUG) compile them out; builds
/// without NDEBUG — and any build defining OPIM_FORCE_DEBUG_CHECKS — keep
/// the full OPIM_CHECK behavior. Whole-call contract checks (argument
/// validation at API boundaries) stay OPIM_CHECK: they are O(1) per call.
#if !defined(OPIM_DEBUG_CHECKS)
#if defined(NDEBUG) && !defined(OPIM_FORCE_DEBUG_CHECKS)
#define OPIM_DEBUG_CHECKS 0
#else
#define OPIM_DEBUG_CHECKS 1
#endif
#endif

#if OPIM_DEBUG_CHECKS
#define OPIM_DCHECK(expr) OPIM_CHECK(expr)
#define OPIM_DCHECK_LT(a, b) OPIM_CHECK_LT(a, b)
#define OPIM_DCHECK_LE(a, b) OPIM_CHECK_LE(a, b)
#define OPIM_DCHECK_EQ(a, b) OPIM_CHECK_EQ(a, b)
#else
// sizeof() keeps the operands name-used (no -Wunused) without evaluating.
#define OPIM_DCHECK(expr) \
  do {                    \
    (void)sizeof(expr);   \
  } while (0)
#define OPIM_DCHECK_LT(a, b) OPIM_DCHECK((a) < (b))
#define OPIM_DCHECK_LE(a, b) OPIM_DCHECK((a) <= (b))
#define OPIM_DCHECK_EQ(a, b) OPIM_DCHECK((a) == (b))
#endif

/// Marks a class as non-copyable (movability unaffected).
#define OPIM_DISALLOW_COPY(ClassName)            \
  ClassName(const ClassName&) = delete;          \
  ClassName& operator=(const ClassName&) = delete
