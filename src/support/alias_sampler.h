// Walker's alias method for O(1) sampling from a fixed discrete
// distribution (Walker 1977, cited as [42] by the paper).
//
// The LT-model RR-set sampler draws, at every random-walk step, one
// in-neighbor of the current node with probability proportional to the edge
// weight (or stops). Appendix A of the paper notes this takes O(1) per step
// with the alias method after O(n + m) preprocessing; this class is that
// preprocessing, built once per node over its in-edges.

#pragma once

#include <cstdint>
#include <vector>

#include "support/random.h"

namespace opim {

/// O(1) sampler over a fixed discrete distribution on {0, …, n-1}.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table from non-negative weights. Weights need not be
  /// normalized; all-zero or empty weights yield an empty sampler (Sample
  /// must not be called). O(n) construction.
  explicit AliasSampler(const std::vector<double>& weights) {
    Build(weights);
  }

  /// (Re)builds the table from `weights`; see the constructor.
  void Build(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  /// Requires a non-empty distribution.
  uint32_t Sample(Rng& rng) const {
    OPIM_CHECK_MSG(!prob_.empty(), "Sample() on empty AliasSampler");
    uint32_t i = rng.UniformBelow(static_cast<uint32_t>(prob_.size()));
    return rng.UniformDouble() < prob_[i] ? i : alias_[i];
  }

  /// True if the distribution is empty or had zero total weight.
  bool empty() const { return prob_.empty(); }

  /// Number of categories in the distribution (0 if empty()).
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;    // acceptance probability per bucket
  std::vector<uint32_t> alias_; // alias index per bucket
};

}  // namespace opim
