// Small numeric helpers shared by the bound derivations and the baseline
// algorithms (log-binomials for IMM's λ formulas, etc.).

#pragma once

#include <cstdint>

namespace opim {

/// Natural log of the binomial coefficient C(n, k), computed via
/// lgamma to stay finite for the huge n the sample-size formulas use.
/// Returns 0 for k <= 0 or k >= n (C = 1 at the boundary; out-of-range k
/// is clamped, matching how the sample-size formulas use it).
double LogBinomial(uint64_t n, uint64_t k);

/// log(n!) via lgamma.
double LogFactorial(uint64_t n);

/// 1 - 1/e, the greedy approximation factor for submodular maximization.
constexpr double kOneMinusInvE = 0.6321205588285577;

/// Rounds a positive double up to the next uint64, saturating at max.
uint64_t CeilToU64(double x);

/// Integer log2 ceiling: smallest i with 2^i >= x (x >= 1).
uint32_t CeilLog2(uint64_t x);

/// Numerically careful (a + b) choose over doubles: returns x*x for
/// x = sqrt(u) + sqrt(v) without cancellation. Convenience for the
/// (sqrt(A) + sqrt(B))^2 pattern in Eqs. (8), (13), (15).
double SquaredSqrtSum(double u, double v);

/// (sqrt(u) - sqrt(v))^2, clamped at 0 when sqrt(u) < sqrt(v).
/// Convenience for the pattern in Eq. (5).
double SquaredSqrtDiffClamped(double u, double v);

}  // namespace opim
