#include "support/io_util.h"

#include <errno.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#include <string>

namespace opim::io {
namespace {

void BackoffSleep(int stall_round) {
  // 1ms doubling to 64ms; bounded so a wedged fd fails in ~127ms.
  long ms = 1L << (stall_round < 6 ? stall_round : 6);
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

Status StalledError(const char* op, size_t remaining) {
  return Status::IOError(std::string(op) + " stalled with " +
                         std::to_string(remaining) +
                         " bytes left after " +
                         std::to_string(kMaxStalledRetries) + " retries");
}

Status ErrnoError(const char* op, int err) {
  return Status::IOError(std::string(op) + " failed: " + ::strerror(err));
}

// One loop services all four entry points: `xfer` performs a single
// (p)read/(p)write attempt and returns its ssize_t result.
template <typename Xfer>
Status TransferFull(const char* op, size_t len, bool reads, Xfer&& xfer) {
  size_t done = 0;
  int stalls = 0;
  while (done < len) {
    const ssize_t got = xfer(done, len - done);
    if (got > 0) {
      done += static_cast<size_t>(got);
      stalls = 0;
      continue;
    }
    if (got == 0) {
      if (reads) {
        return Status::IOError(std::string(op) + " hit EOF with " +
                               std::to_string(len - done) + " bytes left");
      }
      // write(2) returning 0 for a non-zero count is a stall, not an
      // error code; back off like EAGAIN.
      if (++stalls > kMaxStalledRetries) return StalledError(op, len - done);
      BackoffSleep(stalls - 1);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (++stalls > kMaxStalledRetries) return StalledError(op, len - done);
      BackoffSleep(stalls - 1);
      continue;
    }
    return ErrnoError(op, errno);
  }
  return Status::OK();
}

}  // namespace

Status WriteFull(int fd, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  return TransferFull("write", len, /*reads=*/false,
                      [&](size_t off, size_t n) { return ::write(fd, p + off, n); });
}

Status ReadFull(int fd, void* data, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(data);
  return TransferFull("read", len, /*reads=*/true,
                      [&](size_t off, size_t n) { return ::read(fd, p + off, n); });
}

Status PWriteFull(int fd, const void* data, size_t len, off_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  return TransferFull("pwrite", len, /*reads=*/false, [&](size_t off, size_t n) {
    return ::pwrite(fd, p + off, n, offset + static_cast<off_t>(off));
  });
}

Status PReadFull(int fd, void* data, size_t len, off_t offset) {
  uint8_t* p = static_cast<uint8_t*>(data);
  return TransferFull("pread", len, /*reads=*/true, [&](size_t off, size_t n) {
    return ::pread(fd, p + off, n, offset + static_cast<off_t>(off));
  });
}

}  // namespace opim::io
