// Run guardrails: wall-clock deadlines, RR-pool memory budgets, and
// cooperative cancellation for the OPIM engines.
//
// OPIM's defining property (paper §4) is that the algorithm can be paused
// at *any* moment and still emit a seed set with an instance-specific
// guarantee α. RunControl is the object that lets operators exercise that
// contract: it carries an optional deadline, an optional memory budget for
// the RR-set pools, and a cancellation flag that a signal bridge
// (signal_guard.h) or another thread can trip. Engine loops call Poll() at
// safe points (per-shard chunk granularity inside RR generation, iteration
// boundaries in OPIM-C); once any guardrail trips, every subsequent Poll()
// and Stopped() reports true and the engine exits at its next safe point,
// finishes the judge-pool bound evaluation on whatever RR sets exist, and
// returns a normal result tagged with the StopReason — graceful
// degradation with a correctness certificate instead of an OOM, a missed
// SLA, or a SIGINT mid-doubling.
//
// Thread-safety: one RunControl is shared by every worker of a run. All
// state is atomic; the fast path (already tripped, or no guardrail
// configured) is a single relaxed load. The first trip wins — the reason
// and trip time are recorded exactly once.
//
// The deadline check reads the steady clock, so callers amortize Poll()
// over a chunk of work (e.g. every 32 RR samples); the chunk size bounds
// the cancellation latency, which the engines report (see
// docs/robustness.md for the latency argument).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/macros.h"

namespace opim {

/// Why a guarded run returned. kConverged covers every natural exit (the
/// stopping rule fired or the iteration budget ran out); the other values
/// name the guardrail that tripped first.
enum class StopReason : int {
  kConverged = 0,
  kDeadline = 1,
  kMemoryBudget = 2,
  kCancelled = 3,
  kWorkerFailure = 4,
  kSpillFailure = 5,
};

/// Stable lowercase names: "converged", "deadline", "memory_budget",
/// "cancelled", "worker_failure", "spill_failure". Used in run reports
/// and CLI output.
const char* StopReasonName(StopReason reason);

/// Documented CLI exit codes: converged -> 0, deadline -> 3,
/// memory_budget -> 4, cancelled -> 5, worker_failure -> 6,
/// spill_failure -> 7. (1 = error, 2 = usage, so degraded-but-certified
/// exits are distinguishable from failures in scripts.)
int ExitCodeForStopReason(StopReason reason);

/// Shared guardrail state for one engine run. Configure before the run
/// starts; workers only call Poll()/Stopped().
class RunControl {
 public:
  RunControl() = default;
  OPIM_DISALLOW_COPY(RunControl);

  using Clock = std::chrono::steady_clock;

  // --- Configuration (before the run) -----------------------------------

  /// Arms the deadline guardrail: Poll() trips kDeadline once the steady
  /// clock reaches `deadline`.
  void SetDeadline(Clock::time_point deadline);

  /// Deadline `ms` milliseconds from now. ms <= 0 arms an already-expired
  /// deadline (the run degrades at its first safe point).
  void SetDeadlineAfterMillis(int64_t ms);

  /// Arms the memory guardrail: Poll(bytes) trips kMemoryBudget once the
  /// reported footprint reaches `bytes` (budget exhausted when reached).
  /// 0 disarms.
  void SetMemoryBudgetBytes(uint64_t bytes);

  /// Binds an external cancellation flag (e.g. SignalGuard::flag());
  /// Poll() trips kCancelled once it reads true. The flag must outlive
  /// the run. The store may come from a signal handler: only the
  /// async-signal-safe atomic load is performed here.
  void BindCancelFlag(const std::atomic<bool>* flag);

  // --- Tripping ----------------------------------------------------------

  /// Programmatic cancellation: trips kCancelled immediately (engines
  /// still exit at their next safe point).
  void RequestCancel() { Trip(StopReason::kCancelled); }

  /// Records a worker exception (called by the engine that caught it).
  void TripWorkerFailure() { Trip(StopReason::kWorkerFailure); }

  /// Trips the control because the out-of-core spill tier failed (disk
  /// full, injected short write): the run degrades exactly like a
  /// memory-budget stop, but reports the distinct reason.
  void TripSpillFailure() { Trip(StopReason::kSpillFailure); }

  // --- Polling (worker safe points) --------------------------------------

  /// True once any guardrail tripped. One relaxed atomic load.
  bool Stopped() const {
    return reason_.load(std::memory_order_relaxed) != kRunning;
  }

  /// The first reason that tripped, or kConverged while running.
  StopReason reason() const {
    const int r = reason_.load(std::memory_order_acquire);
    return r == kRunning ? StopReason::kConverged
                         : static_cast<StopReason>(r);
  }

  /// The safe-point check: records `current_bytes` into the peak, then
  /// tests (in order) the bound cancel flag, the memory budget, and the
  /// deadline. Returns Stopped(). `current_bytes` = 0 means "no new
  /// footprint information" (pure cancellation/deadline check).
  bool Poll(uint64_t current_bytes = 0);

  // --- Telemetry ---------------------------------------------------------

  bool has_deadline() const { return has_deadline_; }
  uint64_t memory_budget_bytes() const { return budget_bytes_; }

  /// Largest footprint any Poll() reported.
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// Folds `bytes` into the peak without running the guardrail checks.
  /// Used when resuming from a snapshot: the restored run's reported
  /// peak must cover the pre-crash iterations, but replaying the old
  /// footprint through Poll() could spuriously trip a tighter budget
  /// configured for the continuation.
  void RecordPeakBytes(uint64_t bytes) {
    uint64_t prev = peak_bytes_.load(std::memory_order_relaxed);
    while (prev < bytes && !peak_bytes_.compare_exchange_weak(
                               prev, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Seconds until the deadline (negative once past). Only meaningful
  /// when has_deadline(). Unaffected by injected clock skew, so reports
  /// carry real slack.
  double deadline_slack_seconds() const;

  /// Seconds since the first trip — the engine reads this just before
  /// returning, which makes it the observed cancellation latency. 0.0
  /// while running.
  double seconds_since_trip() const;

 private:
  static constexpr int kRunning = -1;

  void Trip(StopReason r);

  /// The clock the deadline check sees; fault site "runctl.clock_skew"
  /// (OPIM_FAULT_INJECT builds) pushes it far into the future.
  Clock::time_point ObservedNow() const;

  std::atomic<int> reason_{kRunning};
  std::atomic<int64_t> trip_ns_{0};  // Clock nanos at first trip

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  uint64_t budget_bytes_ = 0;
  const std::atomic<bool>* cancel_flag_ = nullptr;

  std::atomic<uint64_t> peak_bytes_{0};
  // Sticky fault-injection effects (no-ops unless OPIM_FAULT_INJECT).
  mutable std::atomic<bool> clock_skewed_{false};
  std::atomic<bool> mem_spiked_{false};
};

}  // namespace opim
