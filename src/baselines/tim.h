// TIM / TIM+ — Two-phase Influence Maximization (Tang, Xiao & Shi, SIGMOD
// 2014; the paper's reference [39]). IMM's predecessor, included for
// completeness of the RIS-baseline family: OPIM's related-work section
// positions it as the first practical RIS algorithm.
//
// Phase 1 — parameter estimation:
//   KPT*: for i = 1..log2(n)-1, draw c_i = (6ℓ·ln n + 6·ln log2 n)·2^i RR
//   sets and compute κ_i = (1/c_i)·Σ_R (1 - (1 - w(R)/m)^k), where w(R) is
//   the set's width (total in-degree of its members). Accept
//   KPT = κ_i·n/2 once κ_i > 2^-i. KPT lower-bounds OPT/... within the
//   factors TIM's analysis needs.
//   Refinement (the "+" in TIM+): run greedy on λ'/KPT fresh RR sets to
//   get S'; estimate its spread on another fresh batch; KPT+ =
//   max(KPT, est/(1 + ε')). Tightens KPT by up to an order of magnitude.
//
// Phase 2 — node selection: draw θ = λ/KPT+ RR sets with
//   λ = (8 + 2ε)·n·(ℓ·ln n + ln C(n,k) + ln 2)·ε⁻², run greedy.
//
// δ maps to ℓ via δ = n^-ℓ as for IMM.

#pragma once

#include <cstdint>

#include "baselines/im_result.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace opim {

/// Tuning knobs for RunTim.
struct TimOptions {
  /// RNG seed for the RR-set stream.
  uint64_t seed = 1;
  /// Safety cap on generated RR sets (0 = uncapped); see ImmOptions.
  uint64_t max_rr_sets = 0;
  /// Apply the TIM+ KPT refinement step (default on, as in the paper).
  bool refine_kpt = true;
};

/// Diagnostics from a RunTim invocation.
struct TimStats {
  /// KPT* from the width-based estimator.
  double kpt_star = 0.0;
  /// KPT after the TIM+ refinement (== kpt_star when refinement is off or
  /// did not improve).
  double kpt_plus = 0.0;
  /// θ = λ/KPT+ demanded by the formulas.
  uint64_t theta_required = 0;
  /// True if max_rr_sets stopped the run early.
  bool capped = false;
};

/// Runs TIM+ for a (1 - 1/e - ε)-approximation with probability 1 - δ.
ImResult RunTim(const Graph& g, DiffusionModel model, uint32_t k, double eps,
                double delta, const TimOptions& options = {},
                TimStats* stats = nullptr);

}  // namespace opim
