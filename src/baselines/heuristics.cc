#include "baselines/heuristics.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "support/macros.h"

namespace opim {

namespace {

/// Top-k node ids by score, ties to the smaller id (determinism).
std::vector<NodeId> TopKByScore(const std::vector<double>& score,
                                uint32_t k) {
  std::vector<NodeId> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  k = std::min<uint32_t>(k, static_cast<uint32_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace

std::vector<NodeId> SelectByDegree(const Graph& g, uint32_t k) {
  OPIM_CHECK_GE(k, 1u);
  std::vector<double> score(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    score[v] = static_cast<double>(g.OutDegree(v));
  }
  return TopKByScore(score, k);
}

std::vector<NodeId> SelectByDegreeDiscount(const Graph& g, uint32_t k,
                                           double p) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK(p >= 0.0 && p <= 1.0);
  const uint32_t n = g.num_nodes();
  k = std::min(k, n);

  // dd[v] = discounted degree; t[v] = selected in-neighbors of v.
  // Chen et al.'s discount: dd = d - 2t - (d - t)·t·p.
  std::vector<double> dd(n);
  std::vector<uint32_t> t(n, 0);
  std::vector<char> selected(n, 0);
  for (NodeId v = 0; v < n; ++v) dd[v] = static_cast<double>(g.OutDegree(v));

  struct Entry {
    double score;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (score != other.score) return score < other.score;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> queue;
  for (NodeId v = 0; v < n; ++v) queue.push({dd[v], v});

  std::vector<NodeId> seeds;
  seeds.reserve(k);
  while (seeds.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (selected[top.node]) continue;
    if (top.score != dd[top.node]) continue;  // stale entry
    selected[top.node] = 1;
    seeds.push_back(top.node);
    // Discount out-neighbors (influence flows seed -> neighbor).
    for (NodeId w : g.OutNeighbors(top.node)) {
      if (selected[w]) continue;
      ++t[w];
      double d = static_cast<double>(g.OutDegree(w));
      dd[w] = d - 2.0 * t[w] - (d - t[w]) * t[w] * p;
      queue.push({dd[w], w});
    }
  }
  // Coverage saturated early (tiny graphs): fill deterministically.
  for (NodeId v = 0; v < n && seeds.size() < k; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      seeds.push_back(v);
    }
  }
  return seeds;
}

std::vector<double> InfluencePageRank(const Graph& g, double damping,
                                      uint32_t iterations) {
  OPIM_CHECK(damping > 0.0 && damping < 1.0);
  const uint32_t n = g.num_nodes();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / n), next(n);

  // Influence PageRank: v distributes its rank backwards along incoming
  // edges, weighted by p(w, v) — a node that influences high-rank nodes
  // becomes high-rank. Dangling mass (nodes with no in-edges, i.e. no one
  // to credit) is spread uniformly.
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double weight_sum = g.InWeightSum(v);
      if (weight_sum <= 0.0) {
        dangling += rank[v];
        continue;
      }
      auto in = g.InNeighbors(v);
      auto probs = g.InProbs(v);
      for (size_t i = 0; i < in.size(); ++i) {
        next[in[i]] += rank[v] * probs[i] / weight_sum;
      }
    }
    const double teleport =
        (1.0 - damping) / n + damping * dangling / n;
    for (NodeId v = 0; v < n; ++v) {
      next[v] = damping * next[v] + teleport;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<NodeId> SelectByPageRank(const Graph& g, uint32_t k,
                                     double damping, uint32_t iterations) {
  OPIM_CHECK_GE(k, 1u);
  return TopKByScore(InfluencePageRank(g, damping, iterations), k);
}

std::vector<double> TwoHopScores(const Graph& g) {
  const uint32_t n = g.num_nodes();
  // one_hop[v] = 1 + Σ_w p(v, w): expected self + direct activations.
  std::vector<double> one_hop(n, 1.0);
  for (NodeId v = 0; v < n; ++v) {
    for (double p : g.OutProbs(v)) one_hop[v] += p;
  }
  std::vector<double> two_hop(n, 1.0);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.OutNeighbors(v);
    auto probs = g.OutProbs(v);
    double total = 1.0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      total += probs[i] * one_hop[nbrs[i]];
    }
    two_hop[v] = total;
  }
  return two_hop;
}

std::vector<NodeId> SelectByTwoHop(const Graph& g, uint32_t k) {
  OPIM_CHECK_GE(k, 1u);
  const uint32_t n = g.num_nodes();
  k = std::min(k, n);
  std::vector<double> score = TwoHopScores(g);
  std::vector<char> selected(n, 0);

  struct Entry {
    double score;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (score != other.score) return score < other.score;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> queue;
  for (NodeId v = 0; v < n; ++v) queue.push({score[v], v});

  std::vector<NodeId> seeds;
  seeds.reserve(k);
  while (seeds.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (selected[top.node]) continue;
    if (top.score != score[top.node]) continue;  // stale
    selected[top.node] = 1;
    seeds.push_back(top.node);
    // Overlap discount: neighbors lose the mass the new seed claims
    // through their shared edge (w no longer gains credit for activating
    // the seed or re-activating its direct reach through that edge).
    auto nbrs = g.OutNeighbors(top.node);
    auto probs = g.OutProbs(top.node);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId w = nbrs[i];
      if (selected[w]) continue;
      // Remove w's credit for edges into the selected seed.
      auto wn = g.OutNeighbors(w);
      auto wp = g.OutProbs(w);
      double loss = 0.0;
      for (size_t j = 0; j < wn.size(); ++j) {
        if (wn[j] == top.node) loss += wp[j] * (1.0 + probs[i]);
      }
      if (loss > 0.0) {
        score[w] = std::max(score[w] - loss, 0.0);
        queue.push({score[w], w});
      }
    }
  }
  for (NodeId v = 0; v < n && seeds.size() < k; ++v) {
    if (!selected[v]) seeds.push_back(v);
  }
  return seeds;
}

std::vector<NodeId> SelectByIrie(const Graph& g, uint32_t k, double alpha,
                                 uint32_t iterations) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK(alpha > 0.0 && alpha < 1.0);
  const uint32_t n = g.num_nodes();
  k = std::min(k, n);

  // ap[v]: estimated probability v is already activated by the selected
  // seeds, propagated two hops from each new seed (IRIE's IE step).
  std::vector<double> ap(n, 0.0);
  std::vector<char> selected(n, 0);
  std::vector<double> rank(n, 1.0), next(n);
  std::vector<NodeId> seeds;
  seeds.reserve(k);

  while (seeds.size() < k) {
    // IR step: fixed-point iteration of the damped expected-influence
    // recurrence, masked by (1 - ap).
    std::fill(rank.begin(), rank.end(), 1.0);
    for (uint32_t it = 0; it < iterations; ++it) {
      for (NodeId u = 0; u < n; ++u) {
        double acc = 1.0;
        auto nbrs = g.OutNeighbors(u);
        auto probs = g.OutProbs(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          acc += alpha * probs[i] * rank[nbrs[i]];
        }
        next[u] = (1.0 - ap[u]) * acc;
      }
      rank.swap(next);
    }

    // Pick the highest-ranked unselected node (smallest id on ties).
    NodeId best = kInvalidNode;
    double best_rank = -1.0;
    for (NodeId v = 0; v < n; ++v) {
      if (!selected[v] && rank[v] > best_rank) {
        best = v;
        best_rank = rank[v];
      }
    }
    if (best == kInvalidNode) break;
    selected[best] = 1;
    seeds.push_back(best);

    // IE step: fold the new seed's two-hop activation into ap.
    ap[best] = 1.0;
    auto nbrs = g.OutNeighbors(best);
    auto probs = g.OutProbs(best);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      NodeId w = nbrs[i];
      ap[w] = 1.0 - (1.0 - ap[w]) * (1.0 - probs[i]);
      auto nbrs2 = g.OutNeighbors(w);
      auto probs2 = g.OutProbs(w);
      for (size_t j = 0; j < nbrs2.size(); ++j) {
        NodeId x = nbrs2[j];
        ap[x] = 1.0 - (1.0 - ap[x]) * (1.0 - probs[i] * probs2[j]);
      }
    }
  }
  for (NodeId v = 0; v < n && seeds.size() < k; ++v) {
    if (!selected[v]) seeds.push_back(v);
  }
  return seeds;
}

}  // namespace opim
