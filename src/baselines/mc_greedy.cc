#include "baselines/mc_greedy.h"

#include <queue>

#include "support/macros.h"

namespace opim {

std::vector<NodeId> SelectMcGreedy(const Graph& g, DiffusionModel model,
                                   uint32_t k, uint64_t mc_samples,
                                   uint64_t seed, unsigned num_threads) {
  const uint32_t n = g.num_nodes();
  OPIM_CHECK_GE(n, 1u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_GE(mc_samples, 1u);
  k = std::min(k, n);

  SpreadEstimator estimator(g, model, num_threads);
  std::vector<NodeId> seeds;
  seeds.reserve(k);
  double current_spread = 0.0;

  struct Entry {
    double gain;
    NodeId node;
    uint32_t round;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> queue;

  // Seed the queue with singleton spreads.
  std::vector<NodeId> candidate(1);
  for (NodeId v = 0; v < n; ++v) {
    candidate[0] = v;
    double s = estimator.Estimate(candidate, mc_samples, seed + v);
    queue.push({s, v, 0});
  }

  std::vector<NodeId> extended;
  uint32_t round = 0;
  while (seeds.size() < k && !queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.round != round) {
      // Lazy-forward: recompute the stale marginal gain.
      extended = seeds;
      extended.push_back(top.node);
      double s = estimator.Estimate(extended, mc_samples,
                                    seed + 1315423911ULL * (round + 1) +
                                        top.node);
      top.gain = s - current_spread;
      top.round = round;
      queue.push(top);
      continue;
    }
    seeds.push_back(top.node);
    current_spread += top.gain;
    ++round;
  }
  return seeds;
}

}  // namespace opim
