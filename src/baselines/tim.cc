#include "baselines/tim.h"

#include <algorithm>
#include <cmath>

#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {

ImResult RunTim(const Graph& g, DiffusionModel model, uint32_t k, double eps,
                double delta, const TimOptions& options, TimStats* stats) {
  const uint32_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, n);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);
  OPIM_CHECK_MSG(m > 0, "TIM's width estimator needs at least one edge");

  const double ln_n = std::log(static_cast<double>(n));
  const double ell = std::log(1.0 / delta) / ln_n;  // δ = n^-ℓ
  const double log2_n = std::max(std::log2(static_cast<double>(n)), 1.0);

  auto sampler = MakeRRSampler(g, model);
  Rng rng(options.seed, 0x74696dULL);  // "tim"
  auto capped = [&](uint64_t want) {
    return options.max_rr_sets != 0 && want > options.max_rr_sets;
  };
  uint64_t generated = 0;
  uint64_t generated_size = 0;

  // --- Phase 1a: KPT* estimation (TIM Algorithm 2). ---
  double kpt = 1.0;
  {
    RRCollection probe(n);
    std::vector<NodeId> scratch;
    const int max_i = std::max(1, static_cast<int>(log2_n) - 1);
    for (int i = 1; i <= max_i; ++i) {
      uint64_t c_i = CeilToU64((6.0 * ell * ln_n + 6.0 * std::log(log2_n)) *
                               std::pow(2.0, i));
      if (capped(c_i)) c_i = options.max_rr_sets;
      while (probe.num_sets() < c_i) {
        uint64_t cost = sampler->SampleInto(rng, &scratch);
        probe.AddSet(scratch, cost);
        ++generated;
      }
      double sum = 0.0;
      for (RRId id = 0; id < probe.num_sets(); ++id) {
        const double w = static_cast<double>(probe.SetCost(id));
        sum += 1.0 - std::pow(1.0 - w / static_cast<double>(m),
                              static_cast<double>(k));
      }
      const double kappa = sum / static_cast<double>(probe.num_sets());
      if (kappa > 1.0 / std::pow(2.0, i)) {
        kpt = kappa * n / 2.0;
        break;
      }
      if (options.max_rr_sets != 0 && generated >= options.max_rr_sets) {
        break;
      }
    }
    generated_size += probe.total_size();
  }
  kpt = std::max(kpt, 1.0);
  if (stats != nullptr) {
    *stats = TimStats{};
    stats->kpt_star = kpt;
  }

  // --- Phase 1b: TIM+ refinement (intermediate greedy). ---
  if (options.refine_kpt) {
    const double eps_prime = 5.0 * std::cbrt(ell * eps * eps / (ell + k));
    const double lambda_ref = (2.0 + eps_prime) * ell * n * ln_n /
                              (eps_prime * eps_prime);
    uint64_t theta_ref =
        std::max<uint64_t>(1, CeilToU64(lambda_ref / kpt));
    if (!capped(2 * theta_ref) && eps_prime < 1.0) {
      RRCollection pick(n), judge(n);
      sampler->Generate(&pick, theta_ref, rng);
      sampler->Generate(&judge, theta_ref, rng);
      generated += 2 * theta_ref;
      generated_size += pick.total_size() + judge.total_size();
      GreedyResult greedy = SelectGreedy(pick, k);
      const double est = judge.EstimateSpread(greedy.seeds);
      kpt = std::max(kpt, est / (1.0 + eps_prime));
    }
  }
  if (stats != nullptr) stats->kpt_plus = kpt;

  // --- Phase 2: node selection. ---
  const double lambda = (8.0 + 2.0 * eps) * n *
                        (ell * ln_n + LogBinomial(n, k) + std::log(2.0)) /
                        (eps * eps);
  uint64_t theta = std::max<uint64_t>(1, CeilToU64(lambda / kpt));
  if (stats != nullptr) stats->theta_required = theta;
  bool was_capped = false;
  if (capped(theta)) {
    theta = options.max_rr_sets;
    was_capped = true;
  }
  RRCollection rr(n);
  sampler->Generate(&rr, theta, rng);
  generated += theta;
  generated_size += rr.total_size();
  GreedyResult greedy = SelectGreedy(rr, k);

  if (stats != nullptr) stats->capped = was_capped;

  ImResult result;
  result.seeds = std::move(greedy.seeds);
  result.num_rr_sets = generated;
  result.total_rr_size = generated_size;
  result.guarantee = 1.0 - 1.0 / std::exp(1.0) - eps;
  return result;
}

}  // namespace opim
