#include "baselines/dssa_fix.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {

ImResult RunDssaFix(const Graph& g, DiffusionModel model, uint32_t k,
                    double eps, double delta, const DssaFixOptions& options,
                    DssaFixStats* stats) {
  const uint32_t n = g.num_nodes();
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, n);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);

  // Lines 1-3 of Algorithm 3.
  const double lognk = LogBinomial(n, k);
  const double theta_max = 8.0 * kOneMinusInvE *
                           (std::log(6.0 / delta) + lognk) * n /
                           (eps * eps * k);
  const double i_max_arg = 2.0 * theta_max * eps * eps /
                           ((2.0 + 2.0 * eps / 3.0) * std::log(3.0 / delta));
  const uint32_t i_max =
      std::max<uint32_t>(1, CeilLog2(CeilToU64(std::max(i_max_arg, 2.0))));
  const double ln3imaxd = std::log(3.0 * i_max / delta);
  const uint64_t theta0 = std::max<uint64_t>(
      1, CeilToU64((2.0 + 2.0 * eps / 3.0) * ln3imaxd / (eps * eps)));
  const double cov_threshold =
      1.0 + (1.0 + eps) * (2.0 + 2.0 * eps / 3.0) * ln3imaxd / (eps * eps);

  auto sampler = MakeRRSampler(g, model);
  Rng rng(options.seed, 0x64737361ULL);  // "dssa"

  // The stream R_1, R_2, …: at round i, R1 = first θ'0·2^{i-1} sets and
  // R2 = the next θ'0·2^{i-1}. The previous round's R2 rolls into this
  // round's R1, so we keep the raw R2 sets to append next round.
  RRCollection r1(n);
  std::vector<std::pair<std::vector<NodeId>, uint64_t>> raw_r2;
  std::vector<NodeId> scratch;
  uint64_t generated = 0;

  auto sample_raw = [&](uint64_t count) {
    for (uint64_t j = 0; j < count; ++j) {
      uint64_t cost = sampler->SampleInto(rng, &scratch);
      raw_r2.emplace_back(scratch, cost);
      ++generated;
    }
  };

  ImResult result;
  result.guarantee = 1.0 - 1.0 / std::exp(1.0) - eps;
  if (stats != nullptr) *stats = DssaFixStats{};

  const double target_factor = 1.0 - 1.0 / std::exp(1.0) - eps;
  GreedyResult greedy;
  for (uint32_t i = 1;; ++i) {
    const uint64_t half = theta0 << (i - 1);  // θ'0 · 2^{i-1}

    // Roll last round's R2 into R1, then draw the new R2.
    for (auto& [nodes, cost] : raw_r2) r1.AddSet(nodes, cost);
    raw_r2.clear();
    OPIM_CHECK_GE(half, r1.num_sets());
    uint64_t need_r1 = half - r1.num_sets();
    for (uint64_t j = 0; j < need_r1; ++j) {
      uint64_t cost = sampler->SampleInto(rng, &scratch);
      r1.AddSet(scratch, cost);
      ++generated;
    }
    sample_raw(half);  // new R2
    RRCollection r2(n);
    for (auto& [nodes, cost] : raw_r2) r2.AddSet(nodes, cost);

    if (stats != nullptr) stats->iterations = i;
    greedy = SelectGreedy(r1, k);

    if (static_cast<double>(greedy.coverage) >= cov_threshold) {
      const double sigma1 = static_cast<double>(greedy.coverage) * n /
                            static_cast<double>(r1.num_sets());
      const double lambda2 =
          static_cast<double>(r2.CoverageOf(greedy.seeds));
      const double sigma2 =
          lambda2 * n / static_cast<double>(r2.num_sets());
      if (sigma2 > 0.0) {
        const double pow2 = std::pow(2.0, static_cast<double>(i) - 1.0);
        const double eps_a = sigma1 / sigma2 - 1.0;
        const double eps_b =
            eps * std::sqrt(n * (1.0 + eps) / (pow2 * sigma2));
        const double eps_c =
            eps * std::sqrt(n * (1.0 + eps) *
                            std::max(target_factor, 0.0) /
                            ((1.0 + eps / 3.0) * pow2 * sigma2));
        const double eps_i =
            (eps_a + eps_b + eps_a * eps_b) * target_factor +
            kOneMinusInvE * eps_c;
        if (eps_i <= eps) {
          if (stats != nullptr) stats->stopped_early = true;
          break;
        }
      }
    }
    if (r1.num_sets() >= theta_max) break;
    if (options.max_rr_sets != 0 && generated >= options.max_rr_sets) {
      if (stats != nullptr) stats->capped = true;
      break;
    }
  }

  result.seeds = std::move(greedy.seeds);
  result.num_rr_sets = generated;
  result.total_rr_size = r1.total_size();
  for (const auto& [nodes, cost] : raw_r2) result.total_rr_size += nodes.size();
  return result;
}

}  // namespace opim
