// Monte-Carlo CELF greedy — the original influence-maximization algorithm
// of Kempe, Kleinberg & Tardos (2003) with the lazy-forward optimization of
// Leskovec et al. (2007).
//
// Each marginal gain is estimated with `mc_samples` forward simulations,
// so the cost is O(k · n · mc_samples · cascade); usable only on small
// graphs. We keep it as a near-ground-truth cross-check: on test graphs,
// the RIS-based algorithms' seed sets should match its spread closely.

#pragma once

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace opim {

/// Runs CELF greedy with Monte-Carlo spread estimation. `num_threads` = 0
/// picks the hardware default for the estimator.
std::vector<NodeId> SelectMcGreedy(const Graph& g, DiffusionModel model,
                                   uint32_t k, uint64_t mc_samples,
                                   uint64_t seed = 1,
                                   unsigned num_threads = 0);

}  // namespace opim
