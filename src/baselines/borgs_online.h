// Borgs et al.'s OPIM algorithm (paper §3.2) — the only pre-existing
// online-processing baseline.
//
// The algorithm streams RR sets and tracks γ, the cumulative number of
// edges examined during their construction. Whenever γ crosses a power of
// two it snapshots a greedy seed set and the guarantee
//
//     α = min{ 1/4, γ / (1492992 · (n + m) · ln n) },
//
// and a user query returns the latest snapshot. The guarantee uses no
// instance-specific information, which is why it is ≈ 0 at any practical
// γ (the paper's Figure 2–5 show it flat at zero) — reproducing that
// emptiness is the point of this baseline.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "support/random.h"

namespace opim {

/// Snapshot returned by BorgsOnline::Query().
struct BorgsSnapshot {
  /// Greedy seed set at the last power-of-two γ crossing (empty if γ has
  /// not crossed 1 yet).
  std::vector<NodeId> seeds;
  /// min{1/4, β} at that crossing.
  double alpha = 0.0;
  /// γ at that crossing.
  uint64_t gamma = 0;
};

/// Streaming implementation of Borgs et al.'s OPIM baseline.
class BorgsOnline {
 public:
  BorgsOnline(const Graph& g, DiffusionModel model, uint32_t k,
              uint64_t seed = 1);

  OPIM_DISALLOW_COPY(BorgsOnline);

  /// Generates `count` more RR sets, snapshotting at each power-of-two γ.
  void Advance(uint64_t count);

  /// Returns the snapshot taken at the last power-of-two γ crossing.
  BorgsSnapshot Query() const { return last_snapshot_; }

  /// Total RR sets generated.
  uint64_t num_rr_sets() const { return rr_.num_sets(); }
  /// Current cumulative γ.
  uint64_t gamma() const { return rr_.total_edges_examined(); }

 private:
  void MaybeSnapshot();

  const Graph& graph_;
  uint32_t k_;
  std::unique_ptr<RRSampler> sampler_;
  Rng rng_;
  RRCollection rr_;
  uint64_t next_power_ = 1;  // next power-of-two γ threshold
  BorgsSnapshot last_snapshot_;
};

}  // namespace opim
