#include "baselines/borgs_online.h"

#include "bounds/bounds.h"
#include "select/greedy.h"

namespace opim {

BorgsOnline::BorgsOnline(const Graph& g, DiffusionModel model, uint32_t k,
                         uint64_t seed)
    : graph_(g),
      k_(k),
      sampler_(MakeRRSampler(g, model)),
      rng_(seed, 0x626f7267ULL),  // "borg"
      rr_(g.num_nodes()) {
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, g.num_nodes());
}

void BorgsOnline::Advance(uint64_t count) {
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t cost = sampler_->SampleInto(rng_, &scratch);
    rr_.AddSet(scratch, cost);
    MaybeSnapshot();
  }
}

void BorgsOnline::MaybeSnapshot() {
  if (rr_.total_edges_examined() < next_power_) return;
  // γ crossed at least one power of two; snapshot at the largest one <= γ.
  while (next_power_ * 2 <= rr_.total_edges_examined()) next_power_ *= 2;
  GreedyResult greedy = SelectGreedy(rr_, k_);
  last_snapshot_.seeds = std::move(greedy.seeds);
  last_snapshot_.gamma = next_power_;
  last_snapshot_.alpha = BorgsApproxGuarantee(next_power_, graph_.num_nodes(),
                                              graph_.num_edges());
  next_power_ *= 2;
}

}  // namespace opim
