// Common result type for conventional influence-maximization algorithms
// (IMM, SSA-Fix, D-SSA-Fix, OPIM-C is in core/), so the experiment harness
// can treat them uniformly.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace opim {

/// Output of one conventional (1 - 1/e - ε)-approximate IM run.
struct ImResult {
  /// The returned size-k seed set.
  std::vector<NodeId> seeds;
  /// Total RR sets the algorithm generated (its dominant cost).
  uint64_t num_rr_sets = 0;
  /// Total RR-set nodes generated, Σ|R|.
  uint64_t total_rr_size = 0;
  /// The worst-case guarantee the run promises (1 - 1/e - ε).
  double guarantee = 0.0;
};

}  // namespace opim
