#include "baselines/imm.h"

#include <algorithm>
#include <cmath>

#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {

ImResult RunImm(const Graph& g, DiffusionModel model, uint32_t k, double eps,
                double delta, const ImmOptions& options, ImmStats* stats) {
  const uint32_t n = g.num_nodes();
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, n);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);

  const double ln_n = std::log(static_cast<double>(n));
  // δ = n^-ℓ, plus the IMM §4.2 correction ℓ ← ℓ(1 + ln2/ln n) so that the
  // sampling and selection phases each get half the failure budget.
  double ell = std::log(1.0 / delta) / ln_n;
  ell = ell * (1.0 + std::log(2.0) / ln_n);
  const double lognk = LogBinomial(n, k);

  // λ* of IMM Eq. (6).
  const double alpha_term = std::sqrt(ell * ln_n + std::log(2.0));
  const double beta_term =
      std::sqrt(kOneMinusInvE * (lognk + ell * ln_n + std::log(2.0)));
  const double lambda_star = 2.0 * n *
                             (kOneMinusInvE * alpha_term + beta_term) *
                             (kOneMinusInvE * alpha_term + beta_term) /
                             (eps * eps);

  // λ' of IMM Eq. (9), with ε' = √2·ε.
  const double eps_prime = std::sqrt(2.0) * eps;
  const double log2_n = std::log2(static_cast<double>(n));
  const double lambda_prime =
      (2.0 + 2.0 * eps_prime / 3.0) *
      (lognk + ell * ln_n + std::log(std::max(log2_n, 1.0))) * n /
      (eps_prime * eps_prime);

  auto sampler = MakeRRSampler(g, model);
  Rng rng(options.seed, 0x696d6dULL);  // "imm"
  RRCollection rr(n);
  auto capped = [&](uint64_t want) {
    return options.max_rr_sets != 0 && want > options.max_rr_sets;
  };

  // Phase 1: estimate LB by geometric search over x = n / 2^i.
  double lb = 1.0;
  bool lb_found = false;
  const int max_i = std::max(1, static_cast<int>(log2_n) - 1);
  for (int i = 1; i <= max_i && !lb_found; ++i) {
    const double x = static_cast<double>(n) / std::pow(2.0, i);
    uint64_t theta_i = CeilToU64(lambda_prime / x);
    if (capped(theta_i)) theta_i = options.max_rr_sets;
    if (theta_i > rr.num_sets()) {
      sampler->Generate(&rr, theta_i - rr.num_sets(), rng);
    }
    GreedyResult greedy = SelectGreedy(rr, k);
    const double est = static_cast<double>(greedy.coverage) * n /
                       static_cast<double>(rr.num_sets());
    if (est >= (1.0 + eps_prime) * x) {
      lb = est / (1.0 + eps_prime);
      lb_found = true;
    }
    if (options.max_rr_sets != 0 && rr.num_sets() >= options.max_rr_sets) {
      break;
    }
  }
  if (!lb_found) lb = std::max(lb, static_cast<double>(k));

  // Phase 1 end: grow to θ = λ*/LB.
  uint64_t theta = std::max<uint64_t>(1, CeilToU64(lambda_star / lb));
  bool was_capped = false;
  if (capped(theta)) {
    theta = options.max_rr_sets;
    was_capped = true;
  }
  if (theta > rr.num_sets()) {
    sampler->Generate(&rr, theta - rr.num_sets(), rng);
  }

  // Phase 2: node selection on the full collection.
  GreedyResult greedy = SelectGreedy(rr, k);

  if (stats != nullptr) {
    stats->lower_bound = lb;
    stats->theta_required = CeilToU64(lambda_star / lb);
    stats->capped = was_capped;
  }

  ImResult result;
  result.seeds = std::move(greedy.seeds);
  result.num_rr_sets = rr.num_sets();
  result.total_rr_size = rr.total_size();
  result.guarantee = 1.0 - 1.0 / std::exp(1.0) - eps;
  return result;
}

}  // namespace opim
