// Classic guarantee-free seed-selection heuristics. The paper's related
// work (§7) contrasts RIS algorithms against a long line of heuristics
// that trade worst-case guarantees for speed; these are the three most
// cited representatives, used by our ablation bench to show how much
// spread the guarantees actually cost (usually: very little on scale-free
// graphs, which is why instance-specific certificates — not better
// seeds — are OPIM's contribution).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace opim {

/// Top-k nodes by out-degree. The oldest baseline in the literature.
std::vector<NodeId> SelectByDegree(const Graph& g, uint32_t k);

/// DegreeDiscount (Chen, Wang & Yang, KDD 2009; the paper's [5]):
/// degree ranking where each selected seed discounts its neighbors'
/// effective degree by the expected overlap. `p` is the uniform
/// propagation probability the discount formula assumes (the classic
/// setting; for weighted-cascade graphs a small constant like 0.01
/// behaves like the original heuristic).
std::vector<NodeId> SelectByDegreeDiscount(const Graph& g, uint32_t k,
                                           double p = 0.01);

/// Top-k nodes by PageRank on the *reverse* graph with edge weights
/// proportional to propagation probabilities — influential spreaders rank
/// high when influence flows along edges. Standard power iteration.
std::vector<NodeId> SelectByPageRank(const Graph& g, uint32_t k,
                                     double damping = 0.85,
                                     uint32_t iterations = 50);

/// Raw PageRank vector (reverse-graph, influence-weighted), for callers
/// that want the scores themselves. Sums to 1.
std::vector<double> InfluencePageRank(const Graph& g, double damping = 0.85,
                                      uint32_t iterations = 50);

/// Per-node two-hop influence score (the hop-based family of Tang et al.,
/// the paper's [34, 35]): score(v) = 1 + Σ_w p(v,w)·(1 + Σ_x p(w,x)),
/// i.e. the expected spread truncated at two hops ignoring overlaps.
std::vector<double> TwoHopScores(const Graph& g);

/// Greedy top-k by two-hop score with neighborhood discounting: once v is
/// selected, the one-hop mass it already claims is removed from its
/// out-neighbors' scores (the overlap correction that makes hop-based
/// selection competitive).
std::vector<NodeId> SelectByTwoHop(const Graph& g, uint32_t k);

/// IRIE (Jung, Heo & Chen, ICDM 2012; the paper's [19]): iterative
/// influence ranking
///     r(u) = (1 - ap(u)) · (1 + α · Σ_{v ∈ out(u)} p(u,v) · r(v)),
/// where ap(u) estimates how activated u already is by the selected
/// seeds (propagated two hops). Seeds are picked one at a time by
/// maximum rank, re-ranking after each pick. `alpha` is IRIE's damping
/// (the paper's default 0.7); `iterations` the fixed-point sweeps.
std::vector<NodeId> SelectByIrie(const Graph& g, uint32_t k,
                                 double alpha = 0.7,
                                 uint32_t iterations = 20);

}  // namespace opim
