#include "baselines/ssa_fix.h"

#include <algorithm>
#include <cmath>

#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {

namespace {

/// Largest ε_s with (1-1/e)(1-ε_s)/((1+ε_s)²) >= 1-1/e-ε, by bisection.
double SolveEpsSplit(double eps) {
  const double target = kOneMinusInvE - eps;
  if (target <= 0.0) return 0.5;  // any split works; pick a sane default
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    double val = kOneMinusInvE * (1.0 - mid) / ((1.0 + mid) * (1.0 + mid));
    (val >= target ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

ImResult RunSsaFix(const Graph& g, DiffusionModel model, uint32_t k,
                   double eps, double delta, const SsaFixOptions& options,
                   SsaFixStats* stats) {
  const uint32_t n = g.num_nodes();
  OPIM_CHECK_GE(n, 2u);
  OPIM_CHECK_GE(k, 1u);
  OPIM_CHECK_LE(k, n);
  OPIM_CHECK(eps > 0.0 && eps < 1.0);
  OPIM_CHECK(delta > 0.0 && delta < 1.0);

  const double eps_s = SolveEpsSplit(eps);
  OPIM_CHECK_GT(eps_s, 0.0);

  // θ_max cap from Lemma 6.1 at failure budget δ/3 (same worst case the
  // other doubling algorithms use), and the round budget it implies.
  const double lognk = LogBinomial(n, k);
  const double ln6d = std::log(6.0 / delta);
  const double lm_inner = kOneMinusInvE * std::sqrt(ln6d) +
                          std::sqrt(kOneMinusInvE * (lognk + ln6d));
  const double theta_max =
      2.0 * n * lm_inner * lm_inner / (eps * eps * k);
  const uint64_t theta_start = std::max<uint64_t>(
      1, CeilToU64((2.0 + 2.0 * eps_s / 3.0) * std::log(3.0 / delta) /
                   (eps_s * eps_s)));
  const uint32_t i_max = std::max<uint32_t>(
      1, CeilLog2(CeilToU64(std::max(theta_max / theta_start, 2.0))));
  const double delta_round = delta / (3.0 * i_max);

  // Dagum et al. coverage threshold for a (1±ε2)-accurate stare estimate.
  const double upsilon = 1.0 + (1.0 + eps_s) * (2.0 + 2.0 * eps_s / 3.0) *
                                   std::log(2.0 / delta_round) /
                                   (eps_s * eps_s);

  auto sampler = MakeRRSampler(g, model);
  Rng rng(options.seed, 0x737361ULL);  // "ssa"
  RRCollection r1(n), r2(n);
  if (stats != nullptr) {
    *stats = SsaFixStats{};
    stats->eps_split = eps_s;
  }

  auto total_generated = [&] {
    return static_cast<uint64_t>(r1.num_sets()) + r2.num_sets();
  };

  ImResult result;
  result.guarantee = 1.0 - 1.0 / std::exp(1.0) - eps;

  uint64_t theta1 = theta_start;
  GreedyResult greedy;
  for (uint32_t i = 1;; ++i) {
    if (theta1 > r1.num_sets()) {
      sampler->Generate(&r1, theta1 - r1.num_sets(), rng);
    }
    if (stats != nullptr) stats->iterations = i;
    greedy = SelectGreedy(r1, k);
    const double sigma1 = static_cast<double>(greedy.coverage) * n /
                          static_cast<double>(r1.num_sets());

    // Stare: grow the judge pool until the coverage stopping rule fires
    // (or the judge pool catches up with R1 — then S* simply isn't
    // influential enough at this sample size; double and retry).
    uint64_t lambda2 = r2.CoverageOf(greedy.seeds);
    while (static_cast<double>(lambda2) < upsilon &&
           r2.num_sets() < std::max<uint64_t>(theta1, theta_start) &&
           (options.max_rr_sets == 0 ||
            total_generated() < options.max_rr_sets)) {
      uint64_t batch = std::max<uint64_t>(64, r2.num_sets() / 2);
      sampler->Generate(&r2, batch, rng);
      lambda2 = r2.CoverageOf(greedy.seeds);
    }

    if (static_cast<double>(lambda2) >= upsilon) {
      const double sigma2 = static_cast<double>(lambda2) * n /
                            static_cast<double>(r2.num_sets());
      const double lb = sigma2 / (1.0 + eps_s);
      const double theta1_need =
          2.0 * n * std::log(1.0 / delta_round) / (eps_s * eps_s * lb);
      if (static_cast<double>(r1.num_sets()) >= theta1_need &&
          sigma1 <= (1.0 + eps_s) * sigma2) {
        if (stats != nullptr) stats->stopped_early = true;
        break;
      }
    }

    if (static_cast<double>(r1.num_sets()) >= theta_max) break;
    if (options.max_rr_sets != 0 &&
        total_generated() >= options.max_rr_sets) {
      if (stats != nullptr) stats->capped = true;
      break;
    }
    theta1 *= 2;
  }

  result.seeds = std::move(greedy.seeds);
  result.num_rr_sets = total_generated();
  result.total_rr_size = r1.total_size() + r2.total_size();
  return result;
}

}  // namespace opim
