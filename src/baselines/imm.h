// IMM — Influence Maximization via Martingales (Tang, Shi & Xiao, SIGMOD
// 2015; the paper's reference [38]). The state-of-the-art conventional IM
// baseline that OPIM-C is compared against in Figures 6–7.
//
// IMM has two phases:
//   1. *Sampling*: estimates a lower bound LB on OPT by testing the
//      geometric thresholds x = n/2^i. For each i it grows R to
//      θ_i = λ'/x sets (λ' from ε' = √2·ε), runs greedy, and accepts
//      LB = n·Λ(S_k)/θ_i / (1 + ε') once the estimate clears (1 + ε')·x.
//      It then grows R to θ = λ*/LB, where
//      λ* = 2n·((1-1/e)·a + b)²·ε⁻², a = √(ℓ·ln n + ln 2),
//      b = √((1-1/e)(ln C(n,k) + ℓ·ln n + ln 2)).
//   2. *Node selection*: greedy max-coverage on the full R.
//
// Failure probability is expressed as n^-ℓ; we map a requested δ to
// ℓ = ln(1/δ)/ln(n) and apply the paper's ℓ ← ℓ·(1 + ln 2 / ln n)
// correction so the two phases share the budget.
//
// Note IMM derives its guarantee with a union bound over all C(n,k) seed
// sets, because the same R both nominates and judges S* — the looseness
// OPIM's two-pool design removes (§6, "Comparison with IMM").

#pragma once

#include <cstdint>

#include "baselines/im_result.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace opim {

/// Tuning knobs for RunImm.
struct ImmOptions {
  /// RNG seed for the RR-set stream.
  uint64_t seed = 1;
  /// Safety cap on the RR sets generated (0 = uncapped). When the formulas
  /// demand more than the cap — e.g. tiny ε on a big graph — the run stops
  /// at the cap and sets ImmStats::capped; the harness uses this to report
  /// extrapolated costs instead of hanging (see DESIGN.md §3).
  uint64_t max_rr_sets = 0;
};

/// Diagnostics from a RunImm invocation.
struct ImmStats {
  /// LB estimate of OPT from the sampling phase.
  double lower_bound = 0.0;
  /// θ = λ*/LB demanded by the formulas.
  uint64_t theta_required = 0;
  /// True if max_rr_sets stopped the run before θ was reached.
  bool capped = false;
};

/// Runs IMM for a (1 - 1/e - ε)-approximation with probability 1 - δ.
ImResult RunImm(const Graph& g, DiffusionModel model, uint32_t k, double eps,
                double delta, const ImmOptions& options = {},
                ImmStats* stats = nullptr);

}  // namespace opim
