// SSA-Fix — the stop-and-stare algorithm of Nguyen, Thai & Dinh (SIGMOD
// 2016) with the corrected stopping rule of Huang et al. (VLDB 2017; the
// paper's reference [18]).
//
// Structure (stop-and-stare): iteratively double the nominator pool R1;
// after each doubling, run greedy on R1 ("stop") and validate the result
// with an independent judge pool R2 ("stare"). Our stopping rule is the
// sound fixed-schedule variant (this soundness is exactly what "Fix"
// restored; Huang et al.'s precise constants differ slightly but the
// sampling behaviour — geometric growth, independent validation, fixed
// ε-split — is the algorithm the paper benchmarks):
//
//   split ε into ε1 = ε2 = ε3 = ε_s, the largest value with
//       (1 - 1/e)(1 - ε_s) / ((1 + ε_s)(1 + ε_s)) >= 1 - 1/e - ε;
//   per round, with failure budget δ' = δ/(3·i_max):
//     (stare-1) grow R2 until Λ2(S*) >= Υ(ε2, δ') = 1 + (1+ε2)(2+2ε2/3)·
//               ln(2/δ')/ε2²  — the Dagum et al. stopping rule, giving a
//               (1±ε2)-accurate σ2(S*);
//     (stare-2) require θ1 >= 2n·ln(1/δ')/(ε3²·LB) with LB = σ2/(1+ε2)
//               — so Λ1(S°)·n/θ1 >= (1-ε3)·OPT w.h.p.;
//     (stop)    require σ1(S*) <= (1+ε1)·σ2(S*) — greedy's R1-estimate is
//               not inflated.
//   Chaining the three gives σ(S*) >= (1-1/e)(1-ε3)/((1+ε1)(1+ε2))·OPT
//   >= (1-1/e-ε)·OPT. A θ_max cap (Lemma 6.1 at δ/3) bounds the rounds.

#pragma once

#include <cstdint>

#include "baselines/im_result.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace opim {

/// Tuning knobs for RunSsaFix.
struct SsaFixOptions {
  /// RNG seed for the RR-set stream.
  uint64_t seed = 1;
  /// Safety cap on generated RR sets (0 = uncapped); see ImmOptions.
  uint64_t max_rr_sets = 0;
};

/// Diagnostics from a RunSsaFix invocation.
struct SsaFixStats {
  /// Rounds executed.
  uint32_t iterations = 0;
  /// The ε_s split actually used.
  double eps_split = 0.0;
  /// True if the stop+stare conditions triggered (vs. θ_max / cap).
  bool stopped_early = false;
  /// True if max_rr_sets stopped the run.
  bool capped = false;
};

/// Runs SSA-Fix for a (1 - 1/e - ε)-approximation with probability 1 - δ.
ImResult RunSsaFix(const Graph& g, DiffusionModel model, uint32_t k,
                   double eps, double delta, const SsaFixOptions& options = {},
                   SsaFixStats* stats = nullptr);

}  // namespace opim
