// D-SSA-Fix (Nguyen, Thai & Dinh, arXiv v3 2017; the paper's reference
// [29]) — implemented verbatim from Algorithm 3 in the OPIM paper's
// Appendix C, which restates it in the paper's own notation.
//
// D-SSA-Fix splits the RR-set stream into equal halves R1/R2 per round
// (doubling each round), runs greedy on R1, and stops when the dynamic
// error term
//
//   ε_i = (ε_a + ε_b + ε_a·ε_b)(1 - 1/e - ε) + (1 - 1/e)·ε_c
//
// drops to ε, where ε_a compares the R1 and R2 estimates of S* and
// ε_b/ε_c are concentration widths at the current sample size. Appendix C
// proves this stopping rule does NOT yield a valid instance-specific
// guarantee (ε_b can undershoot the Chernoff requirement), which is why it
// cannot be adapted to OPIM — we reproduce it as the paper's baseline
// regardless.

#pragma once

#include <cstdint>

#include "baselines/im_result.h"
#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace opim {

/// Tuning knobs for RunDssaFix.
struct DssaFixOptions {
  /// RNG seed for the RR-set stream.
  uint64_t seed = 1;
  /// Safety cap on generated RR sets (0 = uncapped); see ImmOptions.
  uint64_t max_rr_sets = 0;
};

/// Diagnostics from a RunDssaFix invocation.
struct DssaFixStats {
  /// Rounds executed.
  uint32_t iterations = 0;
  /// True if the run stopped via the ε_i <= ε condition (as opposed to
  /// exhausting θ'_max or the cap).
  bool stopped_early = false;
  /// True if max_rr_sets stopped the run.
  bool capped = false;
};

/// Runs D-SSA-Fix for a (1 - 1/e - ε)-approximation target with failure
/// probability δ.
ImResult RunDssaFix(const Graph& g, DiffusionModel model, uint32_t k,
                    double eps, double delta,
                    const DssaFixOptions& options = {},
                    DssaFixStats* stats = nullptr);

}  // namespace opim
