#include "baselines/opim_adoption.h"

#include <cmath>

#include "support/macros.h"
#include "support/math_util.h"

namespace opim {

std::vector<AdoptionStep> BuildAdoptionCurve(
    const std::function<ImResult(double eps, uint32_t invocation)>& invoke,
    uint64_t rr_budget, uint32_t max_invocations) {
  std::vector<AdoptionStep> curve;
  uint64_t cumulative = 0;
  for (uint32_t i = 1; i <= max_invocations; ++i) {
    const double eps_i = kOneMinusInvE / std::pow(2.0, i - 1);
    ImResult r = invoke(eps_i, i);
    cumulative += r.num_rr_sets;
    AdoptionStep step;
    step.cumulative_rr_sets = cumulative;
    step.alpha = kOneMinusInvE - eps_i;  // (1-1/e)(1 - 1/2^{i-1})
    step.seeds = std::move(r.seeds);
    curve.push_back(std::move(step));
    if (cumulative >= rr_budget) break;
  }
  return curve;
}

double AdoptionAlphaAt(const std::vector<AdoptionStep>& curve,
                       uint64_t rr_budget) {
  double alpha = 0.0;
  for (const AdoptionStep& step : curve) {
    if (step.cumulative_rr_sets <= rr_budget) {
      alpha = step.alpha;
    } else {
      break;
    }
  }
  return alpha;
}

}  // namespace opim
