#!/usr/bin/env bash
# Live signal-handling smoke test: SIGINT delivered to a running CLI
# invocation must produce a *clean* degraded exit, not a killed process —
#
#   1. the process exits with the documented cancellation code (5),
#   2. stdout still carries the anytime answer (seeds + alpha) and
#      `stop_reason=cancelled`,
#   3. the --metrics-json report is written and well-formed, with
#      "stop_reason":"cancelled" and a cancellation latency.
#
# The workload is sized so the run takes seconds; the signal lands ~0.3s
# in, mid-generation. If the machine is fast enough that the run converges
# before the signal arrives, we retry with a shorter delay instead of
# reporting a false failure.
#
# A second phase delivers TWO SIGINTs in quick succession: the second
# must force an immediate _exit(130) (128 + SIGINT) — the documented
# escape hatch for operators who will not wait out graceful degradation
# or a checkpoint-on-shutdown write.
#
#   scripts/check_signal_handling.sh [--build-dir <dir>]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ "${1:-}" == "--build-dir" ]]; then
  BUILD_DIR="$2"
  shift 2
fi
CLI="$BUILD_DIR/tools/opim_cli"
if [[ ! -x "$CLI" ]]; then
  echo "FAIL: $CLI not built (cmake --build $BUILD_DIR --target opim_cli)" >&2
  exit 1
fi

WORK="$(mktemp -d /tmp/opim_signal_XXXX)"
trap 'rm -rf "$WORK"' EXIT
GRAPH="$WORK/graph.bin"
REPORT="$WORK/report.json"
STDOUT="$WORK/stdout.txt"

"$CLI" gen --dataset=pokec-sim --scale=15 --out="$GRAPH" >/dev/null

run_and_interrupt() {
  local delay="$1"
  rm -f "$REPORT"
  # Tight eps + large k: tens of seconds of generation if left alone.
  "$CLI" run --graph="$GRAPH" --algo=opim-c+ --k=100 --eps=0.05 --seed=42 \
    --metrics-json="$REPORT" >"$STDOUT" 2>/dev/null &
  local pid=$!
  sleep "$delay"
  kill -INT "$pid" 2>/dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  echo "$rc"
}

RC=""
for delay in 0.3 0.15 0.05; do
  RC="$(run_and_interrupt "$delay")"
  if [[ "$RC" != 0 ]]; then break; fi
  echo "  run converged before SIGINT (delay=${delay}s); retrying faster"
done

echo "interrupted run exited with code $RC"
if [[ "$RC" != 5 ]]; then
  echo "FAIL: expected cancellation exit code 5, got $RC" >&2
  cat "$STDOUT" >&2
  exit 1
fi

fail() { echo "FAIL: $1" >&2; cat "$STDOUT" >&2; exit 1; }

grep -q '^stop_reason=cancelled$' "$STDOUT" \
  || fail "stdout missing stop_reason=cancelled"
grep -q '^seeds:' "$STDOUT" || fail "stdout missing anytime seed set"
grep -q '^alpha=' "$STDOUT" || fail "stdout missing anytime alpha"

[[ -s "$REPORT" ]] || fail "--metrics-json report not written"
grep -q '"stop_reason": *"cancelled"' "$REPORT" \
  || fail "report missing stop_reason cancelled"
grep -q '"cancel_latency_ms"' "$REPORT" \
  || fail "report missing cancel_latency_ms"
grep -q '"schema": *"opim.run_report.v1"' "$REPORT" \
  || fail "report missing schema marker (truncated write?)"

echo "  stdout carries seeds/alpha and stop_reason=cancelled"
echo "  report is complete JSON with stop_reason + cancel latency"

# --- Phase 2: double SIGINT forces an immediate exit 130 -------------
run_and_double_interrupt() {
  local delay="$1"
  "$CLI" run --graph="$GRAPH" --algo=opim-c+ --k=100 --eps=0.05 --seed=42 \
    >"$STDOUT" 2>/dev/null &
  local pid=$!
  sleep "$delay"
  kill -INT "$pid" 2>/dev/null || true
  sleep 0.05
  kill -INT "$pid" 2>/dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  echo "$rc"
}

RC=""
for delay in 0.3 0.15 0.05; do
  RC="$(run_and_double_interrupt "$delay")"
  # 130 = forced exit; 5 means the run finished its graceful shutdown
  # before the second signal landed — only code 0 (converged before any
  # signal) warrants a faster retry.
  if [[ "$RC" != 0 ]]; then break; fi
  echo "  run converged before the SIGINTs (delay=${delay}s); retrying faster"
done

echo "double-interrupted run exited with code $RC"
if [[ "$RC" == 5 ]]; then
  echo "  (graceful shutdown won the race with the second SIGINT; accepted)"
elif [[ "$RC" != 130 ]]; then
  echo "FAIL: expected forced exit code 130 (or graceful 5), got $RC" >&2
  exit 1
fi

echo "OK"
