#!/usr/bin/env bash
# RR-set engine perf baseline: runs bench_select_ingest (median-of-5 wall
# timings for batch ingestion, greedy/CELF selection with and without the
# §5 trace, bound assembly, and the end-to-end generate+ingest path) and
# records the run under its label in BENCH_select_ingest.json.
#
#   scripts/run_perf_baseline.sh [--smoke] [--label NAME] [--build-dir DIR]
#                                [--json FILE]
#
#   --smoke       tiny config (~1 s) for CI wiring; the JSON artifact is
#                 left untouched, output goes to stdout only
#   --label NAME  label for this run (default "after"); a full run
#                 replaces the entry with the same label in the artifact
#   --build-dir   build tree containing bench/bench_select_ingest
#                 (default: build)
#   --json FILE   artifact to update (default: BENCH_select_ingest.json)
#
# The artifact keeps one run object per label plus, when both "before"
# and "after" are present, a derived speedup block comparing the engine's
# selection path (SelectGreedy+trace before vs SelectGreedyCelf+trace
# after) and the batch-ingestion path. See docs/performance.md.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
LABEL=after
BUILD=build
JSON=BENCH_select_ingest.json
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --label) LABEL="$2"; shift ;;
    --build-dir) BUILD="$2"; shift ;;
    --json) JSON="$2"; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

BIN="$BUILD/bench/bench_select_ingest"
if [[ ! -x "$BIN" ]]; then
  cmake --build "$BUILD" --target bench_select_ingest
fi

if [[ "$SMOKE" -eq 1 ]]; then
  exec "$BIN" --smoke "--label=$LABEL-smoke"
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP" "$JSON.tmp"' EXIT
"$BIN" "--label=$LABEL" "--out=$TMP"

if [[ -f "$JSON" ]]; then
  jq --slurpfile run "$TMP" \
     '.runs = ([.runs[] | select(.label != $run[0].label)] + $run)' \
     "$JSON" > "$JSON.tmp"
else
  jq -n --slurpfile run "$TMP" \
     '{benchmark: "bench_select_ingest", runs: $run}' > "$JSON.tmp"
fi

# Derived speedups once a before/after pair exists: "selection" is the
# phase RunOpimC pays (trace-producing selection), "ingest" the batch
# ingestion + index build, "generate_ingest" the end-to-end engine path.
jq 'if ([.runs[].label] | contains(["before", "after"])) then
      ((.runs[] | select(.label == "before")).timings_us) as $b
      | ((.runs[] | select(.label == "after")).timings_us) as $a
      | .speedup_after_vs_before = {
          ingest: (($b.ingest / $a.ingest) * 100 | round / 100),
          selection_trace:
            (($b.select_greedy_trace / $a.select_celf_trace) * 100
             | round / 100),
          generate_ingest:
            (($b.generate_ingest / $a.generate_ingest) * 100 | round / 100)
        }
    else . end' "$JSON.tmp" > "$JSON"
rm -f "$JSON.tmp"
echo "updated $JSON (label=$LABEL)"
