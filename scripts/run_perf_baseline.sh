#!/usr/bin/env bash
# RR-set engine perf baselines: runs bench_select_ingest (batch ingestion,
# greedy/CELF selection with and without the §5 trace, bound assembly, and
# the end-to-end generate+ingest path), bench_generate (the sampling
# kernel itself plus ParallelGenerate at 1 and N threads, IC and LT under
# weighted-cascade weights), and bench_load (text parsing vs the
# memory-mapped .opimg container, plus the out-of-core spill smoke),
# recording each run under its label in BENCH_select_ingest.json,
# BENCH_generate.json, and BENCH_load.json.
#
#   scripts/run_perf_baseline.sh [--smoke] [--label NAME] [--build-dir DIR]
#                                [--json FILE] [--gen-json FILE]
#                                [--load-json FILE] [--seed S]
#                                [--gen-threads T]
#
#   --smoke       tiny config (~1 s) for CI wiring; the JSON artifacts are
#                 left untouched, output goes to stdout only
#   --label NAME  label for this run (default "after"); a full run
#                 replaces the entry with the same label in each artifact
#   --build-dir   build tree containing the bench binaries (default: build)
#   --json FILE   select/ingest artifact (default: BENCH_select_ingest.json)
#   --gen-json F  generation artifact (default: BENCH_generate.json)
#   --load-json F graph-loading artifact (default: BENCH_load.json)
#   --seed S      RR-stream seed for bench_select_ingest (default 7). The
#                 stream comes from the bench's version-independent
#                 reference sampler, so before/after binaries given the
#                 same seed replay the identical pool (the config block's
#                 pool_checksum must match across labels)
#   --gen-threads T  thread count for bench_generate's engine-path config
#                 (*_generate_nt: run-owned pool + cached sampling view;
#                 default 2). The cold *_generate_1t headline is always
#                 measured at 1 thread
#
# Each artifact keeps one run object per label plus, when both "before"
# and "after" are present, a derived speedup block: for select/ingest the
# engine's selection and ingestion paths, for generation the IC/LT sampling
# kernels and end-to-end generate. See docs/performance.md.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
LABEL=after
BUILD=build
JSON=BENCH_select_ingest.json
GEN_JSON=BENCH_generate.json
LOAD_JSON=BENCH_load.json
SEED=7
GEN_THREADS=2
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --label) LABEL="$2"; shift ;;
    --build-dir) BUILD="$2"; shift ;;
    --json) JSON="$2"; shift ;;
    --gen-json) GEN_JSON="$2"; shift ;;
    --load-json) LOAD_JSON="$2"; shift ;;
    --seed) SEED="$2"; shift ;;
    --gen-threads) GEN_THREADS="$2"; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

SELECT_BIN="$BUILD/bench/bench_select_ingest"
GEN_BIN="$BUILD/bench/bench_generate"
LOAD_BIN="$BUILD/bench/bench_load"
if [[ ! -x "$SELECT_BIN" ]]; then
  cmake --build "$BUILD" --target bench_select_ingest
fi
if [[ ! -x "$GEN_BIN" ]]; then
  cmake --build "$BUILD" --target bench_generate
fi
if [[ ! -x "$LOAD_BIN" ]]; then
  cmake --build "$BUILD" --target bench_load
fi

if [[ "$SMOKE" -eq 1 ]]; then
  "$SELECT_BIN" --smoke "--label=$LABEL-smoke"
  "$GEN_BIN" --smoke "--label=$LABEL-smoke"
  "$LOAD_BIN" --smoke "--label=$LABEL-smoke"
  exit 0
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP" "$JSON.tmp" "$GEN_JSON.tmp" "$LOAD_JSON.tmp"' EXIT

# merge_run ARTIFACT BENCH_NAME RESULT_FILE: upsert the labeled run object.
merge_run() {
  local artifact="$1" bench="$2" result="$3"
  if [[ -f "$artifact" ]]; then
    jq --slurpfile run "$result" \
       '.runs = ([.runs[] | select(.label != $run[0].label)] + $run)' \
       "$artifact" > "$artifact.tmp"
  else
    jq -n --slurpfile run "$result" --arg bench "$bench" \
       '{benchmark: $bench, runs: $run}' > "$artifact.tmp"
  fi
}

"$SELECT_BIN" "--label=$LABEL" "--seed=$SEED" "--out=$TMP"
merge_run "$JSON" bench_select_ingest "$TMP"

# Derived speedups once a before/after pair exists: "selection" is the
# phase RunOpimC pays (trace-producing selection), "ingest" the batch
# ingestion + index build, "generate_ingest" the end-to-end engine path.
jq 'if ([.runs[].label] | contains(["before", "after"])) then
      ((.runs[] | select(.label == "before")).timings_us) as $b
      | ((.runs[] | select(.label == "after")).timings_us) as $a
      | .speedup_after_vs_before = {
          ingest: (($b.ingest / $a.ingest) * 100 | round / 100),
          selection_trace:
            (($b.select_greedy_trace / $a.select_celf_trace) * 100
             | round / 100),
          generate_ingest:
            (($b.generate_ingest / $a.generate_ingest) * 100 | round / 100)
        }
    else . end
    # Storage ablation summary from the newest run that carries a
    # compression block: memory reduction vs the legacy raw layout on the
    # identical stream, and CELF-trace throughput vs the in-process legacy
    # reference path (>= 1.0 means the compressed path is no slower).
    | ((.runs | map(select(.compression != null)) | last) // null) as $c
    | if $c != null then
        .compression_summary = {
          label: $c.label,
          memory_reduction_vs_legacy:
            (($c.compression.legacy_layout_bytes
              / $c.compression.peak_rr_bytes) * 100 | round / 100),
          celf_trace_speedup_vs_legacy_ref:
            (($c.compression.select_celf_trace_legacy_ref
              / $c.timings_us.select_celf_trace) * 100 | round / 100),
          simd_kernel: $c.compression.simd_kernel
        }
      else . end' "$JSON.tmp" > "$JSON"
rm -f "$JSON.tmp"
echo "updated $JSON (label=$LABEL)"

"$GEN_BIN" "--label=$LABEL" "--threads=$GEN_THREADS" "--out=$TMP"
merge_run "$GEN_JSON" bench_generate "$TMP"

# Kernel speedups: IC/LT pure sampling kernels (the acceptance number for
# the quantized-threshold + geometric-skip rewrite) plus the end-to-end
# single-thread generate path. When a "pre_pipeline" anchor run exists
# (the committed pre-pipelining engine headline), also derive the
# end-to-end generate+ingest speedup of the pipelined engine path
# (*_generate_nt: run-owned pool + cached view) against it.
jq 'if ([.runs[].label] | contains(["before", "after"])) then
      ((.runs[] | select(.label == "before")).timings_us) as $b
      | ((.runs[] | select(.label == "after")).timings_us) as $a
      | .speedup_after_vs_before = {
          ic_kernel_1t: (($b.IC_kernel_1t / $a.IC_kernel_1t) * 100
                         | round / 100),
          lt_kernel_1t: (($b.LT_kernel_1t / $a.LT_kernel_1t) * 100
                         | round / 100),
          ic_generate_1t: (($b.IC_generate_1t / $a.IC_generate_1t) * 100
                           | round / 100),
          lt_generate_1t: (($b.LT_generate_1t / $a.LT_generate_1t) * 100
                           | round / 100)
        }
    else . end
    | if ([.runs[].label] | contains(["pre_pipeline", "after"])) then
        ((.runs[] | select(.label == "pre_pipeline")).timings_us) as $p
        | ((.runs[] | select(.label == "after")).timings_us) as $a
        | .generate_speedup_vs_pre_pipeline = {
            ic_generate_nt: (($p.IC_generate_1t / $a.IC_generate_nt) * 100
                             | round / 100),
            lt_generate_nt: (($p.LT_generate_1t / $a.LT_generate_nt) * 100
                             | round / 100)
          }
      else . end' "$GEN_JSON.tmp" > "$GEN_JSON"
rm -f "$GEN_JSON.tmp"
echo "updated $GEN_JSON (label=$LABEL)"

"$LOAD_BIN" "--label=$LABEL" "--out=$TMP"
merge_run "$LOAD_JSON" bench_load "$TMP"

# Loading speedups: each run already carries its own load_speedup block
# (text parse vs the .opimg container); once a before/after pair exists,
# also derive the per-path after-vs-before ratios so format or loader
# changes are gated the same way as the engine paths.
jq 'if ([.runs[].label] | contains(["before", "after"])) then
      ((.runs[] | select(.label == "before")).timings_us) as $b
      | ((.runs[] | select(.label == "after")).timings_us) as $a
      | .speedup_after_vs_before = {
          text_parse_load: (($b.text_parse_load / $a.text_parse_load) * 100
                            | round / 100),
          opimg_mmap_cold: (($b.opimg_mmap_cold / $a.opimg_mmap_cold) * 100
                            | round / 100),
          opimg_mmap_warm: (($b.opimg_mmap_warm / $a.opimg_mmap_warm) * 100
                            | round / 100),
          opimg_heap_load: (($b.opimg_heap_load / $a.opimg_heap_load) * 100
                            | round / 100)
        }
    else . end' "$LOAD_JSON.tmp" > "$LOAD_JSON"
rm -f "$LOAD_JSON.tmp"
echo "updated $LOAD_JSON (label=$LABEL)"
