#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py, driven through the real CLI
(subprocess), so exit codes and messages are pinned exactly as CI sees
them. Registered with CTest as check_bench_regression_py."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def run_object(timings):
    return {"label": "after", "timings_us": timings, "config": {}}


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def check(self, *argv):
        return subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True,
            text=True,
        )

    def load_pair(self, baseline_timings, fresh_timings):
        baseline = self.write("baseline.json", run_object(baseline_timings))
        fresh = self.write("fresh.json", run_object(fresh_timings))
        return self.check(
            "--baseline-load", baseline, "--fresh-load", fresh
        )

    def test_within_threshold_passes(self):
        timings = {
            "text_parse_load": 1000.0,
            "opimg_mmap_cold": 50.0,
            "opimg_mmap_warm": 10.0,
            "opimg_heap_load": 100.0,
        }
        r = self.load_pair(timings, dict(timings))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("ok", r.stdout)

    def test_regression_fails(self):
        base = {
            "text_parse_load": 1000.0,
            "opimg_mmap_cold": 50.0,
            "opimg_mmap_warm": 10.0,
            "opimg_heap_load": 100.0,
        }
        fresh = dict(base, opimg_mmap_cold=100.0)  # 2x slower
        r = self.load_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("load.opimg_mmap_cold", r.stderr)

    def test_missing_gated_key_fails_with_clear_message(self):
        # A baseline predating a gated metric must FAIL loudly — not
        # raise KeyError, not silently skip.
        base = {
            "text_parse_load": 1000.0,
            "opimg_mmap_warm": 10.0,
            "opimg_heap_load": 100.0,
        }
        fresh = dict(base, opimg_mmap_cold=50.0)
        r = self.load_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertNotIn("KeyError", r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("opimg_mmap_cold", r.stdout)
        self.assertIn("run_perf_baseline.sh", r.stdout)
        self.assertIn("baseline", r.stdout)

    def test_metric_missing_from_fresh_run_fails(self):
        base = {
            "text_parse_load": 1000.0,
            "opimg_mmap_cold": 50.0,
            "opimg_mmap_warm": 10.0,
            "opimg_heap_load": 100.0,
        }
        fresh = dict(base)
        del fresh["opimg_mmap_warm"]
        r = self.load_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("missing from fresh run", r.stdout)

    def test_unpaired_flags_are_usage_error(self):
        baseline = self.write("baseline.json", run_object({}))
        r = self.check("--baseline-load", baseline)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def snapshot_pair(self, baseline_timings, fresh_timings):
        baseline = self.write("snap_base.json", run_object(baseline_timings))
        fresh = self.write("snap_fresh.json", run_object(fresh_timings))
        return self.check(
            "--baseline-snapshot", baseline, "--fresh-snapshot", fresh
        )

    def test_snapshot_pair_within_threshold_passes(self):
        timings = {"checkpoint_write": 3000.0, "resume_load": 1200.0}
        r = self.snapshot_pair(timings, dict(timings))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("snapshot.checkpoint_write", r.stdout)
        self.assertIn("snapshot.resume_load", r.stdout)

    def test_snapshot_regression_fails(self):
        base = {"checkpoint_write": 3000.0, "resume_load": 1200.0}
        fresh = dict(base, resume_load=2400.0)  # 2x slower
        r = self.snapshot_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("snapshot.resume_load", r.stderr)

    def test_snapshot_missing_gated_key_fails(self):
        # A baseline predating the snapshot metrics must FAIL loudly.
        base = {"checkpoint_write": 3000.0}
        fresh = {"checkpoint_write": 3000.0, "resume_load": 1200.0}
        r = self.snapshot_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertNotIn("KeyError", r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("resume_load", r.stdout)

    def test_snapshot_unpaired_flags_are_usage_error(self):
        baseline = self.write("snap_base.json", run_object({}))
        r = self.check("--baseline-snapshot", baseline)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    SELECT_TIMINGS = {
        "ingest": 500.0,
        "select_celf_trace": 2000.0,
        "generate_ingest": 3000.0,
        "select_doubling_scratch": 20000.0,
        "select_doubling_incremental": 12000.0,
    }

    def select_pair(self, baseline_doc, fresh_doc):
        baseline = self.write("sel_base.json", baseline_doc)
        fresh = self.write("sel_fresh.json", fresh_doc)
        return self.check(
            "--baseline-select", baseline, "--fresh-select", fresh
        )

    def select_run(self, timings, speedup):
        doc = run_object(timings)
        if speedup is not None:
            doc["doubling"] = {"incremental_speedup": speedup}
        return doc

    def test_select_doubling_within_threshold_passes(self):
        doc = self.select_run(self.SELECT_TIMINGS, 1.7)
        r = self.select_pair(doc, dict(doc))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("select.select_doubling_scratch", r.stdout)
        self.assertIn("select.select_doubling_incremental", r.stdout)
        self.assertIn("select.doubling.incremental_speedup", r.stdout)

    def test_select_doubling_timing_regression_fails(self):
        base = self.select_run(self.SELECT_TIMINGS, 1.7)
        fresh_t = dict(self.SELECT_TIMINGS,
                       select_doubling_incremental=24000.0)  # 2x slower
        fresh = self.select_run(fresh_t, 1.7)
        r = self.select_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("select.select_doubling_incremental", r.stderr)

    def test_select_speedup_below_floor_fails(self):
        base = self.select_run(self.SELECT_TIMINGS, 1.7)
        # Timings individually within threshold, but the headline ratio
        # fell under the 1.5x floor — the gate must still fail.
        fresh = self.select_run(self.SELECT_TIMINGS, 1.4)
        r = self.select_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("select.doubling.incremental_speedup", r.stderr)
        self.assertIn("floor 1.5x", r.stdout)

    def test_select_speedup_missing_from_baseline_fails(self):
        # A committed artifact predating the incremental-selection
        # headline must FAIL with the regenerate hint, not skip or crash.
        base = self.select_run(self.SELECT_TIMINGS, None)
        fresh = self.select_run(self.SELECT_TIMINGS, 1.7)
        r = self.select_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertNotIn("KeyError", r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stdout + r.stderr)
        self.assertIn("doubling.incremental_speedup", r.stdout)
        self.assertIn("run_perf_baseline.sh", r.stdout)

    def test_select_speedup_missing_from_fresh_fails(self):
        base = self.select_run(self.SELECT_TIMINGS, 1.7)
        fresh = self.select_run(self.SELECT_TIMINGS, None)
        r = self.select_pair(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("missing from fresh run", r.stdout)

    def test_artifact_shape_selects_labeled_run(self):
        timings = {
            "text_parse_load": 1000.0,
            "opimg_mmap_cold": 50.0,
            "opimg_mmap_warm": 10.0,
            "opimg_heap_load": 100.0,
        }
        artifact = {
            "benchmark": "bench_load",
            "runs": [
                {"label": "before", "timings_us": {}, "config": {}},
                run_object(timings),
            ],
        }
        baseline = self.write("artifact.json", artifact)
        fresh = self.write("fresh.json", run_object(timings))
        r = self.check("--baseline-load", baseline, "--fresh-load", fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
