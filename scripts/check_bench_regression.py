#!/usr/bin/env python3
"""Gate perf changes against the committed RR-set engine baselines.

Compares freshly measured bench results against the checked-in artifacts
(BENCH_generate.json / BENCH_select_ingest.json) and fails when any
headline timing regressed by more than the threshold:

  bench_generate      timings_us: IC_kernel_1t, LT_kernel_1t,
                                  IC_generate_1t, LT_generate_1t,
                                  IC_generate_nt, LT_generate_nt
                      (the *_generate_nt pair is the pipelined-engine
                      headline: run-owned pool + cached sampling view at
                      the config's threads_n; baseline and fresh runs
                      must use the same --threads)
  bench_select_ingest timings_us: ingest, select_celf_trace,
                                  generate_ingest,
                                  select_doubling_scratch,
                                  select_doubling_incremental
                      plus the incremental-selection headline ratio
                      doubling.incremental_speedup, which must stay at or
                      above MIN_DOUBLING_SPEEDUP in the fresh run (a
                      higher-is-better gate, separate from the
                      lower-is-better timing comparisons; a missing key
                      on either side is a hard failure, not a skip)
  bench_load          timings_us: text_parse_load, opimg_mmap_cold,
                                  opimg_mmap_warm, opimg_heap_load
  bench_snapshot      timings_us: checkpoint_write, resume_load

Usage:
  check_bench_regression.py --baseline-generate BENCH_generate.json \
                            --fresh-generate fresh_gen.json \
                            --baseline-select BENCH_select_ingest.json \
                            --fresh-select fresh_sel.json \
                            --baseline-load BENCH_load.json \
                            --fresh-load fresh_load.json \
                            --baseline-snapshot BENCH_snapshot.json \
                            --fresh-snapshot fresh_snapshot.json \
                            [--threshold-pct 10] [--label after]

Any pair (generate / select / load / snapshot) may be given alone. Each file may be a
full artifact ({"benchmark": ..., "runs": [...]}, the committed shape) or
a single run object (the shape `bench_* --out=FILE` writes); for
artifacts, the run with the requested label is compared. Exit codes:
0 = within threshold, 1 = regression (or missing metric), 2 = usage.

bench_select_ingest replays a seeded reference RR stream, so the config
block's pool_checksum must match between baseline and fresh runs; a
mismatch means the two runs measured different workloads and is reported
as a warning (the timing comparison is then advisory).
"""

import argparse
import json
import sys

GENERATE_METRICS = [
    "IC_kernel_1t",
    "LT_kernel_1t",
    "IC_generate_1t",
    "LT_generate_1t",
    "IC_generate_nt",
    "LT_generate_nt",
]
SELECT_METRICS = [
    "ingest",
    "select_celf_trace",
    "generate_ingest",
    "select_doubling_scratch",
    "select_doubling_incremental",
]
# Floor for the incremental-selection headline: the warm-started doubling
# run must beat the from-scratch one by at least this factor (the PR that
# introduced persistent selection state committed a >= 1.5x artifact).
MIN_DOUBLING_SPEEDUP = 1.5
LOAD_METRICS = [
    "text_parse_load",
    "opimg_mmap_cold",
    "opimg_mmap_warm",
    "opimg_heap_load",
]
SNAPSHOT_METRICS = [
    "checkpoint_write",
    "resume_load",
]


def load_run(path, label):
    """Returns the labeled run object from an artifact, or the file's own
    run object when it is not an artifact."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "runs" in doc:
        runs = [r for r in doc["runs"] if r.get("label") == label]
        if not runs:
            raise SystemExit(
                f"error: {path} has no run labeled {label!r} "
                f"(labels: {[r.get('label') for r in doc['runs']]})"
            )
        return runs[-1]
    return doc


def compare(name, baseline, fresh, metrics, threshold_pct, baseline_path):
    """Prints one line per metric; returns the list of failed metrics."""
    failures = []
    base_t = baseline.get("timings_us", {})
    fresh_t = fresh.get("timings_us", {})
    for metric in metrics:
        if metric not in base_t:
            # A gated metric absent from the committed artifact means the
            # baseline predates the metric (or the wrong file was passed);
            # silently skipping would let real regressions through.
            print(
                f"{name}.{metric}: FAIL (baseline {baseline_path} has no "
                f"timings_us[{metric!r}]; regenerate the artifact with "
                "scripts/run_perf_baseline.sh)"
            )
            failures.append(metric)
            continue
        if metric not in fresh_t:
            print(f"{name}.{metric}: FAIL (missing from fresh run)")
            failures.append(metric)
            continue
        base_us = float(base_t[metric])
        fresh_us = float(fresh_t[metric])
        if base_us <= 0:
            print(f"{name}.{metric}: SKIP (non-positive baseline)")
            continue
        delta_pct = (fresh_us - base_us) / base_us * 100.0
        verdict = "FAIL" if delta_pct > threshold_pct else "ok"
        print(
            f"{name}.{metric}: {base_us:.1f} -> {fresh_us:.1f} us "
            f"({delta_pct:+.1f}%) {verdict}"
        )
        if verdict == "FAIL":
            failures.append(metric)
    return failures


def check_doubling_speedup(name, baseline, fresh, baseline_path):
    """Gates the higher-is-better incremental-selection headline; returns
    the failed metric names (at most one)."""
    metric = "doubling.incremental_speedup"
    base_v = baseline.get("doubling", {}).get("incremental_speedup")
    fresh_v = fresh.get("doubling", {}).get("incremental_speedup")
    if base_v is None:
        # Same policy as a missing timing key: a silent skip would let the
        # incremental path rot away unnoticed.
        print(
            f"{name}.{metric}: FAIL (baseline {baseline_path} has no "
            f"{metric}; regenerate the artifact with "
            "scripts/run_perf_baseline.sh)"
        )
        return [metric]
    if fresh_v is None:
        print(f"{name}.{metric}: FAIL (missing from fresh run)")
        return [metric]
    fresh_v = float(fresh_v)
    verdict = "FAIL" if fresh_v < MIN_DOUBLING_SPEEDUP else "ok"
    print(
        f"{name}.{metric}: {float(base_v):.2f}x -> {fresh_v:.2f}x "
        f"(floor {MIN_DOUBLING_SPEEDUP:g}x) {verdict}"
    )
    return [metric] if verdict == "FAIL" else []


def warn_on_threads_mismatch(name, baseline, fresh):
    base_t = baseline.get("config", {}).get("threads_n")
    fresh_t = fresh.get("config", {}).get("threads_n")
    if base_t is not None and fresh_t is not None and base_t != fresh_t:
        print(
            f"warning: {name} threads_n mismatch ({base_t} vs {fresh_t}) — "
            "the *_generate_nt comparison measures different "
            "configurations; rerun the fresh bench with "
            f"--threads={base_t}",
            file=sys.stderr,
        )


def warn_on_checksum_mismatch(name, baseline, fresh):
    base_sum = baseline.get("config", {}).get("pool_checksum")
    fresh_sum = fresh.get("config", {}).get("pool_checksum")
    # Compare as doubles: the committed baseline passes through jq, which
    # stores all numbers as IEEE doubles and so rounds uint64 checksums;
    # a fresh run's exact integer rounds to the same double iff the
    # streams match, while genuinely different streams differ wildly.
    if base_sum is not None and fresh_sum is not None:
        base_sum, fresh_sum = float(base_sum), float(fresh_sum)
    if base_sum is not None and fresh_sum is not None and base_sum != fresh_sum:
        print(
            f"warning: {name} pool_checksum mismatch "
            f"({base_sum} vs {fresh_sum}) — runs measured different "
            "RR streams; timings are not directly comparable",
            file=sys.stderr,
        )


def main():
    parser = argparse.ArgumentParser(
        description="Compare fresh bench timings against committed baselines."
    )
    parser.add_argument("--baseline-generate")
    parser.add_argument("--fresh-generate")
    parser.add_argument("--baseline-select")
    parser.add_argument("--fresh-select")
    parser.add_argument("--baseline-load")
    parser.add_argument("--fresh-load")
    parser.add_argument("--baseline-snapshot")
    parser.add_argument("--fresh-snapshot")
    parser.add_argument("--threshold-pct", type=float, default=10.0)
    parser.add_argument("--label", default="after")
    args = parser.parse_args()

    pairs = []
    if bool(args.baseline_generate) != bool(args.fresh_generate):
        parser.error("--baseline-generate and --fresh-generate go together")
    if bool(args.baseline_select) != bool(args.fresh_select):
        parser.error("--baseline-select and --fresh-select go together")
    if bool(args.baseline_load) != bool(args.fresh_load):
        parser.error("--baseline-load and --fresh-load go together")
    if bool(args.baseline_snapshot) != bool(args.fresh_snapshot):
        parser.error("--baseline-snapshot and --fresh-snapshot go together")
    if args.baseline_generate:
        pairs.append(
            (
                "generate",
                args.baseline_generate,
                args.fresh_generate,
                GENERATE_METRICS,
            )
        )
    if args.baseline_select:
        pairs.append(
            ("select", args.baseline_select, args.fresh_select, SELECT_METRICS)
        )
    if args.baseline_load:
        pairs.append(
            ("load", args.baseline_load, args.fresh_load, LOAD_METRICS)
        )
    if args.baseline_snapshot:
        pairs.append(
            (
                "snapshot",
                args.baseline_snapshot,
                args.fresh_snapshot,
                SNAPSHOT_METRICS,
            )
        )
    if not pairs:
        parser.error("give at least one baseline/fresh pair")

    all_failures = []
    for name, baseline_path, fresh_path, metrics in pairs:
        baseline = load_run(baseline_path, args.label)
        fresh = load_run(fresh_path, args.label)
        warn_on_checksum_mismatch(name, baseline, fresh)
        if name == "generate":
            warn_on_threads_mismatch(name, baseline, fresh)
        failed = compare(name, baseline, fresh, metrics,
                         args.threshold_pct, baseline_path)
        if name == "select":
            failed += check_doubling_speedup(name, baseline, fresh,
                                             baseline_path)
        all_failures += [f"{name}.{m}" for m in failed]

    if all_failures:
        print(
            f"bench regression: {len(all_failures)} metric(s) slower than "
            f"baseline by more than {args.threshold_pct:g}%: "
            + ", ".join(all_failures),
            file=sys.stderr,
        )
        return 1
    print(f"bench regression check: ok (threshold {args.threshold_pct:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
