#!/usr/bin/env bash
# Guards the telemetry subsystem's contracts:
#
#   1. Overhead: an OPIM_TELEMETRY=ON build may not be more than
#      MAX_OVERHEAD_PCT slower than an OFF build on a fixed OPIM-C
#      workload (best-of-N wall time) — and the same budget holds with a
#      trace session recording (--trace-json), which exercises the
#      lock-free span path on every instrumented module.
#   2. Determinism: all configurations must select byte-identical seed
#      sets and report identical alpha for the same RNG seed — metrics
#      and traces observe, they never steer.
#   3. Validity: the trace the ON build emits passes report_lint.
#
#   scripts/check_telemetry_overhead.sh [reps]

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
MAX_OVERHEAD_PCT=3
# The workload must be big enough that per-run fixed costs (process
# startup, graph load, report setup) don't drown the hot-path delta the
# check is actually about — ~150ms per run at this scale.
SCALE=15
K=50
EPS=0.1
SEED=42

build() {
  local dir="$1" telemetry="$2"
  cmake -B "$dir" -G Ninja -DCMAKE_BUILD_TYPE=Release \
    -DOPIM_TELEMETRY="$telemetry" >/dev/null
  cmake --build "$dir" --target opim_cli report_lint >/dev/null
}

echo "building telemetry ON  -> build-tm-on"
build build-tm-on ON
echo "building telemetry OFF -> build-tm-off"
build build-tm-off OFF

GRAPH="$(mktemp /tmp/opim_overhead_XXXX.bin)"
trap 'rm -f "$GRAPH"' EXIT
build-tm-on/tools/opim_cli gen --dataset=pokec-sim --scale=$SCALE \
  --out="$GRAPH" >/dev/null

# Best-of-N run time for one build, printed as seconds. Extra CLI flags
# (e.g. --trace-json=...) ride along after the fixed workload.
best_time() {
  local cli="$1" best=""
  shift
  for _ in $(seq "$REPS"); do
    local t
    t="$("$cli" run --graph="$GRAPH" --algo=opim-c+ --k=$K --eps=$EPS \
        --seed=$SEED "$@" | sed -n 's/^time_seconds=\([0-9.]*\).*/\1/p')"
    if [[ -z "$best" ]] || awk -v a="$t" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$t"
    fi
  done
  echo "$best"
}

# Algorithmic output for one configuration: the deterministic lines only.
algo_output() {
  local cli="$1"
  shift
  "$cli" run --graph="$GRAPH" --algo=opim-c+ --k=$K --eps=$EPS --seed=$SEED \
    "$@" | grep -E '^(seeds:|alpha=)'
}

TRACE="$(mktemp /tmp/opim_overhead_trace_XXXX.json)"
trap 'rm -f "$GRAPH" "$TRACE"' EXIT

echo "checking determinism (seed=$SEED)"
ON_OUT="$(algo_output build-tm-on/tools/opim_cli)"
OFF_OUT="$(algo_output build-tm-off/tools/opim_cli)"
TRACED_OUT="$(algo_output build-tm-on/tools/opim_cli --trace-json="$TRACE")"
if [[ "$ON_OUT" != "$OFF_OUT" ]]; then
  echo "FAIL: telemetry build changes algorithmic output" >&2
  diff <(echo "$ON_OUT") <(echo "$OFF_OUT") >&2 || true
  exit 1
fi
if [[ "$ON_OUT" != "$TRACED_OUT" ]]; then
  echo "FAIL: an active trace session changes algorithmic output" >&2
  diff <(echo "$ON_OUT") <(echo "$TRACED_OUT") >&2 || true
  exit 1
fi
echo "  seeds and alpha identical across builds and with tracing active"

echo "checking trace validity (report_lint)"
build-tm-on/tools/report_lint --trace-json="$TRACE" >/dev/null || {
  echo "FAIL: emitted trace does not pass report_lint" >&2
  exit 1
}
echo "  trace passes report_lint"

echo "timing $REPS reps each (scale=$SCALE k=$K eps=$EPS)"
T_ON="$(best_time build-tm-on/tools/opim_cli)"
T_OFF="$(best_time build-tm-off/tools/opim_cli)"
T_TRACED="$(best_time build-tm-on/tools/opim_cli --trace-json="$TRACE")"
echo "  best OFF:       ${T_OFF}s"
echo "  best ON:        ${T_ON}s"
echo "  best ON+trace:  ${T_TRACED}s"

check_overhead() {
  local label="$1" t="$2"
  awk -v on="$t" -v off="$T_OFF" -v max="$MAX_OVERHEAD_PCT" -v lbl="$label" \
  'BEGIN {
    if (off <= 0) { print "  OFF time too small to compare; skipping"; exit 0 }
    pct = (on - off) / off * 100
    printf "  %s overhead: %+.2f%% (limit %d%%)\n", lbl, pct, max
    exit (pct > max) ? 1 : 0
  }' || { echo "FAIL: $label overhead above ${MAX_OVERHEAD_PCT}%" >&2; exit 1; }
}

check_overhead "telemetry" "$T_ON"
check_overhead "telemetry+trace" "$T_TRACED"

echo "OK"
