#!/usr/bin/env bash
# Guards the run-control subsystem's two compile-out contracts:
#
#   1. Determinism: an OPIM_FAULT_INJECT=ON build (fault sites compiled in
#      but NOT armed) must select byte-identical seed sets and report
#      identical alpha to an OFF build for the same RNG seed — dormant
#      fault points and guardrail polling observe, they never steer.
#   2. Overhead: the ON build may not be more than MAX_OVERHEAD_PCT slower
#      than the OFF build on a fixed OPIM-C workload (best-of-N wall
#      time). In the OFF build every OPIM_FAULT_POINT folds to the literal
#      `false`, so this bounds the cost of the guardrail plumbing itself.
#
#   scripts/check_guardrail_overhead.sh [reps]

set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-5}"
MAX_OVERHEAD_PCT=3
# Big enough that per-run fixed costs (startup, graph load) don't drown
# the guardrail-poll delta the check is about — a few hundred ms of
# generation per run with the fast sampling kernel.
SCALE=16
K=100
EPS=0.05
SEED=42

build() {
  local dir="$1" fi="$2"
  cmake -B "$dir" -G Ninja -DCMAKE_BUILD_TYPE=Release \
    -DOPIM_FAULT_INJECT="$fi" >/dev/null
  cmake --build "$dir" --target opim_cli >/dev/null
}

echo "building fault-inject ON  -> build-fi-on"
build build-fi-on ON
echo "building fault-inject OFF -> build-fi-off"
build build-fi-off OFF

GRAPH="$(mktemp /tmp/opim_guardrail_XXXX.bin)"
trap 'rm -f "$GRAPH"' EXIT
build-fi-on/tools/opim_cli gen --dataset=pokec-sim --scale=$SCALE \
  --out="$GRAPH" >/dev/null

# A generous deadline keeps the RunControl armed (polls happen on the hot
# path) without ever tripping, so both contracts cover the guarded path.
RUN_FLAGS=(run --graph="$GRAPH" --algo=opim-c+ --k=$K --eps=$EPS
           --seed=$SEED --deadline-ms=3600000)

best_time() {
  local cli="$1" best=""
  for _ in $(seq "$REPS"); do
    local t
    t="$("$cli" "${RUN_FLAGS[@]}" |
        sed -n 's/^time_seconds=\([0-9.]*\).*/\1/p')"
    if [[ -z "$best" ]] || awk -v a="$t" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$t"
    fi
  done
  echo "$best"
}

algo_output() {
  "$1" "${RUN_FLAGS[@]}" | grep -E '^(seeds:|alpha=|stop_reason=)'
}

echo "checking determinism (seed=$SEED, unarmed fault sites, live deadline)"
ON_OUT="$(algo_output build-fi-on/tools/opim_cli)"
OFF_OUT="$(algo_output build-fi-off/tools/opim_cli)"
if [[ "$ON_OUT" != "$OFF_OUT" ]]; then
  echo "FAIL: fault-inject build changes algorithmic output" >&2
  diff <(echo "$ON_OUT") <(echo "$OFF_OUT") >&2 || true
  exit 1
fi
if ! grep -q '^stop_reason=converged$' <<<"$ON_OUT"; then
  echo "FAIL: guarded run did not converge naturally" >&2
  exit 1
fi
echo "  seeds, alpha, and stop_reason identical across builds"

echo "timing $REPS reps each (scale=$SCALE k=$K eps=$EPS)"
T_ON="$(best_time build-fi-on/tools/opim_cli)"
T_OFF="$(best_time build-fi-off/tools/opim_cli)"
echo "  best ON:  ${T_ON}s"
echo "  best OFF: ${T_OFF}s"

awk -v on="$T_ON" -v off="$T_OFF" -v max="$MAX_OVERHEAD_PCT" 'BEGIN {
  if (off <= 0) { print "  OFF time too small to compare; skipping"; exit 0 }
  pct = (on - off) / off * 100
  printf "  overhead: %+.2f%% (limit %d%%)\n", pct, max
  exit (pct > max) ? 1 : 0
}' || { echo "FAIL: fault-inject overhead above ${MAX_OVERHEAD_PCT}%" >&2; exit 1; }

echo "OK"
