#!/usr/bin/env bash
# Live crash-recovery test: kill -9 a checkpointing CLI run mid-doubling,
# then resume from the last durable snapshot and demand the exact answer
# the uninterrupted run produces —
#
#   1. a reference run (no checkpointing) records the golden seeds/alpha,
#   2. the same run with --checkpoint-dir is SIGKILLed as soon as a
#      snapshot exists (no graceful path: this is the crash the
#      write-to-temp + fsync + rename protocol must survive),
#   3. tools/snapshot_inspect must validate the surviving snapshot
#      (exit 0) — and must reject a deliberately truncated copy (exit 1),
#   4. the --resume run must reproduce the reference seeds and alpha
#      bit-for-bit and report resumed_from_iteration in its JSON report.
#
# If the machine is fast enough that the checkpointed run finishes before
# the kill lands, the test still proceeds: the snapshot on disk is the
# final iteration's boundary state and the resume comparison is equally
# binding.
#
#   scripts/check_crash_recovery.sh [--build-dir <dir>]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ "${1:-}" == "--build-dir" ]]; then
  BUILD_DIR="$2"
  shift 2
fi
CLI="$BUILD_DIR/tools/opim_cli"
INSPECT="$BUILD_DIR/tools/snapshot_inspect"
for bin in "$CLI" "$INSPECT"; do
  if [[ ! -x "$bin" ]]; then
    echo "FAIL: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d /tmp/opim_crash_XXXX)"
trap 'rm -rf "$WORK"' EXIT
GRAPH="$WORK/graph.bin"
CKDIR="$WORK/checkpoints"
SNAPSHOT="$CKDIR/opimc.opimss"
REPORT="$WORK/resume_report.json"
mkdir -p "$CKDIR"

RUN_FLAGS=(--graph="$GRAPH" --algo=opim-c+ --k=50 --eps=0.05 --seed=42
           --threads=2 --mc=0)

"$CLI" gen --dataset=pokec-sim --scale=15 --out="$GRAPH" >/dev/null

fail() { echo "FAIL: $1" >&2; exit 1; }

# 1. Reference: the uninterrupted run's answer.
"$CLI" run "${RUN_FLAGS[@]}" >"$WORK/reference.txt" 2>/dev/null
REF_SEEDS="$(grep '^seeds:' "$WORK/reference.txt")"
REF_ALPHA="$(grep '^alpha=' "$WORK/reference.txt")"
[[ -n "$REF_SEEDS" && -n "$REF_ALPHA" ]] \
  || fail "reference run produced no seeds/alpha"

# 2. Checkpointed run, SIGKILLed once a snapshot is durable. The rename
#    publish means an existing file is always complete — no settling
#    sleep needed before the kill.
"$CLI" run "${RUN_FLAGS[@]}" --checkpoint-dir="$CKDIR" \
  >"$WORK/killed.txt" 2>/dev/null &
PID=$!
for _ in $(seq 1 200); do
  [[ -s "$SNAPSHOT" ]] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.02
done
kill -9 "$PID" 2>/dev/null && echo "  killed checkpointing run (pid $PID)" \
  || echo "  run finished before the kill; using its final snapshot"
wait "$PID" 2>/dev/null || true
[[ -s "$SNAPSHOT" ]] || fail "no snapshot written before the run ended"

# 3. The surviving snapshot must pass the strict validator...
"$INSPECT" "$SNAPSHOT" >"$WORK/inspect.txt" \
  || fail "snapshot_inspect rejected the surviving snapshot"
grep -q '^magic=OPIMSSv1$' "$WORK/inspect.txt" \
  || fail "snapshot_inspect output missing the header dump"
ITER="$(sed -n 's/^run.next_iteration=//p' "$WORK/inspect.txt")"
echo "  snapshot valid: resumes at iteration $ITER"

#    ...and a truncated copy must be rejected with exit 1.
head -c 100 "$SNAPSHOT" >"$WORK/truncated.opimss"
RC=0
"$INSPECT" "$WORK/truncated.opimss" >/dev/null 2>&1 || RC=$?
[[ "$RC" == 1 ]] || fail "snapshot_inspect exit $RC on a truncated file (want 1)"

# 4. Resume and compare bit-for-bit.
"$CLI" run --graph="$GRAPH" --resume="$SNAPSHOT" --mc=0 \
  --metrics-json="$REPORT" >"$WORK/resumed.txt" 2>/dev/null
RES_SEEDS="$(grep '^seeds:' "$WORK/resumed.txt")"
RES_ALPHA="$(grep '^alpha=' "$WORK/resumed.txt")"
[[ "$RES_SEEDS" == "$REF_SEEDS" ]] \
  || fail "resumed seeds differ:
  reference: $REF_SEEDS
  resumed:   $RES_SEEDS"
[[ "$RES_ALPHA" == "$REF_ALPHA" ]] \
  || fail "resumed alpha/iterations differ:
  reference: $REF_ALPHA
  resumed:   $RES_ALPHA"
grep -q '"resumed_from_iteration"' "$REPORT" \
  || fail "resume report missing resumed_from_iteration"

echo "  resumed run reproduced the reference seeds and alpha exactly"
echo "OK"
