#!/usr/bin/env bash
# Regenerates every artifact: build, tests, all paper tables/figures and
# ablations. Pass --full to use paper-scale parameters (slower).
#
#   scripts/run_all.sh [--full] [output_dir]

set -euo pipefail
cd "$(dirname "$0")/.."

FULL=""
if [[ "${1:-}" == "--full" ]]; then
  FULL="--full"
  shift
fi
OUT="${1:-results}"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee "$OUT/test_output.txt"

# The full suite must also pass with telemetry compiled out — golden tests
# pin outputs, so this proves instrumentation is observe-only.
cmake -B build-notm -G Ninja -DOPIM_TELEMETRY=OFF
cmake --build build-notm
ctest --test-dir build-notm --output-on-failure 2>&1 \
  | tee "$OUT/test_output_notelemetry.txt"

# Fault-injection build: compiles the deterministic fault sites in
# (OPIM_FAULT_INJECT=ON) so the degradation paths — worker failure,
# injected clock skew, injected memory spikes — get real coverage.
# Everywhere else fault_injection_test reduces to a compile-gate
# placeholder, so this configuration is the only one that exercises
# StopReason::kWorkerFailure end to end.
cmake -B build-fi -G Ninja -DOPIM_FAULT_INJECT=ON \
  -DOPIM_BUILD_BENCHMARKS=OFF -DOPIM_BUILD_EXAMPLES=OFF
cmake --build build-fi
ctest --test-dir build-fi --output-on-failure \
  -R 'FaultInjection|Guardrails|RunControl|StopReason|SignalGuard|ThreadPool|Snapshot' 2>&1 \
  | tee "$OUT/test_output_faultinject.txt"

# Sanitized build (ASan + UBSan) over the memory-heavy engine subset:
# sampling kernels, RR-set storage, parallel generation, and selection.
# These are the paths with raw index arithmetic (quantized thresholds,
# geometric skips, flattened alias arena, CSR rebuilds), so UB or
# out-of-bounds access must fail loudly here even when the plain build
# happens to pass. Fault sites are compiled in too: the injected-failure
# unwind paths (shard buffers dropped mid-batch, pool drain, trip
# bookkeeping) are exactly where leaks or use-after-free would hide.
cmake -B build-asan -G Ninja -DOPIM_SANITIZE=ON -DOPIM_FAULT_INJECT=ON \
  -DOPIM_BUILD_BENCHMARKS=OFF -DOPIM_BUILD_EXAMPLES=OFF
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure \
  -R 'SamplingView|Quantize|KernelDifferential|SharedView|Sampler|RRCollection|ParallelGenerate|Greedy|Celf|FaultInjection|Guardrails|RunControl|SignalGuard|ThreadPool|LoaderRobustness|VarintCodec|CoverBitset|CoverKernel|SimdDifferential|GraphMmap|MmapArena|RRSpill|SpillDifferential|GraphPack|ResourceUsage|Snapshot|IoUtil|CheckpointResume' 2>&1 \
  | tee "$OUT/test_output_sanitized.txt"

# TSan build over the concurrency-heavy subset: the thread pool, parallel
# RR generation, the pipelined doubling loop's speculative staging
# (OpimCPipeline), the lock-free trace recorder, and the progress
# heartbeat all publish across threads with hand-placed acquire/release
# pairs, so a missing fence must fail loudly here. TSan and ASan cannot share a build
# (mutually exclusive runtimes), hence the separate tree.
cmake -B build-tsan -G Ninja -DOPIM_SANITIZE=thread \
  -DOPIM_BUILD_BENCHMARKS=OFF -DOPIM_BUILD_EXAMPLES=OFF
cmake --build build-tsan
ctest --test-dir build-tsan --output-on-failure \
  -R 'ThreadPool|ParallelGenerate|AdvanceParallel|OpimCPipeline|Trace|Progress|RunControl|Guardrails|Metrics|SpillDifferential|SelectionState' 2>&1 \
  | tee "$OUT/test_output_tsan.txt"

# OPIM_SIMD=OFF build: the portable scalar coverage kernels alone must
# carry the codec, coverage, selection, and golden suites — this is the
# configuration every non-x86-64 target gets, and the golden pins prove
# the scalar path produces the exact published outputs.
cmake -B build-nosimd -G Ninja -DOPIM_SIMD=OFF \
  -DOPIM_BUILD_BENCHMARKS=OFF -DOPIM_BUILD_EXAMPLES=OFF
cmake --build build-nosimd
ctest --test-dir build-nosimd --output-on-failure \
  -R 'VarintCodec|CoverBitset|CoverKernel|SimdDifferential|RRCollection|ParallelGenerate|Greedy|Celf|Golden' 2>&1 \
  | tee "$OUT/test_output_nosimd.txt"

# Live signal handling: SIGINT a real CLI run, expect a clean degraded
# exit (code 5, seeds + alpha on stdout, complete JSON report); a second
# SIGINT must force an immediate exit 130.
scripts/check_signal_handling.sh --build-dir build 2>&1 \
  | tee "$OUT/signal_handling.txt"

# Live crash recovery: kill -9 a checkpointing run mid-doubling, lint the
# surviving .opimss with tools/snapshot_inspect, resume it, and demand
# the uninterrupted run's exact seeds and alpha.
scripts/check_crash_recovery.sh --build-dir build 2>&1 \
  | tee "$OUT/crash_recovery.txt"

for b in build/bench/*; do
  name="$(basename "$b")"
  # The RR-set engine perf baselines have their own driver (run below
  # against both telemetry configurations).
  if [[ "$name" == bench_select_ingest || "$name" == bench_generate \
        || "$name" == bench_load || "$name" == bench_snapshot ]]; then
    continue
  fi
  echo "=== $name ==="
  # Figure benches accept --full and --csv; the others ignore unknown
  # flags, and google-benchmark binaries get no extra flags.
  if [[ "$name" == bench_micro_components ]]; then
    "$b" | tee "$OUT/$name.txt"
  else
    "$b" $FULL --csv="$OUT/$name" | tee "$OUT/$name.txt"
  fi
done

# Perf-baseline smoke (select/ingest + generation kernels + graph
# loading) against both
# telemetry configurations: with telemetry the JSON carries engine
# counters/timers, without it the counters section is empty but timings
# must still be produced.
echo "=== perf baselines (smoke, telemetry on) ==="
scripts/run_perf_baseline.sh --smoke --build-dir build \
  | tee "$OUT/bench_perf_baseline_smoke.json"
echo "=== perf baselines (smoke, telemetry off) ==="
scripts/run_perf_baseline.sh --smoke --build-dir build-notm \
  | tee "$OUT/bench_perf_baseline_smoke_notelemetry.json"

# Opt-in perf gate (CHECK_BENCH_REGRESSION=1): re-measure the headline
# engine timings and fail if any regressed >10% against the committed
# baselines. Off by default — shared CI machines make wall-clock numbers
# too noisy to block every run on.
if [[ "${CHECK_BENCH_REGRESSION:-0}" == "1" ]]; then
  echo "=== bench regression gate ==="
  FRESH_GEN="$OUT/fresh_bench_generate.json"
  FRESH_SEL="$OUT/fresh_bench_select_ingest.json"
  FRESH_LOAD="$OUT/fresh_bench_load.json"
  FRESH_SNAP="$OUT/fresh_bench_snapshot.json"
  # --threads must match the committed baseline's config.threads_n so the
  # *_generate_nt engine-path headline compares like with like.
  build/bench/bench_generate --label=after --threads=2 "--out=$FRESH_GEN"
  build/bench/bench_select_ingest --label=after --seed=7 "--out=$FRESH_SEL"
  build/bench/bench_load --label=after "--out=$FRESH_LOAD"
  build/bench/bench_snapshot --label=after "--out=$FRESH_SNAP"
  python3 scripts/check_bench_regression.py \
    --baseline-generate BENCH_generate.json --fresh-generate "$FRESH_GEN" \
    --baseline-select BENCH_select_ingest.json --fresh-select "$FRESH_SEL" \
    --baseline-load BENCH_load.json --fresh-load "$FRESH_LOAD" \
    --baseline-snapshot BENCH_snapshot.json --fresh-snapshot "$FRESH_SNAP" \
    --threshold-pct "${BENCH_REGRESSION_THRESHOLD_PCT:-10}" 2>&1 \
    | tee "$OUT/bench_regression.txt"
fi

echo "All outputs in $OUT/"
