// End-to-end tests of the graph_pack converter binary: edge-list →
// .opimg round trips (with --verify), the bin input path, and the
// distinct exit codes for I/O failures vs. usage errors. Located via
// the OPIM_GRAPH_PACK_PATH compile definition.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>
#include <utility>

#include "gen/generators.h"
#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "graph/graph_mmap.h"

namespace opim {
namespace {

/// Runs a command, returning (exit code, captured stdout+stderr).
std::pair<int, std::string> RunCommand(const std::string& cmd) {
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int wait_status = pclose(pipe);
  const int rc =
      WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  return {rc, output};
}

std::string Pack() { return OPIM_GRAPH_PACK_PATH; }

std::string TmpFile(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphPackTest, EdgeListToOpimgVerifiedRoundTrip) {
  const std::string txt = TmpFile("pack_in.txt");
  {
    FILE* f = fopen(txt.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# tiny triangle plus a tail\n0 1\n1 2\n2 0\n2 3\n", f);
    fclose(f);
  }
  const std::string packed = TmpFile("pack_out.opimg");
  auto [rc, out] = RunCommand(Pack() + " --in=" + txt + " --out=" + packed +
                              " --verify");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("verified"), std::string::npos) << out;

  // The written container must load to the same graph the library
  // parses from the same text.
  EdgeListOptions opts;
  auto direct = LoadEdgeList(txt, opts);
  ASSERT_TRUE(direct.ok());
  auto reload = LoadOpimg(packed);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload.ValueOrDie().num_nodes(), direct.ValueOrDie().num_nodes());
  EXPECT_EQ(reload.ValueOrDie().num_edges(), direct.ValueOrDie().num_edges());
  std::remove(txt.c_str());
  std::remove(packed.c_str());
}

TEST(GraphPackTest, BinInputPacksAndVerifies) {
  Graph g = GenerateBarabasiAlbert(200, 3);
  const std::string bin = TmpFile("pack_in.bin");
  ASSERT_TRUE(SaveBinaryGraph(g, bin).ok());
  const std::string packed = TmpFile("pack_from_bin.opimg");
  auto [rc, out] = RunCommand(Pack() + " --in=" + bin + " --in-format=bin" +
                              " --out=" + packed + " --verify");
  ASSERT_EQ(rc, 0) << out;

  auto reload = LoadOpimg(packed);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload.ValueOrDie().num_nodes(), g.num_nodes());
  EXPECT_EQ(reload.ValueOrDie().num_edges(), g.num_edges());
  std::remove(bin.c_str());
  std::remove(packed.c_str());
}

TEST(GraphPackTest, MissingInputIsExitOne) {
  auto [rc, out] = RunCommand(Pack() + " --in=/nonexistent/g.txt --out=" +
                              TmpFile("pack_never.opimg"));
  EXPECT_EQ(rc, 1) << out;
  EXPECT_NE(out.find("graph_pack:"), std::string::npos) << out;
}

TEST(GraphPackTest, UsageErrorsAreExitTwo) {
  auto [rc1, out1] = RunCommand(Pack());
  EXPECT_EQ(rc1, 2) << out1;
  EXPECT_NE(out1.find("usage:"), std::string::npos) << out1;

  auto [rc2, out2] = RunCommand(Pack() + " --in=a --out=b --in-format=zip");
  EXPECT_EQ(rc2, 2) << out2;

  auto [rc3, out3] = RunCommand(Pack() + " --in=a --out=b --scheme=bogus");
  EXPECT_EQ(rc3, 2) << out3;
}

}  // namespace
}  // namespace opim
