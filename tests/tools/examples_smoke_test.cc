// Smoke tests for every example binary: each must run to completion at
// toy sizes and print its headline output. Guards the deliverable most
// users touch first.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace opim {
namespace {

std::pair<int, std::string> RunCommand(const std::string& cmd) {
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  return {pclose(pipe), output};
}

TEST(ExamplesSmokeTest, Quickstart) {
  auto [rc, out] =
      RunCommand(std::string(OPIM_EXAMPLE_DIR) + "/quickstart --n=512 --k=3");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("OPIM-C:"), std::string::npos) << out;
  EXPECT_NE(out.find("estimated expected spread"), std::string::npos);
}

TEST(ExamplesSmokeTest, OnlineSession) {
  auto [rc, out] = RunCommand(std::string(OPIM_EXAMPLE_DIR) +
                              "/online_session --n=512 --k=5 --target=0.4 "
                              "--batch=1000 --rounds=30");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("OPIM+"), std::string::npos);
}

TEST(ExamplesSmokeTest, ViralMarketing) {
  auto [rc, out] = RunCommand(std::string(OPIM_EXAMPLE_DIR) +
                              "/viral_marketing --scale=9 --eps=0.3");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("marginal"), std::string::npos);
}

TEST(ExamplesSmokeTest, ModelComparison) {
  auto [rc, out] = RunCommand(std::string(OPIM_EXAMPLE_DIR) +
                              "/model_comparison --n=512 --k=4 --eps=0.3");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("seed overlap"), std::string::npos);
}

TEST(ExamplesSmokeTest, CustomModel) {
  auto [rc, out] = RunCommand(std::string(OPIM_EXAMPLE_DIR) +
                              "/custom_model --n=512 --k=4 --rr=2000");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("certified alpha"), std::string::npos);
}

TEST(ExamplesSmokeTest, TargetedCampaign) {
  auto [rc, out] = RunCommand(std::string(OPIM_EXAMPLE_DIR) +
                              "/targeted_campaign --n=1024 --k=5 --eps=0.3");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("campaign value"), std::string::npos);
}

}  // namespace
}  // namespace opim
