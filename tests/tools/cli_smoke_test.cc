// End-to-end smoke tests of the opim_cli binary: generate, inspect,
// convert, run, evaluate — the full user workflow, driven through the
// actual executable. Located via the OPIM_CLI_PATH compile definition.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace opim {
namespace {

/// Runs a command, returning (exit code, captured stdout).
std::pair<int, std::string> RunCommand(const std::string& cmd) {
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int rc = pclose(pipe);
  return {rc, output};
}

std::string Cli() { return OPIM_CLI_PATH; }

std::string TmpFile(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliSmokeTest, GenStatsRoundTrip) {
  std::string bin = TmpFile("cli_smoke.bin");
  auto [rc1, out1] = RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                         bin);
  ASSERT_EQ(rc1, 0) << out1;
  EXPECT_NE(out1.find("n=512"), std::string::npos) << out1;

  auto [rc2, out2] = RunCommand(Cli() + " stats --graph=" + bin);
  ASSERT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("nodes          512"), std::string::npos) << out2;
  EXPECT_NE(out2.find("LT-feasible"), std::string::npos) << out2;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, RunOpimCAndEvaluate) {
  std::string bin = TmpFile("cli_run.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=livejournal-sim --scale=9 --out=" +
                bin).first, 0);

  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --mc=500");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("alpha="), std::string::npos) << out;
  EXPECT_NE(out.find("expected_spread="), std::string::npos) << out;

  auto [rc2, out2] =
      RunCommand(Cli() + " evaluate --graph=" + bin + " --mc=500 0 1 2");
  ASSERT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("ci95"), std::string::npos) << out2;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, ConvertWccTextToBinary) {
  std::string txt = TmpFile("cli_conv.txt");
  {
    FILE* f = fopen(txt.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // Two components: {0,1,2} and {3,4}.
    fputs("0 1\n1 2\n3 4\n", f);
    fclose(f);
  }
  std::string bin = TmpFile("cli_conv.bin");
  auto [rc, out] = RunCommand(Cli() + " convert --in=" + txt + " --out=" + bin +
                       " --wcc=true");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("kept 3 of 5"), std::string::npos) << out;
  auto [rc2, out2] = RunCommand(Cli() + " stats --graph=" + bin);
  ASSERT_EQ(rc2, 0);
  EXPECT_NE(out2.find("nodes          3"), std::string::npos) << out2;
  std::remove(txt.c_str());
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, UnknownCommandFails) {
  auto [rc, out] = RunCommand(Cli() + " frobnicate");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(CliSmokeTest, MissingGraphIsCleanError) {
  auto [rc, out] = RunCommand(Cli() + " stats --graph=/nonexistent/x.bin");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

}  // namespace
}  // namespace opim
