// End-to-end smoke tests of the opim_cli binary: generate, inspect,
// convert, run, evaluate — the full user workflow, driven through the
// actual executable. Located via the OPIM_CLI_PATH compile definition.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace opim {
namespace {

/// Runs a command, returning (exit code, captured stdout).
std::pair<int, std::string> RunCommand(const std::string& cmd) {
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int rc = pclose(pipe);
  return {rc, output};
}

/// Decodes the child's exit code from the pclose() wait status.
int ExitCode(int wait_status) {
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

std::string Cli() { return OPIM_CLI_PATH; }

std::string TmpFile(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliSmokeTest, GenStatsRoundTrip) {
  std::string bin = TmpFile("cli_smoke.bin");
  auto [rc1, out1] = RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                         bin);
  ASSERT_EQ(rc1, 0) << out1;
  EXPECT_NE(out1.find("n=512"), std::string::npos) << out1;

  auto [rc2, out2] = RunCommand(Cli() + " stats --graph=" + bin);
  ASSERT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("nodes          512"), std::string::npos) << out2;
  EXPECT_NE(out2.find("LT-feasible"), std::string::npos) << out2;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, RunOpimCAndEvaluate) {
  std::string bin = TmpFile("cli_run.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=livejournal-sim --scale=9 --out=" +
                bin).first, 0);

  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --mc=500");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("alpha="), std::string::npos) << out;
  EXPECT_NE(out.find("expected_spread="), std::string::npos) << out;

  auto [rc2, out2] =
      RunCommand(Cli() + " evaluate --graph=" + bin + " --mc=500 0 1 2");
  ASSERT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("ci95"), std::string::npos) << out2;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, ConvertWccTextToBinary) {
  std::string txt = TmpFile("cli_conv.txt");
  {
    FILE* f = fopen(txt.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // Two components: {0,1,2} and {3,4}.
    fputs("0 1\n1 2\n3 4\n", f);
    fclose(f);
  }
  std::string bin = TmpFile("cli_conv.bin");
  auto [rc, out] = RunCommand(Cli() + " convert --in=" + txt + " --out=" + bin +
                       " --wcc=true");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("kept 3 of 5"), std::string::npos) << out;
  auto [rc2, out2] = RunCommand(Cli() + " stats --graph=" + bin);
  ASSERT_EQ(rc2, 0);
  EXPECT_NE(out2.find("nodes          3"), std::string::npos) << out2;
  std::remove(txt.c_str());
  std::remove(bin.c_str());
}

std::string ReadFile(const std::string& path) {
  std::string content;
  std::array<char, 4096> buffer;
  FILE* f = fopen(path.c_str(), "r");
  if (f == nullptr) return content;
  size_t got = 0;
  while ((got = fread(buffer.data(), 1, buffer.size(), f)) > 0) {
    content.append(buffer.data(), got);
  }
  fclose(f);
  return content;
}

TEST(CliSmokeTest, RunWritesMetricsJsonReport) {
  std::string bin = TmpFile("cli_metrics.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string json = TmpFile("cli_metrics.json");
  std::string csv = TmpFile("cli_metrics.csv");
  auto [rc, out] = RunCommand(
      Cli() + " run --graph=" + bin +
      " --algo=opim-c+ --k=3 --eps=0.3 --threads=2 --metrics-json=" + json +
      " --metrics-csv=" + csv);
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("metrics_json=" + json), std::string::npos) << out;

  const std::string report = ReadFile(json);
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.front(), '{');
  EXPECT_EQ(report.back(), '}');
  // Schema + key run results.
  EXPECT_NE(report.find("\"opim.run_report.v1\""), std::string::npos);
  EXPECT_NE(report.find("\"alpha\""), std::string::npos);
  EXPECT_NE(report.find("\"threads_resolved\":2"), std::string::npos);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  // Engine counters from the instrumented hot paths (absent, by design,
  // when telemetry is compiled out).
  EXPECT_NE(report.find("\"opim.rrset.sets_generated\""), std::string::npos);
  EXPECT_NE(report.find("\"opim.rrset.edges_examined\""), std::string::npos);
  EXPECT_NE(report.find("\"opim.select.cover_updates\""), std::string::npos);
  EXPECT_NE(report.find("\"opim.pool.tasks_run\""), std::string::npos);
  EXPECT_NE(report.find("\"opim.opimc.phase.generate_us\""), std::string::npos);
#endif
  // Per-iteration rows are part of the report proper, not the metrics
  // snapshot, so they survive -DOPIM_TELEMETRY=OFF.
  EXPECT_NE(report.find("\"generate_seconds\""), std::string::npos);

  const std::string rows = ReadFile(csv);
  EXPECT_NE(rows.find("iteration,theta1,sigma_lower,sigma_upper,alpha"),
            std::string::npos) << rows;

  std::remove(bin.c_str());
  std::remove(json.c_str());
  std::remove(csv.c_str());
}

TEST(CliSmokeTest, OnlineWritesMetricsJsonReport) {
  std::string bin = TmpFile("cli_online_metrics.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string json = TmpFile("cli_online_metrics.json");
  auto [rc, out] = RunCommand(Cli() + " online --graph=" + bin +
                       " --k=3 --rounds=3 --batch=256 --metrics-json=" + json);
  ASSERT_EQ(rc, 0) << out;
  const std::string report = ReadFile(json);
  EXPECT_NE(report.find("\"opim.run_report.v1\""), std::string::npos);
  EXPECT_NE(report.find("\"advance_seconds\""), std::string::npos);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  EXPECT_NE(report.find("\"opim.online.queries\""), std::string::npos);
#endif
  std::remove(bin.c_str());
  std::remove(json.c_str());
}

TEST(CliSmokeTest, TelemetryFlagsDoNotPerturbResults) {
  // Same seed, with and without telemetry outputs / verbose logging:
  // the algorithmic stdout lines (seeds, alpha, ...) must be identical.
  std::string bin = TmpFile("cli_determinism.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  const std::string base = Cli() + " run --graph=" + bin +
                           " --algo=opim-c+ --k=3 --eps=0.3 --seed=7";
  auto [rc1, plain] = RunCommand(base);
  ASSERT_EQ(rc1, 0) << plain;

  std::string json = TmpFile("cli_determinism.json");
  auto [rc2, instrumented] =
      RunCommand(base + " --log-level=debug --metrics-json=" + json);
  ASSERT_EQ(rc2, 0) << instrumented;

  // Compare the algorithmic lines; the instrumented run adds log lines
  // (stderr merged into stdout) and a metrics_json= line on top.
  for (const char* key : {"seeds:", "alpha=", "rr_sets=", "iterations="}) {
    size_t pos = plain.find(key);
    ASSERT_NE(pos, std::string::npos) << key << "\n" << plain;
    std::string line = plain.substr(pos, plain.find('\n', pos) - pos);
    EXPECT_NE(instrumented.find(line), std::string::npos)
        << "line diverged: " << line << "\n" << instrumented;
  }
  std::remove(bin.c_str());
  std::remove(json.c_str());
}

std::string ReportLint() { return OPIM_REPORT_LINT_PATH; }

TEST(CliSmokeTest, RunWritesTraceJsonThatLintsClean) {
  std::string bin = TmpFile("cli_trace.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string trace = TmpFile("cli_trace.json");
  std::string json = TmpFile("cli_trace_metrics.json");
  auto [rc, out] = RunCommand(
      Cli() + " run --graph=" + bin +
      " --algo=opim-c+ --k=3 --eps=0.3 --threads=2 --trace-json=" + trace +
      " --metrics-json=" + json);
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("trace_json=" + trace), std::string::npos) << out;

  const std::string doc = ReadFile(trace);
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"opim.trace.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  // Spans from the instrumented modules; telemetry-OFF builds still write
  // a valid (empty) trace document.
  for (const char* cat : {"\"opimc\"", "\"rrset\"", "\"select\"",
                          "\"bounds\"", "\"pool\""}) {
    EXPECT_NE(doc.find(cat), std::string::npos) << "missing category " << cat;
  }
#endif

  // The shipped validator accepts both artifacts.
  auto [lint_rc, lint_out] = RunCommand(ReportLint() + " --trace-json=" +
                                        trace + " --metrics-json=" + json);
  EXPECT_EQ(ExitCode(lint_rc), 0) << lint_out;
  EXPECT_NE(lint_out.find("report_lint: ok"), std::string::npos) << lint_out;

  std::remove(bin.c_str());
  std::remove(trace.c_str());
  std::remove(json.c_str());
}

TEST(CliSmokeTest, OnlineWritesTraceJson) {
  std::string bin = TmpFile("cli_online_trace.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string trace = TmpFile("cli_online_trace.json");
  auto [rc, out] = RunCommand(Cli() + " online --graph=" + bin +
                       " --k=3 --rounds=3 --batch=256 --trace-json=" + trace);
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("trace_json=" + trace), std::string::npos) << out;
  auto [lint_rc, lint_out] = RunCommand(ReportLint() + " --trace-json=" +
                                        trace);
  EXPECT_EQ(ExitCode(lint_rc), 0) << lint_out;
  std::remove(bin.c_str());
  std::remove(trace.c_str());
}

TEST(CliSmokeTest, ProgressFlagEmitsHeartbeatLine) {
  std::string bin = TmpFile("cli_progress.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  // Even a short run sees at least the final heartbeat line (stderr is
  // merged into the captured output).
  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --progress");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("opim: progress t="), std::string::npos) << out;
  EXPECT_NE(out.find("alpha="), std::string::npos) << out;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, ReportLintRejectsBadArtifacts) {
  // No inputs at all is a usage error.
  auto [rc_usage, out_usage] = RunCommand(ReportLint());
  EXPECT_EQ(ExitCode(rc_usage), 2) << out_usage;

  // A syntactically valid JSON file that violates the schema fails with 1.
  std::string bad = TmpFile("cli_bad_trace.json");
  {
    FILE* f = fopen(bad.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("{\"schema\": \"opim.trace.v1\", \"traceEvents\": ["
          "{\"name\": \"a\", \"ph\": \"X\", \"tid\": 1, "
          "\"ts\": 5, \"dur\": -1}]}",
          f);
    fclose(f);
  }
  auto [rc_bad, out_bad] = RunCommand(ReportLint() + " --trace-json=" + bad);
  EXPECT_EQ(ExitCode(rc_bad), 1) << out_bad;
  EXPECT_NE(out_bad.find("negative duration"), std::string::npos) << out_bad;
  std::remove(bad.c_str());
}

TEST(CliGuardrailTest, ExpiredDeadlineDegradesGracefullyWithExitCode3) {
  std::string bin = TmpFile("cli_deadline.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string json = TmpFile("cli_deadline.json");
  // --deadline-ms=0 arms an already-expired deadline: the run must degrade
  // at its first safe point yet still print a size-k seed set with a
  // finite certificate and write the full report.
  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --mc=0" +
                       " --deadline-ms=0 --metrics-json=" + json);
  EXPECT_EQ(ExitCode(rc), 3) << out;
  EXPECT_NE(out.find("stop_reason=deadline"), std::string::npos) << out;
  EXPECT_NE(out.find("alpha="), std::string::npos) << out;
  EXPECT_NE(out.find("seeds:"), std::string::npos) << out;

  const std::string report = ReadFile(json);
  EXPECT_NE(report.find("\"stop_reason\":\"deadline\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"deadline_slack_ms\""), std::string::npos);
  EXPECT_NE(report.find("\"peak_rr_bytes\""), std::string::npos);
  EXPECT_NE(report.find("\"cancel_latency_ms\""), std::string::npos);
  std::remove(bin.c_str());
  std::remove(json.c_str());
}

TEST(CliGuardrailTest, TinyMemoryBudgetDegradesWithExitCode4) {
  std::string bin = TmpFile("cli_membudget.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string json = TmpFile("cli_membudget.json");
  // 0.01 MiB is below even the fixed per-run arrays, so the budget trips
  // deterministically at the first footprint poll.
  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --mc=0" +
                       " --max-rr-mb=0.01 --metrics-json=" + json);
  EXPECT_EQ(ExitCode(rc), 4) << out;
  EXPECT_NE(out.find("stop_reason=memory_budget"), std::string::npos) << out;
  EXPECT_NE(out.find("seeds:"), std::string::npos) << out;
  const std::string report = ReadFile(json);
  EXPECT_NE(report.find("\"stop_reason\":\"memory_budget\""),
            std::string::npos) << report;
  EXPECT_NE(report.find("\"rr_budget_bytes\""), std::string::npos);
  std::remove(bin.c_str());
  std::remove(json.c_str());
}

TEST(CliGuardrailTest, ConvergedRunReportsStopReasonAndExitsZero) {
  std::string bin = TmpFile("cli_converged.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  std::string csv = TmpFile("cli_converged.csv");
  auto [rc, out] = RunCommand(Cli() + " run --graph=" + bin +
                       " --algo=opim-c+ --k=3 --eps=0.3 --mc=0" +
                       " --deadline-ms=60000 --metrics-csv=" + csv);
  EXPECT_EQ(ExitCode(rc), 0) << out;
  EXPECT_NE(out.find("stop_reason=converged"), std::string::npos) << out;
  // The per-iteration footprint column rides at the end of the CSV rows.
  const std::string rows = ReadFile(csv);
  EXPECT_NE(rows.find("iteration,theta1,sigma_lower,sigma_upper,alpha"),
            std::string::npos) << rows;
  EXPECT_NE(rows.find(",rr_bytes"), std::string::npos) << rows;
  std::remove(bin.c_str());
  std::remove(csv.c_str());
}

TEST(CliGuardrailTest, OnlineSessionHonorsDeadline) {
  std::string bin = TmpFile("cli_online_deadline.bin");
  ASSERT_EQ(RunCommand(Cli() + " gen --dataset=pokec-sim --scale=9 --out=" +
                bin).first, 0);

  auto [rc, out] = RunCommand(Cli() + " online --graph=" + bin +
                       " --k=3 --rounds=50 --batch=512 --target=0.999" +
                       " --deadline-ms=0");
  EXPECT_EQ(ExitCode(rc), 3) << out;
  EXPECT_NE(out.find("stop_reason=deadline"), std::string::npos) << out;
  std::remove(bin.c_str());
}

TEST(CliSmokeTest, BadLogLevelIsCleanError) {
  auto [rc, out] = RunCommand(Cli() + " run --log-level=shout");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST(CliSmokeTest, UnknownCommandFails) {
  auto [rc, out] = RunCommand(Cli() + " frobnicate");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(CliSmokeTest, MissingGraphIsCleanError) {
  auto [rc, out] = RunCommand(Cli() + " stats --graph=/nonexistent/x.bin");
  EXPECT_NE(rc, 0);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

}  // namespace
}  // namespace opim
