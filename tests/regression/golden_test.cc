// Golden regression pins: exact outputs of the randomized pipeline for
// fixed seeds. These WILL break on any change to RNG consumption order,
// sampler traversal order, or greedy tie-breaking — that is their job:
// such changes silently alter every experiment, so they must be loud and
// deliberate. When one fires intentionally, re-pin the constants from the
// failing output.

#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "harness/datasets.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "support/random.h"

namespace opim {
namespace {

TEST(GoldenTest, RngStream) {
  Rng rng(12345, 1);
  // First draws of the PCG32 stream for this (seed, stream) pair.
  EXPECT_EQ(rng.NextU32(), 3422482905u);
  EXPECT_EQ(rng.NextU32(), 2501366500u);
  EXPECT_EQ(rng.NextU32(), 1304795587u);
}

TEST(GoldenTest, TinyGraphShape) {
  Graph g = MakeTinyTestGraph(256, 1);
  EXPECT_EQ(g.num_nodes(), 256u);
  EXPECT_EQ(g.num_edges(), 1014u);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.max_in_degree, 325u);
}

TEST(GoldenTest, IcSamplerFirstSets) {
  Graph g = MakeTinyTestGraph(256, 1);
  IcRRSampler sampler(g);
  Rng rng(7);
  std::vector<NodeId> out;
  uint64_t cost1 = sampler.SampleInto(rng, &out);
  const std::vector<NodeId> first = out;
  uint64_t cost2 = sampler.SampleInto(rng, &out);
  // Pin sizes and costs rather than full contents (compact but specific).
  EXPECT_EQ(first.size() + out.size(), 2u);
  EXPECT_EQ(cost1 + cost2, 2u);
}

TEST(GoldenTest, OnlineMaximizerSnapshot) {
  Graph g = MakeTinyTestGraph(256, 1);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 4, 0.05, 99);
  om.Advance(4000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds, (std::vector<NodeId>{252, 254, 224, 169}));
  EXPECT_NEAR(snap.alpha, 0.588847, 1e-5);
  EXPECT_EQ(snap.lambda1, 165u);
  EXPECT_EQ(snap.lambda2, 151u);
}

TEST(GoldenTest, OpimCRun) {
  Graph g = MakeTinyTestGraph(256, 1);
  OpimCOptions o;
  o.seed = 5;
  OpimCResult r = RunOpimC(g, DiffusionModel::kLinearThreshold, 3, 0.25,
                           0.05, o);
  EXPECT_EQ(r.iterations, 7u);
  EXPECT_EQ(r.num_rr_sets, 6272u);
  EXPECT_EQ(r.seeds, (std::vector<NodeId>{206, 254, 224}));
  EXPECT_NEAR(r.alpha, 0.506283, 1e-5);
}

}  // namespace
}  // namespace opim
