#include "diffusion/cascade.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/generators.h"
#include "graph/graph.h"

namespace opim {
namespace {

Graph DeterministicPath(uint32_t n) {
  // 0 -> 1 -> ... -> n-1 with p = 1 everywhere.
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return b.Build();
}

Graph ZeroProbPath(uint32_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 0.0);
  return b.Build();
}

class CascadeModelTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(CascadeModelTest, CertainEdgesActivateWholePath) {
  Graph g = DeterministicPath(10);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  // p = 1: IC always fires; LT threshold <= 1 = incoming weight.
  EXPECT_EQ(SimulateCascade(g, GetParam(), seeds, rng), 10u);
}

TEST_P(CascadeModelTest, ZeroProbEdgesActivateOnlySeeds) {
  Graph g = ZeroProbPath(10);
  Rng rng(1);
  std::vector<NodeId> seeds = {0, 5};
  EXPECT_EQ(SimulateCascade(g, GetParam(), seeds, rng), 2u);
}

TEST_P(CascadeModelTest, DuplicateSeedsCountOnce) {
  Graph g = ZeroProbPath(5);
  Rng rng(1);
  std::vector<NodeId> seeds = {2, 2, 2};
  EXPECT_EQ(SimulateCascade(g, GetParam(), seeds, rng), 1u);
}

TEST_P(CascadeModelTest, EmptySeedsActivateNothing) {
  Graph g = DeterministicPath(5);
  Rng rng(1);
  std::vector<NodeId> seeds;
  EXPECT_EQ(SimulateCascade(g, GetParam(), seeds, rng), 0u);
}

TEST_P(CascadeModelTest, ActivatedListMatchesCount) {
  Graph g = DeterministicPath(6);
  Rng rng(1);
  std::vector<NodeId> seeds = {3};
  std::vector<NodeId> activated;
  uint32_t count = SimulateCascade(g, GetParam(), seeds, rng, &activated);
  EXPECT_EQ(count, activated.size());
  // From node 3 the cascade reaches 3, 4, 5 exactly.
  std::sort(activated.begin(), activated.end());
  EXPECT_EQ(activated, (std::vector<NodeId>{3, 4, 5}));
}

TEST_P(CascadeModelTest, SimulatorReusableAcrossRuns) {
  Graph g = DeterministicPath(8);
  CascadeSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> s0 = {0}, s7 = {7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sim.Run(GetParam(), s0, rng), 8u);
    EXPECT_EQ(sim.Run(GetParam(), s7, rng), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, CascadeModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(CascadeTest, ModelNames) {
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kIndependentCascade), "IC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kLinearThreshold), "LT");
}

TEST(CascadeTest, IcTwoNodeActivationProbability) {
  // Single edge 0 -> 1 with p = 0.3: E[spread({0})] = 1.3 exactly.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.3);
  Graph g = b.Build();
  CascadeSimulator sim(g);
  Rng rng(42);
  std::vector<NodeId> seeds = {0};
  const int n = 100000;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += sim.Run(DiffusionModel::kIndependentCascade, seeds, rng);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 1.3, 0.01);
}

TEST(CascadeTest, LtTwoNodeActivationProbability) {
  // Under LT a single in-edge of weight 0.3 activates iff threshold <= 0.3.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.3);
  Graph g = b.Build();
  CascadeSimulator sim(g);
  Rng rng(42);
  std::vector<NodeId> seeds = {0};
  const int n = 100000;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += sim.Run(DiffusionModel::kLinearThreshold, seeds, rng);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 1.3, 0.01);
}

TEST(CascadeTest, LtThresholdSharedAcrossInfluencers) {
  // v has two in-edges of weight 0.5 each. Seeding both parents activates
  // v with probability 1 (combined weight 1 >= any threshold).
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build();
  CascadeSimulator sim(g);
  Rng rng(7);
  std::vector<NodeId> seeds = {0, 1};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sim.Run(DiffusionModel::kLinearThreshold, seeds, rng), 3u);
  }
}

TEST(CascadeTest, IcIndependentEdgesCompose) {
  // v with two in-edges p = 0.5 each, both parents seeded:
  // P[v active] = 1 - 0.25 = 0.75 under IC.
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(1, 2, 0.5);
  Graph g = b.Build();
  CascadeSimulator sim(g);
  Rng rng(7);
  std::vector<NodeId> seeds = {0, 1};
  const int n = 100000;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += sim.Run(DiffusionModel::kIndependentCascade, seeds, rng);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 2.75, 0.01);
}

TEST(SpreadEstimatorTest, MatchesAnalyticTwoNode) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.4);
  Graph g = b.Build();
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 2);
  std::vector<NodeId> seeds = {0};
  EXPECT_NEAR(est.Estimate(seeds, 100000), 1.4, 0.02);
}

TEST(SpreadEstimatorTest, DeterministicForFixedSeedAndThreads) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 3);
  std::vector<NodeId> seeds = {0, 5, 10};
  double a = est.Estimate(seeds, 5000, /*seed=*/9);
  double b = est.Estimate(seeds, 5000, /*seed=*/9);
  EXPECT_EQ(a, b);
}

TEST(SpreadEstimatorTest, ZeroSamplesGiveZero) {
  Graph g = DeterministicPath(3);
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(est.Estimate(seeds, 0), 0.0);
}

TEST(SpreadEstimatorTest, SpreadMonotoneInSeeds) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 2);
  std::vector<NodeId> small = {0, 1};
  std::vector<NodeId> large = {0, 1, 2, 3};
  EXPECT_LE(est.Estimate(small, 20000, 3),
            est.Estimate(large, 20000, 3) + 0.2);
}

TEST(SpreadEstimatorTest, SeedsAloneWhenGraphDisconnected) {
  GraphBuilder b(10);
  Graph g = b.Build();  // no edges at all
  SpreadEstimator est(g, DiffusionModel::kLinearThreshold, 2);
  std::vector<NodeId> seeds = {1, 3, 5};
  EXPECT_DOUBLE_EQ(est.Estimate(seeds, 100), 3.0);
}

}  // namespace
}  // namespace opim
