#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/cascade.h"
#include "gen/generators.h"

namespace opim {
namespace {

TEST(EstimateWithErrorTest, MeanMatchesPlainEstimate) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 2);
  std::vector<NodeId> seeds = {0, 3};
  // Same RNG stream derivation: means must be bit-identical.
  double plain = est.Estimate(seeds, 10000, 5);
  auto withe = est.EstimateWithError(seeds, 10000, 5);
  EXPECT_DOUBLE_EQ(plain, withe.mean);
  EXPECT_EQ(withe.num_samples, 10000u);
}

TEST(EstimateWithErrorTest, StderrShrinksWithSamples) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  SpreadEstimator est(g, DiffusionModel::kLinearThreshold, 2);
  // Node 0 has no out-edges in the directed BA construction (its spread
  // is deterministically 1); use a late node, which has out-degree 4.
  std::vector<NodeId> seeds = {150};
  auto small = est.EstimateWithError(seeds, 1000, 7);
  auto large = est.EstimateWithError(seeds, 64000, 7);
  EXPECT_GT(small.stderr_, 0.0);
  // 64x samples -> ~8x smaller standard error.
  EXPECT_NEAR(small.stderr_ / large.stderr_, 8.0, 2.5);
}

TEST(EstimateWithErrorTest, DeterministicSpreadHasZeroError) {
  // Path with p = 1: every run activates the same count.
  GraphBuilder b(5);
  for (NodeId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  Graph g = b.Build();
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 1);
  std::vector<NodeId> seeds = {0};
  auto r = est.EstimateWithError(seeds, 500, 1);
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.stderr_, 0.0);
}

TEST(EstimateWithErrorTest, CiCoversAnalyticTruth) {
  // Two-node p = 0.3 edge: σ({0}) = 1.3. The 99.9% CI must cover it in
  // nearly every run; with one fixed seed, assert a ~4-sigma cover.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.3);
  Graph g = b.Build();
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 2);
  std::vector<NodeId> seeds = {0};
  auto r = est.EstimateWithError(seeds, 50000, 3);
  EXPECT_NEAR(r.mean, 1.3, 4.0 * r.stderr_ + 1e-9);
  // stderr itself should match the Bernoulli formula sqrt(p(1-p)/n).
  EXPECT_NEAR(r.stderr_, std::sqrt(0.3 * 0.7 / 50000), 0.0005);
}

TEST(EstimateWithErrorTest, ZeroSamples) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 1);
  std::vector<NodeId> seeds = {0};
  auto r = est.EstimateWithError(seeds, 0, 1);
  EXPECT_EQ(r.mean, 0.0);
  EXPECT_EQ(r.stderr_, 0.0);
}

}  // namespace
}  // namespace opim
