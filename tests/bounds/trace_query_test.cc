// Property test for prefix-complete trace queries: for every query size
// k' <= k, the seeds, λᵘ, and σ_l/σ_u/α that BoundsAt answers from one
// k-run's SeedTrace must equal what an independent from-scratch
// evaluation at k' produces — a fresh SelectGreedy(k') over the same
// nominator pool, its Eq. (10)/(15) bound arithmetic, and a direct
// judge-pool coverage of its seed set. Greedy prefix-consistency is the
// claim under test; the comparisons are bitwise, not approximate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "bounds/bounds.h"
#include "rrset/rr_collection.h"
#include "select/greedy.h"
#include "select/seed_trace.h"
#include "support/random.h"

namespace opim {
namespace {

RRCollection MakeRandomCollection(uint32_t n, uint32_t num_sets,
                                  uint32_t max_len, uint64_t seed) {
  Rng rng(seed);
  RRCollection rr(n);
  std::vector<NodeId> s;
  for (uint32_t i = 0; i < num_sets; ++i) {
    s.clear();
    const uint32_t len = 1 + rng.UniformBelow(max_len);
    for (uint32_t j = 0; j < len; ++j) {
      s.push_back(static_cast<NodeId>(rng.UniformBelow(n)));
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, len);
  }
  return rr;
}

struct QueryCase {
  uint32_t n;
  uint32_t theta1;
  uint32_t theta2;
  uint32_t max_len;
  uint32_t k;
  uint64_t seed;
};

// Spanning dense ties (tiny n), saturation (k beyond what coverage
// supports), and larger sparse instances.
const QueryCase kCases[] = {
    {20, 150, 130, 3, 8, 1},  {50, 400, 380, 4, 12, 2},
    {10, 60, 50, 2, 10, 3},   {100, 900, 850, 5, 20, 4},
    {6, 30, 25, 2, 6, 5},     {200, 1500, 1400, 4, 15, 6},
};

/// Arms a trace by running the production path: traced CELF over r1 with
/// a SeedTrace attached, judge attribution over r2, bound params set the
/// way the engine sets them.
SeedTrace MakeTrace(const RRCollection& r1, const RRCollection& r2,
                    uint32_t k, double scale, double delta) {
  SeedTrace trace;
  CelfOptions opts;
  opts.seed_trace = &trace;
  SelectGreedyCelf(r1, k, /*with_trace=*/true, opts);
  trace.AttributeJudgeCoverage(r2);
  trace.SetBoundParams(r1.num_sets(), r2.num_sets(), scale, delta, delta);
  return trace;
}

std::vector<uint32_t> QuerySizes(uint32_t k) {
  std::vector<uint32_t> ks = {1, std::max(1u, k / 2), k};
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

TEST(TraceQueryBoundsTest, SeedsAtMatchesFreshSelection) {
  for (const QueryCase& c : kCases) {
    const RRCollection r1 = MakeRandomCollection(c.n, c.theta1, c.max_len,
                                                 c.seed);
    const RRCollection r2 = MakeRandomCollection(c.n, c.theta2, c.max_len,
                                                 c.seed + 1000);
    const uint32_t k = std::min(c.k, c.n);
    const SeedTrace trace = MakeTrace(r1, r2, k, c.n, 0.01);
    for (const uint32_t kp : QuerySizes(k)) {
      const GreedyResult fresh = SelectGreedy(r1, kp, /*with_trace=*/true);
      const std::span<const NodeId> answered = trace.SeedsAt(kp);
      EXPECT_EQ(fresh.seeds,
                std::vector<NodeId>(answered.begin(), answered.end()))
          << "k'=" << kp << " seed=" << c.seed;
    }
  }
}

TEST(TraceQueryBoundsTest, LambdaUpperAtMatchesFreshTraceBounds) {
  for (const QueryCase& c : kCases) {
    const RRCollection r1 = MakeRandomCollection(c.n, c.theta1, c.max_len,
                                                 c.seed);
    const RRCollection r2 = MakeRandomCollection(c.n, c.theta2, c.max_len,
                                                 c.seed + 1000);
    const uint32_t k = std::min(c.k, c.n);
    const SeedTrace trace = MakeTrace(r1, r2, k, c.n, 0.01);
    for (const uint32_t kp : QuerySizes(k)) {
      const GreedyResult fresh = SelectGreedy(r1, kp, /*with_trace=*/true);
      EXPECT_EQ(LambdaUpperFromTrace(fresh),
                LambdaUpperAt(trace, BoundKind::kImproved, kp))
          << "k'=" << kp << " seed=" << c.seed;
      EXPECT_EQ(LambdaUpperLeskovec(fresh),
                LambdaUpperAt(trace, BoundKind::kLeskovec, kp))
          << "k'=" << kp << " seed=" << c.seed;
    }
  }
}

TEST(TraceQueryBoundsTest, BoundsAtMatchesIndependentEvaluation) {
  const double kDelta = 0.005;
  for (const QueryCase& c : kCases) {
    const RRCollection r1 = MakeRandomCollection(c.n, c.theta1, c.max_len,
                                                 c.seed);
    const RRCollection r2 = MakeRandomCollection(c.n, c.theta2, c.max_len,
                                                 c.seed + 1000);
    const uint32_t k = std::min(c.k, c.n);
    const double scale = c.n;
    const SeedTrace trace = MakeTrace(r1, r2, k, scale, kDelta);
    for (const uint32_t kp : QuerySizes(k)) {
      const GreedyResult fresh = SelectGreedy(r1, kp, /*with_trace=*/true);
      const uint64_t lambda2 = r2.CoverageOf(fresh.seeds);
      EXPECT_EQ(lambda2, trace.Lambda2At(kp)) << "k'=" << kp;
      const double sigma_lower =
          SigmaLower(lambda2, r2.num_sets(), scale, kDelta);
      for (const BoundKind kind :
           {BoundKind::kImproved, BoundKind::kLeskovec}) {
        const double sigma_upper =
            SigmaUpper(kind, fresh, r1.num_sets(), scale, kDelta);
        const TraceQueryBounds q = BoundsAt(trace, kind, kp);
        EXPECT_EQ(sigma_lower, q.sigma_lower) << "k'=" << kp;
        EXPECT_EQ(sigma_upper, q.sigma_upper) << "k'=" << kp;
        EXPECT_EQ(ApproxRatio(sigma_lower, sigma_upper), q.alpha)
            << "k'=" << kp;
        EXPECT_GE(q.alpha, 0.0);
        EXPECT_LE(q.alpha, 1.0);
      }
    }
  }
}

TEST(TraceQueryBoundsTest, Lambda2PrefixesMatchDirectCoverage) {
  // Every prefix 0..k, not just the queried sizes: the incremental
  // judge-pool walk must equal CoverageOf on the literal prefix.
  const RRCollection r1 = MakeRandomCollection(60, 500, 4, 21);
  const RRCollection r2 = MakeRandomCollection(60, 450, 4, 22);
  const uint32_t k = 10;
  const SeedTrace trace = MakeTrace(r1, r2, k, 60.0, 0.01);
  const std::span<const NodeId> seeds = trace.seeds();
  for (uint32_t i = 0; i <= k; ++i) {
    const std::vector<NodeId> prefix(
        seeds.begin(), seeds.begin() + std::min<size_t>(i, seeds.size()));
    EXPECT_EQ(r2.CoverageOf(prefix), trace.Lambda2At(i)) << "prefix " << i;
  }
}

TEST(TraceQueryBoundsTest, SaturatedTraceStillAnswersAllSizes) {
  // Coverage saturates long before k: queries past the last real pick
  // must answer with the padded (flat-coverage, zero-marginal) rows and
  // still match fresh evaluations.
  RRCollection r1(12);
  r1.AddSet(std::vector<NodeId>{1, 2}, 2);
  r1.AddSet(std::vector<NodeId>{2, 3}, 2);
  RRCollection r2(12);
  r2.AddSet(std::vector<NodeId>{2}, 1);
  r2.AddSet(std::vector<NodeId>{5}, 1);
  const uint32_t k = 8;
  const SeedTrace trace = MakeTrace(r1, r2, k, 12.0, 0.01);
  for (uint32_t kp = 1; kp <= k; ++kp) {
    const GreedyResult fresh = SelectGreedy(r1, kp, /*with_trace=*/true);
    const std::span<const NodeId> answered = trace.SeedsAt(kp);
    EXPECT_EQ(fresh.seeds,
              std::vector<NodeId>(answered.begin(), answered.end()));
    EXPECT_EQ(LambdaUpperFromTrace(fresh),
              LambdaUpperAt(trace, BoundKind::kImproved, kp));
    EXPECT_EQ(r2.CoverageOf(fresh.seeds), trace.Lambda2At(kp));
  }
}

}  // namespace
}  // namespace opim
