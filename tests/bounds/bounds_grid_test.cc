// Parameterized grid sweeps over the bound formulas: the monotonicity and
// dominance properties that make the α certificates sound must hold at
// every (δ, θ, Λ) corner, not just the defaults the algorithms happen to
// use.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bounds/bounds.h"
#include "support/math_util.h"

namespace opim {
namespace {

using GridParam = std::tuple<double /*delta*/, uint64_t /*theta*/>;

class BoundGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(BoundGridTest, LowerBelowEmpiricalBelowUpper) {
  auto [delta, theta] = GetParam();
  const double scale = 10000.0;
  for (uint64_t lambda : {0ULL, 1ULL, 7ULL, 50ULL, 500ULL, 5000ULL}) {
    if (lambda > theta) continue;
    const double empirical = static_cast<double>(lambda) * scale / theta;
    const double lower = SigmaLower(lambda, theta, scale, delta);
    const double upper = SigmaUpperBasic(lambda, theta, scale, delta);
    EXPECT_LE(lower, empirical + 1e-9)
        << "lambda " << lambda << " theta " << theta << " delta " << delta;
    // Upper bound dominates even the 1/(1-1/e)-scaled empirical value.
    EXPECT_GE(upper, empirical / kOneMinusInvE - 1e-9);
    EXPECT_LE(lower, upper);
  }
}

TEST_P(BoundGridTest, LowerMonotoneInLambda) {
  auto [delta, theta] = GetParam();
  double prev = -1.0;
  for (uint64_t lambda = 0; lambda <= theta; lambda += theta / 8 + 1) {
    double v = SigmaLower(lambda, theta, 1000.0, delta);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST_P(BoundGridTest, UpperMonotoneInLambda) {
  auto [delta, theta] = GetParam();
  double prev = 0.0;
  for (uint64_t lambda = 0; lambda <= theta; lambda += theta / 8 + 1) {
    double v = SigmaUpperBasic(lambda, theta, 1000.0, delta);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST_P(BoundGridTest, BoundsScaleLinearlyWithScale) {
  auto [delta, theta] = GetParam();
  const uint64_t lambda = theta / 3 + 1;
  double l1 = SigmaLower(lambda, theta, 1000.0, delta);
  double l2 = SigmaLower(lambda, theta, 2000.0, delta);
  EXPECT_NEAR(l2, 2.0 * l1, 1e-9 * std::max(1.0, l2));
  double u1 = SigmaUpperBasic(lambda, theta, 1000.0, delta);
  double u2 = SigmaUpperBasic(lambda, theta, 2000.0, delta);
  EXPECT_NEAR(u2, 2.0 * u1, 1e-9 * u2);
}

TEST_P(BoundGridTest, MoreSamplesTightenTheGapAtFixedFrequency) {
  auto [delta, theta] = GetParam();
  if (theta < 64) return;
  // Hold the empirical frequency Λ/θ at ~30% and grow θ 16x: the
  // relative gap between upper and lower must shrink.
  auto gap = [&](uint64_t th) {
    uint64_t lam = th * 3 / 10;
    double lower = SigmaLower(lam, th, 1000.0, delta);
    double upper = SigmaUpperBasic(lam, th, 1000.0, delta);
    return lower > 0 ? upper / lower : 1e300;
  };
  EXPECT_LT(gap(theta * 16), gap(theta));
}

INSTANTIATE_TEST_SUITE_P(
    DeltaThetaGrid, BoundGridTest,
    ::testing::Combine(::testing::Values(1e-9, 1e-6, 1e-3, 0.05, 0.3),
                       ::testing::Values(uint64_t{16}, uint64_t{512},
                                         uint64_t{16384})));

class DeltaSplitGridTest : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSplitGridTest, RatioBoundedAndBelowOne) {
  const double delta = GetParam();
  // Λ2 must be large enough that the Eq. (5) lower bound is non-vacuous
  // (at Λ2 ~ 10 and δ = 1e-9 f() clamps to 0 — correctly); the paper's
  // Figure 1 uses Λ2 = 100.
  for (double lambda1 : {10.0, 100.0, 1000.0, 100000.0}) {
    for (double lambda2 : {100.0, 1000.0, 10000.0}) {
      double r = DeltaSplitRatio(lambda1, lambda2, delta);
      EXPECT_GT(r, 0.5) << lambda1 << " " << lambda2 << " " << delta;
      EXPECT_LE(r, 1.0 + 1e-9);
    }
  }
}

TEST(DeltaSplitTest, VacuousLowerBoundYieldsZeroRatio) {
  // Tiny Λ2 at strict δ: f(ln 1/δ) <= 0, and the ratio reports 0 rather
  // than dividing by a non-positive number.
  EXPECT_EQ(DeltaSplitRatio(1000.0, 10.0, 1e-9), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSplitGridTest,
                         ::testing::Values(1e-9, 1e-7, 1e-5, 1e-3, 1e-1));

}  // namespace
}  // namespace opim
