#include "bounds/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/math_util.h"
#include "support/random.h"

namespace opim {
namespace {

RRCollection MakeRandomCollection(uint32_t n, int num_sets, uint64_t seed) {
  Rng rng(seed);
  RRCollection rr(n);
  std::vector<NodeId> s;
  for (int i = 0; i < num_sets; ++i) {
    s.clear();
    uint32_t len = 1 + rng.UniformBelow(4);
    for (uint32_t j = 0; j < len; ++j) s.push_back(rng.UniformBelow(n));
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, 1);
  }
  return rr;
}

TEST(SigmaLowerTest, ZeroCoverageGivesZero) {
  EXPECT_EQ(SigmaLower(0, 1000, 100, 0.01), 0.0);
}

TEST(SigmaLowerTest, NeverExceedsEmpiricalEstimate) {
  // σ_l must undercut the unbiased estimate Λ2·n/θ2.
  const uint32_t n = 1000;
  const uint64_t theta = 5000;
  for (uint64_t lambda : {1ULL, 10ULL, 100ULL, 1000ULL, 5000ULL}) {
    double empirical = static_cast<double>(lambda) * n / theta;
    EXPECT_LE(SigmaLower(lambda, theta, n, 0.05), empirical + 1e-9)
        << "lambda " << lambda;
  }
}

TEST(SigmaLowerTest, IncreasingInCoverage) {
  double prev = -1.0;
  for (uint64_t lambda = 0; lambda <= 2000; lambda += 100) {
    double v = SigmaLower(lambda, 4000, 500, 0.01);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SigmaLowerTest, TightensAsDeltaGrows) {
  // Larger allowed failure probability -> less slack -> larger bound.
  double strict = SigmaLower(500, 4000, 500, 1e-9);
  double loose = SigmaLower(500, 4000, 500, 0.2);
  EXPECT_LT(strict, loose);
}

TEST(SigmaLowerTest, ConvergesToEmpiricalAtLargeTheta) {
  // Λ/θ fixed at 0.5, θ -> ∞: the bound approaches 0.5·n.
  const uint32_t n = 100;
  double v_small = SigmaLower(50, 100, n, 0.01);
  double v_large = SigmaLower(500000, 1000000, n, 0.01);
  EXPECT_LT(v_small, v_large);
  EXPECT_NEAR(v_large, 50.0, 0.5);
}

TEST(SigmaUpperTest, AtLeastScaledGreedyCoverage) {
  // σ_u >= Λ1(S*)/(1-1/e)·n/θ1 always (the concentration slack only adds).
  const uint32_t n = 1000;
  const uint64_t theta = 2000;
  for (uint64_t lambda : {0ULL, 5ULL, 50ULL, 500ULL}) {
    double base = static_cast<double>(lambda) / kOneMinusInvE * n / theta;
    EXPECT_GE(SigmaUpperBasic(lambda, theta, n, 0.01), base - 1e-9);
  }
}

TEST(SigmaUpperTest, LoosensAsDeltaShrinks) {
  double strict = SigmaUpperBasic(500, 4000, 500, 1e-9);
  double loose = SigmaUpperBasic(500, 4000, 500, 0.2);
  EXPECT_GT(strict, loose);
}

TEST(SigmaUpperTest, PositiveEvenAtZeroCoverage) {
  // The additive ln(1/δ) slack keeps the bound meaningful.
  EXPECT_GT(SigmaUpperBasic(0, 1000, 100, 0.01), 0.0);
}

TEST(LambdaUpperTest, TraceBoundNeverWorseThanBasic) {
  // Lemma 5.2: Λ1ᵘ(S°) <= Λ1(S*)/(1 - 1/e), on many random instances.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RRCollection rr = MakeRandomCollection(25, 150, seed);
    GreedyResult g = SelectGreedy(rr, 5, true);
    uint64_t lu = LambdaUpperFromTrace(g);
    EXPECT_LE(static_cast<double>(lu),
              static_cast<double>(g.coverage) / kOneMinusInvE + 1e-9)
        << "seed " << seed;
    // And it is an upper bound on the achieved coverage itself.
    EXPECT_GE(lu, g.coverage);
  }
}

TEST(LambdaUpperTest, TraceBoundDominatesBruteForceOptimum) {
  // Lemma 5.1 holds for ANY size-k set, so Λ1ᵘ must dominate the true
  // optimal coverage. Brute-force check on small instances.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RRCollection rr = MakeRandomCollection(12, 80, seed * 3);
    const uint32_t k = 3;
    GreedyResult g = SelectGreedy(rr, k, true);
    uint64_t lu = LambdaUpperFromTrace(g);

    uint64_t opt = 0;
    std::vector<NodeId> subset;
    for (uint32_t mask = 0; mask < (1u << 12); ++mask) {
      if (static_cast<uint32_t>(__builtin_popcount(mask)) != k) continue;
      subset.clear();
      for (NodeId v = 0; v < 12; ++v) {
        if (mask & (1u << v)) subset.push_back(v);
      }
      opt = std::max(opt, rr.CoverageOf(subset));
    }
    EXPECT_GE(lu, opt) << "seed " << seed;
  }
}

TEST(LambdaUpperTest, LeskovecBoundDominatesOptimumToo) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RRCollection rr = MakeRandomCollection(12, 80, seed * 7);
    const uint32_t k = 3;
    GreedyResult g = SelectGreedy(rr, k, true);
    uint64_t lv = LambdaUpperLeskovec(g);
    uint64_t lu = LambdaUpperFromTrace(g);
    // Λ1⋄ evaluates Eq. (10)'s summand at one prefix; the min over all
    // prefixes can only be tighter.
    EXPECT_LE(lu, lv);
  }
}

TEST(SigmaUpperTest, ImprovedNeverWorseThanBasic) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RRCollection rr = MakeRandomCollection(30, 200, seed);
    GreedyResult g = SelectGreedy(rr, 6, true);
    double basic = SigmaUpper(BoundKind::kBasic, g, rr.num_sets(), 30, 0.01);
    double improved =
        SigmaUpper(BoundKind::kImproved, g, rr.num_sets(), 30, 0.01);
    EXPECT_LE(improved, basic + 1e-9) << "seed " << seed;
  }
}

TEST(LambdaUpperTest, TwinHubsReproduceTheKEqualsOneAnomaly) {
  // The paper's Figures 3/5 observation: OPIM' can be *worse* than OPIM0
  // at k = 1. Mechanism: with two near-equal top singletons, the final-
  // prefix Leskovec bound is Λ1(S*) + (second-best marginal) ≈ 2·Λ1(S*),
  // exceeding the worst-case Λ1(S*)/(1-1/e) ≈ 1.58·Λ1(S*). Build two
  // disjoint equal "hubs" by hand: nodes 0 and 1 each cover 40 disjoint
  // RR sets.
  RRCollection rr(10);
  for (int i = 0; i < 40; ++i) rr.AddSet(std::vector<NodeId>{0}, 1);
  for (int i = 0; i < 40; ++i) rr.AddSet(std::vector<NodeId>{1}, 1);
  GreedyResult g = SelectGreedy(rr, /*k=*/1, /*with_trace=*/true);
  ASSERT_EQ(g.coverage, 40u);

  const uint64_t leskovec = LambdaUpperLeskovec(g);   // 40 + 40 = 80
  EXPECT_EQ(leskovec, 80u);
  EXPECT_GT(static_cast<double>(leskovec),
            static_cast<double>(g.coverage) / kOneMinusInvE);  // > 63.3
  // So σ⋄ > σ_u and α_leskovec < α_basic — OPIM' loses to OPIM0 here —
  // while the Eq. (10) trace bound still dominates everything.
  double basic = SigmaUpper(BoundKind::kBasic, g, rr.num_sets(), 10.0, 0.05);
  double lesk =
      SigmaUpper(BoundKind::kLeskovec, g, rr.num_sets(), 10.0, 0.05);
  double improved =
      SigmaUpper(BoundKind::kImproved, g, rr.num_sets(), 10.0, 0.05);
  EXPECT_GT(lesk, basic);
  EXPECT_LE(improved, basic);
}

TEST(ApproxRatioTest, ClampsAndHandlesZero) {
  EXPECT_EQ(ApproxRatio(1.0, 0.0), 0.0);
  EXPECT_EQ(ApproxRatio(-1.0, 2.0), 0.0);
  EXPECT_EQ(ApproxRatio(3.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ApproxRatio(1.0, 2.0), 0.5);
}

TEST(BorgsGuaranteeTest, RealisticGammaGivesNearZero) {
  // The paper's example: 0.1-approximation on n = 1e5, m = 1e6 needs
  // > 2e12 edges examined. Check the converse: 1e9 edges -> alpha ~ 0.
  double alpha = BorgsApproxGuarantee(1000000000ULL, 100000, 1000000);
  EXPECT_LT(alpha, 0.06);
  EXPECT_GT(alpha, 0.0);
}

TEST(BorgsGuaranteeTest, CappedAtQuarter) {
  double alpha = BorgsApproxGuarantee(UINT64_MAX / 2, 100, 100);
  EXPECT_DOUBLE_EQ(alpha, 0.25);
}

TEST(BorgsGuaranteeTest, FormulaExactValue) {
  // β = γ / (1492992 · (n + m) · ln n), straight from §3.2.
  const uint64_t gamma = 1000000;
  const uint32_t n = 1000;
  const uint64_t m = 9000;
  const double expected =
      1000000.0 / (1492992.0 * 10000.0 * std::log(1000.0));
  EXPECT_NEAR(BorgsApproxGuarantee(gamma, n, m), expected, 1e-15);
}

TEST(BorgsGuaranteeTest, PaperExampleNeedsTrillionsOfEdges) {
  // §3.2's example: a 0.1-approximation on n = 1e5, m = 1e6 requires
  // more than 2e12 edges examined.
  const uint32_t n = 100000;
  const uint64_t m = 1000000;
  // γ just under 2e12 is not yet enough for 0.1...
  EXPECT_LT(BorgsApproxGuarantee(1800000000000ULL, n, m), 0.1);
  // ...and ~2e12 barely clears it, matching "more than 2e12 edges".
  EXPECT_NEAR(BorgsApproxGuarantee(2000000000000ULL, n, m), 0.1, 0.01);
}

TEST(BorgsGuaranteeTest, MonotoneInGamma) {
  double a = BorgsApproxGuarantee(1000000, 1000, 10000);
  double b = BorgsApproxGuarantee(2000000, 1000, 10000);
  EXPECT_LE(a, b);
}

TEST(LemmaFGTest, FDecreasingGIncreasing) {
  // Appendix B: f decreases in x, g increases in x.
  double prev_f = 1e300, prev_g = -1.0;
  for (double x = 0.5; x < 30.0; x += 0.5) {
    double f = LemmaF(100.0, x);
    double g = LemmaG(1000.0, x);
    EXPECT_LE(f, prev_f + 1e-9);
    EXPECT_GE(g, prev_g - 1e-9);
    prev_f = f;
    prev_g = g;
  }
}

TEST(DeltaSplitRatioTest, NearOneAcrossFigureOneGrid) {
  // Figure 1's claim: the ratio is close to 1 for Λ2 = 100 and a wide
  // range of δ and Λ1. "Close" per the figure: above ~0.8.
  for (double delta : {1e-9, 1e-6, 1e-3, 0.1}) {
    for (double lambda1 : {100.0, 1000.0, 10000.0}) {
      double r = DeltaSplitRatio(lambda1, 100.0, delta);
      EXPECT_GT(r, 0.8) << "delta " << delta << " lambda1 " << lambda1;
      EXPECT_LE(r, 1.0 + 1e-9);
    }
  }
}

TEST(BoundKindTest, Names) {
  EXPECT_STREQ(BoundKindName(BoundKind::kBasic), "OPIM0");
  EXPECT_STREQ(BoundKindName(BoundKind::kImproved), "OPIM+");
  EXPECT_STREQ(BoundKindName(BoundKind::kLeskovec), "OPIM'");
}

/// End-to-end statistical validity: on a real sampling setup the bounds
/// must sandwich the truth with comfortable margin.
TEST(BoundsIntegrationTest, LowerAndUpperSandwichTruth) {
  // Known truth on a star: center seed set {0}, sigma({0}) = 1+(n-1)p.
  // We approximate with the collection-level machinery instead of closed
  // form: generate many sets, check σ_l <= Λ·n/θ and σ_u >= estimate.
  RRCollection rr = MakeRandomCollection(50, 5000, 99);
  GreedyResult g = SelectGreedy(rr, 5, true);
  double est = static_cast<double>(g.coverage) * 50 / rr.num_sets();
  double lower = SigmaLower(g.coverage, rr.num_sets(), 50, 0.01);
  double upper = SigmaUpper(BoundKind::kImproved, g, rr.num_sets(), 50, 0.01);
  EXPECT_LE(lower, est);
  EXPECT_GE(upper, est);
  EXPECT_GT(lower, 0.0);
}

}  // namespace
}  // namespace opim
