// Statistical validity of the paper's concentration machinery: the
// Lemma 4.2 / 4.3 bounds are probabilistic contracts ("holds w.p. >=
// 1 - δ"); these tests measure the empirical failure rate over repeated
// independent trials and check it stays within the promised budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bounds/bounds.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "select/greedy.h"
#include "support/random.h"

namespace opim {
namespace {

class BoundsValidityTest : public ::testing::TestWithParam<DiffusionModel> {
};

TEST_P(BoundsValidityTest, SigmaLowerHoldsAtRateOneMinusDelta) {
  // Fixed seed set, ground truth from a large forward-MC run; 200
  // independent judge pools at δ2 = 0.1. Failures (σ_l > σ(S)) must stay
  // near or below δ2 — binomial slack: 3σ over 200 trials ≈ 0.064.
  Graph g = GenerateErdosRenyi(200, 1400);
  const DiffusionModel model = GetParam();
  const std::vector<NodeId> seeds = {3, 17, 42};

  SpreadEstimator est(g, model, 2);
  const double truth = est.Estimate(seeds, 400000, 123);

  const int trials = 200;
  const double delta2 = 0.1;
  const uint64_t theta2 = 300;
  int failures = 0;
  auto sampler = MakeRRSampler(g, model);
  Rng rng(99);
  for (int t = 0; t < trials; ++t) {
    RRCollection r2(g.num_nodes());
    sampler->Generate(&r2, theta2, rng);
    double lower =
        SigmaLower(r2.CoverageOf(seeds), theta2, g.num_nodes(), delta2);
    // Tolerate the MC truth's own error with a 2% cushion.
    if (lower > truth * 1.02) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(trials * (delta2 + 0.065)))
      << "failure rate " << static_cast<double>(failures) / trials;
}

TEST_P(BoundsValidityTest, SigmaLowerIsNotVacuous) {
  // Conservative is fine, useless is not: with a decent sample the lower
  // bound should recover a large fraction of the truth.
  Graph g = GenerateErdosRenyi(200, 1400);
  const DiffusionModel model = GetParam();
  const std::vector<NodeId> seeds = {3, 17, 42};
  SpreadEstimator est(g, model, 2);
  const double truth = est.Estimate(seeds, 200000, 123);

  auto sampler = MakeRRSampler(g, model);
  Rng rng(7);
  RRCollection r2(g.num_nodes());
  sampler->Generate(&r2, 20000, rng);
  double lower =
      SigmaLower(r2.CoverageOf(seeds), r2.num_sets(), g.num_nodes(), 0.01);
  EXPECT_GT(lower, 0.75 * truth);
  EXPECT_LT(lower, 1.05 * truth);
}

TEST_P(BoundsValidityTest, SigmaUpperCoversStrongReferenceSeedSet) {
  // σ_u(S°) must dominate the spread of ANY size-k set, in particular a
  // strong reference found by large-sample greedy. 100 trials at
  // δ1 = 0.1 with small pools.
  Graph g = GenerateBarabasiAlbert(200, 4);
  const DiffusionModel model = GetParam();
  const uint32_t k = 4;

  // Reference: greedy on a large pool — high-spread size-k set.
  auto sampler = MakeRRSampler(g, model);
  Rng rng(5);
  RRCollection big(g.num_nodes());
  sampler->Generate(&big, 50000, rng);
  GreedyResult reference = SelectGreedy(big, k);
  SpreadEstimator est(g, model, 2);
  const double ref_spread = est.Estimate(reference.seeds, 300000, 77);

  const int trials = 100;
  const double delta1 = 0.1;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    RRCollection r1(g.num_nodes());
    sampler->Generate(&r1, 400, rng);
    GreedyResult greedy = SelectGreedy(r1, k, /*with_trace=*/true);
    double upper = SigmaUpper(BoundKind::kImproved, greedy, r1.num_sets(),
                              g.num_nodes(), delta1);
    if (upper < ref_spread * 0.98) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(trials * (delta1 + 0.09)))
      << "failure rate " << static_cast<double>(failures) / trials;
}

INSTANTIATE_TEST_SUITE_P(BothModels, BoundsValidityTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(BoundsValidityTest2, EndToEndAlphaContractOnKnownOptimum) {
  // A graph whose optimum is known exactly: star with hub 0 and p = 1
  // edges. σ(S°) for k = 1 is n (seed the hub). Any reported α must
  // satisfy σ(seeds) >= α·n.
  const uint32_t n = 64;
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.AddEdge(0, v, 1.0);
  Graph g = b.Build();

  auto sampler = MakeRRSampler(g, DiffusionModel::kIndependentCascade);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    RRCollection r1(n), r2(n);
    sampler->Generate(&r1, 200, rng);
    sampler->Generate(&r2, 200, rng);
    GreedyResult greedy = SelectGreedy(r1, 1, true);
    double lower = SigmaLower(r2.CoverageOf(greedy.seeds), r2.num_sets(), n,
                              0.05);
    double upper =
        SigmaUpper(BoundKind::kImproved, greedy, r1.num_sets(), n, 0.05);
    double alpha = ApproxRatio(lower, upper);
    // Greedy always finds the hub here, so σ(S*) = n = σ(S°); α <= 1 must
    // certify no more than that.
    ASSERT_EQ(greedy.seeds[0], 0u);
    EXPECT_LE(alpha * n, n * 1.0 + 1e-9);
    EXPECT_GT(alpha, 0.3) << "bound uselessly loose on a trivial instance";
  }
}

}  // namespace
}  // namespace opim
