#include "baselines/tim.h"

#include <gtest/gtest.h>

#include "baselines/imm.h"
#include "gen/generators.h"
#include "support/math_util.h"

namespace opim {
namespace {

class TimModelTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(TimModelTest, ReturnsKSeedsWithStats) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  TimStats stats;
  ImResult r = RunTim(g, GetParam(), 5, 0.3, 0.05, {}, &stats);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_GT(r.num_rr_sets, 0u);
  EXPECT_GE(stats.kpt_star, 1.0);
  EXPECT_GE(stats.kpt_plus, stats.kpt_star);
  EXPECT_GT(stats.theta_required, 0u);
  EXPECT_FALSE(stats.capped);
  EXPECT_NEAR(r.guarantee, kOneMinusInvE - 0.3, 1e-12);
}

TEST_P(TimModelTest, RefinementReducesSampleCount) {
  // KPT+ >= KPT*, so θ = λ/KPT+ can only shrink with refinement on.
  Graph g = GenerateBarabasiAlbert(500, 6);
  TimOptions with, without;
  with.refine_kpt = true;
  without.refine_kpt = false;
  with.seed = without.seed = 7;
  TimStats s_with, s_without;
  RunTim(g, GetParam(), 10, 0.3, 0.05, with, &s_with);
  RunTim(g, GetParam(), 10, 0.3, 0.05, without, &s_without);
  EXPECT_LE(s_with.theta_required, s_without.theta_required);
}

TEST_P(TimModelTest, CapRespected) {
  Graph g = GenerateBarabasiAlbert(300, 5);
  TimOptions o;
  o.max_rr_sets = 200;
  TimStats stats;
  ImResult r = RunTim(g, GetParam(), 5, 0.1, 0.05, o, &stats);
  EXPECT_EQ(r.seeds.size(), 5u);
  // Phase-2 generation honors the cap exactly; phase 1 contributes a
  // bounded extra. The capped flag must be set when θ was unreachable.
  if (stats.theta_required > 200) {
    EXPECT_TRUE(stats.capped);
  }
}

TEST_P(TimModelTest, SpreadComparableToImm) {
  Graph g = GenerateBarabasiAlbert(500, 5);
  const DiffusionModel model = GetParam();
  ImResult tim = RunTim(g, model, 10, 0.25, 0.05);
  ImResult imm = RunImm(g, model, 10, 0.25, 0.05);
  SpreadEstimator est(g, model, 2);
  double s_tim = est.Estimate(tim.seeds, 20000, 1);
  double s_imm = est.Estimate(imm.seeds, 20000, 1);
  EXPECT_GE(s_tim, 0.9 * s_imm);
}

INSTANTIATE_TEST_SUITE_P(BothModels, TimModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(TimTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  TimOptions o;
  o.seed = 3;
  ImResult a = RunTim(g, DiffusionModel::kIndependentCascade, 4, 0.3, 0.1, o);
  ImResult b = RunTim(g, DiffusionModel::kIndependentCascade, 4, 0.3, 0.1, o);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

}  // namespace
}  // namespace opim
