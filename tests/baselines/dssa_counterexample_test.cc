// Appendix C of the paper proves that D-SSA-Fix's dynamic error term ε_b
// can undershoot the Chernoff requirement ε̂, so its stopping rule does
// not yield a valid instance-specific guarantee (and hence cannot be
// adapted for OPIM). This test reproduces the appendix's arithmetic
// counterexample — an edgeless graph with n = 1e5 nodes, k = 1,
// δ' = 1e-3, θ2 = 1e5 — and checks every number the paper derives.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "rrset/rr_sampler.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {
namespace {

/// Unique positive root of ε̂² = (2 + 2ε̂/3)·(n/(θ2·σ))·ln(1/δ'), solved
/// by fixed-point/bisection (the paper's ε̂ definition).
double SolveEpsHat(double n, double theta2, double sigma, double delta_p) {
  const double c = n / (theta2 * sigma) * std::log(1.0 / delta_p);
  double lo = 0.0, hi = 1e9;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    ((mid * mid < (2.0 + 2.0 * mid / 3.0) * c) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

TEST(DssaCounterexampleTest, EpsHatMatchesPaper) {
  // "we can compute that ε̂ = 6.67" for n = 1e5, θ2 = 1e5, σ(S*) = 1,
  // δ' = 1e-3.
  double eps_hat = SolveEpsHat(1e5, 1e5, 1.0, 1e-3);
  EXPECT_NEAR(eps_hat, 6.67, 0.05);
}

TEST(DssaCounterexampleTest, EmptyCoverageProbabilityMatchesPaper) {
  // "Pr[Λ2(S*) = 0] = (1 - 1/n)^θ2 = 0.37".
  double p = std::pow(1.0 - 1e-5, 1e5);
  EXPECT_NEAR(p, 0.37, 0.005);
}

TEST(DssaCounterexampleTest, EpsBUndershootsEpsHat) {
  // With σ2(S*) >= σ(S*) = 1 (probability 0.63) and ε = 1 - 1/e:
  // ε_b²/ε̂² = (2 + 2ε/3)(1 + ε)σ(S*) / ((2 + 2ε̂/3)σ2(S*)) < 0.62 < 1.
  const double eps = kOneMinusInvE;
  const double eps_hat = SolveEpsHat(1e5, 1e5, 1.0, 1e-3);
  const double sigma = 1.0, sigma2 = 1.0;  // σ2 >= σ; worst case equality
  const double ratio2 = (2.0 + 2.0 * eps / 3.0) * (1.0 + eps) * sigma /
                        ((2.0 + 2.0 * eps_hat / 3.0) * sigma2);
  EXPECT_LT(ratio2, 0.62);
  EXPECT_LT(ratio2, 1.0);  // hence ε_b < ε̂: the Chernoff bound need not hold
}

TEST(DssaCounterexampleTest, EdgelessGraphRRSetsAreSingletons) {
  // The construction behind the counterexample: with m = 0, every RR set
  // is exactly its root and every seed's spread is 1.
  GraphBuilder b(1000);
  Graph g = b.Build();
  auto sampler = MakeRRSampler(g, DiffusionModel::kIndependentCascade);
  Rng rng(1);
  std::vector<NodeId> out;
  for (int i = 0; i < 200; ++i) {
    uint64_t cost = sampler->SampleInto(rng, &out);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(cost, 0u);
  }
}

}  // namespace
}  // namespace opim
