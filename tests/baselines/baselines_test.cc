#include <gtest/gtest.h>

#include <cmath>

#include "baselines/borgs_online.h"
#include "baselines/dssa_fix.h"
#include "baselines/imm.h"
#include "baselines/mc_greedy.h"
#include "baselines/opim_adoption.h"
#include "baselines/ssa_fix.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "support/math_util.h"

namespace opim {
namespace {

TEST(BorgsOnlineTest, SnapshotGammaIsPowerOfTwo) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  BorgsOnline borgs(g, DiffusionModel::kIndependentCascade, 3);
  borgs.Advance(500);
  BorgsSnapshot snap = borgs.Query();
  ASSERT_GT(snap.gamma, 0u);
  EXPECT_EQ(snap.gamma & (snap.gamma - 1), 0u) << snap.gamma;
  EXPECT_LE(snap.gamma, borgs.gamma());
  EXPECT_GT(2 * snap.gamma, borgs.gamma());
  EXPECT_EQ(snap.seeds.size(), 3u);
}

TEST(BorgsOnlineTest, GuaranteeIsNearZeroAtPracticalScale) {
  // Reproduces the paper's core criticism (§3.2, Figures 2-5).
  Graph g = GenerateBarabasiAlbert(2000, 8);
  BorgsOnline borgs(g, DiffusionModel::kLinearThreshold, 50);
  borgs.Advance(20000);
  EXPECT_LT(borgs.Query().alpha, 0.01);
}

TEST(BorgsOnlineTest, QueryBeforeFirstSnapshotIsEmpty) {
  GraphBuilder b(10);
  Graph g = b.Build();  // isolated: zero edges examined forever
  BorgsOnline borgs(g, DiffusionModel::kIndependentCascade, 2);
  borgs.Advance(10);
  BorgsSnapshot snap = borgs.Query();
  EXPECT_EQ(snap.gamma, 0u);
  EXPECT_EQ(snap.alpha, 0.0);
  EXPECT_TRUE(snap.seeds.empty());
}

class BaselineModelTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(BaselineModelTest, ImmReturnsKSeeds) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  ImmStats stats;
  ImResult r = RunImm(g, GetParam(), 5, 0.3, 0.05, {}, &stats);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_GT(r.num_rr_sets, 0u);
  EXPECT_GT(stats.lower_bound, 0.0);
  EXPECT_FALSE(stats.capped);
  EXPECT_NEAR(r.guarantee, kOneMinusInvE - 0.3, 1e-12);
}

TEST_P(BaselineModelTest, ImmCapRespected) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  ImmOptions o;
  o.max_rr_sets = 100;
  ImmStats stats;
  ImResult r = RunImm(g, GetParam(), 5, 0.05, 0.05, o, &stats);
  EXPECT_LE(r.num_rr_sets, 100u);
  EXPECT_EQ(r.seeds.size(), 5u);
}

TEST_P(BaselineModelTest, SsaFixCompletes) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  SsaFixStats stats;
  ImResult r = RunSsaFix(g, GetParam(), 5, 0.3, 0.05, {}, &stats);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_GT(r.num_rr_sets, 0u);
  EXPECT_GT(stats.eps_split, 0.0);
  EXPECT_LT(stats.eps_split, 1.0);
  EXPECT_GE(stats.iterations, 1u);
}

TEST_P(BaselineModelTest, DssaFixCompletes) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  DssaFixStats stats;
  ImResult r = RunDssaFix(g, GetParam(), 5, 0.3, 0.05, {}, &stats);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_GT(r.num_rr_sets, 0u);
  EXPECT_GE(stats.iterations, 1u);
}

TEST_P(BaselineModelTest, AllAlgorithmsAgreeOnSpreadQuality) {
  // IMM, SSA-Fix, D-SSA-Fix, and OPIM-C promise the same guarantee; their
  // spreads should roughly agree (paper Figures 6a/7a). The bound below is
  // deliberately loose: at eps = 0.2 OPIM-C's stopping rule can accept a
  // seed set ~15% below the best baseline on an unlucky RR stream
  // (observed across RNG seeds), which is still far inside its
  // (1 - 1/e - eps)-approximation latitude.
  Graph g = GenerateBarabasiAlbert(600, 6);
  const DiffusionModel model = GetParam();
  const uint32_t k = 10;
  const double eps = 0.2, delta = 0.05;

  OpimCResult opimc = RunOpimC(g, model, k, eps, delta);
  ImResult imm = RunImm(g, model, k, eps, delta);
  ImResult ssa = RunSsaFix(g, model, k, eps, delta);
  ImResult dssa = RunDssaFix(g, model, k, eps, delta);

  SpreadEstimator est(g, model, 2);
  const uint64_t mc = 20000;
  double s_opimc = est.Estimate(opimc.seeds, mc, 1);
  double s_imm = est.Estimate(imm.seeds, mc, 1);
  double s_ssa = est.Estimate(ssa.seeds, mc, 1);
  double s_dssa = est.Estimate(dssa.seeds, mc, 1);

  double lo = std::min(std::min(s_opimc, s_imm), std::min(s_ssa, s_dssa));
  double hi = std::max(std::max(s_opimc, s_imm), std::max(s_ssa, s_dssa));
  EXPECT_GE(lo, 0.8 * hi) << "spreads diverged: " << s_opimc << " "
                          << s_imm << " " << s_ssa << " " << s_dssa;
}

TEST_P(BaselineModelTest, OpimCUsesFewestRRSets) {
  // The headline efficiency claim (Figures 6b/7b): OPIM-C+ needs no more
  // RR sets than IMM at the same (ε, δ). Allow slack for randomness.
  Graph g = GenerateBarabasiAlbert(600, 6);
  const DiffusionModel model = GetParam();
  OpimCResult opimc = RunOpimC(g, model, 10, 0.1, 0.01);
  ImResult imm = RunImm(g, model, 10, 0.1, 0.01);
  EXPECT_LE(opimc.num_rr_sets, imm.num_rr_sets);
}

INSTANTIATE_TEST_SUITE_P(BothModels, BaselineModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(AdoptionTest, CurveAlphasFollowSchedule) {
  // Fake algorithm: always uses 100 RR sets.
  auto invoke = [](double eps, uint32_t) {
    ImResult r;
    r.num_rr_sets = 100;
    r.seeds = {0};
    r.guarantee = kOneMinusInvE - eps;
    return r;
  };
  auto curve = BuildAdoptionCurve(invoke, 1000);
  ASSERT_GE(curve.size(), 3u);
  EXPECT_EQ(curve[0].cumulative_rr_sets, 100u);
  EXPECT_NEAR(curve[0].alpha, 0.0, 1e-12);  // ε_1 = 1 - 1/e
  EXPECT_NEAR(curve[1].alpha, kOneMinusInvE / 2, 1e-12);
  EXPECT_NEAR(curve[2].alpha, kOneMinusInvE * 0.75, 1e-12);
}

TEST(AdoptionTest, AlphaAtBudgetIsLastCompleted) {
  std::vector<AdoptionStep> curve;
  curve.push_back({100, 0.0, {}});
  curve.push_back({300, 0.3, {}});
  curve.push_back({900, 0.45, {}});
  EXPECT_EQ(AdoptionAlphaAt(curve, 50), 0.0);
  EXPECT_EQ(AdoptionAlphaAt(curve, 100), 0.0);
  EXPECT_EQ(AdoptionAlphaAt(curve, 299), 0.0);
  EXPECT_EQ(AdoptionAlphaAt(curve, 300), 0.3);
  EXPECT_EQ(AdoptionAlphaAt(curve, 10000), 0.45);
}

TEST(AdoptionTest, AlphaCappedBelowOneMinusInvE) {
  auto invoke = [](double eps, uint32_t) {
    ImResult r;
    r.num_rr_sets = 1;
    r.guarantee = kOneMinusInvE - eps;
    return r;
  };
  auto curve = BuildAdoptionCurve(invoke, 1000000, 40);
  for (const auto& step : curve) {
    EXPECT_LT(step.alpha, kOneMinusInvE);
  }
}

TEST(AdoptionTest, StopsAtBudget) {
  int calls = 0;
  auto invoke = [&calls](double, uint32_t) {
    ++calls;
    ImResult r;
    r.num_rr_sets = 500;
    return r;
  };
  BuildAdoptionCurve(invoke, 1000);
  EXPECT_EQ(calls, 2);  // 500, 1000 -> budget reached
}

TEST(McGreedyTest, PicksTheHubOnAStar) {
  GraphBuilder b(30);
  for (NodeId v = 1; v < 30; ++v) b.AddEdge(0, v, 0.8);
  Graph g = b.Build();
  auto seeds =
      SelectMcGreedy(g, DiffusionModel::kIndependentCascade, 1, 500);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(McGreedyTest, ReturnsKDistinctSeeds) {
  Graph g = GenerateBarabasiAlbert(60, 3);
  auto seeds =
      SelectMcGreedy(g, DiffusionModel::kLinearThreshold, 5, 300);
  ASSERT_EQ(seeds.size(), 5u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace opim
