#include "baselines/heuristics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"

namespace opim {
namespace {

TEST(DegreeHeuristicTest, PicksHighestOutDegrees) {
  // star: node 0 out-degree 5; path appended gives varied degrees.
  GraphBuilder b(8);
  for (NodeId v = 1; v <= 5; ++v) b.AddEdge(0, v, 0.1);
  b.AddEdge(6, 7, 0.1);
  Graph g = b.Build();
  auto seeds = SelectByDegree(g, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);  // degree 5
  EXPECT_EQ(seeds[1], 6u);  // degree 1, smallest id among ties
}

TEST(DegreeHeuristicTest, TiesBreakTowardSmallerId) {
  Graph g = GenerateCycle(6);  // all degrees equal
  auto seeds = SelectByDegree(g, 3);
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 1, 2}));
}

TEST(DegreeHeuristicTest, KClampsToN) {
  Graph g = GenerateCycle(4);
  EXPECT_EQ(SelectByDegree(g, 100).size(), 4u);
}

TEST(DegreeDiscountTest, AvoidsAdjacentSeeds) {
  // Two cliques of 4 joined weakly; plain degree would take two nodes of
  // the same clique only if degrees said so — construct a hub plus its
  // satellite so the discount pushes the second pick away.
  //   0 -> {1,2,3,4}; 1 -> {2,3,4}; 5 -> {6,7}
  GraphBuilder b(8);
  for (NodeId v : {1u, 2u, 3u, 4u}) b.AddEdge(0, v, 0.1);
  for (NodeId v : {2u, 3u, 4u}) b.AddEdge(1, v, 0.1);
  for (NodeId v : {6u, 7u}) b.AddEdge(5, v, 0.1);
  Graph g = b.Build();
  auto seeds = SelectByDegreeDiscount(g, 2, 0.1);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);
  // 1's discounted degree: d=3, t=1 -> 3 - 2 - 2*0.1 = 0.8 < 2 (node 5).
  EXPECT_EQ(seeds[1], 5u);
}

TEST(DegreeDiscountTest, DistinctSeedsAlways) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  auto seeds = SelectByDegreeDiscount(g, 20, 0.05);
  ASSERT_EQ(seeds.size(), 20u);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PageRankTest, RanksSumToOne) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  auto rank = InfluencePageRank(g);
  double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double r : rank) EXPECT_GT(r, 0.0);
}

TEST(PageRankTest, InfluencerOutranksFollower) {
  // 0 -> 1 -> 2 chain with p = 1: under influence-PageRank, rank flows
  // backwards, so the source 0 outranks the sink 2.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  Graph g = b.Build();
  auto rank = InfluencePageRank(g);
  EXPECT_GT(rank[0], rank[2]);
}

TEST(PageRankTest, SelectionPrefersTheHub) {
  GraphBuilder b(20);
  for (NodeId v = 1; v < 20; ++v) b.AddEdge(0, v, 0.5);
  Graph g = b.Build();
  auto seeds = SelectByPageRank(g, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(TwoHopTest, ScoresMatchHandComputation) {
  // 0 -> 1 (0.5), 1 -> 2 (0.4):
  // one_hop = {1.5, 1.4, 1.0}
  // two_hop(0) = 1 + 0.5·1.4 = 1.7; two_hop(1) = 1 + 0.4·1 = 1.4.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.4);
  Graph g = b.Build();
  auto s = TwoHopScores(g);
  EXPECT_DOUBLE_EQ(s[0], 1.7);
  EXPECT_DOUBLE_EQ(s[1], 1.4);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
}

TEST(TwoHopTest, SelectionPicksTheChainHead) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  Graph g = b.Build();
  auto seeds = SelectByTwoHop(g, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);  // sees two hops of certain influence
}

TEST(TwoHopTest, ReturnsDistinctSeeds) {
  Graph g = GenerateBarabasiAlbert(300, 5, /*undirected=*/true);
  auto seeds = SelectByTwoHop(g, 25);
  ASSERT_EQ(seeds.size(), 25u);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(TwoHopTest, CompetitiveSpread) {
  Graph g = GenerateBarabasiAlbert(800, 6, /*undirected=*/true);
  const auto model = DiffusionModel::kIndependentCascade;
  const uint32_t k = 10;
  SpreadEstimator est(g, model, 2);
  double s_twohop = est.Estimate(SelectByTwoHop(g, k), 20000, 1);
  double s_degree = est.Estimate(SelectByDegree(g, k), 20000, 1);
  EXPECT_GE(s_twohop, 0.9 * s_degree);
}

TEST(IrieTest, PicksTheObviousHub) {
  GraphBuilder b(30);
  for (NodeId v = 1; v < 30; ++v) b.AddEdge(0, v, 0.5);
  Graph g = b.Build();
  auto seeds = SelectByIrie(g, 1);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(IrieTest, ApDiscountAvoidsTheHubsShadow) {
  // Hub 0 -> {1..8} with p = 1; node 9 -> {10, 11} with p = 1.
  // After picking 0, nodes 1..8 are fully activated (ap = 1); the second
  // pick must be 9, not one of the shadowed leaves.
  GraphBuilder b(12);
  for (NodeId v = 1; v <= 8; ++v) b.AddEdge(0, v, 1.0);
  b.AddEdge(9, 10, 1.0);
  b.AddEdge(9, 11, 1.0);
  Graph g = b.Build();
  auto seeds = SelectByIrie(g, 2);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 9u);
}

TEST(IrieTest, DistinctSeedsOnRandomGraph) {
  Graph g = GenerateBarabasiAlbert(300, 5, /*undirected=*/true);
  auto seeds = SelectByIrie(g, 20);
  ASSERT_EQ(seeds.size(), 20u);
  std::vector<NodeId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(IrieTest, CompetitiveSpread) {
  Graph g = GenerateBarabasiAlbert(800, 6, /*undirected=*/true);
  const auto model = DiffusionModel::kIndependentCascade;
  const uint32_t k = 10;
  SpreadEstimator est(g, model, 2);
  double s_irie = est.Estimate(SelectByIrie(g, k), 20000, 1);
  double s_degree = est.Estimate(SelectByDegree(g, k), 20000, 1);
  EXPECT_GE(s_irie, 0.9 * s_degree);
}

TEST(HeuristicsQualityTest, WithinStrikingDistanceOfOpimC) {
  // On an undirected scale-free graph (where degree actually identifies
  // hubs — in the directed BA construction out-degree is constant by
  // design) the heuristics land close to the certified algorithm, the
  // classic empirical finding; none should collapse.
  Graph g = GenerateBarabasiAlbert(1000, 6, /*undirected=*/true);
  const auto model = DiffusionModel::kIndependentCascade;
  const uint32_t k = 10;
  OpimCResult certified = RunOpimC(g, model, k, 0.1, 0.01);

  SpreadEstimator est(g, model, 2);
  const uint64_t mc = 20000;
  double s_cert = est.Estimate(certified.seeds, mc, 1);
  double s_deg = est.Estimate(SelectByDegree(g, k), mc, 1);
  double s_dd = est.Estimate(SelectByDegreeDiscount(g, k), mc, 1);
  double s_pr = est.Estimate(SelectByPageRank(g, k), mc, 1);

  EXPECT_GE(s_deg, 0.7 * s_cert);
  EXPECT_GE(s_dd, 0.7 * s_cert);
  EXPECT_GE(s_pr, 0.7 * s_cert);
  // But the certified algorithm is never (statistically) beaten by much.
  EXPECT_GE(s_cert, 0.95 * std::max({s_deg, s_dd, s_pr}));
}

}  // namespace
}  // namespace opim
