#include "select/greedy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/random.h"

namespace opim {
namespace {

/// Builds a collection from explicit sets.
RRCollection MakeCollection(uint32_t n,
                            const std::vector<std::vector<NodeId>>& sets) {
  RRCollection rr(n);
  for (const auto& s : sets) rr.AddSet(s, 1);
  return rr;
}

/// Brute-force optimal coverage of any size-k subset (small inputs only).
uint64_t BruteForceOptimalCoverage(const RRCollection& rr, uint32_t k) {
  const uint32_t n = rr.num_nodes();
  uint64_t best = 0;
  std::vector<NodeId> subset;
  // Enumerate k-subsets via bitmask (n <= 20).
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<uint32_t>(__builtin_popcount(mask)) != k) continue;
    subset.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(v);
    }
    best = std::max(best, rr.CoverageOf(subset));
  }
  return best;
}

TEST(GreedyTest, SingleSetPicksItsMember) {
  RRCollection rr = MakeCollection(3, {{1}});
  GreedyResult r = SelectGreedy(rr, 1);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 1u);
  EXPECT_EQ(r.coverage, 1u);
}

TEST(GreedyTest, PicksHighestCoverageFirst) {
  // Node 2 covers three sets, others one each.
  RRCollection rr = MakeCollection(4, {{2}, {2, 0}, {2, 1}, {3}});
  GreedyResult r = SelectGreedy(rr, 2);
  EXPECT_EQ(r.seeds[0], 2u);
  EXPECT_EQ(r.seeds[1], 3u);
  EXPECT_EQ(r.coverage, 4u);
}

TEST(GreedyTest, TieBreaksTowardSmallestId) {
  RRCollection rr = MakeCollection(4, {{1}, {3}});
  GreedyResult r = SelectGreedy(rr, 1);
  EXPECT_EQ(r.seeds[0], 1u);
}

TEST(GreedyTest, MarginalNotRawCoverageDrivesLaterPicks) {
  // Node 0 covers sets {A,B}; node 1 covers {A,B,C}; node 2 covers {D}.
  // After picking 1, node 0's marginal is 0, so node 2 must be next.
  RRCollection rr = MakeCollection(3, {{0, 1}, {0, 1}, {1}, {2}});
  GreedyResult r = SelectGreedy(rr, 2);
  EXPECT_EQ(r.seeds[0], 1u);
  EXPECT_EQ(r.seeds[1], 2u);
  EXPECT_EQ(r.coverage, 4u);
}

TEST(GreedyTest, FillsToKWhenCoverageSaturates) {
  RRCollection rr = MakeCollection(5, {{4}});
  GreedyResult r = SelectGreedy(rr, 3);
  ASSERT_EQ(r.seeds.size(), 3u);
  EXPECT_EQ(r.seeds[0], 4u);
  // Filled deterministically with smallest unused ids.
  EXPECT_EQ(r.seeds[1], 0u);
  EXPECT_EQ(r.seeds[2], 1u);
}

TEST(GreedyTest, KLargerThanNClamps) {
  RRCollection rr = MakeCollection(3, {{0}, {1}});
  GreedyResult r = SelectGreedy(rr, 10);
  EXPECT_EQ(r.seeds.size(), 3u);
}

TEST(GreedyTest, EmptyCollection) {
  RRCollection rr(4);
  GreedyResult r = SelectGreedy(rr, 2);
  EXPECT_EQ(r.coverage, 0u);
  EXPECT_EQ(r.seeds.size(), 2u);  // filled deterministically
}

TEST(GreedyTest, TraceShapesAndBoundaries) {
  RRCollection rr = MakeCollection(4, {{0}, {0, 1}, {2}, {3}});
  const uint32_t k = 3;
  GreedyResult r = SelectGreedy(rr, k, /*with_trace=*/true);
  ASSERT_EQ(r.coverage_at.size(), k + 1);
  ASSERT_EQ(r.topk_marginal_at.size(), k + 1);
  EXPECT_EQ(r.coverage_at[0], 0u);
  EXPECT_EQ(r.coverage_at[k], r.coverage);
  // coverage_at[0] + topk at prefix 0 = sum of the k largest singleton
  // coverages = 2 (node 0) + 1 + 1 = 4.
  EXPECT_EQ(r.topk_marginal_at[0], 4u);
}

TEST(GreedyTest, TraceCoverageIsMonotoneAndConcave) {
  Rng rng(3);
  const uint32_t n = 30;
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < 200; ++i) {
    std::vector<NodeId> s;
    uint32_t len = 1 + rng.UniformBelow(4);
    for (uint32_t j = 0; j < len; ++j) s.push_back(rng.UniformBelow(n));
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    sets.push_back(std::move(s));
  }
  RRCollection rr = MakeCollection(n, sets);
  GreedyResult r = SelectGreedy(rr, 8, true);
  for (size_t i = 1; i < r.coverage_at.size(); ++i) {
    EXPECT_GE(r.coverage_at[i], r.coverage_at[i - 1]) << "monotone";
  }
  // Submodularity: greedy gains are non-increasing.
  for (size_t i = 2; i < r.coverage_at.size(); ++i) {
    EXPECT_LE(r.coverage_at[i] - r.coverage_at[i - 1],
              r.coverage_at[i - 1] - r.coverage_at[i - 2])
        << "concavity at " << i;
  }
}

TEST(GreedyTest, AchievesOneMinusInvEOfOptimal) {
  // Property sweep vs brute force on random small instances.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const uint32_t n = 12;
    std::vector<std::vector<NodeId>> sets;
    for (int i = 0; i < 60; ++i) {
      std::vector<NodeId> s;
      uint32_t len = 1 + rng.UniformBelow(3);
      for (uint32_t j = 0; j < len; ++j) s.push_back(rng.UniformBelow(n));
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sets.push_back(std::move(s));
    }
    RRCollection rr = MakeCollection(n, sets);
    for (uint32_t k : {1u, 2u, 3u}) {
      GreedyResult r = SelectGreedy(rr, k);
      uint64_t opt = BruteForceOptimalCoverage(rr, k);
      EXPECT_GE(static_cast<double>(r.coverage),
                (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(opt))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(GreedyCelfTest, MatchesDestructiveGreedyOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 17);
    const uint32_t n = 40;
    std::vector<std::vector<NodeId>> sets;
    for (int i = 0; i < 300; ++i) {
      std::vector<NodeId> s;
      uint32_t len = 1 + rng.UniformBelow(5);
      for (uint32_t j = 0; j < len; ++j) s.push_back(rng.UniformBelow(n));
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sets.push_back(std::move(s));
    }
    RRCollection rr = MakeCollection(n, sets);
    GreedyResult a = SelectGreedy(rr, 6);
    GreedyResult b = SelectGreedyCelf(rr, 6);
    EXPECT_EQ(a.coverage, b.coverage) << "seed " << seed;
    EXPECT_EQ(a.seeds, b.seeds) << "seed " << seed;
  }
}

TEST(GreedyCelfTest, SaturationFillsLikeDestructive) {
  RRCollection rr = MakeCollection(5, {{4}});
  GreedyResult a = SelectGreedy(rr, 3);
  GreedyResult b = SelectGreedyCelf(rr, 3);
  EXPECT_EQ(a.seeds, b.seeds);
}

}  // namespace
}  // namespace opim
