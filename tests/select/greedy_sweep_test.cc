// Wide parameterized sweep: the two greedy implementations must agree on
// every (collection shape, k) combination, and the greedy trace must
// satisfy its structural invariants everywhere — these are the
// foundations the §5 bound sits on.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "bounds/bounds.h"
#include "select/greedy.h"
#include "support/math_util.h"
#include "support/random.h"

namespace opim {
namespace {

RRCollection MakeRandom(uint32_t n, int num_sets, uint32_t max_len,
                        uint64_t seed) {
  Rng rng(seed);
  RRCollection rr(n);
  std::vector<NodeId> s;
  for (int i = 0; i < num_sets; ++i) {
    s.clear();
    uint32_t len = 1 + rng.UniformBelow(max_len);
    for (uint32_t j = 0; j < len; ++j) s.push_back(rng.UniformBelow(n));
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, 1);
  }
  return rr;
}

using SweepParam = std::tuple<uint32_t /*n*/, int /*sets*/, uint32_t /*k*/>;

class GreedySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GreedySweepTest, CelfMatchesDestructive) {
  auto [n, sets, k] = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RRCollection rr = MakeRandom(n, sets, 5, seed * 1001);
    GreedyResult a = SelectGreedy(rr, k);
    GreedyResult b = SelectGreedyCelf(rr, k);
    ASSERT_EQ(a.coverage, b.coverage) << "n=" << n << " k=" << k;
    ASSERT_EQ(a.seeds, b.seeds) << "n=" << n << " k=" << k;
  }
}

TEST_P(GreedySweepTest, TraceInvariantsHold) {
  auto [n, sets, k] = GetParam();
  RRCollection rr = MakeRandom(n, sets, 5, 7);
  GreedyResult r = SelectGreedy(rr, k, /*with_trace=*/true);
  const uint32_t keff = std::min(k, n);
  ASSERT_EQ(r.coverage_at.size(), keff + 1);
  ASSERT_EQ(r.topk_marginal_at.size(), keff + 1);

  // Λ monotone; trace bound chain of Lemma 5.2 holds.
  for (size_t i = 1; i < r.coverage_at.size(); ++i) {
    EXPECT_GE(r.coverage_at[i], r.coverage_at[i - 1]);
  }
  uint64_t lu = LambdaUpperFromTrace(r);
  EXPECT_GE(lu, r.coverage);
  EXPECT_LE(static_cast<double>(lu),
            static_cast<double>(r.coverage) / kOneMinusInvE + 1e-9);
  // The final prefix evaluates to the Leskovec bound; the min dominates.
  EXPECT_LE(lu, LambdaUpperLeskovec(r));
  // Seeds are exactly min(k, n) distinct nodes.
  EXPECT_EQ(r.seeds.size(), keff);
  std::vector<NodeId> sorted = r.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GreedySweepTest,
    ::testing::Values(SweepParam{10, 30, 1}, SweepParam{10, 30, 3},
                      SweepParam{10, 30, 10},   // k == n
                      SweepParam{10, 30, 15},   // k > n clamps
                      SweepParam{50, 400, 5}, SweepParam{50, 400, 25},
                      SweepParam{200, 50, 8},   // sparse coverage
                      SweepParam{200, 2000, 8}, SweepParam{3, 100, 2}));

}  // namespace
}  // namespace opim
